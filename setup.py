"""Legacy setup shim.

The evaluation environment has no network and no ``wheel`` package, so
``pip install -e .`` (PEP 660) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
with a wheel-capable setuptools) install the package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
