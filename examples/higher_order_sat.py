#!/usr/bin/env python
"""Higher-order cost functions: Max-3-SAT in the MBQC paradigm.

Section III: "it is straightforward to extend our constructions here to
QAOA for higher-order problems beyond quadratic."  This example does it:
a Max-3-SAT instance becomes a *cubic* spin polynomial; each cubic term
compiles to a single hyperedge gadget (one ancilla CZ'd to three wires);
the pattern is executed and sampled.

Run:  python examples/higher_order_sat.py
"""

import numpy as np

from repro.core.hyper import compile_pubo_qaoa_pattern, pubo_resource_counts
from repro.mbqc import run_pattern
from repro.problems.pubo import MaxThreeSat
from repro.qaoa import grid_search_p1
from repro.utils import int_to_bitstring


def main() -> None:
    sat = MaxThreeSat.random(6, 9, seed=11)
    pubo = sat.to_pubo()
    print(f"Max-3-SAT: {sat.num_variables} variables, {len(sat.clauses)} clauses; "
          f"max satisfiable = {sat.max_satisfiable()}")
    print(f"Cubic PUBO: {len(pubo.interaction_terms())} interaction terms, "
          f"max order {pubo.max_order}")

    counts = pubo_resource_counts(pubo, p=1)
    print(f"\nMBQC protocol (p=1): {counts['total_nodes']} nodes "
          f"({counts['term_ancillas']} term ancillas + "
          f"{counts['mixer_ancillas']} mixer ancillas + {counts['wires']} wires), "
          f"{counts['entanglers']} CZs")

    cost = pubo.energy_vector()
    res = grid_search_p1(cost, resolution=18)
    print(f"\nQAOA_1 parameters: γ={res.gammas[0]:+.3f}, β={res.betas[0]:+.3f}, "
          f"<unsat clauses> = {res.expectation:.3f}")

    pattern = compile_pubo_qaoa_pattern(pubo, res.gammas, res.betas)
    result = run_pattern(pattern, seed=5)
    probs = np.abs(result.state_array()) ** 2
    rng = np.random.default_rng(0)
    samples = rng.choice(probs.size, size=512, p=probs / probs.sum())
    sat_counts = np.array(
        [sat.num_satisfied(int_to_bitstring(int(s), 6)) for s in samples]
    )
    best = int(samples[np.argmax(sat_counts)])
    print(f"\n512 samples from the executed pattern:")
    print(f"  <satisfied clauses> = {sat_counts.mean():.2f} / {len(sat.clauses)}")
    print(f"  best assignment {int_to_bitstring(best, 6)} satisfies "
          f"{sat_counts.max()} / {sat.max_satisfiable()} satisfiable")


if __name__ == "__main__":
    main()
