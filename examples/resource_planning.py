#!/usr/bin/env python
"""Section III.A in practice: planning MBQC-QAOA resource budgets.

Regenerates the paper's resource comparison for a portfolio of problem
families, shows the qubit-reuse effect (ref. [51]) that collapses the live
register to ~|V|+1, and quantifies the overhead of generic circuit
translation the paper warns about.

Run:  python examples/resource_planning.py
"""

from repro.core import compile_qaoa_pattern, resource_table
from repro.core.generic import generic_pattern_counts
from repro.core.resources import format_table
from repro.core.reuse import reuse_summary
from repro.problems import MaxCut, MinVertexCover, NumberPartitioning
from repro.qaoa import qaoa_circuit
from repro.utils import grid_graph


def main() -> None:
    n_grid, e_grid = grid_graph(3, 3)
    instances = [
        ("ring-8", MaxCut.ring(8).to_qubo()),
        ("3-regular-10", MaxCut.random_regular(3, 10, seed=4).to_qubo()),
        ("complete-6", MaxCut.complete(6).to_qubo()),
        ("grid-3x3", MaxCut(n_grid, e_grid).to_qubo()),
        ("vertex-cover-C6", MinVertexCover(6, MaxCut.ring(6).edges).to_qubo()),
        ("partition-7", NumberPartitioning.random(7, seed=9).to_qubo()),
    ]

    print("Section III.A resource comparison (bounds vs exact vs gate model)")
    print(format_table(resource_table(instances, depths=[1, 2, 4])))

    print("\nQubit reuse under eager measurement (ref. [51]):")
    print(f"{'instance':>16} {'p':>2} {'total':>6} {'peak live':>9} {'reuse x':>8}")
    for name, qubo in instances[:4]:
        for p in (1, 4):
            compiled = compile_qaoa_pattern(qubo, [0.1] * p, [0.1] * p)
            total, peak, factor = reuse_summary(compiled.pattern)
            print(f"{name:>16} {p:>2} {total:>6} {peak:>9} {factor:>8.2f}")

    print("\nGeneric circuit->MBQC translation overhead (Section I claim):")
    print(f"{'instance':>16} {'p':>2} {'tailored':>9} {'generic':>8} {'overhead':>9}")
    for name, qubo in instances[:3]:
        ising = qubo.to_ising()
        for p in (1, 2):
            tailored = compile_qaoa_pattern(qubo, [0.3] * p, [0.5] * p)
            generic = generic_pattern_counts(qaoa_circuit(ising, [0.3] * p, [0.5] * p))
            ratio = generic["nodes"] / tailored.num_nodes()
            print(f"{name:>16} {p:>2} {tailored.num_nodes():>9} "
                  f"{generic['nodes']:>8} {ratio:>9.2f}")


if __name__ == "__main__":
    main()
