#!/usr/bin/env python
"""The paper's full hybrid workflow, run entirely through measurement
patterns.

Section II.C: "After preparing on the quantum computer, the QAOA state is
measured in the computational basis ... Repeated state preparation and
measurement gives further samples which may be used to estimate the cost
expectation ⟨C⟩ ... these quantities could be used to update or
variationally search for better circuit parameters."  Here the "quantum
computer" is the MBQC runtime: every sample comes from executing the
Section III measurement pattern, optionally with Pauli noise — the
gate-model simulator is used only for the final cross-check.

Run:  python examples/mbqc_variational_loop.py
"""

import numpy as np

from repro.core.solver import MBQCQAOASolver
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut
from repro.qaoa import qaoa_expectation


def main() -> None:
    problem = MaxCut.random_regular(3, 6, seed=13)
    qubo = problem.to_qubo()
    opt = problem.max_cut_value()
    print(f"MaxCut, 3-regular on 6 vertices, optimum cut = {opt:.0f}\n")

    print("— noiseless MBQC variational loop (p=2) —")
    solver = MBQCQAOASolver(qubo, p=2, shots=192, runs_per_batch=3, seed=0)
    res = solver.solve(restarts=2, maxiter=30)
    print(f"parameter evaluations : {res.evaluations}")
    print(f"final <cost> (sampled): {res.expectation:+.3f}")
    exact = qaoa_expectation(qubo.cost_vector(), res.gammas, res.betas)
    print(f"exact <cost> at params: {exact:+.3f}  (sampling error "
          f"{abs(exact - res.expectation):.3f})")
    print(f"best sampled solution : {''.join(map(str, res.best_bitstring))} "
          f"with cut {problem.cut_value(res.best_bitstring):.0f}/{opt:.0f}\n")

    print("— the same loop on noisy hardware (0.5% per-operation Pauli noise) —")
    noisy = MBQCQAOASolver(
        qubo, p=1, shots=192, runs_per_batch=12,
        noise=NoiseModel(p_prep=0.005, p_ent=0.005, p_meas=0.005), seed=1,
    )
    nres = noisy.solve(restarts=2, maxiter=25)
    print(f"final <cost> (sampled): {nres.expectation:+.3f}")
    print(f"best sampled solution : {''.join(map(str, nres.best_bitstring))} "
          f"with cut {problem.cut_value(nres.best_bitstring):.0f}/{opt:.0f}")
    print("\nReading: at this instance size, mild noise leaves the "
          "best-of-samples solution quality intact — the returned answer is "
          "robust even when the expectation landscape gets noisy, which is "
          "the paper's Section I motivation for measurement-based NISQ "
          "protocols.")


if __name__ == "__main__":
    main()
