#!/usr/bin/env python
"""Replaying the paper's ZX-calculus derivations numerically.

Each step of the Section II/III diagrammatic story is rebuilt and checked
against tensor semantics: the square graph state (Eq. 5), the phase gadget
(Eq. 7), rewrite-rule soundness (Fig. 1), the Appendix A Bell example, and
the ZH partial mixer (Section IV).

Run:  python examples/zx_derivations.py
"""

import math

import numpy as np

from repro.linalg import proportionality_factor
from repro.mbqc import Pattern, run_pattern
from repro.mbqc.runner import enumerate_branches
from repro.sim import Circuit, StateVector
from repro.zx import (
    Diagram,
    EdgeType,
    circuit_to_diagram,
    diagram_matrix,
    graph_state_diagram,
    phase_gadget_diagram,
)
from repro.zx.rules import basic_simplify, fuse_all
from repro.zx.zh import mis_partial_mixer_diagram


def check(label: str, a, b) -> None:
    ok = proportionality_factor(np.asarray(a), np.asarray(b), atol=1e-8) is not None
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    assert ok, label


def main() -> None:
    print("Eq. (5): the square graph state, three ways")
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    zx = diagram_matrix(graph_state_diagram(4, edges)).ravel()
    sv = StateVector.plus(4)
    for u, v in edges:
        sv.apply_cz(u, v)
    check("ZX diagram == product of CZs on |+>^4", zx, sv.to_array())
    circ = Circuit(4)
    for q in range(4):
        circ.h(q)
    for u, v in edges:
        circ.cz(u, v)
    check("ZX diagram == circuit-translated diagram",
          zx, diagram_matrix(circuit_to_diagram(circ)) @ np.eye(16)[:, 0] * 4)

    print("\nEq. (7): the phase gadget")
    gamma = 0.81
    gadget = diagram_matrix(phase_gadget_diagram(2, [(0, 1)], gamma))
    rzz = diagram_matrix(circuit_to_diagram(Circuit(2).rzz(0, 1, gamma)))
    check("X-hub gadget == CNOT·RZ·CNOT", gadget, rzz)

    print("\nFig. 1: rewrite soundness on a QAOA circuit diagram")
    qaoa_like = (
        Circuit(3).h(0).h(1).h(2)
        .cnot(0, 1).rz(1, 0.6).cnot(0, 1)
        .cnot(1, 2).rz(2, 0.6).cnot(1, 2)
        .rx(0, 0.9).rx(1, 0.9).rx(2, 0.9)
    )
    d = circuit_to_diagram(qaoa_like)
    before = diagram_matrix(d)
    spiders_before = d.num_spiders()
    basic_simplify(d)
    check(
        f"basic_simplify ({spiders_before} -> {d.num_spiders()} spiders) preserves semantics",
        diagram_matrix(d),
        before,
    )

    print("\nAppendix A: the Bell-state measurement pattern, every branch")
    p = Pattern(input_nodes=[], output_nodes=[0, 2])
    for v in range(4):
        p.n(v)
    for u, v in edges:
        p.e(u, v)
    p.m(3, "YZ", 0.0).m(1, "XY", 0.0).x(2, {1})
    phi_plus = np.array([1, 0, 0, 1]) / np.sqrt(2)
    for branch in enumerate_branches(p):
        out = run_pattern(p, forced_outcomes=branch).state_array()
        check(f"branch n={branch[3]}, m={branch[1]} -> |Phi+>", out, phi_plus)

    print("\nSection IV: the ZH partial mixer")
    from scipy.linalg import expm

    from repro.linalg import PAULI_X, controlled, operator_on_qubits

    beta = 0.47
    zh = diagram_matrix(mis_partial_mixer_diagram(2, beta))
    u = expm(1j * beta * PAULI_X)
    core = controlled(u, 2)
    flip = operator_on_qubits(PAULI_X, [0], 3) @ operator_on_qubits(PAULI_X, [1], 3)
    check("e^{iβ} H-box diagram == Λ_{N(v)}(e^{iβX_v})", zh, flip @ core @ flip)

    print("\nAll derivations verified.")


if __name__ == "__main__":
    main()
