#!/usr/bin/env python
"""Section IV walkthrough: Maximum Independent Set with hard constraints.

Shows the three layers of the paper's Section IV story:

1. the ZH-calculus partial mixer diagram equals the controlled unitary
   Λ_{N(v)}(e^{iβX_v}),
2. the constrained alternating ansatz *never* leaves the feasible
   (independent-set) subspace — no penalties needed,
3. the complete MBQC formulation: the MIS-QAOA circuit compiled to a
   measurement pattern, sampled, with every sample an independent set.

Run:  python examples/mis_hard_constraints.py
"""

import numpy as np

from repro.core.mis import mis_mixer_circuit, mis_qaoa_pattern
from repro.linalg import proportionality_factor
from repro.mbqc import run_pattern
from repro.problems import MaximumIndependentSet
from repro.qaoa import qaoa_state_constrained_mis
from repro.qaoa.simulator import basis_state
from repro.utils import int_to_bitstring
from repro.zx import diagram_matrix
from repro.zx.zh import mis_partial_mixer_diagram


def main() -> None:
    mis = MaximumIndependentSet(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    print(f"MIS on C_5: optimum independent set size = "
          f"{mis.maximum_independent_set_size()}")

    # 1. The ZH partial mixer (Section IV's diagram) vs its circuit form.
    beta = 0.55
    zh = diagram_matrix(mis_partial_mixer_diagram(2, beta))
    circ = mis_mixer_circuit(3, 2, [0, 1], beta)
    match = proportionality_factor(zh, circ.unitary(), atol=1e-8) is not None
    print(f"\nZH H-box diagram == exact circuit decomposition: {match}")
    print(f"  circuit cost for one degree-2 partial mixer: {len(circ)} gates, "
          f"{circ.count_entangling()} entangling")

    # 2. Feasibility is preserved for any parameters.
    warm = mis.greedy_independent_set(seed=3)
    print(f"\nClassical warm start (greedy): {warm} "
          f"(size {sum(warm)}, independent: {mis.is_independent(warm)})")
    rng = np.random.default_rng(1)
    mask = mis.feasibility_mask()
    sizes = mis.size_vector()
    for trial in range(3):
        gammas = rng.uniform(-np.pi, np.pi, 2)
        betas = rng.uniform(-np.pi, np.pi, 2)
        psi = qaoa_state_constrained_mis(mis, gammas, betas, basis_state(warm))
        leak = float(np.sum(np.abs(psi[~mask]) ** 2))
        exp_size = float(np.abs(psi) ** 2 @ sizes)
        print(f"  random params #{trial}: infeasible mass = {leak:.2e}, "
              f"<|IS|> = {exp_size:.3f}")

    # 3. The complete MBQC pipeline on a smaller instance.
    small = MaximumIndependentSet(3, [(0, 1), (1, 2)])
    pattern = mis_qaoa_pattern(small, [0.7], [0.5], warm_start=[1, 0, 1])
    print(f"\nMBQC MIS-QAOA pattern (path P_3, p=1): "
          f"{pattern.num_nodes()} nodes, {len(pattern.measured_nodes())} measurements")
    feasible_samples = 0
    shots = 64
    for shot in range(shots):
        res = run_pattern(pattern, seed=shot)
        probs = np.abs(res.state_array()) ** 2
        x = int(np.random.default_rng(shot).choice(probs.size, p=probs / probs.sum()))
        if small.is_independent(int_to_bitstring(x, 3)):
            feasible_samples += 1
    print(f"Samples that are independent sets: {feasible_samples}/{shots} "
          f"(hard constraints: always feasible)")


if __name__ == "__main__":
    main()
