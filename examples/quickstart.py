#!/usr/bin/env python
"""Quickstart: MaxCut QAOA as a measurement-based protocol.

Compiles QAOA for a 5-vertex ring into a measurement pattern (the paper's
Section III construction), runs it on the simulator, cross-checks against
gate-model QAOA, and samples cut solutions.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import compile_qaoa_pattern, estimate_resources
from repro.mbqc import run_pattern
from repro.problems import MaxCut
from repro.qaoa import grid_search_p1, qaoa_state
from repro.utils import int_to_bitstring


def main() -> None:
    # 1. A problem: MaxCut on the 5-ring.
    problem = MaxCut.ring(5)
    qubo = problem.to_qubo()
    print(f"MaxCut on C_5: {problem.num_vertices} vertices, {len(problem.edges)} edges, "
          f"optimum cut = {problem.max_cut_value():.0f}")

    # 2. Find good QAOA_1 parameters with the gate-model fast simulator.
    cost = qubo.cost_vector()
    res = grid_search_p1(cost, resolution=24)
    gamma, beta = float(res.gammas[0]), float(res.betas[0])
    print(f"QAOA_1 grid search: gamma={gamma:+.3f}, beta={beta:+.3f}, "
          f"<cut> = {-res.expectation:.3f}")

    # 3. Compile into a measurement pattern (Section III of the paper).
    compiled = compile_qaoa_pattern(qubo, [gamma], [beta])
    rep = estimate_resources(compiled)
    print(f"\nMBQC protocol: {compiled.num_nodes()} graph-state qubits, "
          f"{compiled.num_entanglers()} CZ edges, "
          f"{len(compiled.pattern.measured_nodes())} measurements")
    print(f"Paper bounds (Sec III.A): N_Q <= {rep.bound_ancilla_qubits} ancillas, "
          f"N_E <= {rep.bound_entanglers}; gate model: {rep.gate_model_qubits} qubits, "
          f"{rep.gate_model_entanglers} entangling gates")

    # 4. Run the pattern (adaptive measurements, random outcomes) and
    #    compare with the gate-model QAOA state.
    result = run_pattern(compiled.pattern, seed=7)
    mbqc_state = result.state_array()
    gate_state = qaoa_state(qubo.to_ising().energy_vector(), [gamma], [beta])
    overlap = abs(np.vdot(mbqc_state, gate_state))
    print(f"\n|<MBQC|gate-model>| = {overlap:.12f}  (determinism: same state "
          f"regardless of the {len(result.outcomes)} random outcomes)")

    # 5. Sample solutions from the MBQC output state.
    probs = np.abs(mbqc_state) ** 2
    rng = np.random.default_rng(0)
    samples = rng.choice(probs.size, size=512, p=probs / probs.sum())
    cuts = np.array([problem.cut_value(int_to_bitstring(int(s), 5)) for s in samples])
    best = int(samples[np.argmax(cuts)])
    print(f"\n512 samples: <cut> = {cuts.mean():.3f}, best = {cuts.max():.0f} "
          f"at x = {int_to_bitstring(best, 5)} "
          f"(approximation ratio {cuts.mean() / problem.max_cut_value():.3f})")


if __name__ == "__main__":
    main()
