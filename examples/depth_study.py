#!/usr/bin/env python
"""Depth study: QAOA quality vs p, and what it costs in MBQC resources.

Couples the Section II.C performance claim ("performance generally improves
with increasing number of layers p") with the Section III.A resource bill:
for each depth, the optimized approximation ratio, the measurement-pattern
size, and the live-register size with qubit reuse.

Run:  python examples/depth_study.py
"""

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.core.reuse import peak_live_qubits
from repro.problems import MaxCut
from repro.qaoa import optimize_qaoa


def main() -> None:
    problem = MaxCut.random_regular(3, 8, seed=21)
    qubo = problem.to_qubo()
    cost = qubo.cost_vector()
    best_cut = problem.max_cut_value()
    print(f"MaxCut, 3-regular graph on 8 vertices, optimum = {best_cut:.0f}\n")
    print(f"{'p':>2} {'ratio':>7} {'<cut>':>7} {'nodes':>6} {'CZs':>5} {'peak live':>9} {'nfev':>6}")

    warm = None
    for p in (1, 2, 3, 4):
        res = optimize_qaoa(cost, p=p, restarts=6, seed=p, warm_start=warm, maxiter=600)
        warm = (res.gammas, res.betas)
        compiled = compile_qaoa_pattern(qubo, res.gammas, res.betas)
        ratio = -res.expectation / best_cut
        print(
            f"{p:>2} {ratio:>7.4f} {-res.expectation:>7.3f} "
            f"{compiled.num_nodes():>6} {compiled.num_entanglers():>5} "
            f"{peak_live_qubits(compiled.pattern):>9} {res.nfev:>6}"
        )

    print(
        "\nReading: the approximation ratio climbs with p while the live\n"
        "register (with measurement-and-reuse, ref. [51]) stays at |V|+1 —\n"
        "depth costs pattern *length*, not register width."
    )


if __name__ == "__main__":
    main()
