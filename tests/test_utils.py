"""Tests for repro.utils: bits, graphs, rng."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    bit_parity,
    bitstring_to_int,
    complete_graph,
    cycle_graph,
    ensure_rng,
    erdos_renyi_graph,
    grid_graph,
    hamming_weight,
    int_to_bitstring,
    iter_bitstrings,
    normalize_edges,
    path_graph,
    popcount_vector,
    random_regular_graph,
    random_weighted_graph,
    star_graph,
)


class TestBits:
    def test_roundtrip(self):
        for n in range(1, 6):
            for x in range(1 << n):
                assert bitstring_to_int(int_to_bitstring(x, n)) == x

    def test_little_endian(self):
        assert int_to_bitstring(1, 3) == (1, 0, 0)
        assert bitstring_to_int((0, 0, 1)) == 4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_bitstring(8, 3)
        with pytest.raises(ValueError):
            int_to_bitstring(-1, 3)
        with pytest.raises(ValueError):
            bitstring_to_int((0, 2))

    def test_iter_bitstrings(self):
        all_bs = list(iter_bitstrings(2))
        assert all_bs == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_hamming_and_parity(self):
        assert hamming_weight(7) == 3
        assert bit_parity(7) == 1
        assert bit_parity(5) == 0
        with pytest.raises(ValueError):
            hamming_weight(-1)

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_popcount_vector(self, n):
        w = popcount_vector(n)
        assert w.shape == (1 << n,)
        assert all(w[x] == hamming_weight(x) for x in range(1 << n))


class TestGraphs:
    def test_normalize_edges(self):
        assert normalize_edges([(2, 1), (1, 2), (0, 3)]) == [(1, 2), (0, 3)]
        with pytest.raises(ValueError):
            normalize_edges([(1, 1)])

    def test_path(self):
        n, e = path_graph(4)
        assert n == 4 and e == [(0, 1), (1, 2), (2, 3)]

    def test_cycle(self):
        n, e = cycle_graph(4)
        assert n == 4 and len(e) == 4
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        n, e = complete_graph(5)
        assert len(e) == 10

    def test_star(self):
        n, e = star_graph(5)
        assert len(e) == 4 and all(u == 0 for u, _ in e)

    def test_grid(self):
        n, e = grid_graph(2, 3)
        assert n == 6 and len(e) == 7  # 2*2 vertical + 3 horizontal? -> 4+3

    def test_grid_degree_bound(self):
        n, e = grid_graph(3, 3)
        deg = {}
        for u, v in e:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        assert max(deg.values()) <= 4

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi_graph(10, 0.5, seed=3)
        b = erdos_renyi_graph(10, 0.5, seed=3)
        assert a == b
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)

    def test_regular_graph_degrees(self):
        n, e = random_regular_graph(3, 8, seed=1)
        deg = {v: 0 for v in range(n)}
        for u, v in e:
            deg[u] += 1
            deg[v] += 1
        assert all(d == 3 for d in deg.values())

    def test_weighted_graph(self):
        n, edges, w = random_weighted_graph(8, 0.5, seed=2)
        assert set(w) == set(edges)
        assert all(-1 <= x < 1 for x in w.values())


class TestRng:
    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_seed(self):
        a = ensure_rng(5).random()
        b = ensure_rng(5).random()
        assert a == b
