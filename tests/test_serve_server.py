"""Async job server and coalescing mux (`repro.serve`).

The certification claims: a served job's receipt is bit-identical to
the same job run standalone through `run_checkpointed` (the server adds
no randomness); jobs coalesced into one fused `sample_batch` call demux
to exactly the records each would have produced alone (the
`MuxedGenerator` concatenation property); the mux refuses — and the
server falls back to standalone execution — on any draw outside the
whole-block schedule; and every frontend (Python API, stdin-JSON,
socket) reports the same receipts.
"""

import io
import json

import numpy as np
import pytest

from repro.exec import plan_blocks, records_digest, run_checkpointed
from repro.mbqc import get_backend
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import PatternError
from repro.serve import (
    BlockTask,
    JobServer,
    JobSpec,
    MuxedGenerator,
    MuxScheduleError,
    pack_tasks,
    records_sha256,
    request_jobs,
    run_coalesced,
    serve_socket,
    serve_stdin,
)
from repro.serve.jobs import parse_noise
from repro.utils.rng import ensure_rng, spawn_seeds

BASE_JOB = {
    "kind": "run",
    "problem": "ring:6",
    "gammas": [0.4],
    "betas": [0.7],
    "shots": 120,
    "block_shots": 60,
    "noise": 0.02,
    "backend": "statevector",
}


def job(**over):
    return {**BASE_JOB, **over}


def standalone_digest(spec_dict, tmp_path, tag):
    """The receipt the checkpoint layer produces for the same job."""
    spec = JobSpec.from_dict(dict(spec_dict), default_id=tag)
    compiled = __import__(
        "repro.mbqc.compile", fromlist=["compile_pattern"]
    ).compile_pattern(spec.build_pattern())
    result = run_checkpointed(
        compiled,
        spec.shots,
        job_dir=str(tmp_path / f"standalone-{tag}"),
        seed=spec.seed,
        block_shots=spec.block_shots,
        backend=spec.backend if spec.backend != "auto" else "statevector",
        noise=parse_noise(spec_dict.get("noise"), job_id=tag),
    )
    return records_digest(result.run)


class TestMuxedGenerator:
    def test_concat_demux_bit_exact(self):
        sizes = (5, 3, 7)
        seeds = [11, 12, 13]
        parts = [ensure_rng(s) for s in seeds]
        mux = MuxedGenerator(parts, sizes)
        fused = mux.random(sum(sizes))
        refs = [ensure_rng(s).random(n) for s, n in zip(seeds, sizes)]
        assert np.array_equal(fused, np.concatenate(refs))

    def test_integers_demux(self):
        sizes = (4, 6)
        mux = MuxedGenerator([ensure_rng(1), ensure_rng(2)], sizes)
        fused = mux.integers(3, size=10)
        refs = [ensure_rng(1).integers(3, size=4), ensure_rng(2).integers(3, size=6)]
        assert np.array_equal(fused, np.concatenate(refs))

    def test_wrong_size_draw_refused(self):
        mux = MuxedGenerator([ensure_rng(1), ensure_rng(2)], (4, 6))
        with pytest.raises(MuxScheduleError):
            mux.random(7)
        with pytest.raises(MuxScheduleError):
            mux.random()  # scalar draw is never whole-block

    def test_off_schedule_methods_refused(self):
        mux = MuxedGenerator([ensure_rng(1)], (4,))
        with pytest.raises(MuxScheduleError):
            mux.standard_normal(4)
        with pytest.raises(MuxScheduleError):
            mux.shuffle(np.arange(4))

    def test_is_a_generator_for_ensure_rng(self):
        mux = MuxedGenerator([ensure_rng(1)], (4,))
        assert ensure_rng(mux) is mux


class TestPackTasks:
    def _task(self, i, shots):
        return BlockTask(f"j{i}", 0, 0, shots, seed=i)

    def test_greedy_packing(self):
        tasks = [self._task(i, 40) for i in range(5)]
        packs = pack_tasks(tasks, max_batch_shots=100)
        assert [len(p) for p in packs] == [2, 2, 1]
        assert [t.job_id for p in packs for t in p] == [t.job_id for t in tasks]

    def test_oversize_task_gets_own_batch(self):
        tasks = [self._task(0, 500), self._task(1, 10)]
        packs = pack_tasks(tasks, max_batch_shots=100)
        assert [len(p) for p in packs] == [1, 1]


class TestRunCoalesced:
    def test_fused_equals_standalone(self, tmp_path):
        from repro.mbqc.compile import compile_pattern, lower_noise

        spec = JobSpec.from_dict(job(), default_id="a")
        compiled = lower_noise(
            compile_pattern(spec.build_pattern()),
            NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02),
        )
        engine = get_backend("statevector")
        tasks = [
            BlockTask("a", 0, 0, 50, seed=spawn_seeds(np.random.SeedSequence(5), 1)[0]),
            BlockTask("b", 0, 0, 70, seed=spawn_seeds(np.random.SeedSequence(9), 1)[0]),
        ]
        fused = run_coalesced(compiled, engine, tasks)
        for task, outcomes in zip(tasks, fused):
            direct = engine.sample_batch(compiled, task.shots, ensure_rng(task.seed))
            assert np.array_equal(outcomes, direct.outcomes)

    def test_off_schedule_engine_falls_back(self):
        """An engine drawing off-schedule trips MuxScheduleError and the
        coalescer silently reruns each task standalone."""
        from repro.mbqc.compile import compile_pattern

        spec = JobSpec.from_dict(job(), default_id="a")
        compiled = compile_pattern(spec.build_pattern())

        class OffScheduleEngine:
            def __init__(self):
                self.inner = get_backend("statevector")
                self.calls = 0

            def sample_batch(self, compiled, n_shots, rng=None, **kw):
                self.calls += 1
                rng = ensure_rng(rng)
                rng.random()  # scalar draw: violates the whole-block schedule
                return self.inner.sample_batch(compiled, n_shots, rng, **kw)

        engine = OffScheduleEngine()
        tasks = [
            BlockTask("a", 0, 0, 8, seed=3),
            BlockTask("b", 0, 0, 8, seed=4),
        ]
        outs = run_coalesced(compiled, engine, tasks)
        assert engine.calls == 3  # 1 refused fused call + 2 standalone
        for task, outcomes in zip(tasks, outs):
            ref_rng = ensure_rng(task.seed)
            ref_rng.random()
            direct = engine.inner.sample_batch(compiled, task.shots, ref_rng)
            assert np.array_equal(outcomes, direct.outcomes)


class TestJobSpec:
    def test_run_requires_problem_and_angles(self):
        with pytest.raises(PatternError, match="problem"):
            JobSpec.from_dict({"kind": "run", "shots": 8}, default_id="x")
        with pytest.raises(PatternError, match="gammas"):
            JobSpec.from_dict(
                {"kind": "run", "problem": "ring:4", "shots": 8,
                 "gammas": [0.1], "betas": []},
                default_id="x",
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(PatternError, match="kind"):
            JobSpec.from_dict({"kind": "dance", "shots": 8}, default_id="x")

    def test_missing_seed_gets_fresh_entropy(self):
        a = JobSpec.from_dict(job(), default_id="a")
        b = JobSpec.from_dict(job(), default_id="b")
        assert a.seed != b.seed  # vanishingly unlikely to collide

    def test_noise_forms(self):
        assert parse_noise(None, job_id="x") is None
        assert parse_noise(0.0, job_id="x") is None
        model = parse_noise(0.05, job_id="x")
        assert model.p_prep == model.p_ent == model.p_meas == 0.05
        model = parse_noise({"p_prep": 0.1}, job_id="x")
        assert model.p_prep == 0.1 and model.p_ent == 0.0
        with pytest.raises(PatternError):
            parse_noise("lots", job_id="x")


class TestServerReceipts:
    def test_served_equals_standalone_checkpoint(self, tmp_path):
        with JobServer(cache_dir=str(tmp_path / "cache"), executor="inline") as srv:
            spec = job(id="a", seed=7)
            srv.submit(spec)
            result = srv.result("a", timeout=60)
        assert result.records_sha256 == standalone_digest(spec, tmp_path, "a")

    def test_sample_job_with_explicit_pattern(self, tmp_path):
        from repro.mbqc.serialize import pattern_to_dict
        from tests.test_serve_cache import j_chain

        pattern = j_chain([0.3, 0.7])
        with JobServer(executor="inline") as srv:
            srv.submit({
                "kind": "sample", "id": "s", "seed": 3, "shots": 32,
                "block_shots": 16, "pattern": pattern_to_dict(pattern),
                "backend": "statevector",
            })
            result = srv.result("s", timeout=60)
        from repro.mbqc.compile import compile_pattern

        compiled = compile_pattern(pattern)
        engine = get_backend("statevector")
        seeds = spawn_seeds(np.random.SeedSequence(3), 2)
        pieces = [
            engine.sample_batch(compiled, 16, ensure_rng(s)).outcomes
            for s in seeds
        ]
        assert result.records_sha256 == records_sha256(np.concatenate(pieces))

    def test_coalesced_jobs_bit_identical(self, tmp_path):
        """Same-digest jobs submitted while paused fuse into shared
        batches — and still produce their standalone receipts."""
        events = []
        with JobServer(cache_dir=str(tmp_path / "cache"), executor="inline") as srv:
            sub = srv.subscribe()
            srv.pause()
            specs = [job(id="a", seed=7), job(id="b", seed=11)]
            for spec in specs:
                srv.submit(spec)
            srv.resume()
            results = {jid: srv.result(jid, timeout=60) for jid in ("a", "b")}
            while not sub.empty():
                events.append(sub.get())
        blocks = [e for e in events if e.get("event") == "block"]
        assert blocks and all(e["coalesced"] for e in blocks)
        for spec in specs:
            jid = spec["id"]
            assert results[jid].records_sha256 == standalone_digest(
                spec, tmp_path, jid
            )

    def test_no_coalesce_same_receipts(self, tmp_path):
        with JobServer(executor="inline", coalesce=False) as srv:
            sub = srv.subscribe()
            srv.pause()
            srv.submit(job(id="a", seed=7))
            srv.submit(job(id="b", seed=11))
            srv.resume()
            ra = srv.result("a", timeout=60)
            rb = srv.result("b", timeout=60)
            events = []
            while not sub.empty():
                events.append(sub.get())
        blocks = [e for e in events if e.get("event") == "block"]
        assert blocks and not any(e["coalesced"] for e in blocks)
        assert ra.records_sha256 == standalone_digest(job(id="a", seed=7), tmp_path, "a")
        assert rb.records_sha256 == standalone_digest(job(id="b", seed=11), tmp_path, "b")

    def test_receipt_matches_block_plan(self, tmp_path):
        with JobServer(executor="inline") as srv:
            srv.submit(job(id="a", seed=7, shots=130, block_shots=60))
            result = srv.result("a", timeout=60)
        assert result.shots == 130
        assert len(plan_blocks(130, 60)) == 3

    def test_cache_status_reported(self, tmp_path):
        with JobServer(cache_dir=str(tmp_path / "cache"), executor="inline") as srv:
            srv.submit(job(id="a", seed=7))
            srv.submit(job(id="b", seed=11))
            ra = srv.result("a", timeout=60)
            rb = srv.result("b", timeout=60)
        assert ra.cache_status == "miss"
        assert rb.cache_status == "memory-hit"
        assert ra.digest == rb.digest

    def test_thread_pool_executor(self, tmp_path):
        with JobServer(executor="thread", workers=2) as srv:
            srv.submit(job(id="a", seed=7))
            result = srv.result("a", timeout=60)
        assert result.records_sha256 == standalone_digest(
            job(id="a", seed=7), tmp_path, "a"
        )

    def test_verify_job(self):
        with JobServer(executor="inline") as srv:
            srv.submit({"kind": "verify", "id": "v", "problem": "ring:4",
                        "gammas": [0.3], "betas": [0.5]})
            result = srv.result("v", timeout=60)
        assert result.kind == "verify"

    def test_bad_spec_is_error_event_not_crash(self):
        with JobServer(executor="inline") as srv:
            sub = srv.subscribe()
            with pytest.raises(PatternError):
                srv.submit({"kind": "run", "id": "bad", "shots": 8})
            srv.submit(job(id="ok", seed=1))
            srv.result("ok", timeout=60)
            events = []
            while not sub.empty():
                events.append(sub.get())
        assert any(e.get("event") == "done" and e.get("job") == "ok" for e in events)


class TestFrontends:
    def test_stdin_round_trip(self, tmp_path):
        srv = JobServer(executor="inline")
        lines = [
            json.dumps(job(id="a", seed=7)),
            "# a comment line",
            "",
            "this is not json",
            json.dumps({"kind": "run", "id": "bad"}),  # no problem: rejected
            json.dumps(job(id="b", seed=11)),
        ]
        out = io.StringIO()
        failures = serve_stdin(srv, lines, out)
        srv.close()
        assert failures == 2  # bad JSON + bad spec
        events = [json.loads(line) for line in out.getvalue().splitlines()]
        done = {e["job"]: e for e in events if e.get("event") == "done"}
        assert set(done) == {"a", "b"}
        assert done["a"]["records_sha256"] == standalone_digest(
            job(id="a", seed=7), tmp_path, "a"
        )

    def test_socket_round_trip(self, tmp_path):
        srv = JobServer(executor="thread", workers=2)
        tcp = serve_socket(srv)
        host, port = tcp.server_address[:2]
        try:
            events = request_jobs(
                host, port,
                [job(id="a", seed=7), job(id="b", seed=11)],
                timeout=60,
            )
        finally:
            tcp.shutdown()
            srv.close()
        done = {e["job"]: e for e in events if e.get("event") == "done"}
        assert set(done) == {"a", "b"}
        assert done["b"]["records_sha256"] == standalone_digest(
            job(id="b", seed=11), tmp_path, "b"
        )
