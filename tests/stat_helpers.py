"""Shared statistical-certification helpers for the engine test suites.

The E21 certification pattern — a Monte-Carlo trajectory estimator must
agree with an exact reference within ``k`` standard errors — recurs across
the statevector, stabilizer, and density suites.  These helpers make the
check reusable so every engine certifies against the same contract instead
of each suite hand-rolling its own tolerance.
"""

import numpy as np


def sem(samples: np.ndarray, axis=0) -> np.ndarray:
    """Standard error of the mean along ``axis`` (ddof=1)."""
    samples = np.asarray(samples, dtype=float)
    n = samples.shape[axis]
    return samples.std(axis=axis, ddof=1) / np.sqrt(n)


def assert_mean_within_sigma(samples, exact, k=3.0, tol=1e-12, context=None):
    """The scalar certification: ``mean(samples)`` within ``k`` standard
    errors of ``exact`` (``tol`` absorbs the zero-variance case)."""
    samples = np.asarray(samples, dtype=float)
    mean = float(samples.mean())
    bound = k * float(sem(samples)) + tol
    assert abs(mean - exact) <= bound, (
        f"estimator {mean} vs exact {exact}: off by {abs(mean - exact):.3e} "
        f"> {k} standard errors ({bound:.3e})"
        + (f" [{context}]" if context else "")
    )


def assert_rows_within_sigma(rows, exact, k=3.0, tol=1e-9, context=None):
    """The vector certification: per-column means of a ``(shots, m)`` block
    of per-trajectory rows (e.g. ``SampleRun.probability_rows()``) within
    ``k`` standard errors of the exact ``(m,)`` reference, every column."""
    rows = np.asarray(rows, dtype=float)
    exact = np.asarray(exact, dtype=float)
    assert rows.ndim == 2 and rows.shape[1] == exact.shape[0], (
        rows.shape, exact.shape,
    )
    mean = rows.mean(axis=0)
    bound = k * sem(rows) + tol
    off = np.abs(mean - exact)
    bad = np.nonzero(off > bound)[0]
    assert bad.size == 0, (
        f"columns {bad.tolist()} off by more than {k} standard errors: "
        f"estimate {mean[bad]} vs exact {exact[bad]} (bound {bound[bad]})"
        + (f" [{context}]" if context else "")
    )


def assert_bit_marginals_agree(outcomes_a, outcomes_b, k=3.0, tol=1e-12,
                               context=None):
    """Two independent ``(shots, m)`` outcome-bit samples drawn from the
    same distribution: per-bit marginal frequencies must agree within ``k``
    combined (two-sample binomial) standard errors."""
    a = np.asarray(outcomes_a, dtype=float)
    b = np.asarray(outcomes_b, dtype=float)
    assert a.shape[1] == b.shape[1], (a.shape, b.shape)
    pa, pb = a.mean(axis=0), b.mean(axis=0)
    var = pa * (1 - pa) / a.shape[0] + pb * (1 - pb) / b.shape[0]
    bound = k * np.sqrt(var) + tol
    off = np.abs(pa - pb)
    bad = np.nonzero(off > bound)[0]
    assert bad.size == 0, (
        f"bit marginals {bad.tolist()} disagree beyond {k} standard errors: "
        f"{pa[bad]} vs {pb[bad]} (bound {bound[bad]})"
        + (f" [{context}]" if context else "")
    )
