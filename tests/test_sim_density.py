"""Density-matrix simulator: unitary/channel/measurement semantics, and the
exact-channel vs Monte-Carlo-trajectory cross-validation."""

import numpy as np
import pytest

from repro.linalg import CNOT, CZ, HADAMARD, PAULI_X, PAULI_Z, operator_on_qubits, rx, rz
from repro.sim import MeasurementBasis, StateVector
from repro.sim.density import (
    DensityMatrix,
    amplitude_damping_kraus,
    dephasing_kraus,
    depolarizing_kraus,
)
from repro.sim.statevector import KET_0, KET_PLUS


def random_sv(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return StateVector.from_array(v / np.linalg.norm(v))


class TestConstruction:
    def test_zero_state(self):
        dm = DensityMatrix(2)
        m = dm.to_matrix()
        assert np.isclose(m[0, 0], 1.0) and np.isclose(np.trace(m), 1.0)

    def test_from_statevector_roundtrip(self):
        sv = random_sv(3, seed=1)
        dm = DensityMatrix.from_statevector(sv)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()))
        assert dm.purity() == pytest.approx(1.0)

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            DensityMatrix.from_matrix(np.eye(3), 2)

    def test_add_qubit(self):
        dm = DensityMatrix(0)
        dm.add_qubit(KET_0)
        dm.add_qubit(KET_PLUS)
        sv = StateVector(0)
        sv.add_qubit(KET_0)
        sv.add_qubit(KET_PLUS)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()))


class TestUnitaries:
    def test_1q_matches_statevector(self):
        sv = random_sv(3, seed=2)
        dm = DensityMatrix.from_statevector(sv)
        for q, u in [(0, HADAMARD), (2, rz(0.7)), (1, rx(-0.4))]:
            sv.apply_1q(u, q)
            dm.apply_1q(u, q)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-10)

    def test_2q_matches_statevector(self):
        sv = random_sv(3, seed=3)
        dm = DensityMatrix.from_statevector(sv)
        for qs, u in [((0, 1), CNOT), ((2, 0), CZ), ((1, 2), CNOT)]:
            sv.apply_2q(u, *qs)
            dm.apply_2q(u, *qs)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-10)

    def test_trace_preserved(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        assert dm.trace() == pytest.approx(1.0)


class TestChannels:
    def test_kraus_completeness(self):
        for kraus in (depolarizing_kraus(0.3), dephasing_kraus(0.2), amplitude_damping_kraus(0.4)):
            acc = sum(k.conj().T @ k for k in kraus)
            assert np.allclose(acc, np.eye(2))

    def test_probability_validation(self):
        for f in (depolarizing_kraus, dephasing_kraus, amplitude_damping_kraus):
            with pytest.raises(ValueError):
                f(1.5)

    def test_full_depolarizing_gives_maximally_mixed(self):
        dm = DensityMatrix(1)
        dm.apply_1q(HADAMARD, 0)
        # p=3/4 single-qubit depolarizing is the fully-depolarizing channel.
        dm.apply_kraus(depolarizing_kraus(0.75), 0)
        assert np.allclose(dm.to_matrix(), np.eye(2) / 2, atol=1e-10)

    def test_dephasing_kills_coherence(self):
        dm = DensityMatrix(1)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_kraus(dephasing_kraus(0.5), 0)
        m = dm.to_matrix()
        assert np.isclose(m[0, 1], 0.0)
        assert np.isclose(m[0, 0], 0.5)

    def test_amplitude_damping_decays_excited(self):
        dm = DensityMatrix(1)
        dm.apply_1q(PAULI_X, 0)  # |1>
        dm.apply_kraus(amplitude_damping_kraus(0.3), 0)
        m = dm.to_matrix()
        assert m[1, 1] == pytest.approx(0.7)
        assert m[0, 0] == pytest.approx(0.3)

    def test_channel_on_entangled_state(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        dm.apply_kraus(dephasing_kraus(1.0), 0)  # Z on qubit 0 (coherent)
        # Z⊗I on a Bell state gives |Φ->: still pure.
        assert dm.purity() == pytest.approx(1.0)
        v = np.array([1, 0, 0, -1]) / np.sqrt(2)
        assert dm.fidelity_with_pure(v) == pytest.approx(1.0)

    def test_exact_channel_equals_trajectory_average(self):
        """The E15 validation: Monte-Carlo Pauli insertion averages to the
        exact depolarizing channel."""
        p = 0.3
        base = random_sv(2, seed=5)
        exact = DensityMatrix.from_statevector(base)
        exact.apply_kraus(depolarizing_kraus(p), 0)

        rng = np.random.default_rng(7)
        acc = np.zeros((4, 4), dtype=complex)
        trials = 4000
        paulis = [PAULI_X, np.array([[0, -1j], [1j, 0]]), PAULI_Z]
        for _ in range(trials):
            sv = base.copy()
            if rng.random() < p:
                sv.apply_1q(paulis[int(rng.integers(3))], 0)
            v = sv.to_array()
            acc += np.outer(v, v.conj())
        acc /= trials
        assert np.allclose(acc, exact.to_matrix(), atol=0.03)


class TestKrausValidation:
    def test_non_trace_preserving_rejected(self):
        dm = DensityMatrix(1)
        with pytest.raises(ValueError, match="not trace-preserving"):
            dm.apply_kraus([0.5 * np.eye(2, dtype=complex)], 0)

    def test_offending_operator_named(self):
        dm = DensityMatrix(2)
        with pytest.raises(ValueError, match="operator 1"):
            dm.apply_kraus([np.eye(2, dtype=complex), np.zeros((2, 3))], 0)

    def test_check_false_skips_validation(self):
        dm = DensityMatrix(1)
        dm.apply_kraus([0.5 * np.eye(2, dtype=complex)], 0, check=False)
        assert dm.trace() == pytest.approx(0.25)

    def test_arity_mismatch_rejected(self):
        dm = DensityMatrix(2)
        with pytest.raises(ValueError, match="targets"):
            dm.apply_kraus([np.eye(4, dtype=complex)], 0)
        with pytest.raises(ValueError, match="duplicate"):
            dm.apply_kraus([np.eye(4, dtype=complex)], (0, 0))


class TestMultiQubitKraus:
    def test_two_qubit_unitary_kraus_matches_apply_2q(self):
        sv = random_sv(3, seed=11)
        a = DensityMatrix.from_statevector(sv)
        b = DensityMatrix.from_statevector(sv)
        a.apply_2q(CNOT, 2, 0)
        b.apply_kraus([CNOT], (2, 0))
        assert np.allclose(a.to_matrix(), b.to_matrix(), atol=1e-10)

    def test_two_qubit_mixture(self):
        """Correlated two-qubit dephasing: Z⊗Z w.p. p."""
        p = 0.25
        zz = np.kron(np.diag([1, -1]), np.diag([1, -1])).astype(complex)
        kraus = [np.sqrt(1 - p) * np.eye(4, dtype=complex), np.sqrt(p) * zz]
        sv = random_sv(2, seed=12)
        exact = DensityMatrix.from_statevector(sv)
        exact.apply_kraus(kraus, (0, 1))
        v = sv.to_array()
        rho = np.outer(v, v.conj())
        zz_le = np.kron(np.diag([1, -1]), np.diag([1, -1]))  # q1 ⊗ q0
        expect = (1 - p) * rho + p * (zz_le @ rho @ zz_le)
        assert np.allclose(exact.to_matrix(), expect, atol=1e-10)


class TestRegisterDynamics:
    def test_add_qubit_at_position(self):
        dm = DensityMatrix(0)
        dm.add_qubit(KET_0)          # qubit A at 0
        dm.add_qubit(KET_PLUS, position=0)  # qubit B inserted before A
        sv = StateVector(0)
        sv.add_qubit(KET_PLUS)       # B first (little-endian qubit 0)
        sv.add_qubit(KET_0)          # A second
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-12)

    def test_permute_matches_statevector_reorder(self):
        sv = random_sv(3, seed=13)
        dm = DensityMatrix.from_statevector(sv)
        order = [2, 0, 1]
        dm.permute(order)
        v = sv.to_array().reshape((2, 2, 2)).transpose(2, 1, 0)
        v = v.transpose(order).transpose(2, 1, 0).reshape(-1)
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-12)

    def test_permute_validates(self):
        dm = DensityMatrix(2)
        with pytest.raises(ValueError):
            dm.permute([0, 0])

    def test_partial_trace_bell_gives_mixed(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        dm.partial_trace(0)
        assert dm.num_qubits == 1
        assert np.allclose(dm.to_matrix(), np.eye(2) / 2, atol=1e-12)

    def test_partial_trace_product_leaves_rest(self):
        dm = DensityMatrix(0)
        dm.add_qubit(KET_PLUS)
        dm.add_qubit(KET_0)
        dm.partial_trace(1)
        assert np.allclose(dm.to_matrix(), np.full((2, 2), 0.5), atol=1e-12)


class TestMeasureProject:
    def test_outcomes_sum_to_dephased_state(self):
        sv = random_sv(2, seed=14)
        dm = DensityMatrix.from_statevector(sv)
        basis = MeasurementBasis.xy(0.8)
        dm0, p0 = dm.measure_project(0, basis, 0, remove=False)
        dm1, p1 = dm.measure_project(0, basis, 1, remove=False)
        assert p0 + p1 == pytest.approx(1.0)
        # Unnormalized branch sum = measurement-dephased parent state.
        both = dm0.to_matrix() + dm1.to_matrix()
        assert np.trace(both) == pytest.approx(1.0)
        # Parent untouched (non-mutating).
        assert dm.purity() == pytest.approx(1.0)

    def test_agrees_with_statevector_probability(self):
        sv = random_sv(3, seed=15)
        dm = DensityMatrix.from_statevector(sv)
        basis = MeasurementBasis.xz(0.4)
        _, p_sv = sv.copy().measure(1, basis, force=0)
        _, p_dm = dm.measure_project(1, basis, 0)
        assert p_dm == pytest.approx(p_sv)

    def test_remove_drops_register(self):
        dm = DensityMatrix(2)
        out, p = dm.measure_project(0, MeasurementBasis.pauli("Z"), 0)
        assert out.num_qubits == 1 and p == pytest.approx(1.0)


class TestMeasurement:
    def test_z_measurement_statistics(self):
        dm = DensityMatrix(1)
        dm.apply_1q(rx(2 * np.arcsin(np.sqrt(0.3))), 0)
        out, p = dm.measure(0, MeasurementBasis.pauli("Z"), force=1)
        assert p == pytest.approx(0.3)
        assert dm.num_qubits == 0

    def test_measure_keep(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        out, p = dm.measure(0, MeasurementBasis.pauli("Z"), force=0, remove=False)
        assert p == pytest.approx(0.5)
        m = dm.to_matrix()
        assert np.isclose(m[0, 0], 1.0)  # collapsed to |00>

    def test_measure_removes_and_renormalizes(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        dm.measure(0, MeasurementBasis.pauli("Z"), force=1)
        m = dm.to_matrix()
        assert np.isclose(m[1, 1], 1.0)  # remaining qubit in |1>
        assert dm.trace() == pytest.approx(1.0)

    def test_forced_zero_prob(self):
        dm = DensityMatrix(1)
        with pytest.raises(ValueError):
            dm.measure(0, MeasurementBasis.pauli("Z"), force=1)

    def test_measurement_agrees_with_statevector(self):
        sv = random_sv(3, seed=8)
        dm = DensityMatrix.from_statevector(sv)
        out_sv, p_sv = sv.copy().measure(1, MeasurementBasis.xy(0.4), force=0)
        out_dm, p_dm = dm.measure(1, MeasurementBasis.xy(0.4), force=0)
        assert p_dm == pytest.approx(p_sv)

    def test_near_zero_branch_renormalizes(self):
        """Forcing an outcome with tiny-but-nonzero probability must
        return a unit-trace post-state, not an underflowed one."""
        eps = 1e-5
        amp = np.array([np.sqrt(1 - eps**2), eps], dtype=complex)
        dm = DensityMatrix.from_pure(amp)
        out, p = dm.measure(0, MeasurementBasis.pauli("Z"), force=1, remove=False)
        assert out == 1
        assert p == pytest.approx(eps**2, rel=1e-6)
        assert dm.trace() == pytest.approx(1.0, abs=1e-9)
        assert np.isclose(dm.to_matrix()[1, 1], 1.0)

    def test_truly_zero_branch_raises(self):
        dm = DensityMatrix.from_pure(np.array([1.0, 0.0], dtype=complex))
        with pytest.raises(ValueError):
            dm.measure(0, MeasurementBasis.pauli("Z"), force=1)
