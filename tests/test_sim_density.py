"""Density-matrix simulator: unitary/channel/measurement semantics, and the
exact-channel vs Monte-Carlo-trajectory cross-validation."""

import numpy as np
import pytest

from repro.linalg import CNOT, CZ, HADAMARD, PAULI_X, PAULI_Z, operator_on_qubits, rx, rz
from repro.sim import MeasurementBasis, StateVector
from repro.sim.density import (
    DensityMatrix,
    amplitude_damping_kraus,
    dephasing_kraus,
    depolarizing_kraus,
)
from repro.sim.statevector import KET_0, KET_PLUS


def random_sv(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return StateVector.from_array(v / np.linalg.norm(v))


class TestConstruction:
    def test_zero_state(self):
        dm = DensityMatrix(2)
        m = dm.to_matrix()
        assert np.isclose(m[0, 0], 1.0) and np.isclose(np.trace(m), 1.0)

    def test_from_statevector_roundtrip(self):
        sv = random_sv(3, seed=1)
        dm = DensityMatrix.from_statevector(sv)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()))
        assert dm.purity() == pytest.approx(1.0)

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            DensityMatrix.from_matrix(np.eye(3), 2)

    def test_add_qubit(self):
        dm = DensityMatrix(0)
        dm.add_qubit(KET_0)
        dm.add_qubit(KET_PLUS)
        sv = StateVector(0)
        sv.add_qubit(KET_0)
        sv.add_qubit(KET_PLUS)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()))


class TestUnitaries:
    def test_1q_matches_statevector(self):
        sv = random_sv(3, seed=2)
        dm = DensityMatrix.from_statevector(sv)
        for q, u in [(0, HADAMARD), (2, rz(0.7)), (1, rx(-0.4))]:
            sv.apply_1q(u, q)
            dm.apply_1q(u, q)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-10)

    def test_2q_matches_statevector(self):
        sv = random_sv(3, seed=3)
        dm = DensityMatrix.from_statevector(sv)
        for qs, u in [((0, 1), CNOT), ((2, 0), CZ), ((1, 2), CNOT)]:
            sv.apply_2q(u, *qs)
            dm.apply_2q(u, *qs)
        v = sv.to_array()
        assert np.allclose(dm.to_matrix(), np.outer(v, v.conj()), atol=1e-10)

    def test_trace_preserved(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        assert dm.trace() == pytest.approx(1.0)


class TestChannels:
    def test_kraus_completeness(self):
        for kraus in (depolarizing_kraus(0.3), dephasing_kraus(0.2), amplitude_damping_kraus(0.4)):
            acc = sum(k.conj().T @ k for k in kraus)
            assert np.allclose(acc, np.eye(2))

    def test_probability_validation(self):
        for f in (depolarizing_kraus, dephasing_kraus, amplitude_damping_kraus):
            with pytest.raises(ValueError):
                f(1.5)

    def test_full_depolarizing_gives_maximally_mixed(self):
        dm = DensityMatrix(1)
        dm.apply_1q(HADAMARD, 0)
        # p=3/4 single-qubit depolarizing is the fully-depolarizing channel.
        dm.apply_kraus(depolarizing_kraus(0.75), 0)
        assert np.allclose(dm.to_matrix(), np.eye(2) / 2, atol=1e-10)

    def test_dephasing_kills_coherence(self):
        dm = DensityMatrix(1)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_kraus(dephasing_kraus(0.5), 0)
        m = dm.to_matrix()
        assert np.isclose(m[0, 1], 0.0)
        assert np.isclose(m[0, 0], 0.5)

    def test_amplitude_damping_decays_excited(self):
        dm = DensityMatrix(1)
        dm.apply_1q(PAULI_X, 0)  # |1>
        dm.apply_kraus(amplitude_damping_kraus(0.3), 0)
        m = dm.to_matrix()
        assert m[1, 1] == pytest.approx(0.7)
        assert m[0, 0] == pytest.approx(0.3)

    def test_channel_on_entangled_state(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        dm.apply_kraus(dephasing_kraus(1.0), 0)  # Z on qubit 0 (coherent)
        # Z⊗I on a Bell state gives |Φ->: still pure.
        assert dm.purity() == pytest.approx(1.0)
        v = np.array([1, 0, 0, -1]) / np.sqrt(2)
        assert dm.fidelity_with_pure(v) == pytest.approx(1.0)

    def test_exact_channel_equals_trajectory_average(self):
        """The E15 validation: Monte-Carlo Pauli insertion averages to the
        exact depolarizing channel."""
        p = 0.3
        base = random_sv(2, seed=5)
        exact = DensityMatrix.from_statevector(base)
        exact.apply_kraus(depolarizing_kraus(p), 0)

        rng = np.random.default_rng(7)
        acc = np.zeros((4, 4), dtype=complex)
        trials = 4000
        paulis = [PAULI_X, np.array([[0, -1j], [1j, 0]]), PAULI_Z]
        for _ in range(trials):
            sv = base.copy()
            if rng.random() < p:
                sv.apply_1q(paulis[int(rng.integers(3))], 0)
            v = sv.to_array()
            acc += np.outer(v, v.conj())
        acc /= trials
        assert np.allclose(acc, exact.to_matrix(), atol=0.03)


class TestMeasurement:
    def test_z_measurement_statistics(self):
        dm = DensityMatrix(1)
        dm.apply_1q(rx(2 * np.arcsin(np.sqrt(0.3))), 0)
        out, p = dm.measure(0, MeasurementBasis.pauli("Z"), force=1)
        assert p == pytest.approx(0.3)
        assert dm.num_qubits == 0

    def test_measure_keep(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        out, p = dm.measure(0, MeasurementBasis.pauli("Z"), force=0, remove=False)
        assert p == pytest.approx(0.5)
        m = dm.to_matrix()
        assert np.isclose(m[0, 0], 1.0)  # collapsed to |00>

    def test_measure_removes_and_renormalizes(self):
        dm = DensityMatrix(2)
        dm.apply_1q(HADAMARD, 0)
        dm.apply_2q(CNOT, 0, 1)
        dm.measure(0, MeasurementBasis.pauli("Z"), force=1)
        m = dm.to_matrix()
        assert np.isclose(m[1, 1], 1.0)  # remaining qubit in |1>
        assert dm.trace() == pytest.approx(1.0)

    def test_forced_zero_prob(self):
        dm = DensityMatrix(1)
        with pytest.raises(ValueError):
            dm.measure(0, MeasurementBasis.pauli("Z"), force=1)

    def test_measurement_agrees_with_statevector(self):
        sv = random_sv(3, seed=8)
        dm = DensityMatrix.from_statevector(sv)
        out_sv, p_sv = sv.copy().measure(1, MeasurementBasis.xy(0.4), force=0)
        out_dm, p_dm = dm.measure(1, MeasurementBasis.xy(0.4), force=0)
        assert p_dm == pytest.approx(p_sv)
