"""Unit + property tests for :class:`repro.sim.BatchedStateVector`.

Every batched operation must act on each batch element exactly as the
scalar :class:`StateVector` does — the batched engine's correctness reduces
to this lockstep equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import HADAMARD, rx, rz
from repro.sim import BatchedStateVector, MeasurementBasis, StateVector, ZeroProbabilityBranch
from repro.sim.statevector import KET_MINUS, KET_PLUS


def random_block(b, n, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(b, 1 << n)) + 1j * rng.normal(size=(b, 1 << n))
    return m / np.linalg.norm(m, axis=1, keepdims=True)


class TestConstruction:
    def test_default_is_zeros(self):
        bsv = BatchedStateVector(3, 2)
        arrs = bsv.to_arrays()
        assert arrs.shape == (3, 4)
        assert np.allclose(arrs, [[1, 0, 0, 0]] * 3)

    def test_from_arrays_roundtrip(self):
        block = random_block(5, 3, seed=1)
        assert np.allclose(BatchedStateVector.from_arrays(block).to_arrays(), block)

    def test_from_arrays_matches_scalar_convention(self):
        block = random_block(4, 2, seed=2)
        bsv = BatchedStateVector.from_arrays(block)
        for j in range(4):
            sv = StateVector.from_array(block[j])
            assert np.allclose(bsv._t[j], sv._t)

    def test_zero_qubit_batch(self):
        bsv = BatchedStateVector.from_arrays(np.array([[2.0], [3.0j]]))
        assert bsv.num_qubits == 0
        assert np.allclose(bsv.to_arrays(), [[2.0], [3.0j]])

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            BatchedStateVector.from_arrays(np.ones(4))
        with pytest.raises(ValueError):
            BatchedStateVector.from_arrays(np.ones((2, 3)))
        with pytest.raises(ValueError):
            BatchedStateVector(0, 1)
        with pytest.raises(ValueError):
            BatchedStateVector(2, -1)


class TestLockstepEquivalence:
    """Batched ops == per-element scalar ops."""

    def scalars(self, block):
        return [StateVector.from_array(row) for row in block]

    def test_add_qubit(self):
        block = random_block(3, 2, seed=3)
        bsv = BatchedStateVector.from_arrays(block)
        slot = bsv.add_qubit(KET_MINUS)
        assert slot == 2
        for j, sv in enumerate(self.scalars(block)):
            sv.add_qubit(KET_MINUS)
            assert np.allclose(bsv.to_arrays()[j], sv.to_array(), atol=1e-12)

    @pytest.mark.parametrize("q", [0, 1, 2])
    def test_apply_1q(self, q):
        block = random_block(4, 3, seed=4)
        bsv = BatchedStateVector.from_arrays(block)
        gate = rx(0.7) @ rz(-1.2)
        bsv.apply_1q(gate, q)
        for j, sv in enumerate(self.scalars(block)):
            sv.apply_1q(gate, q)
            assert np.allclose(bsv.to_arrays()[j], sv.to_array(), atol=1e-12)

    @pytest.mark.parametrize("q0,q1", [(0, 1), (2, 0), (1, 2)])
    def test_apply_cz(self, q0, q1):
        block = random_block(2, 3, seed=5)
        bsv = BatchedStateVector.from_arrays(block)
        bsv.apply_cz(q0, q1)
        for j, sv in enumerate(self.scalars(block)):
            sv.apply_cz(q0, q1)
            assert np.allclose(bsv.to_arrays()[j], sv.to_array(), atol=1e-12)

    def test_measure_forced_matches_scalar(self):
        block = random_block(4, 3, seed=6)
        basis = MeasurementBasis.xy(0.9)
        bsv = BatchedStateVector.from_arrays(block)
        probs = bsv.measure_forced(1, basis, 0)
        for j, sv in enumerate(self.scalars(block)):
            out, prob = sv.measure(1, basis, force=0, remove=True, renormalize=False)
            assert np.isclose(probs[j], prob, atol=1e-12)
            assert np.allclose(bsv.to_arrays()[j], sv.to_array(), atol=1e-12)

    def test_measure_forced_renormalize(self):
        block = random_block(3, 2, seed=7)
        bsv = BatchedStateVector.from_arrays(block)
        bsv.measure_forced(0, MeasurementBasis.xy(0.0), 1, renormalize=True)
        assert np.allclose(bsv.sq_norms(), 1.0, atol=1e-12)

    def test_measure_forced_zero_probability_raises(self):
        # Element 1 is |0>, so forcing Z-outcome 1 must raise for the batch.
        block = np.array([[1, 1], [np.sqrt(2), 0]]) / np.sqrt(2)
        bsv = BatchedStateVector.from_arrays(block.astype(complex))
        with pytest.raises(ZeroProbabilityBranch):
            bsv.measure_forced(0, MeasurementBasis.pauli("Z"), 1)

    def test_measure_zero_norm_raises(self):
        block = np.zeros((2, 2), dtype=complex)
        block[0, 0] = 1.0
        bsv = BatchedStateVector.from_arrays(block)
        with pytest.raises(ValueError, match="zero-norm"):
            bsv.measure_forced(0, MeasurementBasis.pauli("Z"), 0)

    def test_permute(self):
        order = [2, 0, 1]  # new qubit j carries old qubit order[j]
        block = random_block(2, 3, seed=8)
        bsv = BatchedStateVector.from_arrays(block)
        bsv.permute(order)
        got = bsv.to_arrays()
        for j in range(2):
            for y in range(8):
                bits = [(y >> i) & 1 for i in range(3)]
                x = [0, 0, 0]
                for new_q, old_q in enumerate(order):
                    x[old_q] = bits[new_q]
                old_index = x[0] | (x[1] << 1) | (x[2] << 2)
                assert np.isclose(got[j, y], block[j, old_index], atol=1e-12)

    def test_permute_rejects_non_permutation(self):
        bsv = BatchedStateVector(1, 2)
        with pytest.raises(ValueError):
            bsv.permute([0, 0])

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_norms_invariant_under_unitaries(self, b, seed):
        block = random_block(b, 2, seed=seed) * 0.7  # unnormalized on purpose
        bsv = BatchedStateVector.from_arrays(block)
        bsv.apply_1q(HADAMARD, 0)
        bsv.apply_cz(0, 1)
        assert np.allclose(bsv.sq_norms(), 0.49, atol=1e-12)
