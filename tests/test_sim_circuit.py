"""Tests for the circuit IR: gate validation, execution, accounting."""

import numpy as np
import pytest

from repro.linalg import (
    CNOT,
    CZ,
    HADAMARD,
    allclose_up_to_global_phase,
    controlled,
    operator_on_qubits,
    rx,
    rz,
)
from repro.sim import Circuit, Gate, StateVector


class TestGate:
    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            Gate("frobnicate", (0,))

    def test_arity_check(self):
        with pytest.raises(ValueError):
            Gate("h", (0, 1))
        with pytest.raises(ValueError):
            Gate("cz", (0,))

    def test_param_check(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))
        with pytest.raises(ValueError):
            Gate("h", (0,), (0.3,))

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Gate("cz", (1, 1))

    def test_matrix_fixed(self):
        assert np.allclose(Gate("cnot", (0, 1)).matrix(), CNOT)
        assert np.allclose(Gate("rz", (0,), (0.5,)).matrix(), rz(0.5))

    def test_matrix_variadic(self):
        g = Gate("mcrx", (0, 1, 2), (0.7,))
        assert np.allclose(g.matrix(), controlled(rx(0.7), 2))

    def test_mcx_needs_control(self):
        with pytest.raises(ValueError):
            Gate("mcx", (0,))

    def test_dagger(self):
        assert Gate("rz", (0,), (0.5,)).dagger() == Gate("rz", (0,), (-0.5,))
        assert Gate("s", (0,)).dagger() == Gate("sdg", (0,))
        assert Gate("h", (0,)).dagger() == Gate("h", (0,))
        with pytest.raises(ValueError):
            Gate("j", (0,), (0.1,)).dagger()

    def test_entangling_flag(self):
        assert Gate("cz", (0, 1)).is_entangling()
        assert not Gate("h", (0,)).is_entangling()


class TestCircuit:
    def test_register_bounds(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.h(2)

    def test_bell_circuit(self):
        c = Circuit(2).h(0).cnot(0, 1)
        out = c.run().to_array()
        assert np.allclose(out, np.array([1, 0, 0, 1]) / np.sqrt(2))

    def test_unitary_matches_run(self):
        c = Circuit(3).h(0).cz(0, 1).rx(2, 0.4).cnot(2, 0).rz(1, -0.9)
        u = c.unitary()
        v0 = np.zeros(8)
        v0[0] = 1
        assert np.allclose(u @ v0, c.run().to_array())

    def test_unitary_is_unitary(self):
        c = Circuit(3).h(0).cz(0, 1).rx(2, 0.4).ry(1, 1.0).append("ccx", (0, 1, 2))
        u = c.unitary()
        assert np.allclose(u @ u.conj().T, np.eye(8))

    def test_inverse(self):
        c = Circuit(2).h(0).s(1).cz(0, 1).rz(0, 0.7).rx(1, -0.2)
        ident = c.compose(c.inverse()).unitary()
        assert np.allclose(ident, np.eye(4))

    def test_rzz_matches_exponential(self):
        theta = 0.63
        c = Circuit(2).rzz(0, 1, theta)
        zz = np.diag([1.0, -1.0, -1.0, 1.0])
        from scipy.linalg import expm

        expect = expm(-1j * theta / 2 * zz)
        assert allclose_up_to_global_phase(c.unitary(), expect)

    def test_rxx_ryy_match_exponentials(self):
        from scipy.linalg import expm

        theta = -0.41
        xx = operator_on_qubits(np.kron([[0, 1], [1, 0]], [[0, 1], [1, 0]]), [0, 1], 2)
        yy = operator_on_qubits(
            np.kron([[0, -1j], [1j, 0]], [[0, -1j], [1j, 0]]), [0, 1], 2
        )
        assert allclose_up_to_global_phase(
            Circuit(2).rxx(0, 1, theta).unitary(), expm(-1j * theta / 2 * xx)
        )
        assert allclose_up_to_global_phase(
            Circuit(2).ryy(0, 1, theta).unitary(), expm(-1j * theta / 2 * yy)
        )

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_counts(self):
        c = Circuit(3).h(0).h(1).cz(0, 1).cnot(1, 2).rz(0, 0.3)
        assert c.count_entangling() == 2
        assert c.count_by_name()["h"] == 2
        assert len(c) == 5

    def test_depth(self):
        c = Circuit(3).h(0).h(1).cz(0, 1).h(2)
        assert c.depth() == 2
        assert Circuit(2).depth() == 0

    def test_apply_to_register_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).h(0).apply_to(StateVector.zeros(3))

    def test_run_with_initial(self):
        init = StateVector.plus(1)
        out = Circuit(1).h(0).run(init).to_array()
        assert np.allclose(out, [1, 0])

    def test_mcrx_execution(self):
        # Controls on qubits 0,1; RX on qubit 2; fires only from |11x>.
        c = Circuit(3).x(0).x(1).append("mcrx", (0, 1, 2), np.pi)
        out = c.run().to_array()
        # |110> -> controls set, RX(pi)|0> = -i|1> -> state |111> up to phase.
        assert np.isclose(abs(out[7]), 1.0)

    def test_j_gate_in_circuit(self):
        c = Circuit(1).j(0, 0.8)
        assert np.allclose(c.unitary(), HADAMARD @ rz(0.8))
