"""Cross-stack integration tests: circuits ↔ ZX ↔ MBQC ↔ QAOA.

These tie the subsystems together the way the paper's derivation chain
does: a QAOA circuit, its ZX diagram, its measurement pattern, and the
prepared state must all agree; the resource state of a graph-first pattern
must be the graph state its E-commands describe; and the two compilation
routes (tailored vs generic) must coincide semantically.
"""

import numpy as np
import pytest

from repro.core import (
    MBQCQAOASolver,
    circuit_to_pattern,
    compile_qaoa_pattern,
    pattern_state_equals,
)
from repro.linalg import allclose_up_to_global_phase, proportionality_factor
from repro.mbqc import OpenGraph, Pattern, find_causal_flow, find_gflow, run_pattern, standardize
from repro.mbqc.pattern import CommandE, CommandM, CommandN
from repro.problems import MaxCut
from repro.qaoa import qaoa_circuit, qaoa_state
from repro.qaoa.iterative import iterative_quantum_optimize
from repro.sim import StateVector
from repro.stab import StabilizerState, graph_state_stabilizers
from repro.zx import circuit_to_diagram, diagram_matrix
from repro.zx.graph_like import is_graph_like, to_graph_like


@pytest.fixture(scope="module")
def small_qaoa():
    mc = MaxCut(3, [(0, 1), (1, 2)])
    qubo = mc.to_qubo()
    gammas, betas = [0.63], [-0.41]
    target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
    return mc, qubo, gammas, betas, target


class TestCircuitZXPipeline:
    def test_qaoa_circuit_diagram_graph_like(self, small_qaoa):
        _, qubo, gammas, betas, _ = small_qaoa
        circ = qaoa_circuit(qubo.to_ising(), gammas, betas)
        d = circuit_to_diagram(circ)
        before = diagram_matrix(d)
        to_graph_like(d)
        assert is_graph_like(d)
        after = diagram_matrix(d)
        assert proportionality_factor(after, before, atol=1e-8) is not None
        # And the diagram's first column is the prepared state.
        state_col = after[:, 0]
        circ_state = circ.run().to_array()
        assert proportionality_factor(state_col, circ_state, atol=1e-8) is not None

    def test_zx_state_matches_pattern_state(self, small_qaoa):
        _, qubo, gammas, betas, target = small_qaoa
        circ = qaoa_circuit(qubo.to_ising(), gammas, betas)
        d = circuit_to_diagram(circ)
        zx_state = diagram_matrix(d)[:, 0]
        assert proportionality_factor(zx_state, target, atol=1e-8) is not None


class TestPatternRoutes:
    def test_tailored_vs_generic_vs_gate_model(self, small_qaoa):
        _, qubo, gammas, betas, target = small_qaoa
        tailored = compile_qaoa_pattern(qubo, gammas, betas)
        circ = qaoa_circuit(qubo.to_ising(), gammas, betas)
        generic = circuit_to_pattern(circ, open_inputs=False, initial="zero")
        assert pattern_state_equals(tailored.pattern, target, max_branches=16, seed=0)
        assert pattern_state_equals(generic, target, max_branches=16, seed=1)

    def test_standardized_compiled_pattern(self, small_qaoa):
        _, qubo, gammas, betas, target = small_qaoa
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        std = standardize(compiled.pattern)
        assert pattern_state_equals(std, target, max_branches=16, seed=2)

    def test_graph_first_resource_state_is_graph_state(self, small_qaoa):
        """Cut the graph-first pattern at the N/E–M boundary: the state at
        that point must be exactly the graph state of the E-command graph
        (verified with the stabilizer tableau)."""
        _, qubo, gammas, betas, _ = small_qaoa
        compiled = compile_qaoa_pattern(qubo, gammas, betas, schedule="graph-first")
        cmds = compiled.pattern.commands
        prep = [c for c in cmds if isinstance(c, (CommandN, CommandE))]
        nodes = sorted({c.node for c in prep if isinstance(c, CommandN)})
        index = {node: i for i, node in enumerate(nodes)}
        edges = [
            (index[c.nodes[0]], index[c.nodes[1]])
            for c in prep
            if isinstance(c, CommandE)
        ]
        tableau = StabilizerState.graph_state(len(nodes), edges)
        for gen in graph_state_stabilizers(len(nodes), edges):
            assert tableau.stabilizes(gen)
        # Cross-check against the dense runner on the truncated pattern.
        trunc = Pattern(input_nodes=[], output_nodes=nodes, commands=list(prep))
        dense = run_pattern(trunc).state_array()
        sv = StateVector.plus(len(nodes))
        for u, v in edges:
            sv.apply_cz(u, v)
        assert allclose_up_to_global_phase(dense, sv.to_array(), atol=1e-9)

    def test_flow_structure(self, small_qaoa):
        """Tailored patterns (YZ ancillas) admit gflow but not causal flow;
        generic patterns (all XY) admit causal flow."""
        _, qubo, gammas, betas, _ = small_qaoa
        tailored = compile_qaoa_pattern(qubo, gammas, betas, open_inputs=True)
        og_t = OpenGraph.from_pattern(tailored.pattern)
        with pytest.raises(ValueError):
            find_causal_flow(og_t)  # non-XY planes present
        assert find_gflow(og_t) is not None

        circ = qaoa_circuit(qubo.to_ising(), gammas, betas, include_initial_layer=False)
        generic = circuit_to_pattern(circ, open_inputs=True)
        og_g = OpenGraph.from_pattern(generic)
        assert find_causal_flow(og_g) is not None
        assert find_gflow(og_g) is not None


class TestSolversAgree:
    def test_variational_and_iterative_find_same_optimum(self):
        mc = MaxCut.ring(4)
        qubo = mc.to_qubo()
        var = MBQCQAOASolver(qubo, p=1, shots=128, runs_per_batch=2, seed=7)
        vres = var.solve(restarts=2, maxiter=15)
        ires = iterative_quantum_optimize(qubo.to_ising(), stop_at=2)
        assert mc.cut_value(vres.best_bitstring) == pytest.approx(4.0)
        assert mc.cut_value(ires.bits()) == pytest.approx(4.0)


class TestEndToEndDeterminism:
    def test_many_random_seeds_one_state(self, small_qaoa):
        """Determinism as a user experiences it: independent executions
        with different RNG seeds produce the identical output state."""
        _, qubo, gammas, betas, target = small_qaoa
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        outs = [
            run_pattern(compiled.pattern, seed=s).state_array() for s in range(6)
        ]
        for arr in outs:
            assert allclose_up_to_global_phase(arr, target, atol=1e-9)

    def test_outcome_distribution_uniform(self, small_qaoa):
        """Deterministic patterns have unbiased (uniform) outcomes — the
        theorem behind branch-norm equality, observed empirically."""
        _, qubo, gammas, betas, _ = small_qaoa
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        measured = compiled.pattern.measured_nodes()
        counts = {node: 0 for node in measured}
        runs = 80
        for s in range(runs):
            res = run_pattern(compiled.pattern, seed=1000 + s)
            for node, bit in res.outcomes.items():
                counts[node] += bit
        for node, ones in counts.items():
            assert 0.2 < ones / runs < 0.8, f"biased outcome at node {node}"
