"""Unit + property tests for the dynamic statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    CNOT,
    CZ,
    HADAMARD,
    PAULI_X,
    allclose_up_to_global_phase,
    operator_on_qubits,
    rx,
    ry,
    rz,
)
from repro.sim import MeasurementBasis, StateVector
from repro.sim.statevector import KET_0, KET_1, KET_MINUS, KET_PLUS, ZeroProbabilityBranch


def random_state(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return v / np.linalg.norm(v)


class TestConstruction:
    def test_zeros(self):
        sv = StateVector.zeros(3)
        a = sv.to_array()
        assert np.isclose(a[0], 1) and np.allclose(a[1:], 0)

    def test_plus(self):
        sv = StateVector.plus(2)
        assert np.allclose(sv.to_array(), np.full(4, 0.5))

    def test_from_array_roundtrip(self):
        v = random_state(3, seed=1)
        sv = StateVector.from_array(v)
        assert np.allclose(sv.to_array(), v)
        assert sv.num_qubits == 3

    def test_from_array_bad_length(self):
        with pytest.raises(ValueError):
            StateVector.from_array(np.ones(3))

    def test_empty_register(self):
        sv = StateVector(0)
        assert sv.num_qubits == 0
        assert np.isclose(sv.norm(), 1.0)

    def test_add_qubit_order(self):
        sv = StateVector(0)
        sv.add_qubit(KET_0)
        sv.add_qubit(KET_1)
        # qubit 0 = |0>, qubit 1 = |1> -> index 2
        a = sv.to_array()
        assert np.isclose(a[2], 1)


class TestUnitaries:
    def test_apply_1q_matches_dense(self):
        n = 3
        v = random_state(n, seed=2)
        for q in range(n):
            sv = StateVector.from_array(v)
            sv.apply_1q(HADAMARD, q)
            dense = operator_on_qubits(HADAMARD, [q], n) @ v
            assert np.allclose(sv.to_array(), dense)

    def test_apply_2q_matches_dense(self):
        n = 4
        v = random_state(n, seed=3)
        for q0, q1 in [(0, 1), (1, 0), (0, 3), (3, 1), (2, 0)]:
            sv = StateVector.from_array(v)
            sv.apply_2q(CNOT, q0, q1)
            dense = operator_on_qubits(CNOT, [q0, q1], n) @ v
            assert np.allclose(sv.to_array(), dense)

    def test_apply_cz_matches_dense(self):
        n = 3
        v = random_state(n, seed=4)
        sv = StateVector.from_array(v)
        sv.apply_cz(0, 2)
        dense = operator_on_qubits(CZ, [0, 2], n) @ v
        assert np.allclose(sv.to_array(), dense)
        # CZ is symmetric
        sv2 = StateVector.from_array(v)
        sv2.apply_cz(2, 0)
        assert np.allclose(sv2.to_array(), dense)

    def test_apply_kq_matches_dense(self):
        n = 4
        rng = np.random.default_rng(5)
        m = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        q, _ = np.linalg.qr(m)
        v = random_state(n, seed=6)
        for qubits in [(0, 1, 2), (2, 0, 3), (3, 1, 0)]:
            sv = StateVector.from_array(v)
            sv.apply_kq(q, qubits)
            dense = operator_on_qubits(q, list(qubits), n) @ v
            assert np.allclose(sv.to_array(), dense)

    def test_apply_diagonal(self):
        n = 3
        v = random_state(n, seed=7)
        d = np.exp(1j * np.arange(8))
        sv = StateVector.from_array(v)
        sv.apply_diagonal(d)
        assert np.allclose(sv.to_array(), d * v)

    def test_errors(self):
        sv = StateVector.zeros(2)
        with pytest.raises(ValueError):
            sv.apply_1q(HADAMARD, 5)
        with pytest.raises(ValueError):
            sv.apply_2q(CZ, 0, 0)
        with pytest.raises(ValueError):
            sv.apply_diagonal(np.ones(3))


class TestMeasurement:
    def test_z_measurement_on_zero_state(self):
        sv = StateVector.zeros(1)
        out, p = sv.measure(0, MeasurementBasis.pauli("Z"), seed_or_rng_none := None)
        assert out == 0 and np.isclose(p, 1.0)
        assert sv.num_qubits == 0

    def test_plus_measured_in_x(self):
        sv = StateVector.plus(1)
        out, p = sv.measure(0, MeasurementBasis.pauli("X"))
        assert out == 0 and np.isclose(p, 1.0)

    def test_force_impossible_branch_raises(self):
        sv = StateVector.zeros(1)
        with pytest.raises(ZeroProbabilityBranch):
            sv.measure(0, MeasurementBasis.pauli("Z"), force=1)

    def test_forced_branches_probabilities(self):
        sv = StateVector.plus(1)
        _, p = sv.copy().measure(0, MeasurementBasis.pauli("Z"), force=0)
        assert np.isclose(p, 0.5)
        _, p = sv.copy().measure(0, MeasurementBasis.pauli("Z"), force=1)
        assert np.isclose(p, 0.5)

    def test_measure_keep_collapses(self):
        sv = StateVector.plus(2)
        out, _ = sv.measure(0, MeasurementBasis.pauli("Z"), force=1, remove=False)
        assert sv.num_qubits == 2
        a = sv.to_array()
        # qubit 0 collapsed to |1>: only odd indices populated
        assert np.allclose(a[[0, 2]], 0)

    def test_measure_removes_correct_axis(self):
        # Entangle and confirm remaining qubit's reduced state.
        sv = StateVector.zeros(2)
        sv.apply_1q(HADAMARD, 0)
        sv.apply_2q(CNOT, 0, 1)  # Bell state
        out, p = sv.measure(0, MeasurementBasis.pauli("Z"), force=0)
        assert np.isclose(p, 0.5)
        assert np.allclose(sv.to_array(), [1, 0])

    def test_xy_basis_angles(self):
        # |+> measured in XY(pi) should be deterministic outcome 1? No:
        # XY(pi) basis is {RZ(pi)|+>, RZ(pi)|->} ~ {|->, |+>} up to phase.
        sv = StateVector.plus(1)
        out, p = sv.measure(0, MeasurementBasis.xy(np.pi))
        assert out == 1 and np.isclose(p, 1.0)

    def test_yz_zero_is_z_basis(self):
        sv = StateVector.zeros(1)
        out, p = sv.measure(0, MeasurementBasis.yz(0.0))
        assert out == 0 and np.isclose(p, 1.0)

    def test_measure_probability(self):
        sv = StateVector.plus(1)
        assert np.isclose(sv.measure_probability(0, MeasurementBasis.pauli("Z"), 0), 0.5)

    def test_basis_validation(self):
        with pytest.raises(ValueError):
            MeasurementBasis.from_vectors(np.array([1.0, 0.0]), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            MeasurementBasis.from_vectors(np.array([2.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            MeasurementBasis.pauli("Q")


class TestDerived:
    def test_expectation_diagonal(self):
        sv = StateVector.plus(2)
        diag = np.array([0.0, 1.0, 2.0, 3.0])
        assert np.isclose(sv.expectation_diagonal(diag), 1.5)

    def test_sampling_distribution(self):
        sv = StateVector.zeros(1)
        sv.apply_1q(ry(2 * np.arcsin(np.sqrt(0.3))), 0)  # P(1)=0.3
        samples = sv.sample(20000, rng=np.random.default_rng(0))
        assert abs(samples.mean() - 0.3) < 0.02

    def test_fidelity(self):
        a = StateVector.plus(2)
        b = StateVector.plus(2)
        assert np.isclose(a.fidelity(b), 1.0)
        c = StateVector.zeros(2)
        assert np.isclose(a.fidelity(c), 0.25)

    @given(st.integers(min_value=0, max_value=3), st.floats(-3.0, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_rotation_composition_property(self, q, theta):
        n = 4
        v = random_state(n, seed=42)
        sv = StateVector.from_array(v)
        sv.apply_1q(rz(theta), q)
        sv.apply_1q(rz(-theta), q)
        assert np.allclose(sv.to_array(), v, atol=1e-9)

    @given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_norm_preserved(self, t1, t2):
        sv = StateVector.plus(2)
        sv.apply_1q(rx(t1), 0)
        sv.apply_2q(CNOT, 0, 1)
        sv.apply_1q(rz(t2), 1)
        assert np.isclose(sv.norm(), 1.0, atol=1e-9)


class TestBugfixRegressions:
    """Regression tests for the measurement/runner hot-path correctness fixes."""

    def test_measure_probability_unnormalized_state(self):
        # Scaling the state must not change outcome probabilities — the
        # renormalize=False branch-extraction path produces exactly such
        # unnormalized states.
        sv = StateVector.from_array(random_state(3, seed=5))
        basis = MeasurementBasis.xy(0.37)
        p_before = sv.measure_probability(1, basis, 0)
        sv._t *= 0.25
        assert np.isclose(sv.measure_probability(1, basis, 0), p_before, atol=1e-12)

    def test_measure_probability_outcomes_sum_to_one(self):
        sv = StateVector.from_array(random_state(2, seed=9))
        sv._t *= 3.0  # unnormalized
        basis = MeasurementBasis.yz(-1.1)
        total = sv.measure_probability(0, basis, 0) + sv.measure_probability(0, basis, 1)
        assert np.isclose(total, 1.0, atol=1e-12)

    def test_measure_probability_matches_measure(self):
        basis = MeasurementBasis.xz(0.8)
        sv = StateVector.from_array(random_state(2, seed=3))
        sv._t *= 0.5
        expected = sv.measure_probability(1, basis, 1)
        _, prob = sv.copy().measure(1, basis, force=1, renormalize=False)
        assert np.isclose(expected, prob, atol=1e-12)

    def test_measure_probability_zero_norm_raises(self):
        sv = StateVector.zeros(2)
        sv._t *= 0.0
        with pytest.raises(ValueError):
            sv.measure_probability(0, MeasurementBasis.pauli("Z"), 0)

    def test_from_array_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            StateVector.from_array(np.zeros(0))
        with pytest.raises(ValueError, match="non-empty"):
            StateVector.from_array([])
