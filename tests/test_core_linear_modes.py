"""The two linear-term realizations: paper's hanging gadget vs fused mode."""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern, pattern_state_equals
from repro.problems import MinVertexCover, QUBO
from repro.qaoa import qaoa_state


@pytest.fixture(scope="module")
def vc_instance():
    vc = MinVertexCover(3, [(0, 1), (1, 2)])
    qubo = vc.to_qubo()
    gammas, betas = [0.53], [-0.37]
    target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
    return qubo, gammas, betas, target


class TestFusedMode:
    def test_fused_prepares_same_state(self, vc_instance):
        qubo, gammas, betas, target = vc_instance
        fused = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="fused")
        assert pattern_state_equals(fused.pattern, target, max_branches=32, seed=0)

    def test_hanging_prepares_same_state(self, vc_instance):
        qubo, gammas, betas, target = vc_instance
        hang = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="hanging")
        assert pattern_state_equals(hang.pattern, target, max_branches=32, seed=1)

    def test_fused_saves_field_ancillas(self, vc_instance):
        qubo, gammas, betas, _ = vc_instance
        nf = len(qubo.to_ising().fields)
        assert nf > 0
        fused = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="fused")
        hang = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="hanging")
        assert hang.num_nodes() - fused.num_nodes() == nf
        assert hang.num_entanglers() - fused.num_entanglers() == nf
        assert fused.count_role("field-ancilla") == 0

    def test_fused_depth_two(self):
        qubo = QUBO.from_terms(2, {(0, 1): 0.8}, [0.5, -0.3])
        gammas, betas = [0.4, -0.6], [0.2, 0.9]
        target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
        fused = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="fused")
        assert pattern_state_equals(fused.pattern, target, max_branches=24, seed=2)

    def test_fused_first_mixer_angle_carries_field(self):
        qubo = QUBO.from_terms(1, {}, [1.0])  # single variable, field only
        gamma, beta = 0.7, 0.3
        fused = compile_qaoa_pattern(qubo, [gamma], [beta], linear_mode="fused")
        h = qubo.to_ising().fields[0]
        m0 = fused.pattern.measurement_of(0)
        # J angle = 2γh; pattern stores -angle (XY convention).
        assert m0.angle == pytest.approx(-2.0 * gamma * h)

    def test_unknown_mode(self, vc_instance):
        qubo, gammas, betas, _ = vc_instance
        with pytest.raises(ValueError):
            compile_qaoa_pattern(qubo, gammas, betas, linear_mode="telepathic")

    def test_modes_equal_without_fields(self):
        from repro.problems import MaxCut

        qubo = MaxCut.ring(3).to_qubo()  # no Ising fields
        a = compile_qaoa_pattern(qubo, [0.3], [0.5], linear_mode="fused")
        b = compile_qaoa_pattern(qubo, [0.3], [0.5], linear_mode="hanging")
        assert a.num_nodes() == b.num_nodes()
