"""Tests for causal flow and extended gflow (the determinism criterion)."""

import pytest

from repro.mbqc import OpenGraph, Pattern, find_causal_flow, find_gflow
from repro.mbqc.flow import verify_gflow
from repro.utils import cycle_graph, path_graph


def linear_cluster(n: int) -> OpenGraph:
    _, edges = path_graph(n)
    return OpenGraph(set(range(n)), set(edges), [0], [n - 1])


class TestOpenGraph:
    def test_from_pattern(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.4).x(1, {0})
        og = OpenGraph.from_pattern(p)
        assert og.nodes == {0, 1}
        assert og.edges == {(0, 1)}
        assert og.planes[0] == "XY"

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            OpenGraph({0}, {(0, 0)}, [], [0])

    def test_rejects_unknown_endpoint(self):
        with pytest.raises(ValueError):
            OpenGraph({0}, {(0, 1)}, [], [0])

    def test_default_plane_is_xy(self):
        og = OpenGraph({0, 1}, {(0, 1)}, [0], [1])
        assert og.planes[0] == "XY"

    def test_adjacency(self):
        og = linear_cluster(3)
        a = og.adjacency([0, 1, 2])
        assert a[0, 1] and a[1, 2] and not a[0, 2]


class TestCausalFlow:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_linear_cluster_has_flow(self, n):
        og = linear_cluster(n)
        fl = find_causal_flow(og)
        assert fl is not None
        # Successor of each measured node is the next one down the chain.
        for u in range(n - 1):
            assert fl.f[u] == u + 1

    def test_flow_order_decreases_toward_outputs(self):
        og = linear_cluster(4)
        fl = find_causal_flow(og)
        assert fl.layer[0] > fl.layer[1] > fl.layer[2] > fl.layer[3] == 0
        assert fl.measurement_order() == [0, 1, 2]

    def test_no_flow_two_inputs_one_output(self):
        og = OpenGraph({0, 1, 2}, {(0, 2), (1, 2)}, [0, 1], [2])
        assert find_causal_flow(og) is None

    def test_cycle_without_outputs_has_no_flow(self):
        n, edges = cycle_graph(4)
        og = OpenGraph(set(range(n)), set(edges), [0], [1])
        # 4-cycle with 1 input and 1 output: qubit counts force failure.
        assert find_causal_flow(og) is None

    def test_rejects_non_xy_planes(self):
        og = OpenGraph({0, 1}, {(0, 1)}, [], [1], planes={0: "YZ"})
        with pytest.raises(ValueError):
            find_causal_flow(og)

    def test_grid_cluster_has_flow(self):
        # 2x3 grid, inputs on left column, outputs on right column.
        from repro.utils import grid_graph

        n, edges = grid_graph(2, 3)
        og = OpenGraph(set(range(n)), set(edges), [0, 3], [2, 5])
        fl = find_causal_flow(og)
        assert fl is not None


class TestGFlow:
    def test_linear_cluster_gflow(self):
        og = linear_cluster(5)
        gf = find_gflow(og)
        assert gf is not None
        assert verify_gflow(og, gf)

    def test_gflow_exists_where_flow_does(self):
        from repro.utils import grid_graph

        n, edges = grid_graph(2, 4)
        og = OpenGraph(set(range(n)), set(edges), [0, 4], [3, 7])
        assert find_causal_flow(og) is not None
        gf = find_gflow(og)
        assert gf is not None and verify_gflow(og, gf)

    def test_gflow_beyond_flow(self):
        """A graph with gflow but no causal flow: the bipartite adjacency
        between outputs and measured inputs is invertible over GF(2) (so
        correction *sets* exist) but every output sees ≥2 measured
        neighbors (so no single-successor causal flow)."""
        edges = {(0, 3), (1, 3), (1, 4), (2, 4), (0, 5), (1, 5), (2, 5)}
        og = OpenGraph(set(range(6)), edges, [0, 1, 2], [3, 4, 5])
        assert find_causal_flow(og) is None
        gf = find_gflow(og)
        assert gf is not None and verify_gflow(og, gf)

    def test_no_gflow_even_parity_cycle(self):
        """C6 between inputs and outputs: the GF(2) column space only spans
        even-weight vectors, so no gflow exists."""
        edges = {(0, 3), (0, 4), (1, 4), (1, 5), (2, 5), (2, 3)}
        og = OpenGraph(set(range(6)), edges, [0, 1, 2], [3, 4, 5])
        assert find_causal_flow(og) is None
        assert find_gflow(og) is None

    def test_yz_plane_gflow(self):
        """A YZ-measured hub (the paper's edge-ancilla shape): ancilla a
        measured in YZ attached to two outputs."""
        og = OpenGraph(
            {0, 1, 2},
            {(0, 2), (1, 2)},
            [0, 1],
            [0, 1],
            planes={2: "YZ"},
        )
        # Node 2 is not an output but inputs==outputs here; fix: treat 2 as
        # the only measured node.
        gf = find_gflow(og)
        assert gf is not None and verify_gflow(og, gf)
        # YZ condition: 2 in its own correction set.
        assert 2 in gf.g[2]

    def test_xz_plane_gflow(self):
        og = OpenGraph(
            {0, 1},
            {(0, 1)},
            [],
            [1],
            planes={0: "XZ"},
        )
        gf = find_gflow(og)
        assert gf is not None and verify_gflow(og, gf)

    def test_no_gflow(self):
        # Two measured nodes, no outputs at all: nothing can correct them.
        og = OpenGraph({0, 1}, {(0, 1)}, [], [], planes={0: "XY", 1: "XY"})
        assert find_gflow(og) is None

    def test_gflow_layers_monotone(self):
        og = linear_cluster(6)
        gf = find_gflow(og)
        order = gf.measurement_order()
        layers = [gf.layer[v] for v in order]
        assert layers == sorted(layers, reverse=True)
