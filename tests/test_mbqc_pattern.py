"""Tests for pattern structure, validation, and standardization.

The standardization absorption table (plane vs X/Z correction) is verified
against the simulator: a pattern with an explicit correction before a
measurement must produce the same branch maps as its standardized form.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import (
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
    pattern_to_matrix,
    standardize,
)


def j_pattern(alpha: float) -> Pattern:
    """The cluster-state J(α) primitive: one input, one ancilla."""
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


class TestCommands:
    def test_e_normalizes_order(self):
        assert CommandE((3, 1)).nodes == (1, 3)

    def test_e_rejects_loop(self):
        with pytest.raises(PatternError):
            CommandE((2, 2))

    def test_m_rejects_bad_plane(self):
        with pytest.raises(PatternError):
            CommandM(0, plane="QQ")

    def test_n_rejects_bad_state(self):
        with pytest.raises(PatternError):
            CommandN(0, state="bell")

    def test_domains_frozen(self):
        m = CommandM(0, "XY", 0.1, {1, 2}, {3})
        assert m.s_domain == frozenset({1, 2})
        assert m.t_domain == frozenset({3})


class TestValidation:
    def test_valid_j_pattern(self):
        j_pattern(0.5).validate()

    def test_double_preparation(self):
        p = Pattern(output_nodes=[0])
        p.n(0).n(0)
        with pytest.raises(PatternError):
            p.validate()

    def test_preparing_an_input(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.n(0)
        with pytest.raises(PatternError):
            p.validate()

    def test_entangle_unprepared(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.e(0, 1)
        with pytest.raises(PatternError):
            p.validate()

    def test_entangle_measured(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        p.m(0).e(0, 1)
        with pytest.raises(PatternError):
            p.validate()

    def test_measure_twice(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[])
        p.m(0).m(0)
        with pytest.raises(PatternError):
            p.validate()

    def test_non_causal_signal(self):
        # Measurement depending on a later outcome must be rejected — the
        # paper's determinism prerequisite.
        p = Pattern(input_nodes=[0, 1], output_nodes=[])
        p.m(0, "XY", 0.3, s_domain={1}).m(1)
        with pytest.raises(PatternError):
            p.validate()

    def test_correction_on_measured_node(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        p.m(0).add(CommandX(0, frozenset()))
        with pytest.raises(PatternError):
            p.validate()

    def test_output_measured(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.m(0)
        with pytest.raises(PatternError):
            p.validate()

    def test_dangling_node(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.n(7)
        with pytest.raises(PatternError):
            p.validate()

    def test_measurement_of_missing(self):
        p = j_pattern(0.1)
        with pytest.raises(KeyError):
            p.measurement_of(1)
        assert p.measurement_of(0).angle == pytest.approx(-0.1)


class TestAccounting:
    def test_nodes_and_edges(self):
        p = j_pattern(0.3)
        assert p.nodes() == {0, 1}
        assert p.entangling_edges() == [(0, 1)]
        assert p.measured_nodes() == [0]

    def test_max_live_nodes(self):
        # Chain of 3 J gates: prepare-then-measure keeps 2 alive at a time
        p = Pattern(input_nodes=[0], output_nodes=[3])
        p.n(1).e(0, 1).m(0, "XY", 0.1).x(1, {0})
        p.n(2).e(1, 2).m(1, "XY", 0.2).x(2, {1})
        p.n(3).e(2, 3).m(2, "XY", 0.3).x(3, {2})
        assert p.max_live_nodes() == 2
        # Preparing everything upfront keeps all 4 alive.
        q = Pattern(input_nodes=[0], output_nodes=[3])
        q.n(1).n(2).n(3).e(0, 1).e(1, 2).e(2, 3)
        q.m(0, "XY", 0.1).x(1, {0}).m(1, "XY", 0.2).x(2, {1}).m(2, "XY", 0.3).x(3, {2})
        assert q.max_live_nodes() == 4


def branch_maps(p: Pattern):
    """Map each full outcome assignment to the branch matrix."""
    from repro.mbqc.runner import enumerate_branches

    return {
        tuple(sorted(b.items())): pattern_to_matrix(p, b) for b in enumerate_branches(p)
    }


class TestStandardize:
    @pytest.mark.parametrize("plane", ["XY", "YZ", "XZ"])
    @pytest.mark.parametrize("corr", ["x", "z"])
    def test_absorption_table(self, plane, corr):
        """[correction; M] == standardized adaptive M, on every branch."""
        alpha = 0.731
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        # node 0 measured first to source the signal; correction conditioned
        # on it lands on node 2 before its measurement.
        p.n(2).e(1, 2).e(0, 2)
        p.m(0, "XY", 0.0)
        if corr == "x":
            p.x(2, {0})
        else:
            p.z(2, {0})
        p.m(2, plane, alpha)
        p.x(1, {2})
        p.validate()
        q = standardize(p)
        # Standard form: no explicit corrections before measurements.
        kinds = [type(c).__name__ for c in q.commands]
        assert kinds == sorted(kinds, key=lambda k: ["CommandN", "CommandE", "CommandM", "CommandZ", "CommandX"].index(k))
        bm_p = branch_maps(p)
        bm_q = branch_maps(q)
        assert set(bm_p) == set(bm_q)
        for key in bm_p:
            assert allclose_up_to_global_phase(bm_p[key], bm_q[key], atol=1e-8)

    def test_x_through_entangler_generates_z(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1, 2])
        p.m(0, "XY", 0.0)
        p.x(1, {0})
        p.n(2)
        p.e(1, 2)
        p.validate()
        q = standardize(p)
        # The X on 1 must have produced a Z on 2 conditioned on outcome 0.
        zs = [c for c in q.commands if isinstance(c, CommandZ)]
        assert any(c.node == 2 and c.domain == frozenset({0}) for c in zs)
        bm_p, bm_q = branch_maps(p), branch_maps(q)
        for key in bm_p:
            assert allclose_up_to_global_phase(bm_p[key], bm_q[key], atol=1e-8)

    def test_corrections_merge(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[2])
        p.n(2).e(0, 2).e(1, 2)
        p.m(0, "XY", 0.2)
        p.m(1, "XY", 0.4, s_domain={0})
        p.x(2, {0}).x(2, {0, 1})
        q = standardize(p)
        xs = [c for c in q.commands if isinstance(c, CommandX)]
        assert len(xs) == 1
        assert xs[0].domain == frozenset({1})

    @given(
        st.lists(st.floats(-3.0, 3.0), min_size=1, max_size=3),
        st.lists(st.booleans(), min_size=3, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_j_chain_standardization_property(self, angles, interleave):
        """Chains of J-gadgets with interleaved corrections standardize
        to the same branch maps."""
        p = Pattern(input_nodes=[0], output_nodes=[len(angles)])
        for k, a in enumerate(angles):
            p.n(k + 1).e(k, k + 1).m(k, "XY", -a)
            if interleave[k % 3]:
                p.x(k + 1, {k})
            else:
                # Defer: equivalent correction expressed later as Z then X.
                p.z(k + 1, set()).x(k + 1, {k})
        q = standardize(p)
        q.validate()
        bm_p, bm_q = branch_maps(p), branch_maps(q)
        for key in bm_p:
            assert allclose_up_to_global_phase(bm_p[key], bm_q[key], atol=1e-8)

    def test_standardize_is_idempotent(self):
        p = j_pattern(1.1)
        q = standardize(p)
        r = standardize(q)
        assert [type(c) for c in q.commands] == [type(c) for c in r.commands]
