"""Tests for the Section III.A resource accounting and qubit-reuse analysis
(experiments E7 and E13)."""

import pytest

from repro.core import compile_qaoa_pattern, estimate_resources, resource_table
from repro.core.resources import format_table, paper_bounds
from repro.core.reuse import live_qubit_profile, peak_live_qubits, reuse_summary
from repro.problems import MaxCut, MinVertexCover, NumberPartitioning
from repro.utils import grid_graph


class TestBounds:
    def test_paper_formulas(self):
        nq, ne = paper_bounds(num_vertices=6, num_edges=9, p=2)
        assert nq == 2 * (9 + 12)
        assert ne == 2 * (18 + 12)

    def test_general_qubo_correction(self):
        nq0, ne0 = paper_bounds(5, 7, 3)
        nq1, ne1 = paper_bounds(5, 7, 3, num_fields=5)
        assert nq1 - nq0 == 15
        assert ne1 - ne0 == 15


class TestEstimates:
    def test_exact_counts_respect_bounds(self):
        """The compiled pattern meets the paper's bounds with equality in
        the ancilla convention (no reuse assumed)."""
        for p in (1, 2, 3):
            mc = MaxCut.ring(5)
            rep = estimate_resources(mc.to_qubo(), p=p)
            # total nodes = |V| wires + ancillas; ancillas == bound exactly.
            assert rep.total_nodes - rep.num_vertices == rep.bound_ancilla_qubits
            assert rep.total_entanglers == rep.bound_entanglers

    def test_general_qubo_counts(self):
        vc = MinVertexCover(4, [(0, 1), (1, 2), (2, 3)])
        rep = estimate_resources(vc.to_qubo(), p=2)
        assert rep.num_fields > 0
        assert rep.total_nodes - rep.num_vertices == rep.bound_ancilla_qubits

    def test_gate_model_comparison(self):
        mc = MaxCut.ring(6)
        rep = estimate_resources(mc.to_qubo(), p=2)
        assert rep.gate_model_qubits == 6
        assert rep.gate_model_entanglers == 2 * 2 * 6
        # MBQC needs more raw qubits but the same order of entanglers.
        assert rep.total_nodes > rep.gate_model_qubits

    def test_from_compiled(self):
        mc = MaxCut.ring(4)
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.3, 0.1], [0.2, 0.4])
        rep = estimate_resources(compiled)
        assert rep.p == 2
        assert rep.total_nodes == compiled.num_nodes()

    def test_p_required_for_problem(self):
        with pytest.raises(ValueError):
            estimate_resources(MaxCut.ring(3).to_qubo())

    def test_resource_table_rows(self):
        instances = [
            ("ring5", MaxCut.ring(5).to_qubo()),
            ("K4", MaxCut.complete(4).to_qubo()),
        ]
        rows = resource_table(instances, depths=[1, 2])
        assert len(rows) == 4
        assert {r["instance"] for r in rows} == {"ring5", "K4"}
        text = format_table(rows)
        assert "NQ_bound" in text and "ring5" in text

    def test_format_empty(self):
        assert format_table([]) == "(empty)"


class TestReuse:
    def test_profile_shape(self):
        mc = MaxCut.ring(4)
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.1], [0.2])
        prof = live_qubit_profile(compiled.pattern)
        assert prof[0] == 0  # no inputs: empty register at start
        assert prof[-1] == 4  # outputs alive at the end
        assert max(prof) == peak_live_qubits(compiled.pattern)

    def test_eager_peak_independent_of_depth(self):
        """E13 headline: under eager scheduling the live register does not
        grow with p (the ref. [51] reuse regime)."""
        mc = MaxCut.ring(5)
        peaks = []
        for p in (1, 2, 4):
            compiled = compile_qaoa_pattern(mc.to_qubo(), [0.1] * p, [0.1] * p)
            peaks.append(peak_live_qubits(compiled.pattern))
        assert peaks[0] == peaks[1] == peaks[2]
        assert peaks[0] <= 5 + 2  # |V| + O(1)

    def test_graph_first_peak_grows_with_depth(self):
        mc = MaxCut.ring(5)
        peaks = []
        for p in (1, 2, 4):
            compiled = compile_qaoa_pattern(
                mc.to_qubo(), [0.1] * p, [0.1] * p, schedule="graph-first"
            )
            peaks.append(peak_live_qubits(compiled.pattern))
        assert peaks[0] < peaks[1] < peaks[2]

    def test_reuse_summary(self):
        mc = MaxCut.ring(4)
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.1] * 3, [0.1] * 3)
        total, peak, factor = reuse_summary(compiled.pattern)
        assert total == compiled.num_nodes()
        assert factor > 2.0  # strong reuse at p=3

    def test_dense_problem_peak(self):
        np_ = NumberPartitioning.random(5, seed=0)
        compiled = compile_qaoa_pattern(np_.to_qubo(), [0.1], [0.1])
        # K5 interaction graph: peak live still ~|V|+1.
        assert peak_live_qubits(compiled.pattern) <= 7
