"""Supervised sharded integration (`repro.exec.supervisor`).

Certification claims: a clean supervised run is bit-identical to the
unsupervised ``integrate(shards=N)``; same-slice retries after injected
crashes / OOM / timeouts recover bit-identically (R104/R103 events
recorded); a re-split run agrees to ~1e-12 relative (summation
re-association); the in-process fallback is bit-identical; exhausted
recovery raises a :class:`PatternError` naming the shard and its branch
mass; and the plain (unsupervised) sharded path now raises an actionable
:class:`PatternError` on ``BrokenProcessPool`` instead of leaking the raw
traceback — the satellite bugfix.
"""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.exec import Fault, FaultSchedule, supervised_integrate
from repro.exec.faults import _exit_now
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import PatternError
from repro.problems import MaxCut


def j_chain(alphas):
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


@pytest.fixture(scope="module")
def chain():
    """A small program whose frontier forks at width 2."""
    return compile_pattern(j_chain([0.3, 0.7, 1.1, 0.2]))


@pytest.fixture(scope="module")
def qaoa():
    """A program whose frontier jumps past width 3 to width 4 — with
    shards=3, shard 0 gets a 2-branch slice, wide enough to re-split."""
    return compile_qaoa_pattern(
        MaxCut.ring(4).to_qubo(), [0.6], [0.4]
    ).executable()


@pytest.fixture(scope="module")
def chain_ref(chain):
    return get_backend("density").integrate(chain, shards=2)


@pytest.fixture(scope="module")
def qaoa_ref(qaoa):
    return get_backend("density").integrate(qaoa, shards=3)


def assert_same_rho(a, b):
    assert np.array_equal(a.rho._t, b.rho._t)
    assert a.branches == b.branches
    assert a.dropped_weight == b.dropped_weight


class TestCleanRuns:
    def test_matches_unsupervised_bitwise(self, chain, chain_ref):
        sup = supervised_integrate(chain, shards=2, backoff=0.0)
        assert sup.supervision.clean
        assert_same_rho(sup, chain_ref)

    def test_single_shard_runs_in_process(self, chain):
        ref = get_backend("density").integrate(chain)
        sup = supervised_integrate(chain, shards=1, backoff=0.0)
        assert sup.supervision.clean
        assert np.array_equal(sup.rho._t, ref.rho._t)

    def test_narrow_frontier_never_forks(self, chain):
        # The chain's frontier never reaches width 8: the whole run
        # completes in-process with no pool at all.
        ref = get_backend("density").integrate(chain)
        sup = supervised_integrate(chain, shards=8, backoff=0.0)
        assert sup.supervision.clean
        assert np.array_equal(sup.rho._t, ref.rho._t)

    def test_noisy_program(self, chain):
        noise = NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02)
        ref = get_backend("density").integrate(chain, noise=noise, shards=2)
        sup = supervised_integrate(chain, noise=noise, shards=2, backoff=0.0)
        assert sup.supervision.clean
        assert np.array_equal(sup.rho._t, ref.rho._t)

    def test_invalid_args(self, chain):
        with pytest.raises(ValueError):
            supervised_integrate(chain, shards=0)
        with pytest.raises(ValueError):
            supervised_integrate(chain, retries=-1)


class TestRecovery:
    def test_crash_retried_bit_identical(self, chain, chain_ref):
        sched = FaultSchedule([Fault("crash", "shard", 0, 0)])
        sup = supervised_integrate(
            chain, shards=2, backoff=0.0, faults=sched
        )
        assert "R104" in sup.supervision.codes()
        assert sup.supervision.retries >= 1
        assert len(sched.fired) == 1
        assert_same_rho(sup, chain_ref)

    def test_memory_error_retried_bit_identical(self, chain, chain_ref):
        sched = FaultSchedule([Fault("memory", "shard", 1, 0)])
        sup = supervised_integrate(
            chain, shards=2, backoff=0.0, faults=sched
        )
        assert "R104" in sup.supervision.codes()
        assert_same_rho(sup, chain_ref)

    def test_timeout_retried_bit_identical(self, chain, chain_ref):
        sched = FaultSchedule(
            [Fault("timeout", "shard", 0, 0, seconds=30.0)]
        )
        sup = supervised_integrate(
            chain, shards=2, backoff=0.0, shard_timeout=0.5, faults=sched
        )
        assert "R103" in sup.supervision.codes()
        assert sup.supervision.timeouts == 1
        assert_same_rho(sup, chain_ref)

    def test_repeated_crashes_then_success(self, chain, chain_ref):
        sched = FaultSchedule([
            Fault("crash", "shard", 0, 0),
            Fault("crash", "shard", 0, 1),
        ])
        sup = supervised_integrate(
            chain, shards=2, retries=2, backoff=0.0, faults=sched
        )
        assert len(sched.fired) == 2
        assert_same_rho(sup, chain_ref)

    def test_resplit_close_to_unsupervised(self, qaoa, qaoa_ref):
        """Exhausting retries on a 2-branch slice re-splits it; the
        re-associated partial sums agree to ~1e-12 relative."""
        sched = FaultSchedule(
            [Fault("memory", "shard", 0, a) for a in range(3)]
        )
        sup = supervised_integrate(
            qaoa, shards=3, retries=2, backoff=0.0, faults=sched,
        )
        assert sup.supervision.resplits == 1
        scale = np.abs(qaoa_ref.rho._t).max()
        assert np.allclose(
            sup.rho._t, qaoa_ref.rho._t, atol=1e-12 * scale, rtol=1e-12
        )
        assert sup.trace == pytest.approx(qaoa_ref.trace, rel=1e-12)

    def test_in_process_fallback_bit_identical(self, chain, chain_ref):
        """With re-splitting off, a persistently failing shard finishes
        in-process — same computation, bit-identical result."""
        sched = FaultSchedule(
            [Fault("crash", "shard", 0, a) for a in range(3)]
        )
        sup = supervised_integrate(
            chain, shards=2, retries=2, backoff=0.0, resplit=False,
            faults=sched,
        )
        # The crashing shard falls back in-process; its sibling may or may
        # not have been poisoned by the broken pool (a race), so >= 1.
        assert sup.supervision.in_process >= 1
        assert_same_rho(sup, chain_ref)

    def test_exhausted_recovery_names_shard_and_mass(self, chain):
        sched = FaultSchedule(
            [Fault("crash", "shard", 0, a) for a in range(2)]
        )
        with pytest.raises(PatternError) as err:
            supervised_integrate(
                chain, shards=2, retries=1, backoff=0.0, resplit=False,
                in_process_fallback=False, faults=sched,
            )
        msg = str(err.value)
        assert "shard 0" in msg
        assert "probability mass" in msg
        assert "retries=" in msg


class TestUnsupervisedDiagnostic:
    """Satellite: plain integrate(shards=N) raises an actionable
    PatternError on BrokenProcessPool instead of the raw traceback."""

    def test_broken_pool_becomes_pattern_error(self, chain, monkeypatch):
        import repro.mbqc.density_backend as db

        monkeypatch.setattr(db, "_integrate_shard", _exit_now)
        with pytest.raises(PatternError) as err:
            get_backend("density").integrate(chain, shards=2)
        msg = str(err.value)
        assert "shard 0/2" in msg
        assert "frontier branches" in msg
        assert "supervised_integrate" in msg
