"""Higher-order MBQC-QAOA: hyperedge gadgets and the PUBO compiler."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.gadgets import WireTracker
from repro.core.hyper import compile_pubo_qaoa_pattern, pubo_resource_counts
from repro.core.verify import (
    check_pattern_determinism,
    pattern_equals_unitary,
    pattern_state_equals,
)
from repro.linalg import PauliString
from repro.problems.pubo import PUBO, MaxThreeSat
from repro.qaoa import qaoa_state


def zk_exponential(k: int, theta: float) -> np.ndarray:
    """exp(i (theta/2) Z^{⊗k})."""
    z = PauliString({i: "Z" for i in range(k)}).to_matrix(k)
    return expm(1j * (theta / 2.0) * z)


class TestHyperedgeGadget:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_exponential(self, k):
        theta = 0.83
        tracker = WireTracker.begin(k, open_inputs=True)
        tracker.hyperedge_gadget(list(range(k)), theta)
        p = tracker.finish()
        assert pattern_equals_unitary(p, zk_exponential(k, theta))
        assert check_pattern_determinism(p)

    def test_k1_equals_hanging_rz(self):
        theta = -0.71
        t1 = WireTracker.begin(1, open_inputs=True)
        t1.hyperedge_gadget([0], theta)
        t2 = WireTracker.begin(1, open_inputs=True)
        t2.hanging_rz_gadget(0, theta)
        from repro.mbqc.runner import pattern_to_matrix

        m1 = pattern_to_matrix(t1.finish(), {1: 0})
        m2 = pattern_to_matrix(t2.finish(), {1: 0})
        assert np.allclose(m1, m2)

    def test_one_ancilla_k_entanglers(self):
        tracker = WireTracker.begin(3, open_inputs=True)
        tracker.hyperedge_gadget([0, 1, 2], 0.4)
        p = tracker.finish()
        assert p.num_nodes() == 4
        assert len(p.entangling_edges()) == 3

    def test_byproduct_adaptivity_after_mixer(self):
        tracker = WireTracker.begin(3, open_inputs=True)
        for w in range(3):
            tracker.rx(w, 0.6)
        a = tracker.hyperedge_gadget([0, 1, 2], 0.9)
        p = tracker.finish()
        m = p.measurement_of(a)
        assert len(m.s_domain) == 3  # all three wires' X byproducts
        from repro.linalg import kron_all, rx as rx_mat

        u = zk_exponential(3, 0.9) @ kron_all([rx_mat(0.6)] * 3)
        assert pattern_equals_unitary(p, u, max_branches=16, seed=0)

    def test_validation(self):
        tracker = WireTracker.begin(2, open_inputs=True)
        with pytest.raises(ValueError):
            tracker.hyperedge_gadget([0, 0], 0.1)
        with pytest.raises(ValueError):
            tracker.hyperedge_gadget([], 0.1)


class TestPUBOCompiler:
    def test_cubic_term_state_preparation(self):
        pubo = PUBO(3, {frozenset({0, 1, 2}): 0.8, frozenset({0, 1}): -0.5})
        gammas, betas = [0.45], [0.3]
        pattern = compile_pubo_qaoa_pattern(pubo, gammas, betas)
        target = qaoa_state(pubo.energy_vector(), gammas, betas)
        assert pattern_state_equals(pattern, target, max_branches=32, seed=1)

    def test_depth_two(self):
        pubo = PUBO(3, {frozenset({0, 1, 2}): 1.0})
        gammas, betas = [0.3, -0.7], [0.5, 0.2]
        pattern = compile_pubo_qaoa_pattern(pubo, gammas, betas)
        target = qaoa_state(pubo.energy_vector(), gammas, betas)
        assert pattern_state_equals(pattern, target, max_branches=24, seed=2)

    def test_open_inputs_unitary(self):
        pubo = PUBO(2, {frozenset({0, 1}): 0.6})
        pattern = compile_pubo_qaoa_pattern(pubo, [0.4], [0.25], open_inputs=True)
        assert check_pattern_determinism(pattern, max_branches=32, seed=3)

    def test_graph_first_schedule(self):
        pubo = PUBO(2, {frozenset({0, 1}): 0.6})
        pattern = compile_pubo_qaoa_pattern(pubo, [0.4], [0.25], schedule="graph-first")
        target = qaoa_state(pubo.energy_vector(), [0.4], [0.25])
        assert pattern_state_equals(pattern, target, max_branches=16, seed=4)

    def test_max3sat_small(self):
        sat = MaxThreeSat(3, [((0, False), (1, True), (2, False))])
        pubo = sat.to_pubo()
        gammas, betas = [0.5], [0.4]
        pattern = compile_pubo_qaoa_pattern(pubo, gammas, betas)
        target = qaoa_state(pubo.energy_vector(), gammas, betas)
        assert pattern_state_equals(pattern, target, max_branches=16, seed=5)

    def test_resource_counts(self):
        pubo = PUBO(4, {frozenset({0, 1, 2}): 1.0, frozenset({1, 3}): 0.5})
        counts = pubo_resource_counts(pubo, p=2)
        assert counts["total_nodes"] == 4 + 2 * (2 + 8)
        assert counts["entanglers"] == 2 * ((3 + 2) + 8)
        assert counts["max_order"] == 3
        pattern = compile_pubo_qaoa_pattern(pubo, [0.1, 0.2], [0.3, 0.4])
        assert pattern.num_nodes() == counts["total_nodes"]
        assert len(pattern.entangling_edges()) == counts["entanglers"]

    def test_validation(self):
        pubo = PUBO(2, {frozenset({0, 1}): 1.0})
        with pytest.raises(ValueError):
            compile_pubo_qaoa_pattern(pubo, [0.1], [])
        with pytest.raises(ValueError):
            compile_pubo_qaoa_pattern(pubo, [0.1], [0.1], schedule="nope")
        with pytest.raises(ValueError):
            pubo_resource_counts(pubo, p=-1)
