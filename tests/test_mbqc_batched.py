"""Batched pattern-execution engine vs the sequential reference path.

The contract: for any pattern and any forced branch,
``pattern_to_matrix`` (one batched sweep over all input columns) equals
``pattern_to_matrix_sequential`` (one full pattern run per column) to
1e-9 — on hand-built primitives and on randomized compiled QAOA patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_qaoa_pattern
from repro.core.verify import branch_unitaries, check_pattern_determinism
from repro.mbqc import (
    Pattern,
    PatternError,
    StatevectorBackend,
    compile_pattern,
    default_backend,
    pattern_to_matrix,
    pattern_to_matrix_sequential,
)
from repro.mbqc.backend import PatternBackend
from repro.mbqc.runner import enumerate_branches
from repro.problems import MaxCut
from repro.sim import ZeroProbabilityBranch


def assert_batched_equals_sequential(pattern, branch=None):
    a = pattern_to_matrix(pattern, branch)
    b = pattern_to_matrix_sequential(pattern, branch)
    assert a.shape == b.shape
    assert np.allclose(a, b, atol=1e-9), np.abs(a - b).max()


class TestHandPatterns:
    def test_j_gate_all_branches(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.7).x(1, {0})
        for branch in enumerate_branches(p):
            assert_batched_equals_sequential(p, branch)

    def test_cz_on_inputs(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        assert_batched_equals_sequential(p)

    def test_no_input_state_prep(self):
        p = Pattern(input_nodes=[], output_nodes=[0, 2])
        for v in range(4):
            p.n(v)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            p.e(u, v)
        p.m(3, "YZ", 0.0).m(1, "XY", 0.0).x(2, {1})
        for branch in enumerate_branches(p):
            assert_batched_equals_sequential(p, branch)

    def test_no_output_pattern(self):
        p = Pattern(input_nodes=[0], output_nodes=[])
        p.m(0, "XY", 0.3)
        assert_batched_equals_sequential(p, {0: 0})

    def test_no_output_amplitude_preserved(self):
        # Regression: the branch amplitude of a fully-measured pattern used
        # to be silently reset to 1 by the sequential path; the correct map
        # is the bra of the projected basis vector.
        from repro.sim import MeasurementBasis

        p = Pattern(input_nodes=[0], output_nodes=[])
        p.m(0, "XY", 0.3)
        m = pattern_to_matrix(p, {0: 0})
        b0 = MeasurementBasis.xy(0.3).vectors()[0]
        assert np.allclose(m, b0.conj().reshape(1, 2), atol=1e-12)

    def test_all_planes_and_cliffords(self):
        p = Pattern(input_nodes=[0], output_nodes=[3])
        p.n(1).e(0, 1).m(0, "XZ", 0.4)
        p.n(2).e(1, 2).m(1, "YZ", -0.9, t_domain={0})
        p.n(3).e(2, 3).m(2, "XY", 1.3, s_domain={1}, t_domain={0})
        p.x(3, {2}).z(3, {0}).c(3, "h").c(3, "s")
        for branch in enumerate_branches(p):
            assert_batched_equals_sequential(p, branch)

    def test_impossible_branch_raises_batched_too(self):
        p = Pattern(input_nodes=[], output_nodes=[])
        p.n(0, "zero").m(0, "YZ", 0.0)
        with pytest.raises(ZeroProbabilityBranch):
            pattern_to_matrix(p, {0: 1})

    def test_missing_forced_outcomes(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", 0.2).x(1, {0})
        with pytest.raises(PatternError):
            pattern_to_matrix(p, {})


class TestCompiledQAOAPatterns:
    """Property test of the issue: batched == sequential to 1e-9 on
    randomized compiled QAOA patterns (random instance, parameters, depth,
    linear mode, and forced branch)."""

    @given(
        n=st.integers(min_value=2, max_value=4),
        p_depth=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        linear_mode=st.sampled_from(["hanging", "fused"]),
        open_inputs=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_equals_sequential(self, n, p_depth, seed, linear_mode, open_inputs):
        rng = np.random.default_rng(seed)
        qubo = MaxCut.random_regular(
            min(n - 1, 2) if n > 2 else 1, n, seed=seed % 1000
        ).to_qubo()
        gammas = rng.uniform(-np.pi, np.pi, p_depth)
        betas = rng.uniform(-np.pi / 2, np.pi / 2, p_depth)
        compiled = compile_qaoa_pattern(
            qubo, gammas, betas, open_inputs=open_inputs, linear_mode=linear_mode
        )
        measured = compiled.pattern.measured_nodes()
        branch = {node: int(rng.integers(2)) for node in measured}
        assert_batched_equals_sequential(compiled.pattern, branch)

    def test_branch_map_consumer(self):
        qubo = MaxCut.ring(4).to_qubo()
        compiled = compile_qaoa_pattern(qubo, [0.3], [0.5], open_inputs=True)
        m = compiled.branch_map()
        assert m.shape == (16, 16)
        assert np.allclose(m, pattern_to_matrix_sequential(compiled.pattern), atol=1e-9)
        # The executable is compiled once and cached.
        assert compiled.executable() is compiled.executable()

    def test_determinism_check_via_engine(self):
        qubo = MaxCut(3, [(0, 1), (1, 2)]).to_qubo()
        compiled = compile_qaoa_pattern(qubo, [0.4], [0.2])
        assert check_pattern_determinism(compiled.pattern, max_branches=8, seed=1)


class TestBackendProtocol:
    def test_default_backend_is_statevector(self):
        backend = default_backend()
        assert isinstance(backend, StatevectorBackend)
        assert backend.name == "statevector"
        assert default_backend() is backend  # shared instance

    def test_statevector_backend_satisfies_protocol(self):
        assert isinstance(StatevectorBackend(), PatternBackend)

    def test_supports_everything(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", 0.1).x(1, {0})
        assert StatevectorBackend().supports(compile_pattern(p))

    def test_explicit_backend_threading(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        maps = branch_unitaries(p, backend=StatevectorBackend())
        assert len(maps) == 1
        from repro.linalg import CZ

        assert np.allclose(maps[0][1], CZ, atol=1e-12)

    def test_input_block_size_mismatch(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        c = compile_pattern(p)
        with pytest.raises(PatternError, match="inputs"):
            StatevectorBackend().run_branch_batch(c, np.eye(2, dtype=complex), {})

    def test_outcomes_echo_branch_in_measurement_order(self):
        p = Pattern(input_nodes=[0], output_nodes=[2])
        p.n(1).e(0, 1).m(0, "XY", 0.0)
        p.n(2).e(1, 2).m(1, "XY", 0.5, s_domain={0})
        p.x(2, {1}).z(2, {0})
        c = compile_pattern(p)
        branch = {0: 1, 1: 0}
        run = StatevectorBackend().run_branch_batch(c, np.eye(2, dtype=complex), branch)
        assert run.outcomes == branch
        assert list(run.outcomes) == list(c.measured_nodes)
        assert run.states.shape == (2, 2)
