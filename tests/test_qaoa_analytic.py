"""Analytic p=1 MaxCut expectations (ref. [40]) vs the exact simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import MaxCut
from repro.qaoa import qaoa_expectation
from repro.qaoa.analytic import (
    maxcut_p1_expectation,
    maxcut_p1_grid_optimum,
    ring_p1_optimum,
)
from repro.utils import grid_graph


GRAPHS = [
    ("ring6", MaxCut.ring(6)),
    ("ring5", MaxCut.ring(5)),
    ("path4", MaxCut(4, [(0, 1), (1, 2), (2, 3)])),
    ("star5", MaxCut(5, [(0, i) for i in range(1, 5)])),
    ("triangle", MaxCut(3, [(0, 1), (1, 2), (0, 2)])),  # λ = 1 per edge
    ("K4", MaxCut.complete(4)),                          # λ = 2 per edge
    ("3reg8", MaxCut.random_regular(3, 8, seed=4)),
]


class TestFormulaVsSimulator:
    @pytest.mark.parametrize("name,mc", GRAPHS)
    @pytest.mark.parametrize("gamma,beta", [(0.3, 0.5), (-0.9, 0.2), (1.4, -1.1)])
    def test_matches_exact_simulation(self, name, mc, gamma, beta):
        cost = mc.to_qubo().cost_vector()  # = -cut
        exact_cut = -qaoa_expectation(cost, [gamma], [beta])
        analytic = maxcut_p1_expectation(mc, gamma, beta)
        assert analytic == pytest.approx(exact_cut, abs=1e-9), name

    @given(st.floats(-np.pi, np.pi), st.floats(-np.pi, np.pi))
    @settings(max_examples=25, deadline=None)
    def test_property_on_triangle_graph(self, gamma, beta):
        mc = MaxCut(3, [(0, 1), (1, 2), (0, 2)])
        cost = mc.to_qubo().cost_vector()
        exact_cut = -qaoa_expectation(cost, [gamma], [beta])
        assert maxcut_p1_expectation(mc, gamma, beta) == pytest.approx(
            exact_cut, abs=1e-8
        )

    def test_zero_angles_give_half_edges(self):
        mc = MaxCut.ring(8)
        assert maxcut_p1_expectation(mc, 0.0, 0.0) == pytest.approx(4.0)

    def test_weighted_rejected(self):
        mc = MaxCut(2, [(0, 1)], weights={(0, 1): 2.0})
        with pytest.raises(ValueError):
            maxcut_p1_expectation(mc, 0.1, 0.1)


class TestOptima:
    def test_even_ring_reaches_three_quarters(self):
        mc = MaxCut.ring(8)
        best, g, b = maxcut_p1_grid_optimum(mc, resolution=60)
        assert best == pytest.approx(ring_p1_optimum(8), abs=0.02)
        # And the simulator agrees at those parameters.
        cost = mc.to_qubo().cost_vector()
        assert -qaoa_expectation(cost, [g], [b]) == pytest.approx(best, abs=1e-9)

    def test_scales_to_large_graphs(self):
        """The closed form needs no 2^n vectors: evaluate on a 100-node
        ring (statevector would be 2^100)."""
        mc = MaxCut.ring(100)
        val = maxcut_p1_expectation(mc, 0.3, 0.4)
        assert np.isfinite(val)
        best, _, _ = maxcut_p1_grid_optimum(mc, resolution=24)
        assert best / 100.0 > 0.70  # near the 3/4 ring limit

    def test_ring_optimum_validation(self):
        with pytest.raises(ValueError):
            ring_p1_optimum(2)
