"""MPSState vs the dense StateVector reference.

The MPS simulator must agree with the dense register *exactly* (up to
float error) whenever no truncation happens — chi_max unbounded, cutoff at
machine noise — because every split is then a full-rank SVD.  These tests
drive both simulators through identical random programs (grow / gate /
entangle / measure / shrink) and compare amplitudes, probabilities, and
branch weights.
"""

import numpy as np
import pytest

from repro.sim import MeasurementBasis, MPSState, StateVector, ZeroProbabilityBranch
from repro.sim.mps import MPS_DENSIFY_MAX


def random_unitary(rng, d=2):
    m = rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))
    q, r = np.linalg.qr(m)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def random_state(rng):
    v = rng.normal(size=2) + 1j * rng.normal(size=2)
    return v / np.linalg.norm(v)


def random_basis(rng):
    return MeasurementBasis.xy(float(rng.uniform(-np.pi, np.pi)))


class TestExactAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuit_amplitudes(self, seed):
        """Grow to 6 qubits, apply random 1q/2q layers, compare dense."""
        rng = np.random.default_rng(seed)
        mps = MPSState()
        sv = StateVector()
        for _ in range(6):
            s = random_state(rng)
            mps.add_qubit(s)
            sv.add_qubit(s)
        for _ in range(25):
            if rng.random() < 0.5:
                q = int(rng.integers(0, 6))
                u = random_unitary(rng)
                mps.apply_1q(u, q)
                sv.apply_1q(u, q)
            else:
                q0, q1 = map(int, rng.choice(6, size=2, replace=False))
                if rng.random() < 0.5:
                    mps.apply_cz(q0, q1)
                    sv.apply_cz(q0, q1)
                else:
                    u = random_unitary(rng, 4)
                    mps.apply_2q(u, q0, q1)
                    sv.apply_2q(u, q0, q1)
        assert mps.truncation_error < 1e-20  # sub-cutoff machine noise only
        np.testing.assert_allclose(mps.to_array(), sv.to_array(), atol=1e-10)

    @pytest.mark.parametrize("seed", range(4))
    def test_forced_measurements_match_probabilities(self, seed):
        """Forced branches: identical probabilities and post-states, down
        to the empty register (weight lives in the scalar amplitude)."""
        rng = np.random.default_rng(100 + seed)
        mps = MPSState()
        sv = StateVector()
        for _ in range(5):
            s = random_state(rng)
            mps.add_qubit(s)
            sv.add_qubit(s)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
            mps.apply_cz(a, b)
            sv.apply_cz(a, b)
        for k in range(5):
            slot = int(rng.integers(0, 5 - k))
            basis = random_basis(rng)
            force = int(rng.integers(0, 2))
            out_m, p_m = mps.measure(slot, basis, force=force)
            out_s, p_s = sv.measure(slot, basis, force=force)
            assert out_m == out_s == force
            assert p_m == pytest.approx(p_s, abs=1e-10)
            if mps.num_qubits:
                np.testing.assert_allclose(
                    mps.to_array(), sv.to_array(), atol=1e-10
                )
        assert mps.num_qubits == 0
        # Norm of the empty register is the (renormalized) branch phase.
        assert mps.norm() == pytest.approx(1.0, abs=1e-10)

    @pytest.mark.parametrize("seed", range(4))
    def test_sampled_measurement_shares_the_u_convention(self, seed):
        """With the same pre-drawn deviate both simulators take the same
        branch: outcome 0 iff u < p0 (the shared trajectory convention)."""
        rng = np.random.default_rng(200 + seed)
        mps = MPSState()
        sv = StateVector()
        for _ in range(4):
            s = random_state(rng)
            mps.add_qubit(s)
            sv.add_qubit(s)
        mps.apply_cz(0, 1)
        sv.apply_cz(0, 1)
        mps.apply_cz(2, 3)
        sv.apply_cz(2, 3)
        for _ in range(4):
            basis = random_basis(rng)
            u = float(rng.random())
            out_m, p_m = mps.measure(0, basis, u=u)
            p0 = sv.measure_probability(0, basis, 0)
            expected = 0 if u < p0 else 1
            sv.measure(0, basis, force=expected)
            assert out_m == expected
            assert p_m == pytest.approx(p0 if expected == 0 else 1 - p0, abs=1e-10)
            np.testing.assert_allclose(mps.to_array(), sv.to_array(), atol=1e-10)


class TestRegisterOps:
    def test_permute_is_pure_relabel(self):
        states = [random_state(np.random.default_rng(i)) for i in range(3)]
        mps = MPSState()
        for s in states:
            mps.add_qubit(s)
        mps.permute([2, 0, 1])  # new slot j holds old slot order[j]
        # Little-endian: slot 0 is the least-significant (rightmost kron).
        expected = np.kron(np.kron(states[1], states[0]), states[2])
        np.testing.assert_allclose(mps.to_array(), expected, atol=1e-12)

    def test_permute_rejects_non_permutations(self):
        mps = MPSState()
        mps.add_qubit([1, 0])
        mps.add_qubit([0, 1])
        with pytest.raises(ValueError, match="permutation"):
            mps.permute([0, 0])

    def test_discard_product_qubit(self):
        rng = np.random.default_rng(7)
        s0, s1, s2 = (random_state(rng) for _ in range(3))
        mps = MPSState()
        sv = StateVector()
        for s in (s0, s1, s2):
            mps.add_qubit(s)
            sv.add_qubit(s)
        mps.apply_cz(0, 2)
        sv.apply_cz(0, 2)
        mps.discard(1)
        ref = StateVector()
        ref.add_qubit(s0)
        ref.add_qubit(s2)
        ref.apply_cz(0, 1)
        np.testing.assert_allclose(mps.to_array(), ref.to_array(), atol=1e-10)

    def test_discard_entangled_raises(self):
        mps = MPSState()
        mps.add_qubit(np.array([1, 1]) / np.sqrt(2))
        mps.add_qubit(np.array([1, 1]) / np.sqrt(2))
        mps.apply_cz(0, 1)
        with pytest.raises(ValueError, match="entangled"):
            mps.discard(0)

    def test_densify_cap(self):
        mps = MPSState()
        for _ in range(MPS_DENSIFY_MAX + 1):
            mps.add_qubit([1, 0])
        with pytest.raises(ValueError, match="densify"):
            mps.to_array()


class TestTruncation:
    def test_chi_cap_accumulates_error(self):
        """chi_max=1 cannot hold a CZ-entangled |++> pair: the split keeps
        one singular value and records the discarded weight."""
        mps = MPSState(chi_max=1)
        plus = np.array([1, 1]) / np.sqrt(2)
        mps.add_qubit(plus)
        mps.add_qubit(plus)
        mps.apply_cz(0, 1)
        assert mps.max_bond == 1
        assert mps.truncation_error > 0.1
        assert np.linalg.norm(mps.to_array()) < 1.0

    def test_unbounded_chi_is_exact(self):
        mps = MPSState()
        plus = np.array([1, 1]) / np.sqrt(2)
        for _ in range(4):
            mps.add_qubit(plus)
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            mps.apply_cz(a, b)
        assert mps.truncation_error < 1e-20
        assert np.linalg.norm(mps.to_array()) == pytest.approx(1.0, abs=1e-10)

    def test_copy_is_independent(self):
        mps = MPSState()
        plus = np.array([1, 1]) / np.sqrt(2)
        mps.add_qubit(plus)
        mps.add_qubit(plus)
        mps.apply_cz(0, 1)
        snap = mps.copy()
        mps.measure(0, MeasurementBasis.xy(0.3), force=0)
        assert snap.num_qubits == 2
        assert mps.num_qubits == 1


class TestDenseInterchange:
    @pytest.mark.parametrize("k", [0, 1, 2, 4])
    def test_from_dense_row_round_trip(self, k):
        rng = np.random.default_rng(40 + k)
        row = rng.normal(size=1 << k) + 1j * rng.normal(size=1 << k)
        row /= np.linalg.norm(row)
        mps = MPSState.from_dense_row(row)
        assert mps.truncation_error == 0.0
        np.testing.assert_allclose(mps.to_array(), row, atol=1e-10)

    def test_from_dense_row_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="2\\^k"):
            MPSState.from_dense_row(np.ones(3))

    def test_zero_probability_branch_raises(self):
        mps = MPSState()
        mps.add_qubit([1, 0])  # |0>
        with pytest.raises(ZeroProbabilityBranch):
            mps.measure(0, MeasurementBasis.pauli("Z"), force=1)
