"""Tests for the CHP stabilizer tableau simulator, including cross-checks
against the dense statevector simulator on random Clifford circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import PauliString, allclose_up_to_global_phase
from repro.sim import Circuit, StateVector
from repro.stab import StabilizerState, graph_state_stabilizers
from repro.utils import cycle_graph, erdos_renyi_graph


class TestBasics:
    def test_initial_state_stabilized_by_z(self):
        st_ = StabilizerState(3)
        for q in range(3):
            assert st_.stabilizes(PauliString.single(q, "Z"))
            assert not st_.stabilizes(PauliString.single(q, "X"))

    def test_plus_state(self):
        st_ = StabilizerState.plus_state(2)
        assert st_.stabilizes(PauliString.single(0, "X"))
        assert st_.stabilizes(PauliString.single(1, "X"))

    def test_x_gate_flips_sign(self):
        st_ = StabilizerState(1)
        st_.x_gate(0)
        assert st_.stabilizes(PauliString.single(0, "Z", -1))

    def test_bell_state_stabilizers(self):
        st_ = StabilizerState(2)
        st_.h(0)
        st_.cnot(0, 1)
        assert st_.stabilizes(PauliString({0: "X", 1: "X"}))
        assert st_.stabilizes(PauliString({0: "Z", 1: "Z"}))
        assert not st_.stabilizes(PauliString({0: "Z", 1: "Z"}, -1))

    def test_s_gate(self):
        st_ = StabilizerState.plus_state(1)
        st_.s(0)
        # S|+> is stabilized by Y.
        assert st_.stabilizes(PauliString.single(0, "Y"))

    def test_sdg_inverse_of_s(self):
        st_ = StabilizerState.plus_state(1)
        st_.s(0)
        st_.sdg(0)
        assert st_.stabilizes(PauliString.single(0, "X"))

    def test_qubit_range_check(self):
        st_ = StabilizerState(2)
        with pytest.raises(ValueError):
            st_.h(2)
        with pytest.raises(ValueError):
            st_.cnot(0, 0)


class TestGraphStates:
    def test_graph_state_canonical_generators(self):
        n, edges = cycle_graph(5)
        st_ = StabilizerState.graph_state(n, edges)
        for gen in graph_state_stabilizers(n, edges):
            assert st_.stabilizes(gen)

    def test_large_graph_state(self):
        n, edges = erdos_renyi_graph(40, 0.15, seed=9)
        st_ = StabilizerState.graph_state(n, edges)
        for gen in graph_state_stabilizers(n, edges)[:10]:
            assert st_.stabilizes(gen)

    def test_graph_state_matches_dense(self):
        n, edges = cycle_graph(4)
        st_ = StabilizerState.graph_state(n, edges)
        dense = StateVector.plus(n)
        for u, v in edges:
            dense.apply_cz(u, v)
        assert allclose_up_to_global_phase(st_.to_statevector(), dense.to_array())


class TestMeasurement:
    def test_z_measure_deterministic(self):
        st_ = StabilizerState(1)
        assert st_.measure_z(0) == 0
        st_.x_gate(0)
        assert st_.measure_z(0) == 1

    def test_z_measure_random_then_repeatable(self):
        st_ = StabilizerState.plus_state(1)
        out = st_.measure_z(0, rng=np.random.default_rng(0))
        # After collapse, repeated measurement is deterministic.
        assert st_.measure_z(0) == out

    def test_force_contradiction_raises(self):
        st_ = StabilizerState(1)
        with pytest.raises(ValueError):
            st_.measure_z(0, force=1)

    def test_bell_correlations(self):
        for force in (0, 1):
            st_ = StabilizerState(2)
            st_.h(0)
            st_.cnot(0, 1)
            a = st_.measure_z(0, force=force)
            b = st_.measure_z(1)
            assert a == b == force

    def test_x_measurement_of_plus(self):
        st_ = StabilizerState.plus_state(1)
        assert st_.measure_x(0) == 0

    def test_y_measurement_of_s_plus(self):
        st_ = StabilizerState.plus_state(1)
        st_.s(0)
        assert st_.measure_y(0) == 0


CLIFFORD_1Q = ["h", "s", "x", "z", "y", "sdg"]


class TestCrossCheck:
    @given(st.lists(st.tuples(st.sampled_from(CLIFFORD_1Q + ["cnot", "cz"]),
                              st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=25),
           st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_random_clifford_circuit_agrees(self, moves, measured_qubit):
        n = 4
        tab = StabilizerState(n)
        circ = Circuit(n)
        for name, a, b in moves:
            if name in CLIFFORD_1Q:
                tab.apply_named(name, (a,))
                circ.append(name, (a,))
            else:
                if a == b:
                    continue
                tab.apply_named(name, (a, b))
                circ.append(name, (a, b))
        dense = circ.run().to_array()
        assert allclose_up_to_global_phase(tab.to_statevector(), dense)

    def test_apply_named_rejects_non_clifford(self):
        tab = StabilizerState(2)
        with pytest.raises(ValueError):
            tab.apply_named("rz", (0,))
