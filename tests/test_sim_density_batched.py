"""Batched density-matrix substrate: every kernel vs scalar replicas.

The contract under test is the one the vectorized density-engine sampler
rests on: a :class:`~repro.sim.density_batched.BatchedDensityMatrix`
evolving ``B`` whole density tensors in lockstep must reproduce ``B``
independent scalar :class:`~repro.sim.density.DensityMatrix` evolutions —
kernel for kernel (Kraus einsum, masked Paulis, ``measure_sampled``,
``discard``, readout-flip mixing), with trace preservation, Hermiticity,
and positivity holding after each op.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.gates import CZ, HADAMARD, PAULI_X, PAULI_Z
from repro.sim import (
    BatchedDensityMatrix,
    DensityMatrix,
    MeasurementBasis,
    ZeroProbabilityBranch,
)
from repro.sim.density import amplitude_damping_kraus, depolarizing_kraus

ATOL = 1e-10


def random_rows(rng, b, n):
    """``b`` random unit amplitude rows on ``n`` qubits."""
    rows = rng.normal(size=(b, 1 << n)) + 1j * rng.normal(size=(b, 1 << n))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def random_batch(rng, b, n, mixed=True):
    """A batched state plus its ``b`` independent scalar replicas."""
    batch = BatchedDensityMatrix.from_pure_rows(random_rows(rng, b, n))
    if mixed and n:
        # Mix the states so the kernels are exercised off the pure manifold.
        batch.apply_kraus(depolarizing_kraus(0.3), int(rng.integers(n)))
    return batch, [batch.shot(j) for j in range(b)]


def random_unitary(rng, dim):
    m = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(m)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


def random_basis(rng):
    plane = ("xy", "yz", "xz")[int(rng.integers(3))]
    return getattr(MeasurementBasis, plane)(float(rng.uniform(-np.pi, np.pi)))


def assert_matches_replicas(batch, replicas):
    """Batched rows equal the scalar replicas and are physical states."""
    mats = batch.to_matrices()
    assert len(replicas) == batch.batch_size
    for j, rep in enumerate(replicas):
        assert np.allclose(mats[j], rep.to_matrix(), atol=ATOL)
    for m in mats:
        assert np.allclose(m, m.conj().T, atol=ATOL), "lost Hermiticity"
        assert np.linalg.eigvalsh(m).min() >= -1e-8, "lost positivity"
    assert np.allclose(batch.traces(), [r.trace() for r in replicas], atol=ATOL)


class TestConstruction:
    @given(
        b=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_from_pure_rows_matches_scalar_outer(self, b, n, seed):
        rows = random_rows(np.random.default_rng(seed), b, n)
        batch = BatchedDensityMatrix.from_pure_rows(rows)
        assert batch.batch_size == b and batch.num_qubits == n
        assert_matches_replicas(
            batch, [DensityMatrix.from_pure(row) for row in rows]
        )
        assert np.allclose(batch.traces(), 1.0, atol=ATOL)

    def test_from_replicas_tiles_one_state(self):
        rng = np.random.default_rng(0)
        rho = DensityMatrix.from_pure(random_rows(rng, 1, 2)[0])
        rho.apply_kraus(amplitude_damping_kraus(0.4), 1)
        batch = BatchedDensityMatrix.from_replicas(rho, 3)
        assert_matches_replicas(batch, [rho, rho, rho])

    def test_probability_rows_match_scalar(self):
        rng = np.random.default_rng(1)
        batch, reps = random_batch(rng, 4, 3)
        rows = batch.probability_rows()
        for j, rep in enumerate(reps):
            assert np.allclose(rows[j], rep.probabilities(), atol=ATOL)

    def test_default_state_is_zero_projector(self):
        batch = BatchedDensityMatrix(3, 2)
        rows = batch.probability_rows()
        assert np.allclose(rows[:, 0], 1.0) and np.allclose(rows[:, 1:], 0.0)

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError, match="power of two"):
            BatchedDensityMatrix.from_pure_rows(np.ones((2, 3)))
        with pytest.raises(ValueError, match="positive"):
            BatchedDensityMatrix(0, 1)
        with pytest.raises(ValueError, match="2-D"):
            BatchedDensityMatrix.from_pure_rows(np.ones(4))


class TestRegisterManagement:
    @given(
        pos=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_positional_add_qubit(self, pos, seed):
        rng = np.random.default_rng(seed)
        batch, reps = random_batch(rng, 3, 2)
        state = random_rows(rng, 1, 1)[0]
        batch.add_qubit(state, position=pos)
        for rep in reps:
            rep.add_qubit(state, position=pos)
        assert_matches_replicas(batch, reps)

    def test_add_qubit_to_empty_register(self):
        batch = BatchedDensityMatrix(2, 0)
        batch.add_qubit(np.array([1.0, 0.0]))
        assert batch.num_qubits == 1
        assert np.allclose(batch.traces(), 1.0)

    def test_permute_matches_scalar(self):
        rng = np.random.default_rng(3)
        batch, reps = random_batch(rng, 3, 3)
        order = [2, 0, 1]
        batch.permute(order)
        for rep in reps:
            rep.permute(order)
        assert_matches_replicas(batch, reps)

    @given(
        q=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_discard_is_batched_partial_trace(self, q, seed):
        batch, reps = random_batch(np.random.default_rng(seed), 3, 3)
        batch.discard(q)
        for rep in reps:
            rep.partial_trace(q)
        assert batch.num_qubits == 2
        assert_matches_replicas(batch, reps)

    def test_discard_last_qubit_keeps_traces(self):
        batch, _ = random_batch(np.random.default_rng(4), 2, 1)
        before = batch.traces()
        batch.discard(0)
        assert batch.num_qubits == 0
        assert np.allclose(batch.traces(), before, atol=ATOL)

    def test_range_checks(self):
        batch = BatchedDensityMatrix(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            batch.discard(2)
        with pytest.raises(ValueError, match="out of range"):
            batch.add_qubit(np.array([1.0, 0.0]), position=5)
        with pytest.raises(ValueError, match="permutation"):
            batch.permute([0, 0])


class TestUnitaries:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_apply_1q_and_2q_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        batch, reps = random_batch(rng, 3, 3)
        u = random_unitary(rng, 2)
        q = int(rng.integers(3))
        batch.apply_1q(u, q)
        for rep in reps:
            rep.apply_1q(u, q)
        u2 = random_unitary(rng, 4)
        q0, q1 = rng.permutation(3)[:2]
        batch.apply_2q(u2, int(q0), int(q1))
        for rep in reps:
            rep.apply_2q(u2, int(q0), int(q1))
        assert_matches_replicas(batch, reps)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_masked_paulis_touch_only_masked_shots(self, seed):
        """The masked-1q kernel behind per-shot conditional corrections and
        sampled Pauli faults: masked shots get the gate, the rest must be
        left bit-for-bit untouched."""
        rng = np.random.default_rng(seed)
        batch, reps = random_batch(rng, 5, 2)
        mask = rng.random(5) < 0.5
        for gate in (PAULI_X, PAULI_Z, HADAMARD):
            q = int(rng.integers(2))
            before = batch.to_matrices()
            batch.apply_1q_masked(gate, q, mask)
            after = batch.to_matrices()
            for j, rep in enumerate(reps):
                if mask[j]:
                    rep.apply_1q(gate, q)
                else:
                    assert np.array_equal(before[j], after[j])
        assert_matches_replicas(batch, reps)

    def test_masked_2q_matches_selective_scalar(self):
        rng = np.random.default_rng(7)
        batch, reps = random_batch(rng, 4, 2)
        mask = np.array([True, False, True, False])
        batch.apply_2q_masked(CZ, 0, 1, mask)
        for j, rep in enumerate(reps):
            if mask[j]:
                rep.apply_2q(CZ, 0, 1)
        assert_matches_replicas(batch, reps)

    def test_all_false_mask_is_identity(self):
        batch, reps = random_batch(np.random.default_rng(8), 3, 2)
        before = batch.to_matrices()
        batch.apply_1q_masked(PAULI_X, 0, np.zeros(3, dtype=bool))
        assert np.array_equal(batch.to_matrices(), before)

    def test_bad_mask_shape_raises(self):
        batch = BatchedDensityMatrix(3, 1)
        with pytest.raises(ValueError, match="mask"):
            batch.apply_1q_masked(PAULI_X, 0, np.zeros(2, dtype=bool))


class TestKraus:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_1q_channels_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        batch, reps = random_batch(rng, 3, 2)
        for kraus in (
            depolarizing_kraus(float(rng.uniform(0, 1))),
            amplitude_damping_kraus(float(rng.uniform(0, 1))),
        ):
            q = int(rng.integers(2))
            batch.apply_kraus(kraus, q)
            for rep in reps:
                rep.apply_kraus(kraus, q)
            assert_matches_replicas(batch, reps)

    def test_2q_kraus_matches_scalar(self):
        """Multi-qubit Kraus einsum: a two-qubit unitary-conjugation channel
        plus a genuinely mixing rank-2 set."""
        rng = np.random.default_rng(11)
        batch, reps = random_batch(rng, 3, 3)
        u = random_unitary(rng, 4)
        kraus = [np.sqrt(0.7) * u, np.sqrt(0.3) * np.eye(4)]
        batch.apply_kraus(kraus, (2, 0))
        for rep in reps:
            rep.apply_kraus(kraus, (2, 0))
        assert_matches_replicas(batch, reps)
        assert np.allclose(batch.traces(), [r.trace() for r in reps], atol=ATOL)

    def test_kraus_validation_matches_scalar_contract(self):
        batch = BatchedDensityMatrix(2, 2)
        with pytest.raises(ValueError, match="trace-preserving"):
            batch.apply_kraus([0.5 * np.eye(2)], 0)
        with pytest.raises(ValueError, match="duplicate"):
            batch.apply_kraus([np.eye(4)], (1, 1))
        with pytest.raises(ValueError, match="targets"):
            batch.apply_kraus([np.eye(4)], 0)


class TestMeasureSampled:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_per_shot_bases_and_predrawn_uniforms_match_scalar(self, seed):
        """The sampler kernel: per-shot bases, per-shot outcomes decided by
        one pre-drawn uniform block — outcomes, probabilities, and the
        renormalized post-states must equal B scalar measurements fed the
        same deviates."""
        rng = np.random.default_rng(seed)
        b, n = 4, 3
        batch, reps = random_batch(rng, b, n)
        q = int(rng.integers(n))
        bases = [random_basis(rng) for _ in range(b)]
        vecs = np.stack([np.stack(bas.vectors()) for bas in bases])
        u = rng.random(b)
        outs, probs = batch.measure_sampled(q, vecs, u=u)
        assert batch.num_qubits == n - 1
        for j, rep in enumerate(reps):
            out_ref, prob_ref = rep.measure(q, bases[j], u=float(u[j]))
            assert out_ref == int(outs[j])
            assert prob_ref == pytest.approx(float(probs[j]), abs=ATOL)
        assert_matches_replicas(batch, reps)
        assert np.allclose(batch.traces(), 1.0, atol=1e-8)

    def test_forced_outcome_no_randomness(self):
        rng = np.random.default_rng(5)
        batch, reps = random_batch(rng, 3, 2)
        basis = MeasurementBasis.xy(0.3)
        vecs = np.broadcast_to(np.stack(basis.vectors()), (3, 2, 2))
        outs, probs = batch.measure_sampled(0, vecs, force=1)
        assert np.array_equal(outs, [1, 1, 1])
        for j, rep in enumerate(reps):
            out_ref, prob_ref = rep.measure(0, basis, force=1)
            assert out_ref == 1
            assert prob_ref == pytest.approx(float(probs[j]), abs=ATOL)
        assert_matches_replicas(batch, reps)

    def test_forced_zero_probability_raises(self):
        batch = BatchedDensityMatrix.from_pure_rows(
            np.array([[1.0, 0.0], [1.0, 0.0]], dtype=complex)
        )
        vecs = np.broadcast_to(
            np.stack(MeasurementBasis.pauli("Z").vectors()), (2, 2, 2)
        )
        with pytest.raises(ZeroProbabilityBranch, match="probability ~0"):
            batch.measure_sampled(0, vecs, force=1)

    def test_bad_vec_and_u_shapes_raise(self):
        batch = BatchedDensityMatrix(2, 1)
        good = np.broadcast_to(
            np.stack(MeasurementBasis.pauli("Z").vectors()), (2, 2, 2)
        )
        with pytest.raises(ValueError, match="vecs"):
            batch.measure_sampled(0, good[:1])
        with pytest.raises(ValueError, match="u must"):
            batch.measure_sampled(0, good, u=np.zeros(3))


class TestMeasureForcedFlipMix:
    @given(
        flip_p=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_flip_mix_equals_scalar_projection_pair(self, flip_p, seed):
        """Readout-flip mixing: the post-state must be the two-term mixture
        ``(1-f)·ρ_r + f·ρ_{r⊕1}`` with probability ``(1-f)p_r + f·p_{r⊕1}``
        — checked against scalar ``measure_project`` pairs per shot."""
        rng = np.random.default_rng(seed)
        b = 3
        batch, reps = random_batch(rng, b, 2)
        basis = random_basis(rng)
        vecs = np.broadcast_to(np.stack(basis.vectors()), (b, 2, 2))
        recorded = (rng.random(b) < 0.5).astype(np.int8)
        probs = batch.measure_forced(0, vecs, recorded, flip_p=flip_p)
        mats = batch.to_matrices()
        for j, rep in enumerate(reps):
            r = int(recorded[j])
            dm_r, p_r = rep.measure_project(0, basis, r)
            dm_w, p_w = rep.measure_project(0, basis, r ^ 1)
            t = (1.0 - flip_p) * dm_r._t + flip_p * dm_w._t
            p = (1.0 - flip_p) * p_r + flip_p * p_w
            assert probs[j] == pytest.approx(p, abs=ATOL)
            expect = DensityMatrix(tensor=np.asarray(t) / p).to_matrix()
            assert np.allclose(mats[j], expect, atol=1e-8)
        assert np.allclose(batch.traces(), 1.0, atol=1e-8)

    def test_zero_flip_equals_plain_projection(self):
        rng = np.random.default_rng(13)
        batch, reps = random_batch(rng, 2, 2)
        ref = batch.copy()
        basis = MeasurementBasis.xy(0.8)
        vecs = np.broadcast_to(np.stack(basis.vectors()), (2, 2, 2))
        rec = np.array([0, 1], dtype=np.int8)
        p_mix = batch.measure_forced(1, vecs, rec, flip_p=0.0)
        outs, p_plain = ref.measure_sampled(1, vecs, u=np.array([0.0, 1.0 - 1e-16]))
        assert np.array_equal(outs, rec)
        assert np.allclose(p_mix, p_plain, atol=ATOL)
        assert np.allclose(batch.to_matrices(), ref.to_matrices(), atol=ATOL)

    def test_impossible_recorded_outcome_raises(self):
        batch = BatchedDensityMatrix(2, 1)  # |0><0| per shot
        vecs = np.broadcast_to(
            np.stack(MeasurementBasis.pauli("Z").vectors()), (2, 2, 2)
        )
        with pytest.raises(ZeroProbabilityBranch):
            batch.measure_forced(0, vecs, np.array([0, 1], dtype=np.int8))

    def test_validation(self):
        batch = BatchedDensityMatrix(2, 1)
        vecs = np.broadcast_to(
            np.stack(MeasurementBasis.pauli("Z").vectors()), (2, 2, 2)
        )
        with pytest.raises(ValueError, match="0 or 1"):
            batch.measure_forced(0, vecs, np.array([0, 2], dtype=np.int8))
        with pytest.raises(ValueError, match="probability"):
            batch.measure_forced(
                0, vecs, np.zeros(2, dtype=np.int8), flip_p=1.5
            )


class TestMeasureSplit:
    """The frontier integrator's branch-point kernel: both-outcome
    projection doubling the batch axis, unnormalized."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_children_match_scalar_projections(self, seed):
        rng = np.random.default_rng(seed)
        batch, reps = random_batch(rng, 3, 2)
        basis = random_basis(rng)
        vecs = np.broadcast_to(np.stack(basis.vectors()), (3, 2, 2))
        q = int(rng.integers(2))
        traces = batch.measure_split(q, vecs)
        assert batch.batch_size == 6 and batch.num_qubits == 1
        mats = batch.to_matrices()
        for j, rep in enumerate(reps):
            for o in (0, 1):
                dm, p = rep.measure_project(q, basis, o)
                # children interleave parent-major/outcome-minor and stay
                # unnormalized: the trace IS the outcome probability
                assert traces[2 * j + o] == pytest.approx(p, abs=ATOL)
                assert np.allclose(mats[2 * j + o], dm.to_matrix(), atol=ATOL)

    def test_children_sum_back_to_parent_trace(self):
        rng = np.random.default_rng(3)
        batch, reps = random_batch(rng, 4, 2)
        before = batch.traces()
        vecs = np.broadcast_to(
            np.stack(MeasurementBasis.xy(0.3).vectors()), (4, 2, 2)
        )
        traces = batch.measure_split(0, vecs)
        assert np.allclose(
            traces.reshape(4, 2).sum(axis=1), before, atol=ATOL
        )

    def test_vec_shape_validated(self):
        batch = BatchedDensityMatrix(2, 1)
        with pytest.raises(ValueError, match="batch_size"):
            batch.measure_split(0, np.ones((3, 2, 2), dtype=complex))


class TestMeasureForcedAllowZero:
    def test_zero_probability_elements_survive(self):
        batch = BatchedDensityMatrix(2, 1)  # |0><0| per shot
        vecs = np.broadcast_to(
            np.stack(MeasurementBasis.pauli("Z").vectors()), (2, 2, 2)
        )
        rec = np.array([0, 1], dtype=np.int8)
        rel = batch.measure_forced(0, vecs, rec, allow_zero=True)
        assert rel[0] == pytest.approx(1.0, abs=ATOL)
        assert rel[1] == pytest.approx(0.0, abs=ATOL)
        # the impossible element's state is identically zero, not NaN
        assert np.all(np.isfinite(batch.to_matrices()))

    def test_allow_zero_matches_default_on_reachable_blocks(self):
        rng = np.random.default_rng(11)
        batch, _ = random_batch(rng, 3, 2)
        ref = batch.copy()
        basis = MeasurementBasis.xy(0.4)
        vecs = np.broadcast_to(np.stack(basis.vectors()), (3, 2, 2))
        rec = np.array([0, 1, 0], dtype=np.int8)
        a = batch.measure_forced(0, vecs, rec, flip_p=0.05, allow_zero=True)
        b = ref.measure_forced(0, vecs, rec, flip_p=0.05)
        assert np.array_equal(a, b)
        assert np.array_equal(batch.to_matrices(), ref.to_matrices())
