"""Tests for gate-model QAOA: simulator vs circuits, mixers, optimization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import allclose_up_to_global_phase
from repro.problems import MaxCut, MaximumIndependentSet, GraphColoring
from repro.qaoa import (
    apply_constrained_mis_mixer,
    apply_x_mixer,
    apply_xy_mixer_pair,
    grid_search_p1,
    optimize_qaoa,
    qaoa_circuit,
    qaoa_expectation,
    qaoa_gate_counts,
    qaoa_state,
    qaoa_state_constrained_mis,
    qaoa_state_xy_ring,
    sample_cost,
)
from repro.qaoa.circuits import qaoa_circuit_from_qubo
from repro.qaoa.optimize import best_sampled_solution
from repro.qaoa.simulator import basis_state, plus_state
from repro.utils import popcount_vector


class TestSimulatorVsCircuit:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_fast_state_matches_circuit(self, p):
        mc = MaxCut.ring(4)
        ising = mc.to_qubo().to_ising()
        rng = np.random.default_rng(p)
        gammas = rng.uniform(-1, 1, p)
        betas = rng.uniform(-1, 1, p)
        fast = qaoa_state(ising.energy_vector(), gammas, betas)
        circ = qaoa_circuit(ising, gammas, betas)
        slow = circ.run().to_array()
        assert allclose_up_to_global_phase(fast, slow, atol=1e-9)

    def test_with_linear_terms(self):
        from repro.problems import MinVertexCover

        vc = MinVertexCover(4, [(0, 1), (1, 2), (2, 3)])
        ising = vc.to_qubo().to_ising()
        gammas, betas = [0.37], [0.81]
        fast = qaoa_state(ising.energy_vector(), gammas, betas)
        slow = qaoa_circuit(ising, gammas, betas).run().to_array()
        assert allclose_up_to_global_phase(fast, slow, atol=1e-9)

    def test_qubo_convenience_builder(self):
        mc = MaxCut.ring(3)
        c = qaoa_circuit_from_qubo(mc.to_qubo(), [0.2], [0.3])
        fast = qaoa_state(mc.to_qubo().to_ising().energy_vector(), [0.2], [0.3])
        assert allclose_up_to_global_phase(c.run().to_array(), fast, atol=1e-9)

    def test_param_length_mismatch(self):
        with pytest.raises(ValueError):
            qaoa_state(np.zeros(4), [0.1], [0.1, 0.2])
        with pytest.raises(ValueError):
            qaoa_circuit(MaxCut.ring(3).to_qubo().to_ising(), [0.1], [])


class TestMixers:
    def test_x_mixer_is_global_rotation(self):
        # On |0...0>, the X mixer gives product of single-qubit rotations.
        n = 3
        psi = basis_state([0] * n)
        apply_x_mixer(psi, 0.4)
        single = np.array([np.cos(0.4), -1j * np.sin(0.4)])
        expect = np.array([1.0], dtype=complex)
        for _ in range(n):
            expect = np.kron(single, expect)
        assert np.allclose(psi, expect)

    def test_xy_mixer_preserves_hamming_weight(self):
        n = 4
        rng = np.random.default_rng(3)
        psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        psi /= np.linalg.norm(psi)
        w = popcount_vector(n)
        weights_before = [
            float(np.sum(np.abs(psi[w == k]) ** 2)) for k in range(n + 1)
        ]
        apply_xy_mixer_pair(psi, 0, 2, 0.7)
        apply_xy_mixer_pair(psi, 1, 3, -0.3)
        weights_after = [
            float(np.sum(np.abs(psi[w == k]) ** 2)) for k in range(n + 1)
        ]
        assert np.allclose(weights_before, weights_after, atol=1e-10)

    def test_xy_mixer_matches_dense_exponential(self):
        from scipy.linalg import expm

        from repro.linalg import PAULI_X, PAULI_Y, operator_on_qubits

        n = 3
        beta = 0.53
        xx = operator_on_qubits(np.kron(PAULI_X, PAULI_X), [0, 2], n)
        yy = operator_on_qubits(np.kron(PAULI_Y, PAULI_Y), [0, 2], n)
        u = expm(1j * beta * (xx + yy))
        rng = np.random.default_rng(1)
        psi = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        psi /= np.linalg.norm(psi)
        expect = u @ psi
        apply_xy_mixer_pair(psi, 0, 2, beta)
        assert np.allclose(psi, expect, atol=1e-9)

    def test_mis_mixer_matches_dense(self):
        from scipy.linalg import expm

        from repro.linalg import PAULI_X, controlled, operator_on_qubits

        # 3 qubits; vertex 2 controlled on neighbors {0,1} being 0.
        beta = 0.61
        u_rot = expm(1j * beta * PAULI_X)
        core = controlled(u_rot, 2)
        flip = operator_on_qubits(PAULI_X, [0], 3) @ operator_on_qubits(PAULI_X, [1], 3)
        dense = flip @ core @ flip
        rng = np.random.default_rng(2)
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        expect = dense @ psi
        apply_constrained_mis_mixer(psi, 2, [0, 1], beta)
        assert np.allclose(psi, expect, atol=1e-9)

    def test_mis_mixer_validation(self):
        psi = plus_state(2)
        with pytest.raises(ValueError):
            apply_constrained_mis_mixer(psi, 0, [0], 0.1)
        with pytest.raises(ValueError):
            apply_xy_mixer_pair(psi, 0, 0, 0.1)


class TestConstrainedQAOA:
    def test_mis_qaoa_preserves_feasibility(self):
        """Section IV headline behaviour: starting from an independent set,
        every sample is an independent set, at any parameters."""
        mis = MaximumIndependentSet(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        x0 = mis.greedy_independent_set(seed=3)
        psi = qaoa_state_constrained_mis(
            mis, gammas=[0.7, -0.4], betas=[0.3, 0.9], initial=basis_state(x0)
        )
        mask = mis.feasibility_mask()
        infeasible_weight = float(np.sum(np.abs(psi[~mask]) ** 2))
        assert infeasible_weight < 1e-12

    def test_mis_qaoa_explores_feasible_space(self):
        mis = MaximumIndependentSet(4, [(0, 1), (1, 2), (2, 3)])
        x0 = [0, 0, 0, 0]
        psi = qaoa_state_constrained_mis(
            mis, gammas=[0.5], betas=[0.8], initial=basis_state(x0), sweeps=2
        )
        # Amplitude must have spread beyond the start state.
        assert abs(psi[0]) ** 2 < 0.99

    def test_xy_ring_preserves_one_hot(self):
        gc = GraphColoring(2, [(0, 1)], k=3)
        x0 = gc.initial_feasible_state()
        psi = qaoa_state_xy_ring(
            gc.cost_vector(),
            gammas=[0.4],
            betas=[0.6],
            blocks=gc.blocks(),
            initial=basis_state(x0),
        )
        mask = gc.feasibility_mask()
        assert float(np.sum(np.abs(psi[~mask]) ** 2)) < 1e-12


class TestOptimization:
    def test_grid_search_beats_random_on_ring(self):
        mc = MaxCut.ring(6)
        cost = mc.to_qubo().cost_vector()
        res = grid_search_p1(cost, resolution=16)
        # Random state expectation is -|E|/2 = -3; optimized must be better.
        assert res.expectation < -3.5

    def test_optimize_improves_with_p(self):
        mc = MaxCut.ring(5)
        cost = mc.to_qubo().cost_vector()
        r1 = optimize_qaoa(cost, p=1, restarts=4, seed=0)
        r2 = optimize_qaoa(
            cost, p=2, restarts=4, seed=0, warm_start=(r1.gammas, r1.betas)
        )
        assert r2.expectation <= r1.expectation + 1e-9

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            optimize_qaoa(np.zeros(4), p=0)

    def test_sampling_matches_expectation(self):
        mc = MaxCut.ring(4)
        cost = mc.to_qubo().cost_vector()
        res = grid_search_p1(cost, resolution=12)
        _, costs = sample_cost(cost, res.gammas, res.betas, shots=20000, seed=1)
        assert abs(costs.mean() - res.expectation) < 0.1

    def test_best_sampled_solution(self):
        mc = MaxCut.ring(4)
        cost = mc.to_qubo().cost_vector()
        res = grid_search_p1(cost, resolution=12)
        _, best_cost = best_sampled_solution(cost, res.gammas, res.betas, shots=2000, seed=2)
        assert best_cost == pytest.approx(-4.0)  # finds the optimum


class TestGateCounts:
    def test_counts_formula(self):
        mc = MaxCut.ring(6)
        ising = mc.to_qubo().to_ising()
        counts = qaoa_gate_counts(ising, p=3)
        assert counts["qubits"] == 6
        assert counts["entangling_gates"] == 2 * 3 * 6
        assert counts["rx_gates"] == 18

    def test_counts_match_circuit(self):
        mc = MaxCut.ring(5)
        ising = mc.to_qubo().to_ising()
        p = 2
        circ = qaoa_circuit(ising, [0.1] * p, [0.2] * p)
        counts = qaoa_gate_counts(ising, p)
        assert circ.count_entangling() == counts["entangling_gates"]
        by_name = circ.count_by_name()
        assert by_name["rx"] == counts["rx_gates"]
        assert by_name["h"] == counts["h_gates"]

    def test_negative_p(self):
        with pytest.raises(ValueError):
            qaoa_gate_counts(MaxCut.ring(3).to_qubo().to_ising(), -1)
