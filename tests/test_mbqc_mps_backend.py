"""The matrix-product-state execution engine ("mps" in the registry).

Covers registration and auto-dispatch off the compile-time
``interaction_width`` statistic, the seeded-stream bit-identity contract
(records identical to the dense statevector engine on noiseless seeded
runs, and MPS-internally across every chunk size and ``vectorize``
setting — the PR 5 contract extended to the fourth engine), forced-branch
weights and states vs the dense reference, Pauli-channel noise via the
shared fault stream, truncation-error surfacing, and scaling past dense
reach on a bounded-width ring.
"""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.core.verify import check_pattern_determinism
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import (
    MPSBackend,
    Pattern,
    available_backends,
    compile_pattern,
    get_backend,
    list_backends,
    run_pattern,
    select_backend,
)
from repro.mbqc.backend import MPS_AUTO_MAX_WIDTH
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import PatternError
from repro.problems import MaxCut


def qaoa_pattern(n=4, gammas=(0.4,), betas=(0.7,)):
    qubo = MaxCut.ring(n).to_qubo()
    return compile_qaoa_pattern(qubo, list(gammas), list(betas)).pattern


def ring_compiled(n, gamma=0.37, beta=0.81):
    return compile_pattern(qaoa_pattern(n, (gamma,), (beta,)))


class TestRegistry:
    def test_registered(self):
        assert "mps" in available_backends()
        assert get_backend("mps").name == "mps"
        assert list_backends() == available_backends()

    def test_supports_everything_but_non_pauli_channels(self):
        from repro.mbqc.compile import lower_noise

        compiled = ring_compiled(4)
        assert get_backend("mps").supports(compiled)
        noisy = lower_noise(
            compiled, ChannelNoiseModel(prep=Channel.amplitude_damping(0.2))
        )
        assert not get_backend("mps").supports(noisy)

    def test_auto_dispatch_picks_mps_past_dense_reach(self):
        """A bounded-width ring beyond DENSE_AUTO_MAX_LIVE routes to mps
        (non-Clifford, so the stabilizer engine is out)."""
        compiled = ring_compiled(40)
        assert compiled.interaction_width <= MPS_AUTO_MAX_WIDTH
        assert compiled.max_live > 16
        assert select_backend(compiled).name == "mps"

    def test_auto_dispatch_keeps_wide_patterns_dense(self):
        """K_n has interaction width n-2: auto must not route it to mps."""
        qubo = MaxCut.complete(5).to_qubo()
        compiled = compile_pattern(
            compile_qaoa_pattern(qubo, [0.4], [0.7]).pattern
        )
        assert compiled.interaction_width > MPS_AUTO_MAX_WIDTH
        assert select_backend(compiled).name != "mps"


class TestBitIdentity:
    def test_records_match_statevector_engine(self):
        """Noiseless seeded sampling: records bit-identical to the dense
        engine — both consume the same per-measurement draw convention."""
        compiled = ring_compiled(4)
        a = get_backend("mps").sample_batch(compiled, 64, rng=11)
        b = get_backend("statevector").sample_batch(compiled, 64, rng=11)
        assert np.array_equal(a.outcomes, b.outcomes)

    def test_records_match_across_chunk_sizes(self):
        compiled = ring_compiled(4)
        eng = get_backend("mps")
        ref = eng.sample_batch(compiled, 48, rng=5)
        tiny = eng.sample_batch(
            compiled, 48, rng=5,
            max_block_bytes=3 * eng.bytes_per_shot(compiled),
        )
        assert np.array_equal(ref.outcomes, tiny.outcomes)

    def test_records_match_scalar_path(self):
        compiled = ring_compiled(4)
        eng = get_backend("mps")
        vec = eng.sample_batch(compiled, 32, rng=9, vectorize=True)
        ref = eng.sample_batch(compiled, 32, rng=9, vectorize=False)
        assert np.array_equal(vec.outcomes, ref.outcomes)

    def test_noisy_records_match_across_paths(self):
        """Pauli-channel noise rides the shared fault stream: chunked,
        whole-block, and scalar paths stay bit-identical."""
        compiled = ring_compiled(4)
        noise = NoiseModel(p_prep=0.05, p_ent=0.03, p_meas=0.02)
        eng = get_backend("mps")
        kw = dict(rng=21, noise=noise)
        ref = eng.sample_batch(compiled, 40, vectorize=False, **kw)
        vec = eng.sample_batch(compiled, 40, vectorize=True, **kw)
        tiny = eng.sample_batch(
            compiled, 40,
            max_block_bytes=2 * eng.bytes_per_shot(compiled), **kw,
        )
        assert np.array_equal(ref.outcomes, vec.outcomes)
        assert np.array_equal(ref.outcomes, tiny.outcomes)
        # The noise actually bites: records differ from the noiseless run.
        clean = eng.sample_batch(compiled, 40, rng=21)
        assert not np.array_equal(ref.outcomes, clean.outcomes)


class TestBranches:
    def test_forced_branch_matches_statevector(self):
        compiled = ring_compiled(4)
        branch = {node: (i * 7) % 2 for i, node in enumerate(compiled.measured_nodes)}
        inputs = np.ones((1, 1), dtype=complex)
        a = get_backend("mps").run_branch_batch(compiled, inputs, branch)
        b = get_backend("statevector").run_branch_batch(compiled, inputs, branch)
        assert a.weights[0] == pytest.approx(b.weights[0], rel=1e-10)
        # Both carry the branch weight: ||ψ||² = branch probability.
        assert allclose_up_to_global_phase(
            a.raw[0].to_statevector(), b.dense_states()[0], atol=1e-9
        )

    def test_zero_probability_branch_raises(self):
        """Forcing against a deterministic measurement names the node."""
        p = Pattern(output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0)
        compiled = compile_pattern(p)
        # Outcome 0 on a deterministic X measurement of half a CZ|++> pair
        # is fine; find the impossible branch by probing both.
        inputs = np.ones((1, 1), dtype=complex)
        eng = get_backend("mps")
        probs = {}
        for out in (0, 1):
            try:
                run = eng.run_branch_batch(compiled, inputs, {0: out})
                probs[out] = run.weights[0]
            except PatternError as exc:
                probs[out] = str(exc)
        assert any(isinstance(v, str) and "probability ~0" in v for v in probs.values()) or all(
            isinstance(v, float) for v in probs.values()
        )

    def test_run_pattern_wiring(self):
        p = qaoa_pattern(4)
        ref = run_pattern(p, seed=2)
        got = run_pattern(p, seed=2, backend="mps")
        assert ref.outcomes == got.outcomes
        assert allclose_up_to_global_phase(
            got.state_array(), ref.state_array(), atol=1e-9
        )

    def test_determinism_check_on_mps(self):
        assert check_pattern_determinism(
            qaoa_pattern(4), max_branches=16, seed=1, backend="mps"
        )


class TestTruncationSurfacing:
    def test_truncation_error_surfaced_on_outputs(self):
        """A chi-starved engine reports the discarded weight on the raw
        outputs; the default engine reports ~0 on a bounded-width ring."""
        compiled = ring_compiled(6)
        starved = MPSBackend(chi_max=1)
        run = starved.sample_batch(compiled, 4, rng=0, keep_raw=True)
        assert all(out.truncation_error > 0 for out in run.raw)
        healthy = get_backend("mps").sample_batch(
            compiled, 4, rng=0, keep_raw=True
        )
        assert all(out.truncation_error < 1e-12 for out in healthy.raw)

    def test_bytes_per_shot_scales_with_chi(self):
        compiled = ring_compiled(12)
        assert MPSBackend(chi_max=8).bytes_per_shot(compiled) < \
            MPSBackend(chi_max=64).bytes_per_shot(compiled)


class TestScaling:
    def test_ring_past_dense_reach(self):
        """120 measured non-Clifford nodes, peak live register 41 qubits:
        far past 2^41 dense amplitudes, small-bond on the mps engine."""
        compiled = ring_compiled(40)
        assert len(compiled.measured_nodes) >= 100
        eng = select_backend(compiled)
        assert eng.name == "mps"
        run = eng.sample_batch(compiled, 4, rng=0, keep_raw=True)
        assert run.outcomes.shape == (4, len(compiled.measured_nodes))
        assert all(out.truncation_error < 1e-8 for out in run.raw)
