"""Satellite regression: ``sample_batch(compiled, n_shots=0)`` is uniform
across all four engines — an empty, well-shaped :class:`SampleRun`, no
random draw consumed, and the same exception text for negative counts.

Before the fix, the engines disagreed: some raised, some crashed deep in
their shot loops.  Zero shots is a legitimate request (an empty
checkpoint job, a degenerate sweep point), so every engine now returns
the empty run and leaves the caller's generator untouched.
"""

import numpy as np
import pytest

from repro.mbqc import Pattern, compile_pattern, get_backend, list_backends
from repro.utils.rng import ensure_rng

ENGINES = tuple(list_backends())


def clifford_chain():
    """A chain every engine supports (all angles are Clifford)."""
    alphas = [0.0, np.pi / 2, np.pi, -np.pi / 2]
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


@pytest.fixture(scope="module")
def compiled():
    return compile_pattern(clifford_chain())


@pytest.mark.parametrize("name", ENGINES)
def test_zero_shots_returns_empty_run(compiled, name):
    run = get_backend(name).sample_batch(compiled, 0, ensure_rng(0))
    assert run.n_shots == 0
    assert run.outcomes.shape == (0, len(compiled.measured_nodes))
    assert run.outcomes.dtype == np.int8
    assert run.nodes == compiled.measured_nodes


@pytest.mark.parametrize("name", ENGINES)
def test_zero_shots_consumes_no_randomness(compiled, name):
    """The empty run must not advance the caller's generator: the next
    draw equals the first draw of a fresh stream."""
    rng = ensure_rng(123)
    get_backend(name).sample_batch(compiled, 0, rng)
    assert np.array_equal(
        rng.integers(1 << 30, size=8),
        ensure_rng(123).integers(1 << 30, size=8),
    )


@pytest.mark.parametrize("name", ENGINES)
def test_zero_shots_keep_raw(compiled, name):
    run = get_backend(name).sample_batch(
        compiled, 0, ensure_rng(0), keep_raw=True
    )
    assert run.n_shots == 0
    if run.raw is not None:
        assert len(run.raw) == 0


@pytest.mark.parametrize("name", ENGINES)
def test_negative_shots_still_raise(compiled, name):
    with pytest.raises(ValueError, match="non-negative"):
        get_backend(name).sample_batch(compiled, -1, ensure_rng(0))


def test_statevector_empty_states_block(compiled):
    run = get_backend("statevector").sample_batch(
        compiled, 0, ensure_rng(0)
    )
    assert run.states is not None
    assert run.states.shape == (0, 1 << compiled.num_outputs)
