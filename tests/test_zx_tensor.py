"""Semantic tests: diagram tensors against known linear maps.

These pin the ZX semantics the whole derivation chain rests on: spiders
(Eqs. 1-3 of the paper), gates (Eq. 4), graph states (Eq. 5), phase gadgets
(Eq. 7), and circuit translation round trips.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.linalg import (
    CZ,
    HADAMARD,
    PAULI_X,
    PAULI_Z,
    allclose_up_to_global_phase,
    proportionality_factor,
    rx,
    rz,
)
from repro.sim import Circuit, StateVector
from repro.zx import (
    Diagram,
    EdgeType,
    circuit_to_diagram,
    diagram_matrix,
    graph_state_diagram,
    phase_gadget_diagram,
)
from repro.utils import cycle_graph, erdos_renyi_graph


def prop(a, b):
    """Assert proportionality and return the factor."""
    c = proportionality_factor(np.asarray(a), np.asarray(b), atol=1e-8)
    assert c is not None, "arrays are not proportional"
    return c


def wire_through(vtype_adder, phase):
    """One-wire diagram: input - spider(phase) - output."""
    d = Diagram()
    i = d.add_boundary("input")
    v = vtype_adder(d, phase)
    o = d.add_boundary("output")
    d.add_edge(i, v)
    d.add_edge(v, o)
    return d


class TestSpiders:
    def test_z_spider_is_rz(self):
        theta = 0.731
        d = wire_through(lambda dd, p: dd.add_z(p), theta)
        prop(diagram_matrix(d), rz(theta))

    def test_x_spider_is_rx(self):
        theta = -1.13
        d = wire_through(lambda dd, p: dd.add_x(p), theta)
        prop(diagram_matrix(d), rx(theta))

    def test_pi_spiders_are_paulis(self):
        dz = wire_through(lambda dd, p: dd.add_z(p), math.pi)
        prop(diagram_matrix(dz), PAULI_Z)
        dx = wire_through(lambda dd, p: dd.add_x(p), math.pi)
        prop(diagram_matrix(dx), PAULI_X)

    def test_hadamard_edge(self):
        d = Diagram()
        i = d.add_boundary("input")
        o = d.add_boundary("output")
        d.add_edge(i, o, EdgeType.HADAMARD)
        assert np.allclose(diagram_matrix(d), HADAMARD)

    def test_bare_wire(self):
        d = Diagram()
        i = d.add_boundary("input")
        o = d.add_boundary("output")
        d.add_edge(i, o)
        assert np.allclose(diagram_matrix(d), np.eye(2))

    def test_z_state_arity1(self):
        # Arity-1 Z(0) spider = |0> + |1> = sqrt(2)|+> (Eq. 3).
        d = Diagram()
        z = d.add_z(0.0)
        o = d.add_boundary("output")
        d.add_edge(z, o)
        prop(diagram_matrix(d).ravel(), np.array([1, 1]) / np.sqrt(2))

    def test_x_pi_state_is_ket1(self):
        d = Diagram()
        x = d.add_x(math.pi)
        o = d.add_boundary("output")
        d.add_edge(x, o)
        prop(diagram_matrix(d).ravel(), np.array([0, 1]))

    def test_spider_leg_symmetry(self):
        # 3-legged Z spider as map 2->1 vs 1->2 relate by transpose.
        d = Diagram()
        z = d.add_z(0.4)
        i1 = d.add_boundary("input")
        i2 = d.add_boundary("input")
        o = d.add_boundary("output")
        for b in (i1, i2, o):
            d.add_edge(z, b)
        m = diagram_matrix(d)  # 2 x 4
        assert m.shape == (2, 4)
        # Copies |00>-><0|, |11>->e^{i phase}<1|
        expect = np.zeros((2, 4), dtype=complex)
        expect[0, 0] = 1
        expect[1, 3] = np.exp(0.4j)
        assert np.allclose(m, expect)

    def test_scalar_diagram(self):
        d = Diagram()
        d.add_z(0.0)  # isolated spider: scalar 1 + e^{i0} = 2
        t = diagram_matrix(d)
        assert t.shape == (1, 1)
        assert np.isclose(t[0, 0], 2.0)

    def test_self_loop_tensor(self):
        # Z spider with a plain self-loop and one output = arity-1 spider.
        d = Diagram()
        z = d.add_z(0.9)
        o = d.add_boundary("output")
        d.add_edge(z, o)
        d.add_edge(z, z)
        v = diagram_matrix(d).ravel()
        prop(v, np.array([1, np.exp(0.9j)]))


class TestGates:
    def test_cz_diagram(self):
        d = Diagram()
        ins = [d.add_boundary("input") for _ in range(2)]
        zs = [d.add_z(), d.add_z()]
        outs = [d.add_boundary("output") for _ in range(2)]
        for k in range(2):
            d.add_edge(ins[k], zs[k])
            d.add_edge(zs[k], outs[k])
        d.add_edge(zs[0], zs[1], EdgeType.HADAMARD)
        prop(diagram_matrix(d), CZ)

    def test_cnot_diagram(self):
        d = Diagram()
        ins = [d.add_boundary("input") for _ in range(2)]
        c = d.add_z()
        t = d.add_x()
        outs = [d.add_boundary("output") for _ in range(2)]
        d.add_edge(ins[0], c)
        d.add_edge(c, outs[0])
        d.add_edge(ins[1], t)
        d.add_edge(t, outs[1])
        d.add_edge(c, t)
        from repro.linalg import CNOT

        prop(diagram_matrix(d), CNOT)


class TestCircuitTranslation:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.h(0),
            lambda c: c.rz(0, 0.3).rx(1, -0.7),
            lambda c: c.h(0).cz(0, 1).h(1),
            lambda c: c.cnot(0, 1).rz(1, 0.5).cnot(0, 1),
            lambda c: c.s(0).append("t", (1,)).append("sdg", (0,)).append("tdg", (1,)),
            lambda c: c.x(0).z(1).append("y", (0,)),
            lambda c: c.ry(0, 1.2),
            lambda c: c.j(0, 0.9),
            lambda c: c.append("swap", (0, 1)),
            lambda c: c.append("crz", (0, 1), 0.8),
            lambda c: c.append("cp", (0, 1), -0.6),
        ],
    )
    def test_gate_translations(self, builder):
        c = Circuit(2)
        builder(c)
        d = circuit_to_diagram(c)
        prop(diagram_matrix(d), c.unitary())

    def test_unsupported_gate(self):
        c = Circuit(3).append("ccx", (0, 1, 2))
        with pytest.raises(ValueError):
            circuit_to_diagram(c)

    @given(st.lists(st.tuples(st.sampled_from(["h", "rz", "rx", "cz", "cnot", "s"]),
                              st.integers(0, 2), st.integers(0, 2),
                              st.floats(-3.0, 3.0)),
                    min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_random_circuits_translate(self, moves):
        c = Circuit(3)
        for name, a, b, theta in moves:
            if name in ("h", "s"):
                c.append(name, (a,))
            elif name in ("rz", "rx"):
                c.append(name, (a,), theta)
            else:
                if a == b:
                    continue
                c.append(name, (a, b))
        d = circuit_to_diagram(c)
        prop(diagram_matrix(d), c.unitary())


class TestGraphStates:
    def test_square_graph_state_eq5(self):
        # The paper's 4-vertex square example.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        d = graph_state_diagram(4, edges)
        sv = StateVector.plus(4)
        for u, v in edges:
            sv.apply_cz(u, v)
        prop(diagram_matrix(d).ravel(), sv.to_array())

    def test_random_graph_state(self):
        n, edges = erdos_renyi_graph(5, 0.5, seed=11)
        d = graph_state_diagram(n, edges)
        sv = StateVector.plus(n)
        for u, v in edges:
            sv.apply_cz(u, v)
        prop(diagram_matrix(d).ravel(), sv.to_array())

    def test_graph_state_no_self_loop(self):
        with pytest.raises(ValueError):
            graph_state_diagram(2, [(0, 0)])


class TestPhaseGadget:
    @pytest.mark.parametrize("gamma", [0.0, 0.37, -1.2, math.pi / 2])
    def test_single_gadget_matches_exponential(self, gamma):
        d = phase_gadget_diagram(2, [(0, 1)], gamma)
        zz = np.diag([1.0, -1.0, -1.0, 1.0])
        # Our gadget with leaf phase gamma implements exp(-i gamma/2 ZZ)
        expect = expm(-1j * (gamma / 2) * zz)
        prop(diagram_matrix(d), expect)

    def test_gadget_chain(self):
        n, edges = cycle_graph(3)
        gamma = 0.81
        d = phase_gadget_diagram(n, edges, gamma)
        acc = np.eye(8, dtype=complex)
        for u, v in edges:
            c = Circuit(n).rzz(u, v, gamma)
            acc = c.unitary() @ acc
        prop(diagram_matrix(d), acc)
