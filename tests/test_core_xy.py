"""Section V verification (experiment E11): XY mixers in MBQC."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import check_pattern_determinism, pattern_equals_unitary, xy_interaction_pattern
from repro.core.xy import compile_xy_qaoa_pattern
from repro.linalg import PAULI_X, PAULI_Y, kron_all
from repro.mbqc.runner import run_pattern
from repro.problems import GraphColoring


def xy_dense(beta):
    xx = kron_all([PAULI_X, PAULI_X])
    yy = kron_all([PAULI_Y, PAULI_Y])
    return expm(1j * beta * (xx + yy))


class TestXYInteraction:
    @pytest.mark.parametrize("beta", [0.0, 0.41, -1.3, np.pi / 4])
    def test_matches_exponential(self, beta):
        p = xy_interaction_pattern(beta)
        assert pattern_equals_unitary(p, xy_dense(beta), max_branches=24, seed=0)

    def test_deterministic(self):
        p = xy_interaction_pattern(0.63)
        assert check_pattern_determinism(p, max_branches=24, seed=1)

    def test_resource_structure(self):
        """2 XX blocks (5 ancillas each) + 4 hanging S gadgets."""
        p = xy_interaction_pattern(0.3)
        assert p.num_nodes() == 2 + 5 + 5 + 4

    def test_swap_like_at_quarter_pi(self):
        """At β=π/4 the XY interaction is an iSWAP on the odd block."""
        p = xy_interaction_pattern(np.pi / 4)
        u = xy_dense(np.pi / 4)
        assert abs(u[1, 2]) == pytest.approx(1.0)
        assert pattern_equals_unitary(p, u, max_branches=8, seed=2)


class TestXYQAOAPattern:
    def test_one_hot_feasibility_preserved(self):
        """Full XY-QAOA pattern on a 2-vertex, 2-color coloring: every
        branch's output state stays in the one-hot subspace."""
        gc = GraphColoring(2, [(0, 1)], k=2)
        pattern = compile_xy_qaoa_pattern(
            _coloring_qubo(gc),
            blocks=gc.blocks(),
            gammas=[0.5],
            betas=[0.3],
            initial_bits=gc.initial_feasible_state(),
        )
        mask = gc.feasibility_mask()
        rng = np.random.default_rng(0)
        measured = pattern.measured_nodes()
        for _ in range(6):
            forced = {n: int(rng.integers(2)) for n in measured}
            try:
                res = run_pattern(pattern, forced_outcomes=forced)
            except Exception:
                continue  # zero-probability branch under forcing
            psi = res.state_array()
            assert float(np.sum(np.abs(psi[~mask]) ** 2)) < 1e-9

    def test_matches_fast_simulator(self):
        from repro.linalg import allclose_up_to_global_phase
        from repro.qaoa import qaoa_state_xy_ring
        from repro.qaoa.simulator import basis_state

        gc = GraphColoring(2, [(0, 1)], k=2)
        qubo = _coloring_qubo(gc)
        gammas, betas = [0.4], [0.25]
        x0 = gc.initial_feasible_state()
        pattern = compile_xy_qaoa_pattern(
            qubo, blocks=gc.blocks(), gammas=gammas, betas=betas, initial_bits=x0
        )
        # Fast simulator reference: note blocks of size 2 — the pattern's
        # ring mixer applies the pair interaction twice (i=0,1 both map to
        # the same pair), matching the ring convention in the simulator.
        target = qaoa_state_xy_ring(
            qubo.cost_vector(), gammas, betas, gc.blocks(), basis_state(x0)
        )
        res = run_pattern(pattern, seed=5)
        assert allclose_up_to_global_phase(res.state_array(), target, atol=1e-8)

    def test_param_mismatch(self):
        gc = GraphColoring(2, [(0, 1)], k=2)
        with pytest.raises(ValueError):
            compile_xy_qaoa_pattern(_coloring_qubo(gc), gc.blocks(), [0.1], [])


def _coloring_qubo(gc: GraphColoring):
    """Monochromatic-edge QUBO: Σ_e Σ_c x_{u,c} x_{v,c}."""
    from repro.problems import QUBO

    quad = {}
    for u, v in gc.edges:
        for c in range(gc.k):
            quad[(gc.qubit(u, c), gc.qubit(v, c))] = 1.0
    return QUBO.from_terms(gc.num_qubits, quad)
