"""Channel IR: Kraus validation, Pauli classification, noise lowering."""

import numpy as np
import pytest

from repro.linalg.gates import IDENTITY, PAULI_X, PAULI_Z
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.channels import Channel, ChannelNoiseModel, as_channel_model
from repro.mbqc.compile import ChannelOp, MeasureOp, lower_noise
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import PatternError


def j_pattern(alpha):
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


def clifford_pattern():
    """A Clifford-angle pattern (Pauli measurement)."""
    return j_pattern(0.0)


class TestChannel:
    def test_standard_channels_validate(self):
        for ch in (
            Channel.depolarizing(0.1),
            Channel.dephasing(0.2),
            Channel.amplitude_damping(0.3),
        ):
            acc = sum(k.conj().T @ k for k in ch.kraus)
            assert np.allclose(acc, np.eye(2))
            assert ch.num_qubits == 1

    def test_pauli_classification(self):
        p = 0.12
        probs = Channel.depolarizing(p).pauli_probs
        assert probs == pytest.approx((1 - p, p / 3, p / 3, p / 3))
        probs = Channel.dephasing(p).pauli_probs
        assert probs == pytest.approx((1 - p, 0.0, 0.0, p))
        assert Channel.amplitude_damping(p).pauli_probs is None

    def test_identity_detection(self):
        assert Channel.depolarizing(0.0).is_identity()
        assert not Channel.depolarizing(0.1).is_identity()
        assert not Channel.amplitude_damping(0.1).is_identity()

    def test_zero_probability_short_circuits_to_single_kraus(self):
        """p=0 constructors return the one-operator identity channel —
        no zero Kraus operators for the density engine to grind through,
        and the trivial classification is exact, not numerical."""
        for ch in (
            Channel.depolarizing(0.0),
            Channel.dephasing(0.0),
            Channel.amplitude_damping(0.0),
        ):
            assert len(ch.kraus) == 1
            assert np.array_equal(ch.kraus[0], np.eye(2))
            assert ch.is_identity()
            assert ChannelNoiseModel(prep=ch, ent=ch).is_trivial()

    def test_zero_noise_model_hits_fidelity_fast_path(self):
        """A p=0 channel model is classified trivial, so average_fidelity
        short-circuits to exactly 1.0 — no shot loop, no numerics."""
        from repro.mbqc.noise import average_fidelity

        model = ChannelNoiseModel(
            prep=Channel.depolarizing(0.0), ent=Channel.dephasing(0.0)
        )
        assert average_fidelity(j_pattern(0.4), model, trajectories=1) == 1.0

    def test_extremal_probability_channels_validate(self):
        """p=1 / gamma=1 are legal channels: the Kraus sets still sum to
        identity and classification stays consistent."""
        full_depol = Channel.depolarizing(1.0)
        assert full_depol.pauli_probs == pytest.approx((0.0, 1 / 3, 1 / 3, 1 / 3))
        full_dephase = Channel.dephasing(1.0)
        assert full_dephase.pauli_probs == pytest.approx((0.0, 0.0, 0.0, 1.0))
        assert not full_dephase.is_identity()
        full_damp = Channel.amplitude_damping(1.0)
        acc = sum(k.conj().T @ k for k in full_damp.kraus)
        assert np.allclose(acc, np.eye(2))
        assert full_damp.pauli_probs is None

    def test_extremal_channels_run(self):
        """gamma=1 integrates exactly; p=1 dephasing still samples."""
        model = ChannelNoiseModel(prep=Channel.amplitude_damping(1.0))
        prog = lower_noise(compile_pattern(j_pattern(0.4)), model)
        rho = get_backend("density").integrate(prog)
        assert rho is not None
        pauli_model = ChannelNoiseModel(ent=Channel.dephasing(1.0))
        prog = lower_noise(compile_pattern(j_pattern(0.4)), pauli_model)
        from repro.utils.rng import ensure_rng

        run = get_backend("statevector").sample_batch(prog, 8, ensure_rng(1))
        assert run.outcomes.shape[0] == 8

    def test_from_kraus_does_not_freeze_caller_arrays(self):
        k0 = np.sqrt(0.9) * np.eye(2, dtype=complex)
        k1 = np.sqrt(0.1) * PAULI_X.astype(complex)
        Channel.from_kraus([k0, k1])
        k0 *= 1.0  # caller's buffer must stay writable

    def test_from_kraus_custom(self):
        ch = Channel.from_kraus(
            [np.sqrt(0.7) * IDENTITY, np.sqrt(0.3) * PAULI_X], name="bitflip"
        )
        assert ch.pauli_probs == pytest.approx((0.7, 0.3, 0.0, 0.0))

    def test_non_trace_preserving_rejected(self):
        with pytest.raises(ValueError, match="not trace-preserving"):
            Channel.from_kraus([0.9 * IDENTITY])
        with pytest.raises(ValueError, match="not trace-preserving"):
            Channel.from_kraus([IDENTITY, 0.1 * PAULI_Z])

    def test_malformed_operators_named(self):
        with pytest.raises(ValueError, match="operator 1"):
            Channel.from_kraus([IDENTITY, np.zeros((2, 3))])
        with pytest.raises(ValueError, match="operator 1"):
            Channel.from_kraus([IDENTITY, np.eye(3)])
        with pytest.raises(ValueError, match="at least one"):
            Channel.from_kraus([])


class TestChannelNoiseModel:
    def test_meas_flip_validation(self):
        with pytest.raises(ValueError, match="meas_flip"):
            ChannelNoiseModel(meas_flip=1.5)
        with pytest.raises(ValueError, match="meas_flip"):
            ChannelNoiseModel(meas_flip=-0.1)

    def test_trivial_and_pauli(self):
        assert ChannelNoiseModel().is_trivial()
        assert ChannelNoiseModel(prep=Channel.depolarizing(0.0)).is_trivial()
        m = ChannelNoiseModel(ent=Channel.dephasing(0.1), meas_flip=0.05)
        assert not m.is_trivial()
        assert m.is_pauli()
        assert not ChannelNoiseModel(prep=Channel.amplitude_damping(0.1)).is_pauli()

    def test_multi_qubit_channel_rejected_per_op(self):
        cz_kraus = [np.diag([1, 1, 1, -1]).astype(complex)]
        ch = Channel.from_kraus(cz_kraus, name="cz")
        assert ch.num_qubits == 2
        with pytest.raises(ValueError, match="single-qubit"):
            ChannelNoiseModel(ent=ch)


class TestCoercion:
    def test_none_and_passthrough(self):
        assert as_channel_model(None) is None
        m = ChannelNoiseModel(meas_flip=0.1)
        assert as_channel_model(m) is m

    def test_noise_model_shim(self):
        m = as_channel_model(NoiseModel(p_prep=0.02, p_meas=0.3))
        assert m.prep is not None and m.prep.pauli_probs[1] == pytest.approx(0.02 / 3)
        assert m.ent is None
        assert m.meas_flip == 0.3

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_channel_model("not a noise model")


class TestLowering:
    def test_channel_ops_woven_in(self):
        compiled = compile_pattern(j_pattern(0.4))
        noisy = lower_noise(compiled, NoiseModel(p_prep=0.01, p_ent=0.02, p_meas=0.3))
        kinds = [type(op).__name__ for op in noisy.ops]
        # One prep channel after the N, two ent channels after the E.
        assert kinds.count("ChannelOp") == 3
        i_prep = kinds.index("PrepOp")
        assert kinds[i_prep + 1] == "ChannelOp"
        flips = [op.flip_p for op in noisy.ops if type(op) is MeasureOp]
        assert flips == [0.3]
        assert noisy.has_noise and not compiled.has_noise
        assert noisy.noise is not None

    def test_trivial_noise_is_identity_lowering(self):
        compiled = compile_pattern(j_pattern(0.4))
        assert lower_noise(compiled, NoiseModel()) is compiled
        assert lower_noise(compiled, None) is compiled

    def test_double_lowering_rejected(self):
        compiled = compile_pattern(j_pattern(0.4))
        noisy = lower_noise(compiled, NoiseModel(p_ent=0.1))
        with pytest.raises(PatternError, match="already"):
            lower_noise(noisy, NoiseModel(p_ent=0.1))

    def test_pauli_channels_keep_clifford(self):
        compiled = compile_pattern(clifford_pattern())
        assert compiled.is_clifford
        noisy = lower_noise(compiled, NoiseModel(p_prep=0.1, p_meas=0.1))
        assert noisy.is_clifford
        assert not noisy.has_non_pauli_channel

    def test_non_pauli_channels_disqualify_clifford(self):
        compiled = compile_pattern(clifford_pattern())
        model = ChannelNoiseModel(prep=Channel.amplitude_damping(0.1))
        noisy = lower_noise(compiled, model)
        assert noisy.has_non_pauli_channel
        assert not noisy.is_clifford

    def test_trajectory_engines_refuse_non_pauli(self):
        compiled = compile_pattern(j_pattern(0.4))
        model = ChannelNoiseModel(ent=Channel.amplitude_damping(0.2))
        sv = get_backend("statevector")
        with pytest.raises(PatternError, match="density"):
            sv.sample_batch(compiled, 4, rng=0, noise=model)
        assert not sv.supports(lower_noise(compiled, model))

    def test_branch_extraction_refuses_noisy_programs(self):
        compiled = lower_noise(
            compile_pattern(j_pattern(0.4)), NoiseModel(p_ent=0.1)
        )
        inputs = np.eye(2, dtype=complex)
        for name in ("statevector",):
            with pytest.raises(PatternError, match="density"):
                get_backend(name).run_branch_batch(compiled, inputs, {0: 0})

    def test_shared_noise_program_across_engines(self):
        """The same lowered program drives both trajectory engines: seeded
        statevector and stabilizer runs both consume it without error and
        produce plausible outcome statistics."""
        compiled = compile_pattern(clifford_pattern())
        noisy = lower_noise(compiled, NoiseModel(p_prep=0.2, p_meas=0.2))
        for name in ("statevector", "stabilizer"):
            run = get_backend(name).sample_batch(noisy, 64, rng=3)
            assert run.outcomes.shape == (64, 1)
            bits = run.outcomes.mean()
            assert 0.05 < bits < 0.95  # noise randomizes the outcome record
