"""Tests for higher-order (PUBO) cost models and Max-3-SAT encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.pubo import PUBO, MaxThreeSat
from repro.utils import int_to_bitstring


class TestPUBO:
    def test_energy_pointwise(self):
        p = PUBO(3, {frozenset({0, 1, 2}): 2.0, frozenset({0}): -1.0, frozenset(): 0.5})
        assert p.energy([1, 1, 1]) == pytest.approx(2.0 - 1.0 + 0.5)
        assert p.energy([-1, 1, 1]) == pytest.approx(-2.0 + 1.0 + 0.5)

    def test_energy_vector_matches_pointwise(self):
        rng = np.random.default_rng(0)
        terms = {
            frozenset({0, 1}): 0.7,
            frozenset({1, 2, 3}): -1.3,
            frozenset({0, 2, 3}): 0.4,
            frozenset({2}): 0.9,
        }
        p = PUBO(4, terms)
        ev = p.energy_vector()
        for x in range(16):
            bits = int_to_bitstring(x, 4)
            spins = [1 - 2 * b for b in bits]
            assert ev[x] == pytest.approx(p.energy(spins))

    def test_zero_terms_pruned(self):
        p = PUBO(2, {frozenset({0, 1}): 0.0, frozenset({0}): 1.0})
        assert p.interaction_terms() == [(frozenset({0}), 1.0)]

    def test_set_keys_normalized_to_frozensets(self):
        # Plain sets are accepted and canonicalized.
        p = PUBO(2, {frozenset([1, 0]): 2.0})
        assert p.terms[frozenset({0, 1})] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PUBO(2, {frozenset({0, 5}): 1.0})
        p = PUBO(2, {frozenset({0, 1}): 1.0})
        with pytest.raises(ValueError):
            p.energy([1])
        with pytest.raises(ValueError):
            p.energy([1, 0])

    def test_max_order(self):
        p = PUBO(4, {frozenset({0, 1, 2, 3}): 1.0, frozenset({0}): 1.0})
        assert p.max_order == 4

    def test_brute_force(self):
        # minimize 2 σ0σ1σ2: any odd number of -1 spins
        p = PUBO(3, {frozenset({0, 1, 2}): 2.0})
        val, arg = p.brute_force_minimum()
        assert val == pytest.approx(-2.0)
        spins = [1 - 2 * b for b in int_to_bitstring(arg, 3)]
        assert spins[0] * spins[1] * spins[2] == -1


class TestMaxThreeSat:
    def test_satisfaction_counting(self):
        sat = MaxThreeSat(
            3, [((0, False), (1, False), (2, False)), ((0, True), (1, True), (2, True))]
        )
        assert sat.num_satisfied([1, 0, 0]) == 2
        assert sat.num_satisfied([0, 0, 0]) == 1  # first clause unsat
        assert sat.num_satisfied([1, 1, 1]) == 1  # second clause unsat

    def test_pubo_counts_unsatisfied(self):
        sat = MaxThreeSat.random(5, 8, seed=3)
        pubo = sat.to_pubo()
        ev = pubo.energy_vector()
        for x in range(32):
            bits = int_to_bitstring(x, 5)
            unsat = len(sat.clauses) - sat.num_satisfied(bits)
            assert ev[x] == pytest.approx(unsat), bits

    def test_pubo_is_cubic(self):
        sat = MaxThreeSat.random(6, 10, seed=1)
        assert sat.to_pubo().max_order == 3

    def test_max_satisfiable(self):
        sat = MaxThreeSat(
            3, [((0, False), (1, False), (2, False)), ((0, True), (1, True), (2, True))]
        )
        assert sat.max_satisfiable() == 2

    def test_clause_validation(self):
        with pytest.raises(ValueError):
            MaxThreeSat(3, [((0, False), (0, True), (1, False))])
        with pytest.raises(ValueError):
            MaxThreeSat(2, [((0, False), (1, False), (2, False))])

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=30, deadline=None)
    def test_energy_equals_unsat_property(self, x):
        sat = MaxThreeSat.random(6, 12, seed=9)
        pubo = sat.to_pubo()
        bits = int_to_bitstring(x % 64, 6)
        spins = [1 - 2 * b for b in bits]
        unsat = len(sat.clauses) - sat.num_satisfied(bits)
        assert pubo.energy(spins) == pytest.approx(unsat)
