"""Content-addressed compiled-pattern cache (`repro.serve.cache`).

The certification claims: the digest is a pure function of the
compilation inputs — stable across process restarts and independent of
dict ordering; a cache hit yields records bit-identical to a fresh
compile on every engine; any poisoned entry (truncated, bit-flipped,
version-skewed) is detected, treated as a miss, and healed by the
recompile's re-store; and concurrent writers on one cache directory
never publish a torn entry.
"""

import json
import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.noise import NoiseModel
from repro.serve import CacheStats, PatternCache, get_cache, pattern_digest
from repro.utils.rng import ensure_rng

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")


def j_chain(alphas):
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


@pytest.fixture
def pattern():
    return j_chain([0.3, 0.7, 1.1, 0.2])


@pytest.fixture
def clifford_pattern():
    """Clifford angles so the stabilizer engine can run it too."""
    return j_chain([0.0, np.pi / 2, np.pi, np.pi / 2])


class TestDigest:
    def test_deterministic_in_process(self, pattern):
        assert pattern_digest(pattern) == pattern_digest(j_chain([0.3, 0.7, 1.1, 0.2]))

    def test_sensitive_to_inputs(self, pattern):
        base = pattern_digest(pattern)
        assert pattern_digest(j_chain([0.3, 0.7, 1.1, 0.3])) != base
        assert pattern_digest(pattern, noise=NoiseModel(p_prep=0.01)) != base
        assert pattern_digest(pattern, options={"verify_ir": True}) != base

    def test_noise_none_vs_trivial_model_distinct_from_noisy(self, pattern):
        noisy = pattern_digest(pattern, noise=NoiseModel(p_prep=0.02))
        assert pattern_digest(pattern, noise=None) != noisy

    def test_stable_across_process_restarts(self, pattern):
        """The content address survives interpreter restarts (no
        PYTHONHASHSEED / id() / dict-order leakage)."""
        script = (
            "from tests.test_serve_cache import j_chain\n"
            "from repro.serve import pattern_digest\n"
            "from repro.mbqc.noise import NoiseModel\n"
            "print(pattern_digest(j_chain([0.3, 0.7, 1.1, 0.2]),"
            " noise=NoiseModel(p_prep=0.02)))\n"
        )
        digests = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC + os.pathsep + ROOT
            env["PYTHONHASHSEED"] = hashseed
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env, cwd=ROOT,
            )
            digests.add(out.stdout.strip())
        digests.add(pattern_digest(pattern, noise=NoiseModel(p_prep=0.02)))
        assert len(digests) == 1


class TestHitIdentity:
    @pytest.mark.parametrize(
        "backend", ["statevector", "stabilizer", "density", "mps"]
    )
    def test_cache_hit_records_bit_identical(
        self, clifford_pattern, tmp_path, backend
    ):
        """A disk-tier hit (fresh process-like cache, empty memory tier)
        samples bit-identically to a fresh compile on every engine."""
        noise = NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02)
        writer = PatternCache(str(tmp_path))
        compiled_fresh = writer.get_or_compile(clifford_pattern, noise=noise)
        assert writer.stats.misses == 1 and writer.stats.stores == 1

        reader = PatternCache(str(tmp_path), memory_entries=0)
        compiled_hit = reader.get_or_compile(clifford_pattern, noise=noise)
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0

        engine = get_backend(backend)
        a = engine.sample_batch(compiled_fresh, 64, ensure_rng(7))
        b = engine.sample_batch(compiled_hit, 64, ensure_rng(7))
        assert np.array_equal(a.outcomes, b.outcomes)

    def test_memory_tier_hit(self, pattern, tmp_path):
        cache = PatternCache(str(tmp_path))
        first = cache.get_or_compile(pattern)
        second = cache.get_or_compile(pattern)
        assert second is first
        assert cache.stats.memory_hits == 1

    def test_memory_only_cache(self, pattern):
        cache = PatternCache(None)
        cache.get_or_compile(pattern)
        cache.get_or_compile(pattern)
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 0

    def test_memory_fifo_bound(self, tmp_path):
        cache = PatternCache(str(tmp_path), memory_entries=2)
        for a in (0.1, 0.2, 0.3):
            cache.get_or_compile(j_chain([a]))
        assert len(cache._memory) == 2


class TestPoisoning:
    def _seed_entry(self, pattern, tmp_path):
        cache = PatternCache(str(tmp_path), memory_entries=0)
        compiled = cache.get_or_compile(pattern)
        digest = cache.digest_for(pattern)
        return cache, compiled, digest, cache.entry_path(digest)

    @pytest.mark.parametrize("damage", ["truncate", "bitflip", "version", "garbage"])
    def test_poisoned_entry_detected_and_recompiled(
        self, pattern, tmp_path, damage
    ):
        cache, compiled, digest, path = self._seed_entry(pattern, tmp_path)
        blob = open(path, "rb").read()
        if damage == "truncate":
            poisoned = blob[: len(blob) // 2]
        elif damage == "bitflip":
            mid = len(blob) // 2
            poisoned = blob[:mid] + bytes([blob[mid] ^ 0x40]) + blob[mid + 1:]
        elif damage == "version":
            header = json.loads(blob.split(b"\n", 1)[0])
            header["version"] = 999
            poisoned = json.dumps(header).encode() + b"\n" + blob.split(b"\n", 1)[1]
        else:
            poisoned = b"not a cache entry at all"
        with open(path, "wb") as fh:
            fh.write(poisoned)

        assert cache.load(digest) is None
        assert cache.stats.poisoned == 1
        # The compile-through path treats it as a miss and heals the file.
        healed = cache.get_or_compile(pattern)
        assert cache.stats.misses == 2
        assert cache.load(digest) is not None
        engine = get_backend("statevector")
        assert np.array_equal(
            engine.sample_batch(compiled, 16, ensure_rng(3)).outcomes,
            engine.sample_batch(healed, 16, ensure_rng(3)).outcomes,
        )

    def test_missing_entry_is_plain_miss_not_poisoned(self, pattern, tmp_path):
        cache = PatternCache(str(tmp_path))
        assert cache.load(cache.digest_for(pattern)) is None
        assert cache.stats.poisoned == 0

    def test_wrong_digest_file_rejected(self, pattern, tmp_path):
        cache, _, digest, path = self._seed_entry(pattern, tmp_path)
        other = cache.digest_for(j_chain([0.9]))
        other_path = cache.entry_path(other)
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        os.replace(path, other_path)  # valid file filed under the wrong name
        assert cache.load(other) is None
        assert cache.stats.poisoned == 1


class TestConcurrentWriters:
    def test_parallel_writers_never_tear(self, tmp_path):
        """Several processes repeatedly publishing the same digest: every
        observable file state is a complete, valid entry."""
        cache_dir = str(tmp_path)
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer_store, args=(cache_dir, 0.3, 6))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        # Read concurrently with the writers: a torn entry would load as
        # poisoned; atomic publication means we only ever see None (not
        # yet published) or a valid compiled pattern.
        reader = PatternCache(cache_dir, memory_entries=0)
        pattern = j_chain([0.3])
        digest = reader.digest_for(pattern)
        while any(p.is_alive() for p in procs):
            reader.load(digest)
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert reader.stats.poisoned == 0
        assert reader.load(digest) is not None


def _hammer_store(cache_dir, alpha, n_rounds):
    from repro.mbqc.compile import compile_pattern
    from repro.serve import PatternCache
    from tests.test_serve_cache import j_chain

    pattern = j_chain([alpha])
    compiled = compile_pattern(pattern)
    cache = PatternCache(cache_dir, memory_entries=0)
    digest = cache.digest_for(pattern)
    for _ in range(n_rounds):
        cache.store(digest, compiled)


class TestStatsAndDiagnostics:
    def test_stats_dict(self):
        stats = CacheStats(memory_hits=2, disk_hits=1, misses=3, stores=3)
        assert stats.hits == 3
        assert stats.as_dict()["misses"] == 3

    def test_r106_rows(self, pattern, tmp_path):
        cache = PatternCache(str(tmp_path))
        cache.get_or_compile(pattern)
        cache.get_or_compile(pattern)
        rows = cache.stats.diagnostics()
        assert any(d.code == "R106" for d in rows)
        assert "1/2 hits" in rows[0].message

    def test_poisoned_warning_row(self):
        stats = CacheStats(misses=1, stores=1, poisoned=2)
        rows = stats.diagnostics()
        assert any(
            d.code == "R106" and d.severity.name.lower() == "warning"
            for d in rows
        )

    def test_get_cache_shared_per_directory(self, tmp_path):
        a = get_cache(str(tmp_path))
        b = get_cache(str(tmp_path) + os.sep)
        assert a is b


class TestCompilePatternIntegration:
    def test_compile_pattern_cache_dir_round_trip(self, pattern, tmp_path):
        first = compile_pattern(pattern, cache_dir=str(tmp_path))
        second = compile_pattern(pattern, cache_dir=str(tmp_path))
        assert second is first
        assert get_cache(str(tmp_path)).stats.hits >= 1
