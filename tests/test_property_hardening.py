"""Randomized hardening: property tests over the full compiler and
cross-simulator measurement checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_qaoa_pattern, pattern_state_equals
from repro.linalg import allclose_up_to_global_phase
from repro.problems import QUBO
from repro.qaoa import qaoa_state
from repro.sim import Circuit, MeasurementBasis, StateVector
from repro.stab import StabilizerState


@st.composite
def small_qubos(draw):
    n = draw(st.integers(2, 3))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    m = np.triu(rng.normal(size=(n, n)))
    return QUBO(m)


class TestCompilerProperties:
    @given(small_qubos(), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_random_qubo_random_params(self, qubo, gamma, beta):
        """E6 hardened: random dense QUBOs with linear terms, random
        parameters, sampled branches."""
        compiled = compile_qaoa_pattern(qubo, [gamma], [beta])
        target = qaoa_state(qubo.to_ising().energy_vector(), [gamma], [beta])
        assert pattern_state_equals(
            compiled.pattern, target, max_branches=6, seed=0, atol=1e-7
        )

    @given(small_qubos())
    @settings(max_examples=10, deadline=None)
    def test_fused_equals_hanging(self, qubo):
        gammas, betas = [0.37], [0.61]
        target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
        for mode in ("hanging", "fused"):
            compiled = compile_qaoa_pattern(qubo, gammas, betas, linear_mode=mode)
            assert pattern_state_equals(
                compiled.pattern, target, max_branches=4, seed=1, atol=1e-7
            ), mode

    @given(small_qubos(), st.integers(1, 2))
    @settings(max_examples=8, deadline=None)
    def test_node_count_formula_property(self, qubo, p):
        ising = qubo.to_ising()
        compiled = compile_qaoa_pattern(qubo, [0.1] * p, [0.1] * p)
        v = ising.num_spins
        e = len(ising.couplings)
        lin = len(ising.fields)
        assert compiled.num_nodes() == v + p * (e + 2 * v + lin)
        assert compiled.num_entanglers() == p * (2 * e + 2 * v + lin)


CLIFFORD_MOVES = st.lists(
    st.tuples(
        st.sampled_from(["h", "s", "x", "z", "cnot", "cz"]),
        st.integers(0, 2),
        st.integers(0, 2),
    ),
    min_size=1,
    max_size=15,
)


class TestStabilizerMeasurementCrossCheck:
    @given(CLIFFORD_MOVES, st.sampled_from(["X", "Y", "Z"]), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_measurement_probabilities_agree(self, moves, pauli, qubit):
        """Stabilizer and dense simulators agree on Pauli-measurement
        statistics for random Clifford states."""
        n = 3
        tab = StabilizerState(n)
        circ = Circuit(n)
        for name, a, b in moves:
            if name in ("h", "s", "x", "z"):
                tab.apply_named(name, (a,))
                circ.append(name, (a,))
            elif a != b:
                tab.apply_named(name, (a, b))
                circ.append(name, (a, b))
        sv = circ.run()
        p0 = sv.measure_probability(qubit, MeasurementBasis.pauli(pauli), 0)
        # Stabilizer outcome: deterministic iff p0 in {0, 1}; else random.
        if p0 > 1 - 1e-9:
            assert tab.measure_pauli(qubit, pauli) == 0
        elif p0 < 1e-9:
            assert tab.measure_pauli(qubit, pauli) == 1
        else:
            assert np.isclose(p0, 0.5)  # Clifford states: probs in {0,1/2,1}
            out = tab.measure_pauli(qubit, pauli, rng=np.random.default_rng(0))
            assert out in (0, 1)

    @given(CLIFFORD_MOVES)
    @settings(max_examples=15, deadline=None)
    def test_post_measurement_states_agree(self, moves):
        n = 3
        tab = StabilizerState(n)
        circ = Circuit(n)
        for name, a, b in moves:
            if name in ("h", "s", "x", "z"):
                tab.apply_named(name, (a,))
                circ.append(name, (a,))
            elif a != b:
                tab.apply_named(name, (a, b))
                circ.append(name, (a, b))
        sv = circ.run()
        p0 = sv.measure_probability(0, MeasurementBasis.pauli("Z"), 0)
        force = 0 if p0 > 1e-9 else 1
        sv.measure(0, MeasurementBasis.pauli("Z"), force=force, remove=False)
        tab.measure_z(0, force=force) if 1e-9 < p0 < 1 - 1e-9 else tab.measure_z(0)
        assert allclose_up_to_global_phase(
            tab.to_statevector(), sv.to_array(), atol=1e-8
        )
