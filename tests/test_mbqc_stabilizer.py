"""Stabilizer pattern backend: registry dispatch, Clifford classification,
and property cross-checks against the dense engine.

The contract under test: on any Clifford-angle pattern, the
``StabilizerBackend`` agrees with the ``StatevectorBackend`` branch for
branch — equal weights, equal dense outputs up to a global phase, equal
zero-probability behaviour — and its trajectory sampler draws outcome
bitstrings from the same distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from stat_helpers import assert_bit_marginals_agree

from repro.core import compile_qaoa_pattern
from repro.core.verify import check_pattern_determinism
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import (
    Pattern,
    PatternError,
    StabilizerBackend,
    StatevectorBackend,
    available_backends,
    compile_pattern,
    get_backend,
    pattern_to_matrix,
    run_pattern,
    select_backend,
)
from repro.mbqc.backend import DENSE_AUTO_MAX_LIVE, resolve_backend
from repro.mbqc.compile import clifford_word, pauli_of_basis
from repro.problems import MaxCut
from repro.sim import MeasurementBasis, StateVector, ZeroProbabilityBranch
from repro.stab import ForcedOutcomeContradiction, StabilizerState

CLIFFORD_ANGLES = (0.0, np.pi / 2, -np.pi / 2, np.pi)


def random_clifford_pattern(seed: int) -> Pattern:
    """A random state-prep pattern whose every op is Clifford: random graph,
    random Pauli-eigenbasis measurements with random signal domains, random
    corrections and C gates on the outputs."""
    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(4, 8))
    n_out = int(rng.integers(1, 3))
    outputs = list(range(n_nodes - n_out, n_nodes))
    p = Pattern(input_nodes=[], output_nodes=outputs)
    for v in range(n_nodes):
        p.n(v, str(rng.choice(["plus", "plus", "zero", "one", "minus"])))
    for _ in range(int(rng.integers(n_nodes, 2 * n_nodes))):
        u, v = rng.choice(n_nodes, size=2, replace=False)
        p.e(int(u), int(v))
    done = []
    for node in range(n_nodes - n_out):
        plane = str(rng.choice(["XY", "YZ", "XZ"]))
        angle = float(rng.choice(CLIFFORD_ANGLES))
        s_dom = {x for x in done if rng.random() < 0.3}
        t_dom = {x for x in done if rng.random() < 0.3}
        p.m(node, plane, angle, s_dom, t_dom)
        done.append(node)
    for node in outputs:
        if done and rng.random() < 0.5:
            p.x(node, {x for x in done if rng.random() < 0.4} or {done[0]})
        if done and rng.random() < 0.5:
            p.z(node, {x for x in done if rng.random() < 0.4} or {done[-1]})
        if rng.random() < 0.5:
            p.c(node, str(rng.choice(["h", "s", "sdg", "x", "y", "z"])))
    return p


class TestClassifier:
    def test_pauli_bases(self):
        assert pauli_of_basis(MeasurementBasis.xy(0.0)) == ("X", 0)
        assert pauli_of_basis(MeasurementBasis.xy(np.pi)) == ("X", 1)
        assert pauli_of_basis(MeasurementBasis.xy(np.pi / 2)) == ("Y", 0)
        assert pauli_of_basis(MeasurementBasis.yz(0.0)) == ("Z", 0)
        assert pauli_of_basis(MeasurementBasis.xz(0.0)) == ("Z", 0)
        assert pauli_of_basis(MeasurementBasis.xy(0.3)) is None

    def test_clifford_words_reproduce_matrices(self):
        from repro.linalg.gates import HADAMARD, S_GATE, T_GATE
        from repro.mbqc.compile import _CLIFFORD

        for name, mat in _CLIFFORD.items():
            word = clifford_word(mat)
            assert word is not None, name
            acc = np.eye(2, dtype=complex)
            for g in word:
                acc = {"h": HADAMARD, "s": S_GATE}[g] @ acc
            assert allclose_up_to_global_phase(acc, mat), name
        assert clifford_word(T_GATE) is None

    def test_is_clifford_flag(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        assert compile_pattern(p).is_clifford
        q = Pattern(input_nodes=[0], output_nodes=[1])
        q.n(1).e(0, 1).m(0, "XY", 0.25).x(1, {0})
        assert not compile_pattern(q).is_clifford

    def test_qaoa_pattern_clifford_iff_clifford_angles(self):
        qubo = MaxCut.ring(4).to_qubo()
        assert compile_pattern(
            compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern
        ).is_clifford
        assert not compile_pattern(
            compile_qaoa_pattern(qubo, [0.3], [0.1]).pattern
        ).is_clifford

    def test_word_order_matters(self):
        """The stored word is in application order: replaying it on a
        tableau must reproduce the fused matrix, not its reverse."""
        p = Pattern(input_nodes=[], output_nodes=[0])
        p.n(0).c(0, "h").c(0, "s")  # S·H, not H·S
        m = pattern_to_matrix(p, {}, backend="stabilizer")
        ref = pattern_to_matrix(p, {}, backend="statevector")
        assert allclose_up_to_global_phase(m.ravel(), ref.ravel(), atol=1e-9)


class TestRegistry:
    def test_both_backends_registered(self):
        names = available_backends()
        assert "statevector" in names and "stabilizer" in names
        assert isinstance(get_backend("stabilizer"), StabilizerBackend)

    def test_unknown_backend(self):
        with pytest.raises(PatternError, match="unknown backend"):
            get_backend("tensor-network")

    def test_auto_prefers_dense_when_small(self):
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        c = compile_pattern(p)
        assert c.is_clifford
        assert select_backend(c).name == "statevector"

    def test_auto_dispatches_big_clifford_to_stabilizer(self):
        qubo = MaxCut.ring(18).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        assert c.max_live > DENSE_AUTO_MAX_LIVE
        assert select_backend(c).name == "stabilizer"

    def test_auto_keeps_dense_for_big_non_clifford(self):
        """A wide-interaction non-Clifford pattern fits no structured
        engine (not Clifford, interaction width ~n), so auto dispatch
        stays dense; a bounded-width one now routes to mps instead."""
        qubo = MaxCut.complete(6).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.3], [0.1]).pattern)
        assert select_backend(c).name == "statevector"
        ring = compile_pattern(
            compile_qaoa_pattern(MaxCut.ring(18).to_qubo(), [0.3], [0.1]).pattern
        )
        assert select_backend(ring).name == "mps"

    def test_auto_keeps_dense_for_open_input_clifford(self):
        """Tableau columns carry no global phase, so multi-column branch
        maps from the stabilizer engine are phase-incoherent; auto dispatch
        must keep patterns with inputs on the dense engine."""
        qubo = MaxCut.ring(18).to_qubo()
        c = compile_pattern(
            compile_qaoa_pattern(qubo, [0.0], [0.0], open_inputs=True).pattern
        )
        assert c.is_clifford and c.num_inputs == 18
        assert c.max_live > DENSE_AUTO_MAX_LIVE
        assert select_backend(c).name == "statevector"

    def test_auto_keeps_dense_when_outputs_exceed_densify_cap(self):
        """Consumers that densify outputs (run_pattern, solver sampling)
        pass dense_outputs=True; a 24-output Clifford pattern then stays
        dense instead of crashing at tableau densification."""
        qubo = MaxCut.ring(24).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        assert select_backend(c).name == "stabilizer"
        assert select_backend(c, dense_outputs=True).name == "statevector"

    def test_forcing_stabilizer_on_non_clifford_raises(self):
        qubo = MaxCut.ring(3).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.3], [0.1]).pattern)
        with pytest.raises(PatternError, match="not Clifford"):
            select_backend(c, "stabilizer")

    def test_resolve_accepts_instance(self):
        p = Pattern(input_nodes=[], output_nodes=[0])
        p.n(0)
        c = compile_pattern(p)
        engine = StatevectorBackend()
        assert resolve_backend(engine, c) is engine


def _reachable_branch(compiled, seed=0):
    """A positive-probability outcome branch: realize one sampled
    trajectory and echo its outcomes."""
    run = get_backend("statevector").sample_batch(
        compiled, 1, rng=np.random.default_rng(seed)
    )
    return run.outcome_dicts()[0]


def _cross_check_branch(pattern, branch, atol=1e-9):
    """Dense and stabilizer runs of one forced branch must agree: same
    zero-probability behaviour, equal weights, equal outputs up to phase."""
    c = compile_pattern(pattern)
    inputs = np.ones((1, 1), dtype=complex)
    sv, sb = get_backend("statevector"), get_backend("stabilizer")
    try:
        dense = sv.run_branch_batch(c, inputs, branch)
    except ZeroProbabilityBranch:
        with pytest.raises(ZeroProbabilityBranch):
            sb.run_branch_batch(c, inputs, branch)
        return False
    stab = sb.run_branch_batch(c, inputs, branch)
    assert np.allclose(dense.weights, stab.weights, atol=atol), branch
    assert allclose_up_to_global_phase(
        dense.dense_states()[0], stab.dense_states()[0], atol=atol
    ), branch
    return True


class TestBranchCrossCheck:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_clifford_patterns(self, seed):
        pattern = random_clifford_pattern(seed)
        assert compile_pattern(pattern).is_clifford
        rng = np.random.default_rng(seed + 1)
        measured = pattern.measured_nodes()
        checked_live = 0
        for _ in range(6):
            branch = {node: int(rng.integers(2)) for node in measured}
            checked_live += _cross_check_branch(pattern, branch)
        # At least the all-zero branch family should usually be reachable;
        # not asserting per-draw, just that the test exercised something.
        _cross_check_branch(pattern, {node: 0 for node in measured})

    def test_qaoa_clifford_pattern_all_weights(self):
        qubo = MaxCut.ring(3).to_qubo()
        pattern = compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern
        c = compile_pattern(pattern)
        rng = np.random.default_rng(5)
        for _ in range(8):
            branch = {node: int(rng.integers(2)) for node in c.measured_nodes}
            _cross_check_branch(pattern, branch)

    def test_open_inputs_basis_columns(self):
        """With open inputs, the stabilizer engine runs the identity input
        block (computational-basis rows) column for column."""
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        m_stab = pattern_to_matrix(p, backend="stabilizer")
        m_dense = pattern_to_matrix(p, backend="statevector")
        # Column-wise equality up to per-column phase (tableaus carry none).
        for j in range(4):
            assert allclose_up_to_global_phase(
                m_stab[:, j], m_dense[:, j], atol=1e-9
            )

    def test_rejects_general_input_rows(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        c = compile_pattern(p)
        bad = np.array([[0.8, 0.6j]], dtype=complex)
        with pytest.raises(PatternError, match="input rows"):
            get_backend("stabilizer").run_branch_batch(c, bad, {})

    def test_branch_weights_match_state_norms(self):
        """Dense weights are accumulated per-measurement probabilities;
        they must equal the squared output norms (unit-norm inputs)."""
        pattern = random_clifford_pattern(12)
        c = compile_pattern(pattern)
        branch = _reachable_branch(c)
        run = get_backend("statevector").run_branch_batch(
            c, np.ones((1, 1), dtype=complex), branch
        )
        assert run.weights[0] == pytest.approx(
            float(np.linalg.norm(run.dense_states()[0]) ** 2), abs=1e-9
        )


class TestSampledDistributions:
    def test_sampler_matches_exact_branch_weights(self):
        """Empirical outcome frequencies from both engines' trajectory
        samplers match the exact branch distribution."""
        p = Pattern(input_nodes=[], output_nodes=[0, 2])
        for v in range(4):
            p.n(v)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            p.e(u, v)
        p.m(3, "YZ", 0.0).m(1, "XY", 0.0).x(2, {1})
        c = compile_pattern(p)
        sv, sb = get_backend("statevector"), get_backend("stabilizer")

        # Exact branch distribution from forced dense runs.
        exact = {}
        for bits in range(4):
            branch = {3: bits & 1, 1: (bits >> 1) & 1}
            try:
                run = sv.run_branch_batch(c, np.ones((1, 1), complex), branch)
                exact[(branch[3], branch[1])] = float(run.weights[0])
            except ZeroProbabilityBranch:
                exact[(branch[3], branch[1])] = 0.0
        assert sum(exact.values()) == pytest.approx(1.0, abs=1e-9)

        n_shots = 4000
        for engine in (sv, sb):
            run = engine.sample_batch(c, n_shots, rng=np.random.default_rng(7))
            counts = {}
            for row in run.outcomes:
                key = (int(row[0]), int(row[1]))  # order: measured_nodes = (3, 1)
                counts[key] = counts.get(key, 0) + 1
            for key, prob in exact.items():
                freq = counts.get(key, 0) / n_shots
                assert freq == pytest.approx(prob, abs=0.05), (engine.name, key)

    def test_forced_sample_batch_equals_branch_run(self):
        """Pinning every outcome makes sample_batch a (normalized) branch
        run — states must match run_branch_batch up to normalization."""
        pattern = random_clifford_pattern(3)
        c = compile_pattern(pattern)
        branch = _reachable_branch(c)
        sv = get_backend("statevector")
        forced = sv.run_branch_batch(c, np.ones((1, 1), complex), branch)
        sampled = sv.sample_batch(
            c, 3, rng=np.random.default_rng(0), forced_outcomes=branch
        )
        assert np.array_equal(
            sampled.outcomes,
            np.tile([branch[n] for n in c.measured_nodes], (3, 1)),
        )
        ref = forced.dense_states()[0]
        ref = ref / np.linalg.norm(ref)
        for row in sampled.dense_states():
            assert np.allclose(row, ref, atol=1e-9)

    def test_run_pattern_backend_dispatch(self):
        """run_pattern(backend=...) routes through the registry and returns
        the same (normalized) output state for deterministic patterns."""
        qubo = MaxCut.ring(3).to_qubo()
        pattern = compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern
        ref = run_pattern(pattern, seed=0).state_array()
        for backend in ("statevector", "stabilizer", "auto"):
            out = run_pattern(pattern, seed=1, backend=backend)
            assert allclose_up_to_global_phase(
                out.state_array(), ref, atol=1e-9
            ), backend
            assert set(out.outcomes) == set(pattern.measured_nodes())


class TestLongPatternNormStability:
    def test_thousand_measurement_sample_batch_does_not_underflow(self):
        """Deferred normalization shrinks each element's norm² by the
        outcome probability (~1/2 per measurement); the periodic rescale
        must keep ~1000-measurement patterns clear of the 1e-300 floor."""
        n_steps = 1100
        p = Pattern(input_nodes=[], output_nodes=[n_steps])
        p.n(0)
        for i in range(n_steps):
            p.n(i + 1)
            p.e(i, i + 1)
            p.m(i, "XY", 0.0, s_domain=set())
            p.x(i + 1, {i})
            if i:
                p.z(i + 1, {i - 1})
        c = compile_pattern(p)
        run = get_backend("statevector").sample_batch(
            c, 2, rng=np.random.default_rng(0)
        )
        states = run.dense_states()
        assert np.all(np.isfinite(states))
        assert np.allclose(np.linalg.norm(states, axis=1), 1.0, atol=1e-9)


    def test_stabilizer_weights_stay_exact_in_log_domain(self):
        """Branch probabilities are tracked as exact log-2 integers so deep
        Clifford patterns (where a float product of 1/2's would underflow)
        keep exact weights and finite unit output states."""
        n_steps = 150
        p = Pattern(input_nodes=[], output_nodes=[n_steps])
        p.n(0)
        for i in range(n_steps):
            p.n(i + 1)
            p.e(i, i + 1)
            p.m(i, "XY", 0.0)
            p.x(i + 1, {i})
            if i:
                p.z(i + 1, {i - 1})
        c = compile_pattern(p)
        run = get_backend("stabilizer").sample_batch(
            c, 2, rng=np.random.default_rng(1), keep_raw=True
        )
        assert all(out.log2_weight == -n_steps for out in run.raw)
        states = run.dense_states()
        assert np.all(np.isfinite(states))
        assert np.allclose(np.linalg.norm(states, axis=1), 1.0, atol=1e-9)


class TestForcedMeasurementPaths:
    """Direct StabilizerState-vs-StateVector checks of the forced paths."""

    @given(
        moves=st.lists(
            st.tuples(
                st.sampled_from(["h", "s", "sdg", "x", "y", "z", "cnot", "cz"]),
                st.integers(0, 2),
                st.integers(0, 2),
            ),
            min_size=1,
            max_size=15,
        ),
        measurements=st.lists(
            st.tuples(st.sampled_from(["X", "Y", "Z"]), st.integers(0, 2)),
            min_size=1,
            max_size=3,
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_forced_pauli_measurements_agree_with_dense(
        self, moves, measurements, seed
    ):
        n = 3
        tab = StabilizerState(n)
        vec = StateVector.zeros(n)
        from repro.linalg.gates import CNOT, CZ
        from repro.mbqc.compile import _CLIFFORD

        for name, a, b in moves:
            if name in ("cnot", "cz"):
                if a == b:
                    continue
                tab.apply_named(name, (a, b))
                vec.apply_2q(CNOT if name == "cnot" else CZ, a, b)
            else:
                tab.apply_named(name, (a,))
                vec.apply_1q(_CLIFFORD[name], a)
        rng = np.random.default_rng(seed)
        for label, q in measurements:
            force = int(rng.integers(2))
            p_dense = vec.measure_probability(q, MeasurementBasis.pauli(label), force)
            if p_dense < 1e-12:
                with pytest.raises(ForcedOutcomeContradiction):
                    tab.measure_pauli_info(q, label, force=force)
                force ^= 1
                p_dense = vec.measure_probability(
                    q, MeasurementBasis.pauli(label), force
                )
            out, p_tab = tab.measure_pauli_info(q, label, force=force)
            assert out == force
            assert p_tab == pytest.approx(p_dense, abs=1e-9)
            vec.measure(q, MeasurementBasis.pauli(label), force=force, remove=False)
            assert allclose_up_to_global_phase(
                tab.to_statevector(), vec.to_array(), atol=1e-8
            )

    def test_measure_x_contradiction_leaves_tableau_intact(self):
        """Satellite regression: a contradiction raised inside the inner
        measure_z used to leave the tableau H-conjugated."""
        tab = StabilizerState.plus_state(1)  # stabilized by +X
        before = repr(tab.stabilizer_rows())
        with pytest.raises(ForcedOutcomeContradiction):
            tab.measure_x(0, force=1)
        assert repr(tab.stabilizer_rows()) == before
        assert tab.measure_x(0) == 0  # still |+>

    def test_measure_y_contradiction_leaves_tableau_intact(self):
        tab = StabilizerState.plus_state(1)
        tab.s(0)  # stabilized by +Y
        before = repr(tab.stabilizer_rows())
        with pytest.raises(ForcedOutcomeContradiction):
            tab.measure_y(0, force=1)
        assert repr(tab.stabilizer_rows()) == before
        assert tab.measure_y(0) == 0


class TestVerifyStabilizerPath:
    def test_large_clifford_pattern_verifies(self):
        """Clifford-angle QAOA pattern with >=24 measured nodes (dense
        execution would need 2^25 amplitudes per branch)."""
        qubo = MaxCut.ring(24).to_qubo()
        pattern = compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern
        c = compile_pattern(pattern)
        assert len(c.measured_nodes) >= 24
        assert c.max_live > DENSE_AUTO_MAX_LIVE
        assert select_backend(c).name == "stabilizer"
        assert check_pattern_determinism(pattern, max_branches=8, seed=3)

    def test_verdict_matches_dense_on_overlap(self):
        qubo = MaxCut.ring(4).to_qubo()
        pattern = compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern
        dense = check_pattern_determinism(pattern, max_branches=8, seed=1)
        stab = check_pattern_determinism(
            pattern, max_branches=8, seed=1, backend="stabilizer"
        )
        assert dense is True and stab is True

    def test_detects_nondeterminism(self):
        # Graph state measured without corrections: branches differ.
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0)
        assert not check_pattern_determinism(p, backend="stabilizer")
        assert not check_pattern_determinism(p, backend="statevector")

    def test_deterministic_measurements_do_not_mask_nondeterminism(self):
        """Regression: when most uniformly-drawn branches are unreachable
        (deterministic Pauli measurements force their bits), the stabilizer
        check must resample reachable branches from trajectories instead of
        certifying determinism from the single surviving branch."""
        p = Pattern(input_nodes=[], output_nodes=[9])
        for v in range(8):
            p.n(v, "zero")
        for v in range(8):
            p.m(v, "YZ", 0.0)  # deterministic: only the 0 outcome is reachable
        p.n(8).n(9).e(8, 9).m(8, "XY", 0.0)  # uncorrected: branches differ
        assert not check_pattern_determinism(
            p, max_branches=6, seed=0, backend="stabilizer"
        )

    def test_all_deterministic_pattern_verifies(self):
        p = Pattern(input_nodes=[], output_nodes=[9])
        for v in range(8):
            p.n(v, "zero")
        for v in range(8):
            p.m(v, "YZ", 0.0)
        p.n(8).n(9).e(8, 9).m(8, "XY", 0.0).x(9, {8})
        assert check_pattern_determinism(
            p, max_branches=6, seed=0, backend="stabilizer"
        )

    def test_run_pattern_dispatch_rejects_renormalize_false(self):
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        with pytest.raises(PatternError, match="renormalize"):
            run_pattern(p, renormalize=False, backend="statevector")

    def test_stabilizer_check_rejects_open_inputs(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        with pytest.raises(PatternError, match="state-preparation"):
            check_pattern_determinism(p, backend="stabilizer")


class TestBatchedTableauSampler:
    """The vectorized (bit-packed batched tableau) sampler vs the retained
    per-shot loop: same seed, same whole-block draw schedule — trajectories
    must agree **bit for bit**, not just in distribution."""

    def _both_paths(self, compiled, n_shots, seed, noise=None):
        sb = get_backend("stabilizer")
        vec = sb.sample_batch(
            compiled, n_shots, rng=np.random.default_rng(seed), noise=noise,
            keep_raw=True, vectorize=True,
        )
        loop = sb.sample_batch(
            compiled, n_shots, rng=np.random.default_rng(seed), noise=noise,
            keep_raw=True, vectorize=False,
        )
        return vec, loop

    def _assert_identical(self, vec, loop):
        assert np.array_equal(vec.outcomes, loop.outcomes)
        assert len(vec.raw) == len(loop.raw)
        for a, b in zip(vec.raw, loop.raw):
            assert a.log2_weight == b.log2_weight
            assert a.canonical_key() == b.canonical_key()
            assert np.allclose(a.probabilities(), b.probabilities(), atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_clifford_patterns_bit_identical(self, seed):
        pattern = random_clifford_pattern(seed)
        c = compile_pattern(pattern)
        vec, loop = self._both_paths(c, 17, seed)
        self._assert_identical(vec, loop)

    def test_qaoa_ring_bit_identical(self):
        qubo = MaxCut.ring(8).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        vec, loop = self._both_paths(c, 64, seed=3)
        self._assert_identical(vec, loop)

    def test_bit_identical_under_pauli_noise(self):
        """Readout flips and channel faults ride the same whole-block draw
        schedule on both paths (draw_pauli_fault_batch, one vector draw per
        channel op) — bit-identity survives a noise-lowered program."""
        from repro.mbqc.noise import NoiseModel

        qubo = MaxCut.ring(5).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        noise = NoiseModel(p_prep=0.15, p_ent=0.05, p_meas=0.25)
        vec, loop = self._both_paths(c, 40, seed=11, noise=noise)
        self._assert_identical(vec, loop)
        # Noise must actually randomize the record for this test to bite.
        assert 0.0 < vec.outcomes.mean() < 1.0

    def test_forced_outcomes_match_loop(self):
        pattern = random_clifford_pattern(9)
        c = compile_pattern(pattern)
        branch = _reachable_branch(c)
        sb = get_backend("stabilizer")
        for vectorize in (True, False):
            run = sb.sample_batch(
                c, 5, rng=np.random.default_rng(0), forced_outcomes=branch,
                vectorize=vectorize,
            )
            assert np.array_equal(
                run.outcomes,
                np.tile([branch[n] for n in c.measured_nodes], (5, 1)),
            )

    def test_vectorized_forced_contradiction_raises_zero_probability(self):
        """A branch forcing against a deterministic Pauli measurement is
        zero-weight on both paths."""
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0, "zero").n(1)
        p.m(0, "YZ", 0.0)  # deterministic: only outcome 0 is reachable
        c = compile_pattern(p)
        sb = get_backend("stabilizer")
        for vectorize in (True, False):
            with pytest.raises(ZeroProbabilityBranch):
                sb.sample_batch(
                    c, 3, rng=np.random.default_rng(0),
                    forced_outcomes={0: 1}, vectorize=vectorize,
                )

    def test_keep_raw_default_off(self):
        """The memory fix: sample_batch no longer retains per-shot outputs
        unless asked — and the accessors say how to ask."""
        qubo = MaxCut.ring(4).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        run = get_backend("stabilizer").sample_batch(
            c, 4, rng=np.random.default_rng(0)
        )
        assert run.raw is None
        assert run.outcomes.shape[0] == 4
        with pytest.raises(ValueError, match="keep_raw"):
            run.dense_states()

    def test_packed_outputs_share_extraction(self):
        """keep_raw=True on the vectorized path yields per-shot views into
        one shared extraction (O(n_out) per shot), equal to the loop path's
        full StabilizerOutput tableaus."""
        from repro.mbqc import PackedStabilizerOutput

        qubo = MaxCut.ring(4).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        run = get_backend("stabilizer").sample_batch(
            c, 6, rng=np.random.default_rng(2), keep_raw=True, vectorize=True
        )
        assert all(isinstance(out, PackedStabilizerOutput) for out in run.raw)
        assert run.raw[0].batch is run.raw[1].batch
        states = run.dense_states()
        assert np.allclose(np.linalg.norm(states, axis=1), 1.0, atol=1e-9)

    def test_non_batch_applicable_fallback_survives_shot_dependent_schedule(self):
        """Regression: a hand-built Clifford program with a non-Pauli
        conditional (H) diverges the X/Z structure per shot, so which later
        measurements are random differs across shots — the automatic
        per-shot fallback must draw per shot from the generator instead of
        the shared vector table (whose schedule invariant would break)."""
        from dataclasses import replace as dc_replace

        from repro.linalg.gates import HADAMARD
        from repro.mbqc.compile import ConditionalOp

        p = Pattern(input_nodes=[], output_nodes=[2])
        p.n(0).n(1).n(2).e(0, 1).e(1, 2)
        p.m(0, "XY", 0.0).x(1, {0}).m(1, "XY", 0.0)
        c = compile_pattern(p)
        # Swap the Pauli-X correction for a conditional Hadamard: node 1's
        # measurement is then random on some shots, deterministic on others.
        ops = list(c.ops)
        idx = next(
            i for i, op in enumerate(ops) if type(op) is ConditionalOp
        )
        ops[idx] = ConditionalOp(
            ops[idx].slot, ops[idx].domain, HADAMARD, ("h",)
        )
        hacked = dc_replace(c, ops=tuple(ops))
        assert hacked.is_clifford
        from repro.mbqc.backend import _batch_applicable

        assert not _batch_applicable(hacked)
        sb = get_backend("stabilizer")
        from repro.mbqc.noise import NoiseModel

        run = sb.sample_batch(
            hacked, 64, rng=np.random.default_rng(0),
            noise=NoiseModel(p_meas=0.2),
        )
        assert run.outcomes.shape == (64, 2)
        # Forcing vectorization on such a program is refused loudly.
        with pytest.raises(PatternError, match="vectorize"):
            sb.sample_batch(hacked, 4, rng=0, vectorize=True)

    def test_vectorize_true_rejects_empty_register(self):
        p = Pattern(input_nodes=[], output_nodes=[])
        c = compile_pattern(p)
        with pytest.raises(PatternError, match="vectorize"):
            get_backend("stabilizer").sample_batch(c, 2, rng=0, vectorize=True)

    def test_engine_named_errors(self):
        qubo = MaxCut.ring(3).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        with pytest.raises(ValueError, match="stabilizer"):
            get_backend("stabilizer").sample_batch(c, -1)
        with pytest.raises(ValueError, match="statevector"):
            get_backend("statevector").sample_batch(c, -1)
        branch = {node: 0 for node in c.measured_nodes}
        with pytest.raises(PatternError, match="stabilizer"):
            get_backend("stabilizer").run_branch_batch(
                c, np.ones((1, 4), dtype=complex), branch
            )

    def test_sampled_distribution_matches_dense(self):
        """The vectorized sampler still draws from the Born distribution:
        cross-check empirical frequencies against the dense engine."""
        qubo = MaxCut.ring(4).to_qubo()
        c = compile_pattern(compile_qaoa_pattern(qubo, [0.0], [0.0]).pattern)
        n_shots = 3000
        sv_run = get_backend("statevector").sample_batch(
            c, n_shots, rng=np.random.default_rng(21)
        )
        sb_run = get_backend("stabilizer").sample_batch(
            c, n_shots, rng=np.random.default_rng(22), vectorize=True
        )
        # Compare marginal outcome frequencies per measured node within
        # combined two-sample standard errors (shared certification helper).
        assert_bit_marginals_agree(sv_run.outcomes, sb_run.outcomes, k=4.0)


class TestSolverBatchedSampling:
    def test_solver_backend_threading(self):
        from repro.core.solver import MBQCQAOASolver

        solver = MBQCQAOASolver(
            MaxCut.ring(4).to_qubo(), p=1, shots=32, seed=1, backend="statevector"
        )
        batch = solver.sample([0.4], [0.7])
        assert batch.bitstrings.shape == (32,)

    def test_average_fidelity_backend_threading(self):
        from repro.mbqc.noise import NoiseModel, average_fidelity

        qubo = MaxCut.ring(3).to_qubo()
        pattern = compile_qaoa_pattern(qubo, [0.3], [0.5]).pattern
        f = average_fidelity(
            pattern, NoiseModel(), trajectories=3, seed=0, backend="statevector"
        )
        assert f == pytest.approx(1.0, abs=1e-9)
