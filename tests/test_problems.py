"""Tests for the problems package: QUBO/Ising algebra and each encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import (
    QUBO,
    GraphColoring,
    IsingModel,
    MaxCut,
    MaxKCut,
    MaximumIndependentSet,
    MinVertexCover,
    NumberPartitioning,
)
from repro.utils import cycle_graph, int_to_bitstring, iter_bitstrings


class TestQUBO:
    def test_cost_matches_matrix_form(self):
        q = QUBO.from_terms(3, {(0, 1): 2.0, (1, 2): -1.0}, [0.5, 0.0, -0.25], 1.0)
        assert q.cost([1, 1, 0]) == pytest.approx(2.0 + 0.5 + 1.0)
        assert q.cost([0, 1, 1]) == pytest.approx(-1.0 - 0.25 + 1.0)

    def test_cost_vector_matches_pointwise(self):
        rng = np.random.default_rng(0)
        m = np.triu(rng.normal(size=(4, 4)))
        q = QUBO(m, constant=0.7)
        cv = q.cost_vector()
        for x in range(16):
            assert cv[x] == pytest.approx(q.cost(int_to_bitstring(x, 4)))

    def test_lower_triangle_folded(self):
        m = np.array([[0.0, 0.0], [3.0, 0.0]])
        q = QUBO(m)
        assert q.matrix[0, 1] == 3.0
        assert q.matrix[1, 0] == 0.0

    def test_diagonal_quadratic_folds_to_linear(self):
        q = QUBO.from_terms(2, {(1, 1): 2.0})
        assert q.linear_terms()[1] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QUBO(np.zeros((2, 3)))
        q = QUBO.from_terms(2, {(0, 1): 1.0})
        with pytest.raises(ValueError):
            q.cost([1])
        with pytest.raises(ValueError):
            q.cost([2, 0])

    def test_brute_force(self):
        q = QUBO.from_terms(2, {(0, 1): 5.0}, [-1.0, -1.0])
        val, arg = q.brute_force_minimum()
        assert val == -1.0 and arg in (1, 2)

    def test_addition_and_scaling(self):
        a = QUBO.from_terms(2, {(0, 1): 1.0}, [1.0, 0.0], 0.5)
        b = a.scaled(2.0)
        assert b.cost([1, 1]) == pytest.approx(2 * a.cost([1, 1]))
        c = a + a
        assert c.cost([1, 0]) == pytest.approx(2 * a.cost([1, 0]))

    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ising_round_trip(self, n, seed):
        rng = np.random.default_rng(seed)
        m = np.triu(rng.normal(size=(n, n)))
        q = QUBO(m, constant=float(rng.normal()))
        q2 = q.to_ising().to_qubo()
        assert np.allclose(q2.cost_vector(), q.cost_vector(), atol=1e-9)

    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ising_energy_matches_qubo_cost(self, n, seed):
        rng = np.random.default_rng(seed)
        m = np.triu(rng.normal(size=(n, n)))
        q = QUBO(m)
        ising = q.to_ising()
        ev = ising.energy_vector()
        cv = q.cost_vector()
        assert np.allclose(ev, cv, atol=1e-9)
        # And pointwise via s = 1 - 2x.
        for bits in iter_bitstrings(n):
            spins = [1 - 2 * b for b in bits]
            assert ising.energy(spins) == pytest.approx(q.cost(bits))


class TestIsing:
    def test_coupling_canonicalization(self):
        m = IsingModel(3, {(2, 0): 1.0, (0, 2): 2.0})
        assert m.couplings == {(0, 2): 3.0}

    def test_self_coupling_rejected(self):
        with pytest.raises(ValueError):
            IsingModel(2, {(1, 1): 1.0})

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            IsingModel(2, {(0, 5): 1.0})
        with pytest.raises(ValueError):
            IsingModel(2, {}, {9: 1.0})

    def test_energy_validation(self):
        m = IsingModel(2, {(0, 1): 1.0})
        with pytest.raises(ValueError):
            m.energy([1, 0])  # 0 is not a spin

    def test_interaction_graph(self):
        m = IsingModel(4, {(0, 1): 1.0, (2, 3): 0.5, (1, 2): 0.0})
        assert m.interaction_graph() == [(0, 1), (2, 3)]


class TestMaxCut:
    def test_ring_cut_values(self):
        mc = MaxCut.ring(4)
        assert mc.cut_value([0, 1, 0, 1]) == 4
        assert mc.cut_value([0, 0, 1, 1]) == 2
        assert mc.max_cut_value() == 4

    def test_odd_ring(self):
        mc = MaxCut.ring(5)
        assert mc.max_cut_value() == 4  # odd cycles are not bipartite

    def test_qubo_is_negated_cut(self):
        mc = MaxCut.ring(5)
        q = mc.to_qubo()
        cv = q.cost_vector()
        for x in range(32):
            assert cv[x] == pytest.approx(-mc.cut_value(int_to_bitstring(x, 5)))

    def test_cost_hamiltonian_eigenvalues_are_cuts(self):
        mc = MaxCut(4, [(0, 1), (1, 2), (2, 3)])
        ev = mc.cost_hamiltonian().energy_vector()
        assert np.allclose(ev, mc.cut_vector())

    def test_weighted(self):
        mc = MaxCut(3, [(0, 1), (1, 2)], weights={(0, 1): 2.0, (1, 2): -0.5})
        assert mc.cut_value([0, 1, 1]) == pytest.approx(2.0)
        assert mc.cut_value([0, 1, 0]) == pytest.approx(1.5)

    def test_weight_missing(self):
        with pytest.raises(ValueError):
            MaxCut(3, [(0, 1), (1, 2)], weights={(0, 1): 1.0})

    def test_approximation_ratio(self):
        mc = MaxCut.ring(4)
        assert mc.approximation_ratio(3.0) == pytest.approx(0.75)

    def test_random_regular_constructor(self):
        mc = MaxCut.random_regular(3, 8, seed=0)
        assert mc.num_vertices == 8 and len(mc.edges) == 12


class TestMIS:
    def test_independence(self):
        mis = MaximumIndependentSet(4, [(0, 1), (1, 2), (2, 3)])
        assert mis.is_independent([1, 0, 1, 0])
        assert not mis.is_independent([1, 1, 0, 0])

    def test_maximum_size(self):
        mis = MaximumIndependentSet(*cycle_graph(5))
        assert mis.maximum_independent_set_size() == 2

    def test_penalty_qubo_optimum_is_mis(self):
        mis = MaximumIndependentSet(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)])
        q = mis.to_penalty_qubo(penalty=2.0)
        val, arg = q.brute_force_minimum()
        x = int_to_bitstring(arg, 5)
        assert mis.is_independent(x)
        assert sum(x) == mis.maximum_independent_set_size()
        assert val == pytest.approx(-mis.maximum_independent_set_size())

    def test_penalty_validation(self):
        mis = MaximumIndependentSet(2, [(0, 1)])
        with pytest.raises(ValueError):
            mis.to_penalty_qubo(penalty=0.5)

    def test_feasibility_mask(self):
        mis = MaximumIndependentSet(3, [(0, 1)])
        mask = mis.feasibility_mask()
        assert not mask[0b011]
        assert mask[0b101]

    def test_greedy_warm_start_feasible(self):
        mis = MaximumIndependentSet.random(10, 0.4, seed=5)
        for s in range(5):
            x = mis.greedy_independent_set(seed=s)
            assert mis.is_independent(x)
            assert sum(x) >= 1

    def test_neighborhood(self):
        mis = MaximumIndependentSet(4, [(0, 1), (0, 2)])
        assert mis.neighborhood(0) == [1, 2]
        assert mis.neighborhood(3) == []


class TestColoring:
    def test_feasibility(self):
        gc = GraphColoring(2, [(0, 1)], k=2)
        assert gc.is_feasible([1, 0, 0, 1])
        assert not gc.is_feasible([1, 1, 0, 1])

    def test_conflicts(self):
        gc = GraphColoring(2, [(0, 1)], k=2)
        assert gc.conflict_count([1, 0, 1, 0]) == 1
        assert gc.conflict_count([1, 0, 0, 1]) == 0

    def test_cost_vector_on_feasible(self):
        gc = GraphColoring(2, [(0, 1)], k=2)
        cv = gc.cost_vector()
        import repro.utils as u

        for x in range(16):
            bits = u.int_to_bitstring(x, 4)
            if gc.is_feasible(bits):
                assert cv[x] == pytest.approx(gc.conflict_count(bits))

    def test_initial_feasible(self):
        gc = GraphColoring(3, [(0, 1), (1, 2)], k=3)
        assert gc.is_feasible(gc.initial_feasible_state())

    def test_k_validation(self):
        with pytest.raises(ValueError):
            GraphColoring(2, [(0, 1)], k=1)


class TestMaxKCut:
    def test_feasibility_and_coloring(self):
        mk = MaxKCut(2, [(0, 1)], k=3)
        x = [0, 1, 0, 1, 0, 0]
        assert mk.is_feasible(x)
        assert mk.coloring_of(x) == [1, 0]
        assert mk.cut_of_coloring([1, 0]) == 1
        assert mk.cut_of_coloring([1, 1]) == 0

    def test_cost_vector_feasible_entries(self):
        mk = MaxKCut(2, [(0, 1)], k=2)
        cv = mk.cost_vector()
        # feasible one-hot: vertex0 color0, vertex1 color1 -> qubits 0,3
        assert cv[0b1001] == pytest.approx(-1.0)
        assert cv[0b0101] == pytest.approx(0.0)  # same color
        # infeasible entries are penalized above any cut
        assert cv[0] == pytest.approx(2.0)


class TestPartition:
    def test_difference(self):
        np_ = NumberPartitioning([3.0, 1.0, 1.0, 1.0])
        assert np_.difference([1, 0, 0, 0]) == pytest.approx(0.0)
        assert np_.difference([0, 0, 0, 0]) == pytest.approx(6.0)

    def test_qubo_encodes_squared_difference(self):
        np_ = NumberPartitioning([2.0, 3.0, 5.0])
        q = np_.to_qubo()
        cv = q.cost_vector()
        for x in range(8):
            bits = int_to_bitstring(x, 3)
            assert cv[x] == pytest.approx(np_.difference(bits) ** 2)

    def test_best_difference(self):
        np_ = NumberPartitioning([4.0, 5.0, 6.0, 7.0])
        assert np_.best_difference() == pytest.approx(0.0)
        np2 = NumberPartitioning([2.0, 3.0, 7.0])
        assert np2.best_difference() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumberPartitioning([])
        with pytest.raises(ValueError):
            NumberPartitioning([1.0, -2.0])

    def test_dense_interaction_graph(self):
        np_ = NumberPartitioning.random(5, seed=1)
        assert len(np_.to_ising().interaction_graph()) == 10


class TestVertexCover:
    def test_cover_check(self):
        vc = MinVertexCover(3, [(0, 1), (1, 2)])
        assert vc.is_cover([0, 1, 0])
        assert not vc.is_cover([1, 0, 0])

    def test_minimum_cover(self):
        vc = MinVertexCover(*cycle_graph(5))
        assert vc.minimum_cover_size() == 3

    def test_qubo_optimum_is_min_cover(self):
        vc = MinVertexCover(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        q = vc.to_qubo(penalty=2.0)
        val, arg = q.brute_force_minimum()
        x = int_to_bitstring(arg, 5)
        assert vc.is_cover(x)
        assert sum(x) == vc.minimum_cover_size() == int(val)

    def test_qubo_has_linear_terms(self):
        # This problem exercises the general-QUBO (Eq. 12) compile path.
        vc = MinVertexCover(3, [(0, 1)])
        ising = vc.to_qubo().to_ising()
        assert ising.fields  # nonzero single-Z terms

    def test_penalty_validation(self):
        with pytest.raises(ValueError):
            MinVertexCover(2, [(0, 1)]).to_qubo(penalty=1.0)
