"""The exact density-matrix execution engine ("density" in the registry).

Covers end-to-end noiseless agreement with the dense engine, exact channel
integration vs the Monte-Carlo trajectory estimator (the E21 certification
claim: agreement within ~3 standard errors), non-Pauli channels, the
Choi-state determinism check, solver wiring, and the vectorized trajectory
sampler (seeded bit-identity between the batched sweep and the per-shot
loop, and across shot chunkings — the PR 4 contract extended to the third
engine).
"""

import numpy as np
import pytest
from stat_helpers import (
    assert_mean_within_sigma,
    assert_rows_within_sigma,
)

from repro.core import compile_qaoa_pattern
from repro.core.solver import MBQCQAOASolver
from repro.core.verify import check_pattern_determinism
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import (
    Pattern,
    available_backends,
    compile_pattern,
    get_backend,
    run_pattern,
    select_backend,
)
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import lower_noise
from repro.mbqc.noise import NoiseModel, average_fidelity
from repro.mbqc.pattern import PatternError
from repro.mbqc.runner import pattern_to_matrix
from repro.problems import MaxCut
from repro.sim import ZeroProbabilityBranch


def j_pattern(alpha):
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


def j_chain(alphas):
    """A chain of J(α) gadgets: one input, len(alphas) measurements."""
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


class TestRegistry:
    def test_registered(self):
        assert "density" in available_backends()
        assert get_backend("density").name == "density"

    def test_supports_within_reach(self):
        compiled = compile_pattern(j_pattern(0.3))
        assert get_backend("density").supports(compiled)

    def test_auto_dispatch_picks_density_for_non_pauli(self):
        compiled = lower_noise(
            compile_pattern(j_pattern(0.3)),
            ChannelNoiseModel(prep=Channel.amplitude_damping(0.2)),
        )
        assert select_backend(compiled).name == "density"


class TestNoiselessAgreement:
    def test_run_pattern_matches_statevector(self):
        for alpha in (0.3, 1.1):
            p = j_pattern(alpha)
            ref = run_pattern(p, seed=0, forced_outcomes={0: 1}).state_array()
            got = run_pattern(
                p, seed=0, forced_outcomes={0: 1}, backend="density"
            ).state_array()
            assert allclose_up_to_global_phase(got, ref, atol=1e-9)

    def test_branch_batch_matches_statevector(self):
        p = j_chain([0.4, 0.9])
        compiled = compile_pattern(p)
        inputs = np.eye(2, dtype=complex)
        for branch in ({0: 0, 1: 0}, {0: 1, 1: 0}, {0: 1, 1: 1}):
            dense = get_backend("statevector").run_branch_batch(
                compiled, inputs, branch
            )
            dm = get_backend("density").run_branch_batch(compiled, inputs, branch)
            assert np.allclose(dense.weights, dm.weights, atol=1e-9)
            for j in range(2):
                assert allclose_up_to_global_phase(
                    dense.dense_states()[j], dm.dense_states()[j], atol=1e-9
                )

    def test_pattern_to_matrix_columns(self):
        p = j_pattern(0.7)
        m_sv = pattern_to_matrix(p, {0: 0})
        m_dm = pattern_to_matrix(p, {0: 0}, backend="density")
        for j in range(2):
            assert allclose_up_to_global_phase(m_sv[:, j], m_dm[:, j], atol=1e-9)

    def test_integrate_noiseless_is_ideal_pure_state(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        program = compiled.executable()
        run = get_backend("density").integrate(program)
        ideal = run_pattern(compiled.pattern, seed=0).state_array()
        assert run.fidelity_with_pure(ideal) == pytest.approx(1.0, abs=1e-9)
        assert run.rho.trace() == pytest.approx(1.0, abs=1e-9)

    def test_zero_probability_branch_raises(self):
        # A |0>-prepared node measured in Z can never give outcome 1.
        p = Pattern(output_nodes=[1])
        p.n(0, state="zero").n(1).m(0, "YZ", 0.0)
        compiled = compile_pattern(p)
        with pytest.raises(ZeroProbabilityBranch):
            get_backend("density").run_branch_batch(
                compiled, np.ones((1, 1), dtype=complex), {0: 1}
            )


class TestExactVsTrajectory:
    def test_depolarizing_convergence_3_sigma(self):
        """The E21 certification on a bench-E15-class pattern: the batched
        Monte-Carlo estimator at 1024 trajectories agrees with the exact
        channel integral within 3 standard errors."""
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        noise = NoiseModel(p_prep=0.01, p_ent=0.01)
        exact = average_fidelity(compiled.pattern, noise, exact=True)
        program = compile_pattern(compiled.pattern)
        ideal = run_pattern(compiled.pattern, seed=0, compiled=program).state_array()
        ref = ideal / np.linalg.norm(ideal)
        run = get_backend("statevector").sample_batch(
            program, 1024, rng=7, noise=noise
        )
        fids = np.abs(run.dense_states() @ ref.conj()) ** 2
        assert_mean_within_sigma(fids, exact)

    def test_random_patterns_converge(self):
        """Property-style sweep: on small random j-chains with random
        channel rates, the trajectory estimate stays within 3 standard
        errors of the exact density-matrix fidelity."""
        for seed in range(4):
            rng = np.random.default_rng(seed)
            alphas = rng.uniform(-np.pi, np.pi, size=int(rng.integers(2, 5)))
            noise = NoiseModel(
                p_prep=float(rng.uniform(0, 0.05)),
                p_ent=float(rng.uniform(0, 0.05)),
                p_meas=float(rng.uniform(0, 0.05)),
            )
            pattern = j_chain(list(alphas))
            exact = average_fidelity(pattern, noise, exact=True)
            program = compile_pattern(pattern)
            ideal = run_pattern(pattern, seed=0, compiled=program).state_array()
            ref = ideal / np.linalg.norm(ideal)
            run = get_backend("statevector").sample_batch(
                program, 1500, rng=seed + 100, noise=noise
            )
            fids = np.abs(run.dense_states() @ ref.conj()) ** 2
            assert_mean_within_sigma(fids, exact, context=f"seed {seed}")

    def test_readout_flips_integrate_exactly(self):
        """Readout flips branch the classical record: the exact integral
        still matches a large trajectory average."""
        pattern = j_chain([0.5, -0.8])
        noise = NoiseModel(p_meas=0.15)
        exact = average_fidelity(pattern, noise, exact=True)
        traj = average_fidelity(pattern, noise, trajectories=20000, seed=5)
        assert exact == pytest.approx(traj, abs=0.01)
        assert exact < 1.0

    def test_density_sample_batch_is_unbiased_estimator(self):
        """Trajectories on the density engine itself (sampled outcomes,
        exact channels) also average to the exact fidelity."""
        pattern = j_pattern(0.9)
        noise = NoiseModel(p_prep=0.1, p_ent=0.1)
        exact = average_fidelity(pattern, noise, exact=True)
        traj = average_fidelity(
            pattern, noise, trajectories=400, seed=11, backend="density"
        )
        # Exact channels shrink per-shot variance: loose 3σ-style bound.
        assert traj == pytest.approx(exact, abs=0.05)


class TestNonPauliChannels:
    def test_amplitude_damping_exact(self):
        """Amplitude damping has no Pauli trajectory sampler: the exact
        path integrates it, automatic dispatch routes the trajectory path
        to the density engine (exact channels, sampled outcomes), and an
        explicit trajectory backend fails loudly."""
        pattern = j_chain([0.6])
        model = ChannelNoiseModel(prep=Channel.amplitude_damping(0.3))
        f = average_fidelity(pattern, model, exact=True)
        assert 0.5 < f < 1.0
        f_auto = average_fidelity(pattern, model, trajectories=64, seed=1)
        assert f_auto == pytest.approx(f, abs=0.1)
        with pytest.raises(PatternError):
            average_fidelity(
                pattern, model, trajectories=8, backend="statevector"
            )

    def test_solver_auto_routes_non_pauli_noise(self):
        """The variational loop works with non-Pauli noise and the default
        backend: lowering happens before dispatch, so auto-selection lands
        on the density engine."""
        solver = MBQCQAOASolver(
            MaxCut.ring(3).to_qubo(), p=1, shots=16, runs_per_batch=2,
            seed=0, noise=ChannelNoiseModel(prep=Channel.amplitude_damping(0.1)),
        )
        batch = solver.sample([0.4], [0.7])
        assert batch.bitstrings.shape == (16,)

    def test_dephasing_channel_model(self):
        pattern = j_pattern(0.4)
        model = ChannelNoiseModel(ent=Channel.dephasing(0.2))
        exact = average_fidelity(pattern, model, exact=True)
        traj = average_fidelity(pattern, model, trajectories=20000, seed=3)
        assert exact == pytest.approx(traj, abs=0.01)


class TestDeterminismChoi:
    def test_deterministic_with_inputs(self):
        assert check_pattern_determinism(j_chain([0.4, 1.2]), backend="density")

    def test_deterministic_qaoa_pattern(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        assert check_pattern_determinism(
            compiled.pattern, max_branches=16, seed=0, backend="density"
        )

    def test_broken_pattern_detected(self):
        # Dropping the X correction makes the branch maps differ.
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.7)
        assert not check_pattern_determinism(p, backend="density")

    def test_deep_measured_set_compares_relatively(self):
        """48 measured nodes give branch weights ~2^-48: the weight
        comparison must be relative, not absolute, or every branch would
        be skipped/vacuous (regression for the linear-domain cutoff)."""
        compiled = compile_qaoa_pattern(
            MaxCut.ring(8).to_qubo(), [0.0, 0.0], [0.0, 0.0]
        )
        assert check_pattern_determinism(
            compiled.pattern, max_branches=2, seed=0, backend="density"
        )


class TestSolverWiring:
    def test_exact_expectation_matches_ideal_distribution(self):
        qubo = MaxCut.ring(3).to_qubo()
        solver = MBQCQAOASolver(qubo, p=1, shots=16, seed=0)
        gammas, betas = [0.4], [0.7]
        exact = solver.exact_expectation(gammas, betas)
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        state = run_pattern(compiled.pattern, seed=1).state_array()
        probs = np.abs(state) ** 2
        probs /= probs.sum()
        assert exact == pytest.approx(float(probs @ qubo.cost_vector()), abs=1e-9)

    def test_exact_expectation_with_noise_brackets_sampling(self):
        qubo = MaxCut.ring(3).to_qubo()
        noise = NoiseModel(p_prep=0.05, p_ent=0.05)
        solver = MBQCQAOASolver(
            qubo, p=1, shots=2048, runs_per_batch=64, noise=noise, seed=2
        )
        gammas, betas = [0.4], [0.7]
        exact = solver.exact_expectation(gammas, betas)
        sampled = solver.expectation(gammas, betas)
        assert sampled == pytest.approx(exact, abs=0.15)

    def test_solver_runs_on_density_backend(self):
        qubo = MaxCut.ring(3).to_qubo()
        solver = MBQCQAOASolver(
            qubo, p=1, shots=32, runs_per_batch=4, seed=0,
            noise=NoiseModel(p_ent=0.05), backend="density",
        )
        batch = solver.sample([0.4], [0.7])
        assert batch.bitstrings.shape == (32,)


class TestBatchedDensitySampler:
    """The vectorized (batched density tensor) sampler vs the retained
    per-shot loop: same seed, same whole-block draw schedule — outcome
    records must agree **bit for bit**, not just in distribution (the PR 4
    stabilizer contract, extended to the third engine)."""

    def _both_paths(self, compiled, n_shots, seed, noise=None, forced=None):
        dm = get_backend("density")
        vec = dm.sample_batch(
            compiled, n_shots, rng=np.random.default_rng(seed), noise=noise,
            forced_outcomes=forced, keep_raw=True, vectorize=True,
        )
        loop = dm.sample_batch(
            compiled, n_shots, rng=np.random.default_rng(seed), noise=noise,
            forced_outcomes=forced, keep_raw=True, vectorize=False,
        )
        return vec, loop

    def _assert_identical(self, vec, loop):
        assert np.array_equal(vec.outcomes, loop.outcomes)
        assert len(vec.raw) == len(loop.raw)
        for a, b in zip(vec.raw, loop.raw):
            assert np.allclose(
                a.rho.to_matrix(), b.rho.to_matrix(), atol=1e-9
            )

    def test_noiseless_chain_bit_identical(self):
        c = compile_pattern(j_chain([0.4, -1.1, 0.8]))
        vec, loop = self._both_paths(c, 33, seed=2)
        self._assert_identical(vec, loop)
        # Generic angles randomize outcomes; the check must bite.
        assert 0.0 < vec.outcomes.mean() < 1.0

    def test_qaoa_ring_bit_identical(self):
        c = compile_pattern(
            compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7]).pattern
        )
        vec, loop = self._both_paths(c, 40, seed=9)
        self._assert_identical(vec, loop)

    def test_bit_identical_under_pauli_channels_and_flips(self):
        """Readout flips and depolarizing channels ride the same draw
        schedule on both paths (channels are exact — only measurements and
        flips consume randomness)."""
        c = compile_pattern(
            compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7]).pattern
        )
        noise = NoiseModel(p_prep=0.1, p_ent=0.05, p_meas=0.2)
        vec, loop = self._both_paths(c, 48, seed=17, noise=noise)
        self._assert_identical(vec, loop)

    def test_bit_identical_under_amplitude_damping(self):
        """Non-Pauli channels are the density engine's reason to exist: the
        batched Kraus einsum and the scalar loop must still produce seeded
        bit-identical records."""
        model = ChannelNoiseModel(
            prep=Channel.amplitude_damping(0.25),
            ent=Channel.dephasing(0.1),
            meas_flip=0.15,
        )
        c = compile_pattern(j_chain([0.5, 1.3]))
        vec, loop = self._both_paths(c, 32, seed=23, noise=model)
        self._assert_identical(vec, loop)
        mixed = [out for out in vec.raw if out.rho.purity() < 1.0 - 1e-9]
        assert mixed, "damping should leave trajectory outputs mixed"

    def test_forced_subset_bit_identical(self):
        """Pinning a subset of outcomes skips those draws identically on
        both paths; the rest stay sampled."""
        c = compile_pattern(j_chain([0.4, -0.9, 1.2]))
        node = c.measured_nodes[1]
        vec, loop = self._both_paths(c, 21, seed=31, forced={node: 1})
        self._assert_identical(vec, loop)
        i = c.measured_nodes.index(node)
        assert np.all(vec.outcomes[:, i] == 1)

    def test_forced_all_equals_branch_run(self):
        """Pinning every outcome makes sample_batch a (normalized) branch
        run — per-shot states must match run_branch_batch on both paths."""
        c = compile_pattern(j_chain([0.7, 0.3]))
        branch = {n: 0 for n in c.measured_nodes}
        dm = get_backend("density")
        plus_row = np.ones((1, 2), dtype=complex) / np.sqrt(2)
        forced = dm.run_branch_batch(c, plus_row, branch)
        ref = forced.raw[0].rho.to_matrix()
        ref = ref / np.real(np.trace(ref))
        vec, loop = self._both_paths(c, 3, seed=1, forced=branch)
        for run in (vec, loop):
            assert np.array_equal(
                run.outcomes,
                np.tile([branch[n] for n in c.measured_nodes], (3, 1)),
            )
            for out in run.raw:
                assert np.allclose(out.rho.to_matrix(), ref, atol=1e-9)

    def test_forced_zero_probability_raises_on_both_paths(self):
        p = Pattern(output_nodes=[1])
        p.n(0, state="zero").n(1).m(0, "YZ", 0.0)
        c = compile_pattern(p)
        dm = get_backend("density")
        for vectorize in (True, False):
            with pytest.raises(ZeroProbabilityBranch, match="node 0"):
                dm.sample_batch(
                    c, 3, rng=np.random.default_rng(0),
                    forced_outcomes={0: 1}, vectorize=vectorize,
                )

    def test_keep_raw_default_off(self):
        c = compile_pattern(j_pattern(0.4))
        run = get_backend("density").sample_batch(c, 4, rng=0)
        assert run.raw is None and run.states is None
        with pytest.raises(ValueError, match="keep_raw"):
            run.probability_rows()

    def test_trajectories_converge_to_exact_integration(self):
        """Cross-engine statistical regression (the E21 certification,
        generalized): batched density trajectories at 1024 shots converge
        to the exact branch-integrated probabilities within 3 standard
        errors, per basis state."""
        c = compile_pattern(j_chain([0.6, -1.0]))
        noise = NoiseModel(p_prep=0.05, p_ent=0.05, p_meas=0.1)
        program = lower_noise(c, noise)
        dm = get_backend("density")
        exact = dm.integrate(program).probabilities()
        run = dm.sample_batch(
            program, 1024, rng=np.random.default_rng(41), keep_raw=True
        )
        assert_rows_within_sigma(run.probability_rows(), exact)


class TestShotChunking:
    """Chunking the vectorized sweep against the memory budget must be
    invisible in the records: every chunk size replays the same whole-block
    draw schedule."""

    def _records(self, c, n_shots, seed, max_block_bytes=None, noise=None):
        return get_backend("density").sample_batch(
            c, n_shots, rng=np.random.default_rng(seed), noise=noise,
            keep_raw=True, max_block_bytes=max_block_bytes,
        )

    def _assert_identical(self, a, b):
        assert np.array_equal(a.outcomes, b.outcomes)
        assert len(a.raw) == len(b.raw)
        for x, y in zip(a.raw, b.raw):
            assert np.allclose(x.rho.to_matrix(), y.rho.to_matrix(), atol=1e-12)

    def test_indivisible_shot_count(self):
        """37 shots at a 5-shot chunk: full chunks plus a ragged tail."""
        c = compile_pattern(j_chain([0.4, 0.9]))
        noise = NoiseModel(p_ent=0.1, p_meas=0.1)
        per_shot = 16 * 4 ** c.max_live
        ref = self._records(c, 37, seed=3, noise=noise)
        chunked = self._records(
            c, 37, seed=3, noise=noise, max_block_bytes=5 * per_shot
        )
        self._assert_identical(ref, chunked)

    def test_chunk_size_one(self):
        c = compile_pattern(j_chain([0.4, 0.9]))
        ref = self._records(c, 7, seed=5)
        single = self._records(c, 7, seed=5, max_block_bytes=1)
        self._assert_identical(ref, single)

    def test_max_live_just_past_budget_degrades_to_single_shot(self):
        """A budget one byte short of one shot's tensor still runs (chunk
        clamps to 1) and stays seed-identical to the unchunked block."""
        c = compile_pattern(j_chain([0.8, -0.3]))
        per_shot = 16 * 4 ** c.max_live
        ref = self._records(c, 9, seed=7)
        tight = self._records(c, 9, seed=7, max_block_bytes=per_shot - 1)
        self._assert_identical(ref, tight)

    def test_chunked_matches_loop_path(self):
        """Chunk boundaries and the per-shot loop are the same stream."""
        c = compile_pattern(j_chain([0.2, 1.4, -0.6]))
        per_shot = 16 * 4 ** c.max_live
        chunked = self._records(c, 11, seed=13, max_block_bytes=2 * per_shot)
        loop = get_backend("density").sample_batch(
            c, 11, rng=np.random.default_rng(13), keep_raw=True,
            vectorize=False,
        )
        assert np.array_equal(chunked.outcomes, loop.outcomes)
        for x, y in zip(chunked.raw, loop.raw):
            assert np.allclose(x.rho.to_matrix(), y.rho.to_matrix(), atol=1e-9)


class TestGuards:
    def test_reach_guard(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(12).to_qubo(), [0.3], [0.5])
        program = compiled.executable()
        if program.max_live > 10:
            with pytest.raises(PatternError, match="reach"):
                get_backend("density").integrate(program)

    def test_branch_budget_guard(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        program = compiled.executable()
        with pytest.raises(PatternError, match="branches"):
            get_backend("density").integrate(
                program, noise=NoiseModel(p_ent=0.01), max_branches=4
            )

    def test_mixed_output_refuses_densification(self):
        compiled = compile_pattern(j_pattern(0.4))
        run = get_backend("density").sample_batch(
            compiled, 2, rng=0, noise=NoiseModel(p_ent=0.4), keep_raw=True
        )
        rows = run.probability_rows()
        assert rows.shape == (2, 2)
        assert np.allclose(rows.sum(axis=1), 1.0)
        mixed = [out for out in run.raw if out.rho.purity() < 1.0 - 1e-6]
        if mixed:
            with pytest.raises(ValueError, match="mixed"):
                mixed[0].unit_statevector()


class TestFrontierIntegration:
    """The frontier integrator (live-parity merging + cross-branch
    batching) certified against the retained scalar reference path."""

    def _both(self, program, **kw):
        eng = get_backend("density")
        return (
            eng.integrate(program, vectorize=False),
            eng.integrate(program, **kw),
        )

    def _ring_program(self, n=3, noise=None):
        program = compile_qaoa_pattern(
            MaxCut.ring(n).to_qubo(), [0.4], [0.7]
        ).executable()
        return lower_noise(program, noise) if noise else program

    def test_noiseless_matches_scalar(self):
        scalar, frontier = self._both(self._ring_program())
        assert np.abs(scalar.rho._t - frontier.rho._t).max() < 1e-12
        # merging pays: the frontier peak sits strictly below the leaf count
        assert frontier.branches < scalar.branches

    def test_channel_noise_matches_scalar(self):
        program = self._ring_program(noise=ChannelNoiseModel(
            prep=Channel.amplitude_damping(0.05), ent=Channel.dephasing(0.02)
        ))
        scalar, frontier = self._both(program)
        assert np.abs(scalar.rho._t - frontier.rho._t).max() < 1e-12
        assert frontier.trace == pytest.approx(scalar.trace, abs=1e-12)

    def test_readout_flips_match_scalar_without_quadrupling(self):
        base = compile_pattern(j_chain([0.4, 0.9, 1.3]))
        noisy = lower_noise(base, ChannelNoiseModel(meas_flip=0.08))
        scalar, frontier = self._both(noisy)
        assert np.abs(scalar.rho._t - frontier.rho._t).max() < 1e-12
        # scalar pays 4^m with flips; flip children share their recorded
        # bit and merge immediately, so the frontier width doesn't move
        _, clean = self._both(compile_pattern(j_chain([0.4, 0.9, 1.3])))
        assert scalar.branches == 4 ** 3
        assert frontier.branches == clean.branches

    def test_property_merging_preserves_exact_rho(self):
        # random angles x random channel noise: the live-parity merge must
        # be invisible in the integrated output
        rng = np.random.default_rng(7)
        for _ in range(3):
            alphas = [float(a) for a in rng.uniform(-np.pi, np.pi, size=4)]
            model = ChannelNoiseModel(
                prep=Channel.depolarizing(float(rng.uniform(0.0, 0.1))),
                ent=Channel.dephasing(float(rng.uniform(0.0, 0.1))),
                meas_flip=float(rng.uniform(0.0, 0.1)),
            )
            noisy = lower_noise(compile_pattern(j_chain(alphas)), model)
            scalar, frontier = self._both(noisy)
            assert np.abs(scalar.rho._t - frontier.rho._t).max() < 1e-12
            assert frontier.trace == pytest.approx(1.0, abs=1e-9)

    def test_chunk_sizes_bitwise_invariant(self):
        program = self._ring_program(noise=ChannelNoiseModel(
            prep=Channel.amplitude_damping(0.05), meas_flip=0.03
        ))
        eng = get_backend("density")
        base = eng.integrate(program)
        for mb in (1, 4096, 1 << 20):
            run = eng.integrate(program, max_block_bytes=mb)
            assert np.array_equal(run.rho._t, base.rho._t)
            assert run.branches == base.branches

    def test_max_branches_enforced_on_merged_bound(self):
        # ring(3): merged bound 64, raw bound 512 — a cap between the two
        # gates the scalar path but lets the frontier through
        program = self._ring_program()
        eng = get_backend("density")
        run = eng.integrate(program, max_branches=100)
        assert run.branches <= 100
        with pytest.raises(PatternError, match="R102"):
            eng.integrate(program, max_branches=100, vectorize=False)
        with pytest.raises(PatternError, match="R102"):
            eng.integrate(program, max_branches=32)

    def test_prune_tol_reports_dropped_weight(self):
        noisy = lower_noise(
            compile_pattern(j_chain([0.4, 1.1])),
            ChannelNoiseModel(prep=Channel.amplitude_damping(0.6)),
        )
        scalar, frontier = self._both(noisy, prune_tol=0.2)
        eng = get_backend("density")
        scalar = eng.integrate(noisy, prune_tol=0.2, vectorize=False)
        assert frontier.dropped_weight > 0.0
        assert frontier.trace + frontier.dropped_weight == pytest.approx(
            1.0, abs=1e-9
        )
        assert frontier.dropped_weight == pytest.approx(
            scalar.dropped_weight, abs=1e-12
        )
        # default run prunes nothing and says so
        clean = eng.integrate(noisy)
        assert clean.dropped_weight == 0.0
        assert clean.trace == pytest.approx(1.0, abs=1e-9)

    def test_frontier_at_3_sigma_on_deep_chain(self):
        # past scalar comfort: 8 measured nodes, certified against the
        # trajectory sampler statistically (the E21 contract, reversed)
        rng = np.random.default_rng(5)
        alphas = [float(a) for a in rng.uniform(-np.pi, np.pi, size=8)]
        noisy = lower_noise(
            compile_pattern(j_chain(alphas)),
            ChannelNoiseModel(ent=Channel.dephasing(0.05), meas_flip=0.02),
        )
        exact = get_backend("density").integrate(noisy)
        run = get_backend("density").sample_batch(
            noisy, 1500, rng=11, keep_raw=True
        )
        assert_rows_within_sigma(
            run.probability_rows(), exact.probabilities()
        )


class TestShardedIntegration:
    def _noisy_ring(self):
        program = compile_qaoa_pattern(
            MaxCut.ring(3).to_qubo(), [0.4], [0.7]
        ).executable()
        return lower_noise(program, ChannelNoiseModel(
            prep=Channel.amplitude_damping(0.05), meas_flip=0.03
        ))

    def test_sharded_matches_unsharded_and_scalar(self):
        program = self._noisy_ring()
        eng = get_backend("density")
        base = eng.integrate(program)
        scalar = eng.integrate(program, vectorize=False)
        for shards in (2, 3):
            run = eng.integrate(program, shards=shards)
            assert np.abs(run.rho._t - base.rho._t).max() < 1e-12
            # the scalar run prunes ~1e-10 of weight across 4^m leaves,
            # so the cross-path comparison carries that looseness
            assert np.abs(run.rho._t - scalar.rho._t).max() < 1e-9

    def test_sharded_rerun_bit_identical(self):
        program = self._noisy_ring()
        eng = get_backend("density")
        a = eng.integrate(program, shards=2)
        b = eng.integrate(program, shards=2)
        assert np.array_equal(a.rho._t, b.rho._t)
        assert a.branches == b.branches

    def test_narrow_frontier_completes_in_process(self):
        # merged bound 2 < shards: the fan-out point is never reached and
        # the run finishes in-process, still exact
        noisy = lower_noise(
            compile_pattern(j_chain([0.4, 0.9, 1.3])),
            ChannelNoiseModel(ent=Channel.dephasing(0.05)),
        )
        eng = get_backend("density")
        run = eng.integrate(noisy, shards=4)
        base = eng.integrate(noisy, vectorize=False)
        assert np.abs(run.rho._t - base.rho._t).max() < 1e-12

    def test_shards_require_vectorized_path(self):
        with pytest.raises(PatternError, match="shards"):
            get_backend("density").integrate(
                self._noisy_ring(), shards=2, vectorize=False
            )
        with pytest.raises(ValueError, match="shards"):
            get_backend("density").integrate(self._noisy_ring(), shards=0)


class TestChoiBatch:
    def test_matches_scalar_choi_runs(self):
        compiled = compile_pattern(j_chain([0.4, 0.9]))
        eng = get_backend("density")
        nodes = sorted(compiled.measured_nodes)
        branches = [
            {nodes[0]: a, nodes[1]: b} for a in (0, 1) for b in (0, 1)
        ]
        outs = eng.run_branch_choi_batch(compiled, branches)
        assert len(outs) == 4
        for branch, out in zip(branches, outs):
            ref = eng.run_branch_choi(compiled, branch)
            assert out is not None
            assert out.weight == pytest.approx(ref.weight, abs=1e-12)
            assert np.allclose(
                out.rho.to_matrix(), ref.rho.to_matrix(), atol=1e-10
            )

    def test_unreachable_branches_come_back_none(self):
        # a |0>-prepared node measured in Z can never record 1
        p = Pattern(output_nodes=[1])
        p.n(0, state="zero").n(1).m(0, "YZ", 0.0)
        compiled = compile_pattern(p)
        outs = get_backend("density").run_branch_choi_batch(
            compiled, [{0: 0}, {0: 1}]
        )
        assert outs[0] is not None
        assert outs[1] is None

    def test_empty_batch(self):
        compiled = compile_pattern(j_chain([0.4]))
        assert get_backend("density").run_branch_choi_batch(compiled, []) == []
