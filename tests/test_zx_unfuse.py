"""Spider un-fusing and degree capping (ref. [49] compilation step)."""

import numpy as np
import pytest

from repro.linalg import proportionality_factor
from repro.zx import Diagram, EdgeType, VertexType, diagram_matrix, graph_state_diagram
from repro.zx.rules import fuse
from repro.zx.unfuse import cap_degree, max_spider_degree, unfuse
from repro.utils import star_graph


def star_state_diagram(n):
    return graph_state_diagram(*star_graph(n))


class TestUnfuse:
    def test_preserves_semantics(self):
        d = Diagram()
        z = d.add_z(0.7)
        outs = [d.add_boundary("output") for _ in range(4)]
        for o in outs:
            d.add_edge(z, o)
        before = diagram_matrix(d)
        edges = d.incident_edges(z)[:2]
        unfuse(d, z, edges)
        after = diagram_matrix(d)
        assert proportionality_factor(after, before, atol=1e-9) is not None

    def test_inverse_of_fuse(self):
        d = Diagram()
        z = d.add_z(1.1)
        outs = [d.add_boundary("output") for _ in range(3)]
        for o in outs:
            d.add_edge(z, o)
        new = unfuse(d, z, d.incident_edges(z)[:2])
        # Fuse back along the connecting wire.
        (conn,) = d.edges_between(z, new)
        fuse(d, conn)
        assert d.num_spiders() == 1
        m = diagram_matrix(d)
        assert m.shape == (8, 1)

    def test_moves_hadamard_edges(self):
        d = Diagram()
        z = d.add_z(0.0)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(z, o1, EdgeType.HADAMARD)
        d.add_edge(z, o2)
        before = diagram_matrix(d)
        h_edge = [e for e in d.incident_edges(z) if d.edge_info(e)[2] is EdgeType.HADAMARD]
        unfuse(d, z, h_edge)
        assert proportionality_factor(diagram_matrix(d), before, atol=1e-9) is not None

    def test_validation(self):
        d = Diagram()
        b = d.add_boundary("output")
        z = d.add_z()
        d.add_edge(z, b)
        with pytest.raises(ValueError):
            unfuse(d, b, [])
        with pytest.raises(ValueError):
            unfuse(d, z, [999])
        e = d.incident_edges(z)[0]
        with pytest.raises(ValueError):
            unfuse(d, z, [e, e])


class TestCapDegree:
    @pytest.mark.parametrize("n,cap", [(6, 3), (7, 4), (5, 3)])
    def test_star_graph_state_capped(self, n, cap):
        """The paper's planarization route: the star resource graph (hub
        degree n-1) becomes a bounded-degree diagram with the same state."""
        d = star_state_diagram(n)
        before = diagram_matrix(d)
        splits = cap_degree(d, cap)
        assert max_spider_degree(d) <= cap
        assert splits > 0
        after = diagram_matrix(d)
        assert proportionality_factor(after, before, atol=1e-8) is not None

    def test_no_op_when_already_bounded(self):
        d = star_state_diagram(4)  # hub degree 4 (3 H-edges + output)
        assert cap_degree(d, 5) == 0

    def test_splits_counted(self):
        d = star_state_diagram(8)  # hub degree 8
        splits = cap_degree(d, 3)
        assert splits >= 3
        assert max_spider_degree(d) <= 3

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            cap_degree(Diagram(), 2)

    def test_max_degree_empty(self):
        assert max_spider_degree(Diagram()) == 0
