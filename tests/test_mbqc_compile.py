"""Tests for the pattern compile step (slot lifetimes, basis tables,
Clifford fusion) and its error paths."""

import numpy as np
import pytest

from repro.linalg import HADAMARD, S_GATE, allclose_up_to_global_phase
from repro.mbqc import CommandX, Pattern, PatternError, compile_pattern, run_pattern
from repro.mbqc.compile import (
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
)
from repro.sim import StateVector


class TestSlotLifetimes:
    def test_slots_track_removal_compaction(self):
        # Nodes 0,1,2 live in slots 0,1,2; measuring node 0 shifts 1,2 down.
        p = Pattern(input_nodes=[], output_nodes=[1, 2])
        p.n(0).n(1).n(2).e(0, 1).m(0, "XY", 0.0).e(1, 2)
        c = compile_pattern(p)
        entangles = [op for op in c.ops if isinstance(op, EntangleOp)]
        assert entangles[0].slots == (0, 1)  # before removal
        assert entangles[1].slots == (0, 1)  # nodes 1,2 compacted down
        assert c.out_perm == (0, 1)

    def test_out_perm_reorders(self):
        p = Pattern(input_nodes=[], output_nodes=[5, 3])
        p.n(3).n(5)
        c = compile_pattern(p)
        assert c.out_perm == (1, 0)

    def test_max_live_matches_pattern(self):
        p = Pattern(input_nodes=[0], output_nodes=[2])
        p.n(1).e(0, 1).m(0, "XY", 0.1)
        p.n(2).e(1, 2).m(1, "XY", 0.2, s_domain={0})
        p.x(2, {1}).z(2, {0})
        c = compile_pattern(p)
        assert c.max_live == p.max_live_nodes() == 2
        assert c.measured_nodes == (0, 1)

    def test_empty_domain_corrections_dropped(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.add(CommandX(0, frozenset()))
        c = compile_pattern(p)
        assert not any(isinstance(op, ConditionalOp) for op in c.ops)


class TestBasisTables:
    def test_four_entries_per_measurement(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.7).x(1, {0})
        (m_op,) = [op for op in compile_pattern(p).ops if isinstance(op, MeasureOp)]
        assert len(m_op.bases) == 4
        # index s + 2t encodes the effective angle (-1)^s * a + t*pi
        from repro.sim import MeasurementBasis

        for s in (0, 1):
            for t in (0, 1):
                ref = MeasurementBasis.xy(((-1) ** s) * (-0.7) + t * np.pi)
                got = m_op.bases[s + 2 * t]
                assert np.allclose(got.vectors()[0], ref.vectors()[0], atol=1e-12)


class TestCliffordFusion:
    def test_consecutive_cliffords_fuse(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.c(0, "h").c(0, "s").c(0, "h")
        c = compile_pattern(p)
        unitaries = [op for op in c.ops if isinstance(op, UnitaryOp)]
        assert len(unitaries) == 1
        assert np.allclose(unitaries[0].matrix, HADAMARD @ S_GATE @ HADAMARD)

    def test_fusion_preserves_semantics(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.c(0, "h").c(0, "s").c(0, "sdg").c(0, "h").c(0, "x")
        res = run_pattern(p, input_state=StateVector.zeros(1))
        assert np.allclose(res.state_array(), [0, 1])

    def test_no_fusion_across_nodes(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.c(0, "h").c(1, "h").c(0, "s")
        c = compile_pattern(p)
        assert sum(isinstance(op, UnitaryOp) for op in c.ops) == 3


class TestErrorPaths:
    """Regressions: malformed commands raise PatternError, never KeyError
    — even with validation disabled."""

    def test_correction_on_unknown_node(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.x(7, {0})
        with pytest.raises(PatternError, match="unknown node 7"):
            run_pattern(p, validate=False)

    def test_clifford_on_measured_node(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        p.m(0, "XY", 0.0).c(0, "h")
        with pytest.raises(PatternError, match="already-measured node 0"):
            run_pattern(p, validate=False)

    def test_z_correction_on_measured_node(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        p.m(0, "XY", 0.0).z(0, {0})
        with pytest.raises(PatternError, match="already-measured"):
            compile_pattern(p, validate=False)

    def test_entangler_on_unknown_node(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.e(0, 9)
        with pytest.raises(PatternError):
            compile_pattern(p, validate=False)

    def test_measure_unknown_node(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.m(4, "XY", 0.0)
        with pytest.raises(PatternError):
            compile_pattern(p, validate=False)

    def test_signal_domain_unmeasured(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[1])
        p.m(0, "XY", 0.0, s_domain={1})
        with pytest.raises(PatternError, match="unmeasured"):
            compile_pattern(p, validate=False)

    def test_double_preparation(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.n(0)
        with pytest.raises(PatternError, match="prepared twice"):
            compile_pattern(p, validate=False)

    def test_output_never_alive(self):
        p = Pattern(input_nodes=[0], output_nodes=[0, 3])
        with pytest.raises(PatternError):
            compile_pattern(p, validate=False)


class TestPrecompiledReuse:
    def test_run_pattern_accepts_compiled(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.4).x(1, {0})
        c = compile_pattern(p)
        a = run_pattern(p, forced_outcomes={0: 0}).state_array()
        b = run_pattern(p, forced_outcomes={0: 0}, compiled=c).state_array()
        assert np.allclose(a, b, atol=1e-12)
