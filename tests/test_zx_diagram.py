"""Structural tests for the ZX diagram data type."""

import math

import pytest

from repro.zx import Diagram, EdgeType, VertexType
from repro.zx.diagram import normalize_phase, phases_equal


class TestPhases:
    def test_normalize(self):
        assert normalize_phase(2 * math.pi) == 0.0
        assert abs(normalize_phase(-math.pi / 2) - 3 * math.pi / 2) < 1e-12
        assert normalize_phase(7 * math.pi) == pytest.approx(math.pi)

    def test_equality_mod_2pi(self):
        assert phases_equal(0.0, 2 * math.pi)
        assert phases_equal(-math.pi, math.pi)
        assert not phases_equal(0.0, 0.1)


class TestConstruction:
    def test_add_vertices(self):
        d = Diagram()
        z = d.add_z(0.5)
        x = d.add_x(-0.5)
        h = d.add_hbox(2.0)
        assert d.vtype(z) is VertexType.Z
        assert d.vtype(x) is VertexType.X
        assert d.phase(z) == pytest.approx(0.5)
        assert d.param(h) == 2.0
        assert d.num_vertices() == 3
        assert d.num_spiders() == 2

    def test_boundary_registration(self):
        d = Diagram()
        i = d.add_boundary("input")
        o = d.add_boundary("output")
        assert d.inputs == [i] and d.outputs == [o]
        with pytest.raises(ValueError):
            d.add_boundary("sideways")

    def test_boundary_single_edge(self):
        d = Diagram()
        i = d.add_boundary("input")
        z = d.add_z()
        d.add_edge(i, z)
        with pytest.raises(ValueError):
            d.add_edge(i, z)

    def test_edge_endpoint_missing(self):
        d = Diagram()
        z = d.add_z()
        with pytest.raises(ValueError):
            d.add_edge(z, 999)

    def test_self_loop_counted_twice(self):
        d = Diagram()
        z = d.add_z()
        d.add_edge(z, z)
        assert d.degree(z) == 2
        assert d.neighbors(z) == []

    def test_parallel_edges(self):
        d = Diagram()
        a, b = d.add_z(), d.add_x()
        d.add_edge(a, b)
        d.add_edge(a, b, EdgeType.HADAMARD)
        assert len(d.edges_between(a, b)) == 2
        assert d.degree(a) == 2

    def test_remove_vertex_cleans_edges(self):
        d = Diagram()
        a, b, c = d.add_z(), d.add_z(), d.add_z()
        d.add_edge(a, b)
        d.add_edge(b, c)
        d.remove_vertex(b)
        assert d.num_edges() == 0
        assert d.num_vertices() == 2

    def test_phase_arithmetic(self):
        d = Diagram()
        z = d.add_z(0.3)
        d.add_phase(z, 0.4)
        assert d.phase(z) == pytest.approx(0.7)
        d.set_phase(z, 2 * math.pi + 0.1)
        assert d.phase(z) == pytest.approx(0.1)


class TestValidate:
    def test_valid_diagram_passes(self):
        d = Diagram()
        i = d.add_boundary("input")
        z = d.add_z()
        o = d.add_boundary("output")
        d.add_edge(i, z)
        d.add_edge(z, o)
        d.validate()

    def test_dangling_boundary_fails(self):
        d = Diagram()
        d.add_boundary("input")
        with pytest.raises(ValueError):
            d.validate()


class TestCopyCompose:
    def test_copy_independent(self):
        d = Diagram()
        i = d.add_boundary("input")
        z = d.add_z(0.2)
        o = d.add_boundary("output")
        d.add_edge(i, z)
        d.add_edge(z, o)
        c = d.copy()
        c.add_phase(z, 1.0)
        assert d.phase(z) == pytest.approx(0.2)

    def test_compose_arity_mismatch(self):
        a = Diagram()
        a.add_boundary("output")
        b = Diagram()
        with pytest.raises(ValueError):
            a.compose(b)
