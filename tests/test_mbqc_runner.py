"""Pattern-runner tests: teleportation primitives, the paper's Appendix A
Bell example (experiment E3), branch enumeration, and error paths."""

import math

import numpy as np
import pytest

from repro.linalg import HADAMARD, allclose_up_to_global_phase, j_gate, rx, rz
from repro.mbqc import Pattern, PatternError, pattern_to_matrix, run_pattern
from repro.mbqc.runner import enumerate_branches
from repro.sim import StateVector


def j_pattern(alpha: float) -> Pattern:
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


class TestJGate:
    @pytest.mark.parametrize("alpha", [0.0, 0.5, -1.3, math.pi])
    def test_j_pattern_implements_j(self, alpha):
        p = j_pattern(alpha)
        for branch in enumerate_branches(p):
            m = pattern_to_matrix(p, branch)
            assert allclose_up_to_global_phase(
                m / np.linalg.norm(m) * np.sqrt(2), j_gate(alpha), atol=1e-8
            )

    def test_rx_from_two_j(self):
        """RX(β) = J(β)∘J(0) — the Eq. (9) structure: input measured, state
        lands two ancillas later, second angle sign-adapted."""
        beta = 0.77
        p = Pattern(input_nodes=[0], output_nodes=[2])
        p.n(1).e(0, 1).m(0, "XY", 0.0)
        p.n(2).e(1, 2).m(1, "XY", -beta, s_domain={0})
        p.x(2, {1}).z(2, {0})
        for branch in enumerate_branches(p):
            m = pattern_to_matrix(p, branch)
            assert allclose_up_to_global_phase(m / np.linalg.norm(m) * np.sqrt(2), rx(beta), atol=1e-8)

    def test_rz_from_two_j(self):
        gamma = -0.41
        p = Pattern(input_nodes=[0], output_nodes=[2])
        p.n(1).e(0, 1).m(0, "XY", -gamma)
        p.n(2).e(1, 2).m(1, "XY", 0.0, s_domain={0})
        p.x(2, {1}).z(2, {0})
        for branch in enumerate_branches(p):
            m = pattern_to_matrix(p, branch)
            assert allclose_up_to_global_phase(m / np.linalg.norm(m) * np.sqrt(2), rz(gamma), atol=1e-8)


class TestBellExampleAppendixA:
    """The paper's Section II.B / Appendix A worked example: on the square
    graph state, the sequence {M4_Z→n, M2_X→m, Λ3_m(X)} leaves qubits (1,3)
    in a Bell state."""

    @staticmethod
    def bell_pattern() -> Pattern:
        # Vertices renamed 1..4 -> 0..3; edges of the square (Eq. 5).
        p = Pattern(input_nodes=[], output_nodes=[0, 2])
        for v in range(4):
            p.n(v)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            p.e(u, v)
        p.m(3, "YZ", 0.0)          # M4_Z -> n   (Z basis)
        p.m(1, "XY", 0.0)          # M2_X -> m   (X basis)
        p.x(2, {1})                # Λ3_m(X)
        return p

    def test_all_branches_maximally_entangled(self):
        p = self.bell_pattern()
        for branch in enumerate_branches(p):
            res = run_pattern(p, forced_outcomes=branch)
            arr = res.state_array().reshape(2, 2)  # (qubit1=rows? little-endian)
            s = np.linalg.svd(arr, compute_uv=False)
            assert np.allclose(np.sort(s), [1 / np.sqrt(2)] * 2, atol=1e-9)

    def test_branch_states_match_paper(self):
        """Every branch yields exactly |Φ+> — the Z^n byproducts from the
        M4_Z measurement cancel on the Bell state (the paper's final diagram
        is correction-free), and Λ3_m(X) removes the m dependence."""
        p = self.bell_pattern()
        phi_plus = np.array([1, 0, 0, 1]) / np.sqrt(2)
        for branch in enumerate_branches(p):
            res = run_pattern(p, forced_outcomes=branch)
            assert allclose_up_to_global_phase(res.state_array(), phi_plus, atol=1e-9)

    def test_agrees_with_direct_simulation(self):
        """Cross-check against a hand-rolled simulation on the dense
        simulator (independent code path)."""
        p = self.bell_pattern()
        for branch in enumerate_branches(p):
            # Direct: build graph state, project qubit 3 onto |n>, qubit 1
            # onto |±>, apply X^m on qubit 2, drop measured qubits.
            sv = StateVector.plus(4)
            for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
                sv.apply_cz(u, v)
            from repro.sim import MeasurementBasis

            sv.measure(3, MeasurementBasis.pauli("Z"), force=branch[3])
            sv.measure(1, MeasurementBasis.pauli("X"), force=branch[1])
            # After removals, remaining slots: 0 -> qubit0, 1 -> qubit2.
            if branch[1]:
                from repro.linalg import PAULI_X

                sv.apply_1q(PAULI_X, 1)
            res = run_pattern(p, forced_outcomes=branch)
            assert allclose_up_to_global_phase(res.state_array(), sv.to_array(), atol=1e-9)


class TestRunnerMechanics:
    def test_default_input_is_plus(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        res = run_pattern(p)
        assert np.allclose(res.state_array(), np.array([1, 1]) / np.sqrt(2))

    def test_input_state_size_mismatch(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        with pytest.raises(PatternError):
            run_pattern(p, input_state=StateVector.plus(2))

    def test_output_order_respected(self):
        # Prepare node 5 in |one> and node 3 in |zero>; outputs [5, 3].
        p = Pattern(input_nodes=[], output_nodes=[5, 3])
        p.n(5, "one").n(3, "zero")
        res = run_pattern(p)
        arr = res.state_array()
        # little-endian: qubit0=node5=|1>, qubit1=node3=|0> -> index 1
        assert np.isclose(abs(arr[1]), 1.0)

    def test_outcomes_recorded(self):
        p = Pattern(input_nodes=[], output_nodes=[])
        p.n(0, "zero").m(0, "YZ", 0.0)
        res = run_pattern(p)
        assert res.outcomes == {0: 0}

    def test_forced_impossible_branch(self):
        from repro.sim.statevector import ZeroProbabilityBranch

        p = Pattern(input_nodes=[], output_nodes=[])
        p.n(0, "zero").m(0, "YZ", 0.0)
        with pytest.raises(ZeroProbabilityBranch):
            run_pattern(p, forced_outcomes={0: 1})

    def test_seeded_run_reproducible(self):
        p = Pattern(input_nodes=[], output_nodes=[])
        for v in range(4):
            p.n(v)
        p.e(0, 1).e(1, 2).e(2, 3)
        for v in range(4):
            p.m(v, "XY", 0.3 * v)
        a = run_pattern(p, seed=11).outcomes
        b = run_pattern(p, seed=11).outcomes
        assert a == b

    def test_clifford_command(self):
        p = Pattern(input_nodes=[0], output_nodes=[0])
        p.c(0, "h")
        res = run_pattern(p, input_state=StateVector.zeros(1))
        assert np.allclose(res.state_array(), HADAMARD @ np.array([1, 0]))

    def test_pattern_to_matrix_requires_full_branch(self):
        p = j_pattern(0.2)
        with pytest.raises(PatternError):
            pattern_to_matrix(p, {})

    def test_cz_pattern_on_inputs(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        m = pattern_to_matrix(p)
        from repro.linalg import CZ

        assert np.allclose(m, CZ)
