"""Tests for the generic circuit→pattern compiler (the paper's baseline)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_pattern_determinism, circuit_to_pattern, pattern_equals_unitary
from repro.core.generic import generic_pattern_counts
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc.runner import run_pattern
from repro.sim import Circuit


class TestSingleGates:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("y", ()),
            ("z", ()),
            ("s", ()),
            ("sdg", ()),
            ("t", ()),
            ("tdg", ()),
            ("rz", (0.71,)),
            ("rx", (-1.2,)),
            ("ry", (0.93,)),
            ("p", (0.4,)),
            ("j", (0.55,)),
        ],
    )
    def test_single_qubit_gates(self, name, params):
        c = Circuit(1).append(name, (0,), *params)
        p = circuit_to_pattern(c)
        assert pattern_equals_unitary(p, c.unitary(), max_branches=32, seed=0)

    def test_identity_gate_free(self):
        c = Circuit(1).append("i", (0,))
        p = circuit_to_pattern(c)
        assert p.num_nodes() == 1  # no ancillas

    def test_unsupported_gate(self):
        c = Circuit(3).append("ccx", (0, 1, 2))
        with pytest.raises(ValueError):
            circuit_to_pattern(c)


class TestTwoQubitGates:
    def test_cz(self):
        c = Circuit(2).cz(0, 1)
        p = circuit_to_pattern(c)
        assert pattern_equals_unitary(p, c.unitary())
        assert p.num_nodes() == 2  # native, no ancillas

    def test_cnot(self):
        c = Circuit(2).cnot(0, 1)
        p = circuit_to_pattern(c)
        assert pattern_equals_unitary(p, c.unitary())

    def test_swap_is_free(self):
        c = Circuit(2).append("swap", (0, 1))
        p = circuit_to_pattern(c)
        assert p.num_nodes() == 2
        assert pattern_equals_unitary(p, c.unitary())

    def test_rzz_via_cnot_rz(self):
        c = Circuit(2).rzz(0, 1, 0.77)
        p = circuit_to_pattern(c)
        assert pattern_equals_unitary(p, c.unitary(), max_branches=64, seed=1)

    def test_bell_preparation_closed(self):
        c = Circuit(2).h(0).cnot(0, 1)
        p = circuit_to_pattern(c, open_inputs=False, initial="zero")
        from repro.core.verify import pattern_state_equals

        bell = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert pattern_state_equals(p, bell, max_branches=None)


class TestRandomCircuits:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["h", "s", "t", "rz", "rx", "cz", "cnot"]),
                st.integers(0, 1),
                st.integers(0, 1),
                st.floats(-3.0, 3.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_random_circuit_property(self, moves):
        c = Circuit(2)
        for name, a, b, theta in moves:
            if name in ("h", "s", "t"):
                c.append(name, (a,))
            elif name in ("rz", "rx"):
                c.append(name, (a,), theta)
            else:
                if a == b:
                    continue
                c.append(name, (a, b))
        p = circuit_to_pattern(c)
        assert pattern_equals_unitary(
            p, c.unitary(), max_branches=16, seed=7, atol=1e-7
        )

    def test_deterministic(self):
        c = Circuit(2).h(0).cnot(0, 1).rz(1, 0.4).h(1)
        p = circuit_to_pattern(c)
        assert check_pattern_determinism(p, max_branches=32, seed=3)


class TestOverhead:
    def test_generic_beats_nothing_but_works(self):
        """E12 raw material: the generic translation of the QAOA circuit is
        strictly larger than the tailored compilation."""
        from repro.core import compile_qaoa_pattern
        from repro.problems import MaxCut
        from repro.qaoa.circuits import qaoa_circuit

        mc = MaxCut.ring(4)
        ising = mc.to_qubo().to_ising()
        circ = qaoa_circuit(ising, [0.3], [0.7])
        counts = generic_pattern_counts(circ)
        tailored = compile_qaoa_pattern(mc.to_qubo(), [0.3], [0.7])
        assert counts["nodes"] > tailored.num_nodes()
        assert counts["entanglers"] > tailored.num_entanglers()

    def test_counts_shape(self):
        c = Circuit(2).h(0).cz(0, 1)
        counts = generic_pattern_counts(c)
        assert counts["nodes"] == 3
        assert counts["entanglers"] == 2
        assert counts["measurements"] == 1


class TestCzParityCancellation:
    """Regression: CZ·CZ = I must cancel the entangler in the emitted
    pattern — graph-based consumers (flow, extraction) model edges as a
    set, so a duplicate E used to be silently read as a single CZ."""

    def test_double_cz_cancels(self):
        c = Circuit(2).cz(0, 1).cz(0, 1)
        p = circuit_to_pattern(c)
        assert p.entangling_edges() == []
        from repro.mbqc import pattern_to_matrix

        assert np.allclose(pattern_to_matrix(p), np.eye(4), atol=1e-12)

    def test_triple_cz_is_one(self):
        c = Circuit(2).cz(0, 1).cz(0, 1).cz(0, 1)
        p = circuit_to_pattern(c)
        assert len(p.entangling_edges()) == 1

    def test_double_cz_roundtrip_extracts_identity(self):
        from repro.linalg import allclose_up_to_global_phase
        from repro.mbqc.extract import extract_circuit

        c = Circuit(3).cz(0, 1).cz(0, 1)
        extracted = extract_circuit(circuit_to_pattern(c))
        assert allclose_up_to_global_phase(extracted.unitary(), c.unitary(), atol=1e-8)

    def test_cz_separated_by_wire_advance_does_not_cancel(self):
        # An rz on either wire advances the wire node, so the second CZ
        # binds a different node pair and must NOT cancel.
        c = Circuit(2).cz(0, 1).rz(0, 0.4).cz(0, 1)
        p = circuit_to_pattern(c)
        assert len(p.entangling_edges()) >= 2
        from repro.mbqc import pattern_to_matrix
        from repro.linalg import proportionality_factor

        assert proportionality_factor(pattern_to_matrix(p), c.unitary(), atol=1e-8) is not None
