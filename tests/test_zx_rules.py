"""Experiment E1: the Fig. 1 rewrite rules preserve diagram semantics.

Every rule application is checked against the tensor semantics (up to a
nonzero scalar, the paper's ∝ convention) on both hand-built and randomized
diagrams.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import proportionality_factor
from repro.sim import Circuit
from repro.zx import Diagram, EdgeType, VertexType, circuit_to_diagram, diagram_matrix
from repro.zx.rules import (
    basic_simplify,
    bialgebra,
    color_change,
    copy_state,
    fuse,
    fuse_all,
    pi_push,
    remove_identities,
    remove_identity,
    remove_parallel_pair,
)


def assert_semantics_preserved(before: Diagram, transform):
    m0 = diagram_matrix(before)
    d = before.copy()
    transform(d)
    m1 = diagram_matrix(d)
    c = proportionality_factor(m1, m0, atol=1e-8)
    assert c is not None, "rewrite changed diagram semantics"
    return d


def two_spider_chain(t1, p1, t2, p2, etype=EdgeType.SIMPLE):
    d = Diagram()
    i = d.add_boundary("input")
    a = d.add_vertex(t1, p1)
    b = d.add_vertex(t2, p2)
    o = d.add_boundary("output")
    d.add_edge(i, a)
    d.add_edge(a, b, etype)
    d.add_edge(b, o)
    return d, a, b


class TestFusion:
    @pytest.mark.parametrize("vt", [VertexType.Z, VertexType.X])
    def test_fuse_adds_phases(self, vt):
        d, a, b = two_spider_chain(vt, 0.3, vt, 0.4)
        e = d.edges_between(a, b)[0]
        d2 = assert_semantics_preserved(d, lambda dd: fuse(dd, e))
        spiders = [v for v in d2.vertices() if d2.vtype(v) is vt]
        assert len(spiders) == 1
        assert d2.phase(spiders[0]) == pytest.approx(0.7)

    def test_fuse_requires_same_color(self):
        d, a, b = two_spider_chain(VertexType.Z, 0.1, VertexType.X, 0.2)
        e = d.edges_between(a, b)[0]
        with pytest.raises(ValueError):
            fuse(d, e)

    def test_fuse_requires_simple_edge(self):
        d, a, b = two_spider_chain(VertexType.Z, 0.1, VertexType.Z, 0.2, EdgeType.HADAMARD)
        e = d.edges_between(a, b)[0]
        with pytest.raises(ValueError):
            fuse(d, e)

    def test_fuse_with_parallel_simple_edge(self):
        # Parallel simple edge becomes a plain self-loop, which vanishes.
        d, a, b = two_spider_chain(VertexType.Z, 0.5, VertexType.Z, 0.25)
        d.add_edge(a, b, EdgeType.SIMPLE)
        e = d.edges_between(a, b)[0]
        assert_semantics_preserved(d, lambda dd: fuse(dd, e))

    def test_fuse_with_parallel_hadamard_edge_adds_pi(self):
        # Parallel H edge becomes an H self-loop => +π phase.
        d, a, b = two_spider_chain(VertexType.Z, 0.5, VertexType.Z, 0.25)
        d.add_edge(a, b, EdgeType.HADAMARD)
        e = [x for x in d.edges_between(a, b) if d.edge_info(x)[2] is EdgeType.SIMPLE][0]
        d2 = assert_semantics_preserved(d, lambda dd: fuse(dd, e))
        spiders = [v for v in d2.vertices() if d2.vtype(v) is VertexType.Z]
        assert d2.phase(spiders[0]) == pytest.approx(0.75 + math.pi)

    def test_fuse_all_on_chain(self):
        d = Diagram()
        i = d.add_boundary("input")
        prev = i
        for k in range(4):
            z = d.add_z(0.1 * (k + 1))
            d.add_edge(prev, z)
            prev = z
        o = d.add_boundary("output")
        d.add_edge(prev, o)
        d2 = assert_semantics_preserved(d, fuse_all)
        assert d2.num_spiders() == 1


class TestColorChange:
    @pytest.mark.parametrize("vt,phase", [(VertexType.Z, 0.4), (VertexType.X, 1.1)])
    def test_color_change_preserves_semantics(self, vt, phase):
        d = Diagram()
        i = d.add_boundary("input")
        v = d.add_vertex(vt, phase)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(i, v)
        d.add_edge(v, o1)
        d.add_edge(v, o2, EdgeType.HADAMARD)
        d2 = assert_semantics_preserved(d, lambda dd: color_change(dd, v))
        assert d2.vtype(v) is (VertexType.X if vt is VertexType.Z else VertexType.Z)

    def test_color_change_rejects_boundary(self):
        d = Diagram()
        b = d.add_boundary("input")
        with pytest.raises(ValueError):
            color_change(d, b)


class TestIdentity:
    def test_remove_identity_simple(self):
        d = Diagram()
        i = d.add_boundary("input")
        a = d.add_z(0.3)
        mid = d.add_z(0.0)
        b = d.add_x(0.6)
        o = d.add_boundary("output")
        d.add_edge(i, a)
        d.add_edge(a, mid)
        d.add_edge(mid, b)
        d.add_edge(b, o)
        d2 = assert_semantics_preserved(d, lambda dd: remove_identity(dd, mid))
        assert d2.num_spiders() == 2

    def test_hh_cancellation_via_identity(self):
        # H edge - phase-0 spider - H edge collapses to a plain edge (hh).
        d = Diagram()
        i = d.add_boundary("input")
        mid = d.add_x(0.0)
        o = d.add_boundary("output")
        d.add_edge(i, mid, EdgeType.HADAMARD)
        d.add_edge(mid, o, EdgeType.HADAMARD)
        d2 = assert_semantics_preserved(d, lambda dd: remove_identity(dd, mid))
        (e,) = list(d2.edges())
        assert d2.edge_info(e)[2] is EdgeType.SIMPLE

    def test_identity_requires_phase_zero(self):
        d, a, b = two_spider_chain(VertexType.Z, 0.0, VertexType.Z, 0.5)
        with pytest.raises(ValueError):
            remove_identity(d, b)

    def test_remove_identities_driver(self):
        c = Circuit(2).h(0).h(0).cz(0, 1)  # hh gives identity-like wire
        d = circuit_to_diagram(c)
        assert_semantics_preserved(d, remove_identities)


class TestPiPush:
    def test_pi_through_z(self):
        # X(π) then Z(α): pushing flips the Z phase.
        d = Diagram()
        i = d.add_boundary("input")
        p = d.add_x(math.pi)
        z = d.add_z(0.8)
        o = d.add_boundary("output")
        d.add_edge(i, p)
        d.add_edge(p, z)
        d.add_edge(z, o)
        d2 = assert_semantics_preserved(d, lambda dd: pi_push(dd, p))
        zs = [v for v in d2.vertices() if d2.vtype(v) is VertexType.Z]
        assert len(zs) == 1
        assert d2.phase(zs[0]) == pytest.approx(2 * math.pi - 0.8)

    def test_pi_through_multi_leg_spider(self):
        d = Diagram()
        i = d.add_boundary("input")
        p = d.add_x(math.pi)
        z = d.add_z(0.5)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(i, p)
        d.add_edge(p, z)
        d.add_edge(z, o1)
        d.add_edge(z, o2, EdgeType.HADAMARD)
        d2 = assert_semantics_preserved(d, lambda dd: pi_push(dd, p))
        # π spiders copied onto both remaining legs
        pis = [v for v in d2.vertices() if d2.vtype(v) is VertexType.X]
        assert len(pis) == 2

    def test_z_pi_through_x(self):
        d = Diagram()
        i = d.add_boundary("input")
        p = d.add_z(math.pi)
        x = d.add_x(1.2)
        o = d.add_boundary("output")
        d.add_edge(i, p)
        d.add_edge(p, x)
        d.add_edge(x, o)
        assert_semantics_preserved(d, lambda dd: pi_push(dd, p))

    def test_pi_push_validation(self):
        d, a, b = two_spider_chain(VertexType.X, 0.3, VertexType.Z, 0.2)
        with pytest.raises(ValueError):
            pi_push(d, a)  # phase not π


class TestCopy:
    @pytest.mark.parametrize("k", [0, 1])
    def test_x_state_copies_through_z(self, k):
        d = Diagram()
        s = d.add_x(k * math.pi)
        z = d.add_z(0.0)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(s, z)
        d.add_edge(z, o1)
        d.add_edge(z, o2)
        d2 = assert_semantics_preserved(d, lambda dd: copy_state(dd, s))
        assert d2.num_spiders() == 2  # two copies

    def test_copy_rejects_non_pauli(self):
        d = Diagram()
        s = d.add_x(0.3)
        z = d.add_z(0.0)
        o = d.add_boundary("output")
        d.add_edge(s, z)
        d.add_edge(z, o)
        with pytest.raises(ValueError):
            copy_state(d, s)

    def test_copy_rejects_same_color(self):
        d = Diagram()
        s = d.add_z(0.0)
        z = d.add_z(0.0)
        o = d.add_boundary("output")
        d.add_edge(s, z)
        d.add_edge(z, o)
        with pytest.raises(ValueError):
            copy_state(d, s)


class TestBialgebra:
    def test_bialgebra_2_2(self):
        d = Diagram()
        i1 = d.add_boundary("input")
        i2 = d.add_boundary("input")
        z = d.add_z(0.0)
        x = d.add_x(0.0)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(i1, z)
        d.add_edge(i2, z)
        d.add_edge(z, x)
        d.add_edge(x, o1)
        d.add_edge(x, o2)
        e = d.edges_between(z, x)[0]
        assert_semantics_preserved(d, lambda dd: bialgebra(dd, e))

    def test_bialgebra_1_2(self):
        d = Diagram()
        i1 = d.add_boundary("input")
        z = d.add_z(0.0)
        x = d.add_x(0.0)
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(i1, z)
        d.add_edge(z, x)
        d.add_edge(x, o1)
        d.add_edge(x, o2)
        e = d.edges_between(z, x)[0]
        assert_semantics_preserved(d, lambda dd: bialgebra(dd, e))

    def test_bialgebra_requires_phase_zero(self):
        d, a, b = two_spider_chain(VertexType.Z, 0.5, VertexType.X, 0.0)
        e = d.edges_between(a, b)[0]
        with pytest.raises(ValueError):
            bialgebra(d, e)


class TestHopf:
    def test_hopf_simple_pair_opposite_colors(self):
        d = Diagram()
        i = d.add_boundary("input")
        z = d.add_z(0.0)
        x = d.add_x(0.0)
        o = d.add_boundary("output")
        d.add_edge(i, z)
        d.add_edge(z, x)
        d.add_edge(z, x)
        d.add_edge(x, o)
        d2 = assert_semantics_preserved(d, lambda dd: remove_parallel_pair(dd, z, x))
        assert len(d2.edges_between(z, x)) == 0

    def test_hadamard_pair_same_color(self):
        d = Diagram()
        i = d.add_boundary("input")
        a = d.add_z(0.2)
        b = d.add_z(0.3)
        o = d.add_boundary("output")
        d.add_edge(i, a)
        d.add_edge(a, b, EdgeType.HADAMARD)
        d.add_edge(a, b, EdgeType.HADAMARD)
        d.add_edge(b, o)
        d2 = assert_semantics_preserved(d, lambda dd: remove_parallel_pair(dd, a, b))
        assert len(d2.edges_between(a, b)) == 0

    def test_no_pair_returns_false(self):
        d, a, b = two_spider_chain(VertexType.Z, 0.0, VertexType.X, 0.0)
        assert remove_parallel_pair(d, a, b) is False


class TestSimplifyDriver:
    @given(st.lists(st.tuples(st.sampled_from(["h", "rz", "rx", "cz", "cnot", "s", "x", "z"]),
                              st.integers(0, 2), st.integers(0, 2),
                              st.floats(-3.0, 3.0)),
                    min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_basic_simplify_preserves_random_circuits(self, moves):
        c = Circuit(3)
        for name, a, b, theta in moves:
            if name in ("h", "s", "x", "z"):
                c.append(name, (a,))
            elif name in ("rz", "rx"):
                c.append(name, (a,), theta)
            else:
                if a == b:
                    continue
                c.append(name, (a, b))
        d = circuit_to_diagram(c)
        m0 = diagram_matrix(d)
        basic_simplify(d)
        m1 = diagram_matrix(d)
        assert proportionality_factor(m1, m0, atol=1e-7) is not None

    def test_simplify_reduces_spider_count(self):
        c = Circuit(2)
        for _ in range(4):
            c.rz(0, 0.2).rz(0, 0.3)
        d = circuit_to_diagram(c)
        before = d.num_spiders()
        basic_simplify(d)
        assert d.num_spiders() < before
