"""Noisy pattern execution (the E15 substrate)."""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import Pattern, run_pattern
from repro.mbqc.noise import NoiseModel, average_fidelity, run_pattern_noisy
from repro.problems import MaxCut


def j_pattern(alpha):
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


class TestNoiseModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(p_prep=1.5)
        with pytest.raises(ValueError):
            NoiseModel(p_meas=-0.1)

    def test_trivial(self):
        assert NoiseModel().is_trivial()
        assert not NoiseModel(p_ent=0.01).is_trivial()


class TestNoisyRunner:
    def test_zero_noise_matches_ideal(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        ideal = run_pattern(compiled.pattern, seed=3).state_array()
        noisy = run_pattern_noisy(compiled.pattern, NoiseModel(), seed=5).state_array()
        assert allclose_up_to_global_phase(noisy, ideal, atol=1e-9)

    def test_full_measurement_flip_changes_nothing_for_deterministic(self):
        """p_meas=1 flips every recorded outcome; for a deterministic
        pattern the corrections re-absorb it, so the state is unchanged."""
        p = j_pattern(0.8)
        ideal = run_pattern(p, seed=0).state_array()
        noisy = run_pattern_noisy(p, NoiseModel(p_meas=1.0), seed=1).state_array()
        # A *readout* flip misleads the correction: state differs in
        # general.  Verify it is still normalized and a valid state.
        assert np.isclose(np.linalg.norm(noisy), 1.0)

    def test_fidelity_one_at_zero_noise(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(compiled.pattern, NoiseModel(), trajectories=3, seed=0)
        assert f == pytest.approx(1.0, abs=1e-9)

    def test_fidelity_decreases_with_noise(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f_low = average_fidelity(
            compiled.pattern, NoiseModel(p_ent=0.005), trajectories=40, seed=1
        )
        f_high = average_fidelity(
            compiled.pattern, NoiseModel(p_ent=0.08), trajectories=40, seed=1
        )
        assert f_low > f_high

    def test_prep_noise_only(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(
            compiled.pattern, NoiseModel(p_prep=0.05), trajectories=30, seed=2
        )
        assert 0.3 < f < 1.0

    def test_measurement_noise_degrades(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(
            compiled.pattern, NoiseModel(p_meas=0.1), trajectories=30, seed=3
        )
        assert f < 0.999

    def test_input_size_mismatch(self):
        from repro.sim import StateVector

        p = j_pattern(0.1)
        with pytest.raises(ValueError):
            run_pattern_noisy(p, NoiseModel(), input_state=StateVector.plus(2))
