"""Noisy pattern execution (the E15 substrate)."""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import Pattern, run_pattern
from repro.mbqc.noise import NoiseModel, average_fidelity, run_pattern_noisy
from repro.problems import MaxCut


def j_pattern(alpha):
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


class TestNoiseModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(p_prep=1.5)
        with pytest.raises(ValueError):
            NoiseModel(p_meas=-0.1)

    def test_trivial(self):
        assert NoiseModel().is_trivial()
        assert not NoiseModel(p_ent=0.01).is_trivial()


class TestNoisyRunner:
    def test_zero_noise_matches_ideal(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        ideal = run_pattern(compiled.pattern, seed=3).state_array()
        noisy = run_pattern_noisy(compiled.pattern, NoiseModel(), seed=5).state_array()
        assert allclose_up_to_global_phase(noisy, ideal, atol=1e-9)

    def test_full_measurement_flip_changes_nothing_for_deterministic(self):
        """p_meas=1 flips every recorded outcome; for a deterministic
        pattern the corrections re-absorb it, so the state is unchanged."""
        p = j_pattern(0.8)
        ideal = run_pattern(p, seed=0).state_array()
        noisy = run_pattern_noisy(p, NoiseModel(p_meas=1.0), seed=1).state_array()
        # A *readout* flip misleads the correction: state differs in
        # general.  Verify it is still normalized and a valid state.
        assert np.isclose(np.linalg.norm(noisy), 1.0)

    def test_fidelity_one_at_zero_noise(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(compiled.pattern, NoiseModel(), trajectories=3, seed=0)
        assert f == pytest.approx(1.0, abs=1e-9)

    def test_fidelity_decreases_with_noise(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f_low = average_fidelity(
            compiled.pattern, NoiseModel(p_ent=0.005), trajectories=40, seed=1
        )
        f_high = average_fidelity(
            compiled.pattern, NoiseModel(p_ent=0.08), trajectories=40, seed=1
        )
        assert f_low > f_high

    def test_prep_noise_only(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(
            compiled.pattern, NoiseModel(p_prep=0.05), trajectories=30, seed=2
        )
        assert 0.3 < f < 1.0

    def test_measurement_noise_degrades(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        f = average_fidelity(
            compiled.pattern, NoiseModel(p_meas=0.1), trajectories=30, seed=3
        )
        assert f < 0.999

    def test_input_size_mismatch(self):
        from repro.sim import StateVector

        p = j_pattern(0.1)
        with pytest.raises(ValueError):
            run_pattern_noisy(p, NoiseModel(), input_state=StateVector.plus(2))


class TestInterpreterExecutesLoweredNoise:
    """run_pattern's in-process interpreter (backend=None) consumes the
    same lowered noise program as the batched engines."""

    def test_readout_flip_applies_to_record(self):
        from repro.mbqc.compile import compile_pattern, lower_noise

        p = j_pattern(0.8)
        lowered = lower_noise(compile_pattern(p), NoiseModel(p_meas=1.0))
        res = run_pattern(p, seed=0, forced_outcomes={0: 0}, compiled=lowered)
        # True outcome forced to 0; certain flip records 1.
        assert res.outcomes[0] == 1
        assert np.isclose(np.linalg.norm(res.state_array()), 1.0)

    def test_channel_ops_sampled(self):
        from repro.mbqc.compile import compile_pattern, lower_noise

        p = j_pattern(0.8)
        lowered = lower_noise(compile_pattern(p), NoiseModel(p_prep=1.0))
        ideal = run_pattern(p, seed=4).state_array()
        noisy = run_pattern(p, seed=4, compiled=lowered).state_array()
        assert np.isclose(np.linalg.norm(noisy), 1.0)
        # A certain depolarizing kick is a uniformly random Pauli; over
        # seeds at least one trajectory must leave the ideal orbit.
        states = [
            run_pattern(p, seed=s, forced_outcomes={0: 0}, compiled=lowered).state_array()
            for s in range(6)
        ]
        ref = run_pattern(p, seed=0, forced_outcomes={0: 0}).state_array()
        from repro.linalg import allclose_up_to_global_phase

        assert not all(
            allclose_up_to_global_phase(s, ref, atol=1e-9) for s in states
        )

    def test_non_pauli_channel_refused_loudly(self):
        from repro.mbqc import PatternError
        from repro.mbqc.channels import Channel, ChannelNoiseModel
        from repro.mbqc.compile import compile_pattern, lower_noise

        p = j_pattern(0.8)
        lowered = lower_noise(
            compile_pattern(p),
            ChannelNoiseModel(prep=Channel.amplitude_damping(0.2)),
        )
        with pytest.raises(PatternError, match="density"):
            run_pattern(p, seed=0, compiled=lowered)


class TestTrivialShortCircuit:
    def test_trivial_noise_returns_exactly_one(self):
        """No shot loop runs for a trivial model: the fidelity is exactly
        1.0, not a sampled approximation of it."""
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        assert average_fidelity(compiled.pattern, NoiseModel(), trajectories=10**9) == 1.0
        assert average_fidelity(compiled.pattern, None, trajectories=10**9) == 1.0

    def test_trivial_noise_with_reference_runs_once(self):
        """An explicit reference still gets compared against one noiseless
        run (it need not be the pattern's own output)."""
        p = j_pattern(0.6)
        ideal = run_pattern(p, seed=0).state_array()
        assert average_fidelity(p, NoiseModel(), reference=ideal) == pytest.approx(
            1.0, abs=1e-12
        )
        orthogonal = np.array([ideal[1].conjugate(), -ideal[0].conjugate()])
        f = average_fidelity(p, NoiseModel(), reference=orthogonal)
        assert f == pytest.approx(0.0, abs=1e-12)


class TestExactPath:
    def test_exact_zero_noise_is_one(self):
        p = j_pattern(0.4)
        # Non-trivial-but-lowered model with all-zero channels is trivial.
        assert average_fidelity(p, NoiseModel(), exact=True) == 1.0

    def test_exact_matches_large_trajectory_average(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.3], [0.5])
        noise = NoiseModel(p_prep=0.02, p_ent=0.02)
        exact = average_fidelity(compiled.pattern, noise, exact=True)
        traj = average_fidelity(compiled.pattern, noise, trajectories=4096, seed=9)
        assert 0.0 < exact < 1.0
        assert traj == pytest.approx(exact, abs=0.02)

    def test_exact_rejects_non_integrating_backend(self):
        with pytest.raises(ValueError, match="density"):
            average_fidelity(
                j_pattern(0.4), NoiseModel(p_ent=0.1), exact=True,
                backend="statevector",
            )
