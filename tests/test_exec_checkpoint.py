"""Checkpointed shot-block execution (`repro.exec.checkpoint`).

The certification claims: a resumed job's record stream is bit-identical
to the uninterrupted run; each block is bit-identical to a direct
``sample_batch`` call on its spawned child seed (the supervisor adds no
randomness); block files failing any integrity check — truncation, bit
flips, version skew — are re-run, never silently merged; and a job
directory refuses to resume under changed parameters.
"""

import os

import numpy as np
import pytest

from repro.exec import (
    CheckpointResult,
    Fault,
    FaultSchedule,
    InjectedCrash,
    block_path,
    corrupt_block_file,
    load_block,
    load_manifest,
    plan_blocks,
    records_digest,
    run_checkpointed,
)
from repro.exec.checkpoint import BlockPlan
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import PatternError
from repro.utils.rng import ensure_rng, spawn_seeds


def j_chain(alphas):
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


@pytest.fixture
def compiled():
    return compile_pattern(j_chain([0.3, 0.7, 1.1, 0.2]))


def run_job(compiled, job_dir, **kw):
    kw.setdefault("seed", 7)
    kw.setdefault("backend", "statevector")
    kw.setdefault("block_shots", 16)
    return run_checkpointed(compiled, 50, job_dir=str(job_dir), **kw)


class TestPlanning:
    def test_even_split(self):
        plans = plan_blocks(64, 16)
        assert [(p.lo, p.hi) for p in plans] == [
            (0, 16), (16, 32), (32, 48), (48, 64)
        ]

    def test_ragged_tail(self):
        plans = plan_blocks(50, 16)
        assert plans[-1] == BlockPlan(index=3, lo=48, hi=50)
        assert sum(p.shots for p in plans) == 50

    def test_zero_shots_is_empty_job(self):
        assert plan_blocks(0, 16) == ()

    def test_block_larger_than_job(self):
        assert plan_blocks(5, 100) == (BlockPlan(0, 0, 5),)

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_blocks(-1, 16)
        with pytest.raises(ValueError):
            plan_blocks(10, 0)


class TestDeterminism:
    def test_rerun_reuses_every_block_and_matches(self, compiled, tmp_path):
        r1 = run_job(compiled, tmp_path / "a")
        r2 = run_job(compiled, tmp_path / "a")
        assert r1.blocks_run == (0, 1, 2, 3)
        assert r2.blocks_reused == (0, 1, 2, 3) and r2.blocks_run == ()
        assert np.array_equal(r1.run.outcomes, r2.run.outcomes)

    def test_fresh_directory_reproduces_stream(self, compiled, tmp_path):
        r1 = run_job(compiled, tmp_path / "a")
        r2 = run_job(compiled, tmp_path / "b")
        assert records_digest(r1.run) == records_digest(r2.run)

    def test_block_equals_direct_sample_batch(self, compiled, tmp_path):
        """The supervisor adds no randomness: block i IS a direct
        sample_batch call on child seed i."""
        r = run_job(compiled, tmp_path / "a")
        engine = get_backend("statevector")
        seeds = spawn_seeds(r.seed_entropy, r.n_blocks)
        plans = plan_blocks(50, 16)
        for plan in plans:
            direct = engine.sample_batch(
                compiled, plan.shots, ensure_rng(seeds[plan.index])
            )
            assert np.array_equal(
                r.run.outcomes[plan.lo:plan.hi], direct.outcomes
            )

    def test_resume_after_crash_bit_identical(self, compiled, tmp_path):
        ref = run_job(compiled, tmp_path / "ref")
        crashing = FaultSchedule([Fault("crash", "block", 2, 0)])
        with pytest.raises(InjectedCrash):
            run_job(compiled, tmp_path / "j", faults=crashing)
        # Blocks 0 and 1 survived the crash on disk; 2 and 3 did not run.
        resumed = run_job(compiled, tmp_path / "j")
        assert resumed.blocks_reused == (0, 1)
        assert resumed.blocks_run == (2, 3)
        assert np.array_equal(resumed.run.outcomes, ref.run.outcomes)

    def test_chunk_size_invariance(self, compiled, tmp_path):
        """Per-engine chunking (max_block_bytes) does not change records,
        so neither does it change a checkpointed job's stream."""
        ref = run_job(
            compiled, tmp_path / "a", backend="density",
        )
        small_chunks = run_job(
            compiled, tmp_path / "b", backend="density",
            sample_kwargs={"max_block_bytes": 1},
        )
        assert np.array_equal(ref.run.outcomes, small_chunks.run.outcomes)

    def test_noisy_job_resumes_bit_identically(self, compiled, tmp_path):
        noise = NoiseModel(p_prep=0.05, p_ent=0.05, p_meas=0.05)
        ref = run_job(
            compiled, tmp_path / "ref", backend="statevector", noise=noise
        )
        crashing = FaultSchedule([Fault("crash", "block", 1, 0)])
        with pytest.raises(InjectedCrash):
            run_job(
                compiled, tmp_path / "j", backend="statevector",
                noise=noise, faults=crashing,
            )
        resumed = run_job(
            compiled, tmp_path / "j", backend="statevector", noise=noise
        )
        assert np.array_equal(resumed.run.outcomes, ref.run.outcomes)

    def test_memory_fault_retried_in_place(self, compiled, tmp_path):
        ref = run_job(compiled, tmp_path / "ref")
        sched = FaultSchedule([Fault("memory", "block", 1, 0)])
        r = run_job(compiled, tmp_path / "j", faults=sched, retries=2)
        assert np.array_equal(r.run.outcomes, ref.run.outcomes)
        assert len(sched.fired) == 1
        assert len(r.events) == 1

    def test_memory_retries_exhausted_raises(self, compiled, tmp_path):
        sched = FaultSchedule(
            [Fault("memory", "block", 0, a) for a in range(3)]
        )
        with pytest.raises(PatternError, match="MemoryError"):
            run_job(compiled, tmp_path / "j", faults=sched, retries=2)


class TestIntegrity:
    """Corrupted block files are detected and re-run, not merged."""

    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "version"])
    def test_corrupted_block_detected_and_rerun(
        self, compiled, tmp_path, mode
    ):
        ref = run_job(compiled, tmp_path / "ref")
        r1 = run_job(compiled, tmp_path / "j")
        path = block_path(str(tmp_path / "j"), 1)
        corrupt_block_file(path, mode)
        plans = plan_blocks(50, 16)
        assert load_block(str(tmp_path / "j"), r1.fingerprint, plans[1],
                          len(compiled.measured_nodes)) is None
        r2 = run_job(compiled, tmp_path / "j")
        assert 1 in r2.blocks_run
        assert set(r2.blocks_reused) == {0, 2, 3}
        assert np.array_equal(r2.run.outcomes, ref.run.outcomes)

    def test_injected_file_fault_roundtrip(self, compiled, tmp_path):
        """The block-file fault site corrupts the just-written file; the
        in-flight run still returns correct records, and the next
        invocation re-runs exactly the corrupted block."""
        ref = run_job(compiled, tmp_path / "ref")
        sched = FaultSchedule([Fault("truncate", "block-file", 2, 0)])
        r1 = run_job(compiled, tmp_path / "j", faults=sched)
        assert np.array_equal(r1.run.outcomes, ref.run.outcomes)
        r2 = run_job(compiled, tmp_path / "j")
        assert r2.blocks_run == (2,)
        assert np.array_equal(r2.run.outcomes, ref.run.outcomes)

    def test_missing_block_file(self, compiled, tmp_path):
        r1 = run_job(compiled, tmp_path / "j")
        os.remove(block_path(str(tmp_path / "j"), 0))
        r2 = run_job(compiled, tmp_path / "j")
        assert r2.blocks_run == (0,)
        assert np.array_equal(r2.run.outcomes, r1.run.outcomes)


class TestManifest:
    def test_changed_parameters_refused(self, compiled, tmp_path):
        run_job(compiled, tmp_path / "j")
        with pytest.raises(PatternError, match="different job"):
            run_checkpointed(
                compiled, 60, job_dir=str(tmp_path / "j"), seed=7,
                backend="statevector", block_shots=16,
            )
        with pytest.raises(PatternError, match="different job"):
            run_job(compiled, tmp_path / "j", block_shots=8)

    def test_changed_seed_refused(self, compiled, tmp_path):
        run_job(compiled, tmp_path / "j", seed=7)
        with pytest.raises(PatternError, match="different seed"):
            run_job(compiled, tmp_path / "j", seed=8)

    def test_seed_none_is_persisted(self, compiled, tmp_path):
        r1 = run_checkpointed(
            compiled, 30, job_dir=str(tmp_path / "j"), seed=None,
            backend="statevector", block_shots=16,
        )
        manifest = load_manifest(str(tmp_path / "j"))
        assert int(manifest["seed_entropy"]) == r1.seed_entropy
        # Omitting the seed on resume reuses the persisted entropy.
        r2 = run_checkpointed(
            compiled, 30, job_dir=str(tmp_path / "j"), seed=None,
            backend="statevector", block_shots=16,
        )
        assert r2.blocks_reused == (0, 1)
        assert np.array_equal(r1.run.outcomes, r2.run.outcomes)

    def test_generator_seed_rejected(self, compiled, tmp_path):
        with pytest.raises(ValueError, match="Generator"):
            run_job(compiled, tmp_path / "j", seed=ensure_rng(0))

    def test_keep_raw_rejected(self, compiled, tmp_path):
        with pytest.raises(ValueError, match="records-only"):
            run_job(compiled, tmp_path / "j",
                    sample_kwargs={"keep_raw": True})

    def test_zero_shot_job(self, compiled, tmp_path):
        r = run_checkpointed(
            compiled, 0, job_dir=str(tmp_path / "j"), seed=3,
            backend="statevector",
        )
        assert isinstance(r, CheckpointResult)
        assert r.n_blocks == 0
        assert r.run.outcomes.shape == (0, len(compiled.measured_nodes))


def _race_writer(path, tag, n_rounds):
    from repro.exec import atomic_write_bytes

    payload = (tag * 4096).encode()
    for _ in range(n_rounds):
        atomic_write_bytes(path, payload)


class TestAtomicWrite:
    """Regression for the torn-tmp race: the old fixed `<path>.tmp`
    staging name let two concurrent writers interleave into one tmp file
    and publish garbage.  `mkstemp` staging gives each writer a private
    file, so every published state is one writer's complete payload."""

    def test_two_process_stress_never_tears(self, tmp_path):
        import multiprocessing

        from repro.exec import atomic_write_bytes

        target = str(tmp_path / "contested.bin")
        atomic_write_bytes(target, ("c" * 4096).encode())
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_race_writer, args=(target, tag, 40))
            for tag in ("a", "b")
        ]
        for p in procs:
            p.start()
        valid = {("%s" % t * 4096).encode() for t in "abc"}
        reads = 0
        while any(p.is_alive() for p in procs):
            with open(target, "rb") as fh:
                blob = fh.read()
            assert blob in valid, f"torn read of {len(blob)} bytes"
            reads += 1
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert reads > 0
        with open(target, "rb") as fh:
            assert fh.read() in valid
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_failed_write_cleans_its_tmp(self, tmp_path):
        from repro.exec import atomic_write_bytes

        target = str(tmp_path / "x.bin")
        # Simulate a writer dying mid-stage: patch os.replace to fail.
        real_replace = os.replace
        try:
            def boom(src, dst):
                raise OSError("disk full")

            os.replace = boom
            with pytest.raises(OSError, match="disk full"):
                atomic_write_bytes(target, b"payload")
        finally:
            os.replace = real_replace
        assert not os.path.exists(target)
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []
