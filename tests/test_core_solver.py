"""End-to-end MBQC-QAOA variational solver tests."""

import numpy as np
import pytest

from repro.core.solver import MBQCQAOASolver, SampleBatch
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut
from repro.qaoa import qaoa_expectation


class TestSampling:
    def test_sample_batch_shapes(self):
        solver = MBQCQAOASolver(MaxCut.ring(4).to_qubo(), p=1, shots=64, seed=1)
        batch = solver.sample([0.4], [0.7])
        assert batch.bitstrings.shape == (64,)
        assert batch.costs.shape == (64,)
        assert solver.evaluations == 1

    def test_sampled_expectation_matches_exact(self):
        mc = MaxCut.ring(4)
        solver = MBQCQAOASolver(mc.to_qubo(), p=1, shots=4000, runs_per_batch=4, seed=2)
        est = solver.expectation([0.5], [0.3])
        exact = qaoa_expectation(mc.to_qubo().cost_vector(), [0.5], [0.3])
        assert est == pytest.approx(exact, abs=0.15)

    def test_batch_best(self):
        batch = SampleBatch(np.array([3, 5, 1]), np.array([0.5, -2.0, 1.0]))
        b, c = batch.best()
        assert b == 5 and c == -2.0

    def test_validation(self):
        qubo = MaxCut.ring(3).to_qubo()
        with pytest.raises(ValueError):
            MBQCQAOASolver(qubo, p=0)
        with pytest.raises(ValueError):
            MBQCQAOASolver(qubo, shots=0)

    def test_ising_input_accepted(self):
        ising = MaxCut.ring(3).to_qubo().to_ising()
        solver = MBQCQAOASolver(ising, p=1, shots=16, seed=0)
        batch = solver.sample([0.2], [0.4])
        assert len(batch.costs) == 16


class TestSolve:
    def test_finds_ring_optimum(self):
        mc = MaxCut.ring(4)
        solver = MBQCQAOASolver(mc.to_qubo(), p=1, shots=128, runs_per_batch=2, seed=3)
        res = solver.solve(restarts=2, maxiter=20)
        # Best sampled solution should be the perfect cut (cost -4).
        assert res.best_cost == pytest.approx(-4.0)
        assert mc.cut_value(res.best_bitstring) == pytest.approx(4.0)
        assert res.evaluations > 0

    def test_warm_started_solve(self):
        mc = MaxCut.ring(4)
        from repro.qaoa import grid_search_p1

        warm = grid_search_p1(mc.to_qubo().cost_vector(), resolution=10)
        solver = MBQCQAOASolver(mc.to_qubo(), p=1, shots=96, runs_per_batch=2, seed=4)
        res = solver.solve(restarts=1, maxiter=10, initial=(warm.gammas, warm.betas))
        assert res.best_cost <= -3.0

    def test_noisy_solver_still_solves_small(self):
        """With mild noise the sampler still finds the optimum — the
        variational loop is noise-tolerant on tiny instances."""
        mc = MaxCut(3, [(0, 1), (1, 2)])
        solver = MBQCQAOASolver(
            mc.to_qubo(), p=1, shots=96, runs_per_batch=6,
            noise=NoiseModel(p_ent=0.01), seed=5,
        )
        res = solver.solve(restarts=1, maxiter=12)
        assert mc.cut_value(res.best_bitstring) == pytest.approx(2.0)

    def test_expectation_degrades_with_noise(self):
        mc = MaxCut.ring(4)
        qubo = mc.to_qubo()
        from repro.qaoa import grid_search_p1

        params = grid_search_p1(qubo.cost_vector(), resolution=12)
        clean = MBQCQAOASolver(qubo, p=1, shots=1500, runs_per_batch=3, seed=6)
        noisy = MBQCQAOASolver(
            qubo, p=1, shots=1500, runs_per_batch=12,
            noise=NoiseModel(p_prep=0.05, p_ent=0.05, p_meas=0.05), seed=6,
        )
        e_clean = clean.expectation(params.gammas, params.betas)
        e_noisy = noisy.expectation(params.gammas, params.betas)
        assert e_noisy > e_clean + 0.1  # noise pushes <cost> toward 0
