"""Graph-like form, local complementation, pivoting (ref. [31] machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import proportionality_factor
from repro.sim import Circuit
from repro.zx import Diagram, EdgeType, VertexType, circuit_to_diagram, diagram_matrix
from repro.zx.graph_like import (
    clifford_simplify,
    is_graph_like,
    local_complementation,
    pivot,
    to_graph_like,
)


def prop_check(before, after):
    return proportionality_factor(after, before, atol=1e-8) is not None


class TestToGraphLike:
    def test_simple_circuit(self):
        c = Circuit(2).h(0).cnot(0, 1).rz(1, 0.4).rx(0, 0.7).cz(0, 1)
        d = circuit_to_diagram(c)
        before = diagram_matrix(d)
        to_graph_like(d)
        assert is_graph_like(d)
        assert prop_check(before, diagram_matrix(d))

    @given(st.lists(st.tuples(st.sampled_from(["h", "s", "rz", "rx", "cz", "cnot", "x", "z"]),
                              st.integers(0, 2), st.integers(0, 2),
                              st.floats(-3.0, 3.0)),
                    min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_property(self, moves):
        c = Circuit(3)
        for name, a, b, theta in moves:
            if name in ("h", "s", "x", "z"):
                c.append(name, (a,))
            elif name in ("rz", "rx"):
                c.append(name, (a,), theta)
            elif a != b:
                c.append(name, (a, b))
        d = circuit_to_diagram(c)
        before = diagram_matrix(d)
        to_graph_like(d)
        assert is_graph_like(d)
        assert prop_check(before, diagram_matrix(d))

    def test_rejects_hboxes(self):
        d = Diagram()
        h = d.add_hbox(2.0)
        o = d.add_boundary("output")
        d.add_edge(h, o)
        with pytest.raises(ValueError):
            to_graph_like(d)

    def test_is_graph_like_detects_violations(self):
        d = Diagram()
        a = d.add_z()
        b = d.add_x()
        o1 = d.add_boundary("output")
        o2 = d.add_boundary("output")
        d.add_edge(a, b)
        d.add_edge(a, o1)
        d.add_edge(b, o2)
        assert not is_graph_like(d)  # X spider present


def lc_test_diagram(phase_sign):
    """A ±π/2 interior spider H-connected to three phased Z spiders with
    boundary legs."""
    d = Diagram()
    center = d.add_z(phase_sign * math.pi / 2)
    nbrs = []
    for k in range(3):
        z = d.add_z(0.2 * (k + 1))
        b = d.add_boundary("output")
        d.add_edge(z, b)
        d.add_edge(center, z, EdgeType.HADAMARD)
        nbrs.append(z)
    return d, center, nbrs


class TestLocalComplementation:
    @pytest.mark.parametrize("sign", [1, -1])
    def test_preserves_semantics(self, sign):
        d, center, nbrs = lc_test_diagram(sign)
        before = diagram_matrix(d)
        local_complementation(d, center)
        assert prop_check(before, diagram_matrix(d))
        # Spider removed; neighborhood (empty graph on 3) now complete.
        assert d.num_spiders() == 3
        for i in range(3):
            for j in range(i + 1, 3):
                assert len(d.edges_between(nbrs[i], nbrs[j])) == 1

    def test_phase_transfer(self):
        d, center, nbrs = lc_test_diagram(1)
        local_complementation(d, center)
        assert d.phase(nbrs[0]) == pytest.approx(0.2 - math.pi / 2 + 2 * math.pi)

    def test_rejects_non_clifford_phase(self):
        d, center, _ = lc_test_diagram(1)
        d.set_phase(center, 0.3)
        with pytest.raises(ValueError):
            local_complementation(d, center)

    def test_rejects_plain_edges(self):
        d = Diagram()
        c = d.add_z(math.pi / 2)
        z = d.add_z(0.1)
        o = d.add_boundary("output")
        d.add_edge(c, z)  # plain edge
        d.add_edge(z, o)
        with pytest.raises(ValueError):
            local_complementation(d, c)


def pivot_test_diagram(pu, pv):
    """An H-connected Pauli pair with one exclusive neighbor each plus one
    common neighbor, all carrying boundary legs."""
    d = Diagram()
    u = d.add_z(pu)
    v = d.add_z(pv)
    d.add_edge(u, v, EdgeType.HADAMARD)
    spiders = {}
    for label in ("a", "b", "c"):
        z = d.add_z(0.15)
        bnd = d.add_boundary("output")
        d.add_edge(z, bnd)
        spiders[label] = z
    d.add_edge(u, spiders["a"], EdgeType.HADAMARD)       # N(u) only
    d.add_edge(v, spiders["b"], EdgeType.HADAMARD)       # N(v) only
    d.add_edge(u, spiders["c"], EdgeType.HADAMARD)       # common
    d.add_edge(v, spiders["c"], EdgeType.HADAMARD)
    return d, u, v, spiders


class TestPivot:
    @pytest.mark.parametrize("pu,pv", [(0.0, 0.0), (math.pi, 0.0), (math.pi, math.pi)])
    def test_preserves_semantics(self, pu, pv):
        d, u, v, spiders = pivot_test_diagram(pu, pv)
        before = diagram_matrix(d)
        pivot(d, u, v)
        assert prop_check(before, diagram_matrix(d))
        assert d.num_spiders() == 3

    def test_phase_updates(self):
        d, u, v, spiders = pivot_test_diagram(math.pi, 0.0)
        pivot(d, u, v)
        # N(u)-only gains phase(v)=0; N(v)-only gains phase(u)=π;
        # common gains π+0+π = 2π = 0.
        assert d.phase(spiders["a"]) == pytest.approx(0.15)
        assert d.phase(spiders["b"]) == pytest.approx(0.15 + math.pi)
        assert d.phase(spiders["c"]) == pytest.approx(0.15)

    def test_rejects_non_pauli(self):
        d, u, v, _ = pivot_test_diagram(0.4, 0.0)
        with pytest.raises(ValueError):
            pivot(d, u, v)


class TestCliffordSimplify:
    @given(st.lists(st.tuples(st.sampled_from(["h", "s", "cz", "cnot", "x", "z"]),
                              st.integers(0, 2), st.integers(0, 2)),
                    min_size=2, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_preserves_clifford_circuits(self, moves):
        c = Circuit(3)
        for name, a, b in moves:
            if name in ("h", "s", "x", "z"):
                c.append(name, (a,))
            elif a != b:
                c.append(name, (a, b))
        d = circuit_to_diagram(c)
        before = diagram_matrix(d)
        to_graph_like(d)
        clifford_simplify(d)
        assert prop_check(before, diagram_matrix(d))

    def test_reduces_spiders(self):
        c = Circuit(2)
        for _ in range(3):
            c.s(0).h(0).s(0).cz(0, 1).s(1).h(1)
        d = circuit_to_diagram(c)
        to_graph_like(d)
        n0 = d.num_spiders()
        applied = clifford_simplify(d)
        assert applied > 0
        assert d.num_spiders() < n0
