"""Tests for the ZH-calculus constructions (Section IV substrate)."""

import cmath
import math

import numpy as np
import pytest
from scipy.linalg import expm

from repro.linalg import PAULI_X, controlled, operator_on_qubits, proportionality_factor
from repro.zx import Diagram, EdgeType, diagram_matrix
from repro.zx.zh import controlled_phase_hbox_diagram, mis_partial_mixer_diagram


def prop(a, b):
    c = proportionality_factor(np.asarray(a), np.asarray(b), atol=1e-8)
    assert c is not None, "not proportional"
    return c


def mis_mixer_dense(degree: int, beta: float) -> np.ndarray:
    """Reference: RX-style rotation e^{i beta X} on target iff all controls 0.

    Little-endian wires: controls 0..degree-1, target = degree.
    """
    u = expm(1j * beta * PAULI_X)
    if degree == 0:
        return u
    core = controlled(u, degree)  # fires when controls all 1
    n = degree + 1
    flip = np.eye(1 << n, dtype=complex)
    for q in range(degree):
        flip = operator_on_qubits(PAULI_X, [q], n) @ flip
    return flip @ core @ flip


class TestHBoxTensor:
    def test_arity2_hbox_is_scaled_hadamard(self):
        d = Diagram()
        i = d.add_boundary("input")
        o = d.add_boundary("output")
        h = d.add_hbox(-1.0)
        d.add_edge(i, h)
        d.add_edge(h, o)
        m = diagram_matrix(d)
        assert np.allclose(m, np.array([[1, 1], [1, -1]]))

    def test_arity1_hbox(self):
        d = Diagram()
        o = d.add_boundary("output")
        h = d.add_hbox(0.5j)
        d.add_edge(h, o)
        assert np.allclose(diagram_matrix(d).ravel(), [1, 0.5j])

    def test_arity0_hbox_scalar(self):
        d = Diagram()
        d.add_hbox(3.0)
        assert np.isclose(diagram_matrix(d)[0, 0], 3.0)


class TestControlledPhase:
    @pytest.mark.parametrize("phi", [0.0, 0.7, -1.3, math.pi])
    def test_two_wire_is_cp(self, phi):
        d = controlled_phase_hbox_diagram(2, phi)
        expect = np.diag([1, 1, 1, cmath.exp(1j * phi)])
        prop(diagram_matrix(d), expect)

    def test_three_wire_phase_on_all_ones(self):
        phi = 0.9
        d = controlled_phase_hbox_diagram(3, phi)
        expect = np.eye(8, dtype=complex)
        expect[7, 7] = cmath.exp(1j * phi)
        prop(diagram_matrix(d), expect)

    def test_single_wire(self):
        phi = -0.4
        d = controlled_phase_hbox_diagram(1, phi)
        prop(diagram_matrix(d), np.diag([1, cmath.exp(1j * phi)]))

    def test_zero_wires_rejected(self):
        with pytest.raises(ValueError):
            controlled_phase_hbox_diagram(0, 1.0)


class TestMISMixer:
    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    @pytest.mark.parametrize("beta", [0.0, 0.37, -1.1])
    def test_matches_reference_unitary(self, degree, beta):
        d = mis_partial_mixer_diagram(degree, beta)
        m = diagram_matrix(d)
        ref = mis_mixer_dense(degree, beta)
        prop(m, ref)

    def test_identity_off_neighborhood(self):
        # With a control set to 1 the mixer must act as identity: check the
        # block structure explicitly for degree 2.
        beta = 0.8
        d = mis_partial_mixer_diagram(2, beta)
        m = diagram_matrix(d)
        m = m / m[1, 1]  # normalize scalar on an identity entry
        # Any basis state with a control bit set must be fixed.
        for idx in range(8):
            c0, c1 = idx & 1, (idx >> 1) & 1
            if c0 or c1:
                col = m[:, idx]
                expect = np.zeros(8)
                expect[idx] = 1
                assert np.allclose(col, expect, atol=1e-8)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            mis_partial_mixer_diagram(-1, 0.3)
