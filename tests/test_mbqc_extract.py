"""Pattern → circuit extraction (round-tripping the generic compiler)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generic import circuit_to_pattern
from repro.linalg import allclose_up_to_global_phase, j_gate, proportionality_factor
from repro.mbqc import Pattern
from repro.mbqc.extract import ExtractionError, extract_circuit, extractable
from repro.mbqc.runner import pattern_to_matrix
from repro.sim import Circuit


def assert_extraction_matches(pattern: Pattern, atol=1e-8):
    circ = extract_circuit(pattern)
    branch = pattern_to_matrix(pattern)  # all-zero branch
    u = circ.unitary()
    assert proportionality_factor(branch, u, atol=atol) is not None
    return circ


class TestBasicExtraction:
    def test_j_pattern(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", -0.8).x(1, {0})
        circ = assert_extraction_matches(p)
        assert np.allclose(circ.unitary(), j_gate(0.8))

    def test_j_chain(self):
        p = Pattern(input_nodes=[0], output_nodes=[3])
        for k in range(3):
            p.n(k + 1).e(k, k + 1).m(k, "XY", -0.3 * (k + 1), s_domain={k - 1} if k else set())
        p.x(3, {2})
        # (signals don't matter for extraction: the flow absorbs them)
        assert_extraction_matches(p)

    def test_cz_only_pattern(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.e(0, 1)
        circ = assert_extraction_matches(p)
        assert circ.count_by_name().get("cz") == 1

    def test_rejects_closed_patterns(self):
        p = Pattern(input_nodes=[], output_nodes=[0])
        p.n(0)
        with pytest.raises(ExtractionError):
            extract_circuit(p)

    def test_rejects_non_xy(self):
        p = Pattern(input_nodes=[0, 1], output_nodes=[0, 1])
        p.n(2).e(0, 2).e(1, 2).m(2, "YZ", 0.4)
        with pytest.raises(ExtractionError):
            extract_circuit(p)

    def test_rejects_flowless(self):
        # Two inputs into one output: no causal flow.
        p = Pattern(input_nodes=[0, 1], output_nodes=[2])
        p.n(2).e(0, 2).e(1, 2).m(0, "XY", 0.0).m(1, "XY", 0.0)
        with pytest.raises(ExtractionError):
            extract_circuit(p)

    def test_extractable_predicate(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        assert extractable(p)
        q = Pattern(input_nodes=[], output_nodes=[0])
        q.n(0)
        assert not extractable(q)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda c: c.h(0).cnot(0, 1),
            lambda c: c.rz(0, 0.7).rx(1, -0.4).cz(0, 1),
            lambda c: c.s(0).h(1).cz(0, 1).rz(1, 1.1).h(0),
            lambda c: c.ry(0, 0.5).cnot(1, 0),
        ],
    )
    def test_circuit_pattern_circuit(self, builder):
        c = Circuit(2)
        builder(c)
        pattern = circuit_to_pattern(c)
        extracted = assert_extraction_matches(pattern)
        assert allclose_up_to_global_phase(extracted.unitary(), c.unitary(), atol=1e-8)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["h", "s", "rz", "rx", "cz", "cnot"]),
                st.integers(0, 2),
                st.integers(0, 2),
                st.floats(-3.0, 3.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_random_round_trip_property(self, moves):
        c = Circuit(3)
        for name, a, b, theta in moves:
            if name in ("h", "s"):
                c.append(name, (a,))
            elif name in ("rz", "rx"):
                c.append(name, (a,), theta)
            elif a != b:
                c.append(name, (a, b))
        pattern = circuit_to_pattern(c)
        extracted = extract_circuit(pattern)
        assert allclose_up_to_global_phase(
            extracted.unitary(), c.unitary(), atol=1e-7
        )

    def test_qaoa_pattern_round_trip(self):
        """The generic QAOA pattern extracts back to a circuit preparing
        the same state (paper refs [6],[24] loop closed)."""
        from repro.problems import MaxCut
        from repro.qaoa import qaoa_circuit

        mc = MaxCut(3, [(0, 1), (1, 2)])
        circ = qaoa_circuit(mc.to_qubo().to_ising(), [0.4], [0.7], include_initial_layer=False)
        pattern = circuit_to_pattern(circ)
        extracted = extract_circuit(pattern)
        assert allclose_up_to_global_phase(
            extracted.unitary(), circ.unitary(), atol=1e-8
        )
