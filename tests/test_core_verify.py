"""Direct tests for the branch-exhaustive verification helpers."""

import numpy as np
import pytest

from repro.core.verify import (
    branch_unitaries,
    check_pattern_determinism,
    pattern_equals_unitary,
    pattern_state_equals,
)
from repro.linalg import HADAMARD, j_gate
from repro.mbqc import Pattern


def deterministic_pattern(alpha=0.4):
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha).x(1, {0})
    return p


def nondeterministic_pattern(alpha=0.4):
    """Same J gadget with the correction dropped: branches differ."""
    p = Pattern(input_nodes=[0], output_nodes=[1])
    p.n(1).e(0, 1).m(0, "XY", -alpha)
    return p


class TestBranchUnitaries:
    def test_enumerates_all_branches(self):
        p = deterministic_pattern()
        maps = branch_unitaries(p)
        assert len(maps) == 2
        branches = [b for b, _ in maps]
        assert {0: 0} in branches and {0: 1} in branches

    def test_sampling_caps_branches(self):
        p = Pattern(input_nodes=[0], output_nodes=[4])
        for k in range(4):
            p.n(k + 1).e(k, k + 1).m(k, "XY", 0.1 * k).x(k + 1, {k})
        maps = branch_unitaries(p, max_branches=5, seed=0)
        assert len(maps) <= 6  # 5 sampled + forced all-zero branch

    def test_branch_maps_have_expected_shape(self):
        p = deterministic_pattern()
        _, m = branch_unitaries(p)[0]
        assert m.shape == (2, 2)


class TestDeterminismChecks:
    def test_deterministic_accepted(self):
        assert check_pattern_determinism(deterministic_pattern())

    def test_nondeterministic_rejected(self):
        assert not check_pattern_determinism(nondeterministic_pattern())

    def test_unitary_match(self):
        assert pattern_equals_unitary(deterministic_pattern(0.9), j_gate(0.9))

    def test_unitary_mismatch(self):
        assert not pattern_equals_unitary(deterministic_pattern(0.9), HADAMARD)

    def test_nondeterministic_fails_unitary_check(self):
        # Branch m=1 differs from J(α), so all-branch equality fails.
        assert not pattern_equals_unitary(nondeterministic_pattern(0.9), j_gate(0.9))

    def test_single_branch_is_still_j(self):
        # But the m=0 branch alone IS J(α) (byproduct-free branch).
        from repro.linalg import proportionality_factor
        from repro.mbqc.runner import pattern_to_matrix

        m = pattern_to_matrix(nondeterministic_pattern(0.9), {0: 0})
        assert proportionality_factor(m, j_gate(0.9), atol=1e-9) is not None


class TestStateEquals:
    def test_state_preparation(self):
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        # J(0)|+> = H|+> = |0>.
        assert pattern_state_equals(p, np.array([1.0, 0.0]))

    def test_rejects_patterns_with_inputs(self):
        with pytest.raises(ValueError):
            pattern_state_equals(deterministic_pattern(), np.array([1.0, 0.0]))

    def test_wrong_state_detected(self):
        p = Pattern(input_nodes=[], output_nodes=[1])
        p.n(0).n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        assert not pattern_state_equals(p, np.array([0.0, 1.0]))

    def test_sampled_branches(self):
        p = Pattern(input_nodes=[], output_nodes=[3])
        for k in range(3):
            p.n(k + 1) if k + 1 != 0 else None
        # rebuild cleanly: chain of J(0) gadgets from |+>
        p = Pattern(input_nodes=[], output_nodes=[3])
        for v in range(4):
            p.n(v)
        for k in range(3):
            p.e(k, k + 1)
            p.m(k, "XY", 0.0, s_domain=set() if k == 0 else {k - 1})
        # not standard-corrected; just check the API accepts sampling
        p2 = Pattern(input_nodes=[], output_nodes=[1])
        p2.n(0).n(1).e(0, 1).m(0, "XY", 0.0).x(1, {0})
        assert pattern_state_equals(p2, np.array([1.0, 0.0]), max_branches=1, seed=3)
