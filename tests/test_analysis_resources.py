"""Static resource estimator and the select_backend byte-budget gate."""

import pytest

from repro.analysis import analyze, estimate_compiled, format_bytes
from repro.core import compile_qaoa_pattern
from repro.mbqc import PatternError, get_backend, lower_noise, select_backend
from repro.mbqc.backend import PEAK_BYTE_BUDGET
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import MeasureOp, PrepOp
from repro.problems import MaxCut


def ring_compiled(n=4, **kw):
    return compile_qaoa_pattern(
        MaxCut.ring(n).to_qubo(), [0.37], [0.52], **kw
    ).executable()


class TestEstimate:
    def test_byte_formulas(self):
        c = ring_compiled()
        est = estimate_compiled(c)
        m = c.max_live
        assert est.statevector_bytes_per_shot == 16 * 2**m
        assert est.density_bytes_per_shot == 16 * 4**m
        nt = est.total_nodes
        assert est.tableau_bytes_per_shot == 4 * nt * nt + 2 * nt
        assert est.bytes_per_shot("statevector") == est.statevector_bytes_per_shot
        assert est.peak_bytes("density", 10) == 10 * est.density_bytes_per_shot

    def test_node_accounting_matches_compiler(self):
        c = ring_compiled(5)
        est = estimate_compiled(c)
        preps = sum(1 for op in c.ops if type(op) is PrepOp)
        assert est.total_nodes == c.num_inputs + preps
        assert est.n_measured == len(c.measured_nodes)
        assert est.max_live == c.max_live

    def test_chunk_shots_is_byte_budget_formula(self):
        est = estimate_compiled(ring_compiled())
        budget = 1 << 20
        per = est.density_bytes_per_shot
        assert est.chunk_shots("density", budget) == max(1, budget // per)
        # a budget below one shot still makes progress
        assert est.chunk_shots("density", 1) == 1

    def test_unknown_backend_raises(self):
        est = estimate_compiled(ring_compiled())
        with pytest.raises(ValueError, match="no byte model"):
            est.bytes_per_shot("tensor-network")

    def test_branch_bound_matches_exact_integration(self):
        c = ring_compiled(3)
        est = estimate_compiled(c)
        # scalar path: leaves explored == raw bound (noiseless, no pruning)
        scalar = get_backend("density").integrate(c, vectorize=False)
        assert scalar.branches == est.branch_bound
        # frontier path: peak merged width == merged bound
        run = get_backend("density").integrate(c)
        assert run.branches == est.merged_branch_bound
        assert est.merged_branch_bound <= est.branch_bound

    def test_branch_bound_flips_quadruple(self):
        c = ring_compiled(3)
        noisy = lower_noise(c, ChannelNoiseModel(meas_flip=0.1))
        base = estimate_compiled(c)
        est = estimate_compiled(noisy)
        live = sum(
            1 for op in c.ops
            if type(op) is MeasureOp
        )
        assert est.branch_bound >= base.branch_bound
        # every live measurement's factor goes 2 -> 4 on the raw bound...
        assert est.branch_bound == base.branch_bound ** 2
        # ...but flip children share their recorded bit and merge on the
        # frontier, so the merged bound does not move at all
        assert est.merged_branch_bound == base.merged_branch_bound

    def test_report_format_mentions_each_backend(self):
        text = estimate_compiled(ring_compiled()).format()
        for key in ("statevector", "density", "tableau", "exact branches"):
            assert key in text

    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1 << 20) == "1.0 MiB"
        assert format_bytes(3 << 30) == "3.0 GiB"

    def test_analyze_attaches_resources(self):
        report = analyze(ring_compiled())
        assert report.resources is not None
        assert report.resources.max_live > 0


class TestByteBudgetGate:
    def test_over_budget_raises_actionable_diagnostic(self):
        c = ring_compiled()
        with pytest.raises(PatternError) as err:
            select_backend(c, "statevector", max_bytes=64)
        msg = str(err.value)
        assert "R101" in msg
        assert "max_bytes" in msg  # tells the user how to override
        assert "estimate_compiled" in msg or "repro lint" in msg

    def test_auto_route_checked_too(self):
        c = ring_compiled()
        with pytest.raises(PatternError, match="R101"):
            select_backend(c, "auto", max_bytes=64)

    def test_density_budget(self):
        noisy = lower_noise(
            ring_compiled(),
            ChannelNoiseModel(prep=Channel.amplitude_damping(0.05)),
        )
        est = estimate_compiled(noisy)
        with pytest.raises(PatternError, match="R101"):
            select_backend(noisy, max_bytes=est.density_bytes_per_shot - 1)

    def test_zero_disables_check(self):
        c = ring_compiled()
        assert select_backend(c, "statevector", max_bytes=0).name == "statevector"

    def test_default_budget_passes_normal_patterns(self):
        c = ring_compiled()
        assert estimate_compiled(c).statevector_bytes_per_shot < PEAK_BYTE_BUDGET
        assert select_backend(c).name in ("statevector", "stabilizer")

    def test_clifford_alternative_suggested(self):
        c = compile_qaoa_pattern(
            MaxCut.ring(4).to_qubo(), [0.0], [0.0]
        ).executable()
        assert c.is_clifford
        with pytest.raises(PatternError, match="stabilizer"):
            select_backend(c, "statevector", max_bytes=64)

    def test_branch_cap_raises_r102(self):
        noisy = lower_noise(
            ring_compiled(3), ChannelNoiseModel(meas_flip=0.1)
        )
        with pytest.raises(PatternError, match="R102"):
            get_backend("density").integrate(noisy, max_branches=8)


class TestSelectBackendEdgeCases:
    def test_unsupporting_prefer_instance_raises(self):
        """A backend *instance* that cannot execute the pattern is
        rejected with the same clarity as a registered name."""

        class NopeBackend:
            name = "nope"

            def supports(self, compiled):
                return False

        with pytest.raises(PatternError, match="cannot execute"):
            select_backend(ring_compiled(), prefer=NopeBackend())

    def test_supporting_prefer_instance_returned_unregistered(self):
        """An unregistered instance passes straight through (no byte gate
        — there is no registry byte model to consult for it)."""

        class YepBackend:
            name = "yep"

            def supports(self, compiled):
                return True

        eng = YepBackend()
        assert select_backend(ring_compiled(), prefer=eng) is eng

    def test_r101_names_every_fitting_engine(self):
        """The diagnostic suggests *each* registered engine that both fits
        the budget and supports the pattern — not a hard-coded pair."""
        from repro.mbqc import list_backends

        c = ring_compiled(40)
        est = estimate_compiled(c)
        # Budget below the (astronomical 2^41-amplitude) statevector
        # footprint but above every other supporting engine's: all of
        # them must be named as options.
        budget = est.bytes_per_shot("statevector") - 1
        fitting = [
            name
            for name in list_backends()
            if name != "statevector"
            and est.bytes_per_shot(name) <= budget
            and get_backend(name).supports(c)
        ]
        assert "mps" in fitting  # the ring is bounded-width: mps must fit
        with pytest.raises(PatternError) as err:
            select_backend(c, "statevector", max_bytes=budget)
        msg = str(err.value)
        for name in fitting:
            assert f"'{name}' engine fits" in msg

    def test_r101_omits_unsupporting_engines(self):
        """A non-Clifford pattern never gets the stabilizer engine
        suggested by the generic fits loop, however cheap its tableau."""
        c = ring_compiled()
        assert not c.is_clifford
        with pytest.raises(PatternError) as err:
            select_backend(
                c, "statevector",
                max_bytes=estimate_compiled(c).bytes_per_shot("statevector") - 1,
            )
        assert "'stabilizer' engine fits" not in str(err.value)

    def test_estimate_rows_cover_every_registered_engine(self):
        from repro.mbqc import list_backends

        est = estimate_compiled(ring_compiled())
        assert tuple(name for name, _, _ in est.engine_bytes) == list_backends()
        for name, nbytes, _ in est.engine_bytes:
            assert nbytes == get_backend(name).bytes_per_shot(
                ring_compiled()
            ) or nbytes > 0
