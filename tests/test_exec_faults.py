"""Deterministic fault-injection harness (`repro.exec.faults`).

Certification claims: a `FaultSchedule` is declarative data — each fault
fires exactly once at its (site, index, attempt) step, and the seeded
constructor replays the same schedule for the same seed on any machine;
combined crash + file-corruption schedules recover to bit-identical
records across resume invocations; a job killed by a *real* SIGKILL
(subprocess smoke test) resumes bit-identically; and the degradation
chain, with its preferred engine deliberately failed, still produces a
statistically correct result — cross-engine-verified against exact
density-matrix integration at 3 standard errors.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.exec import (
    Fault,
    FaultSchedule,
    FallbackPolicy,
    InjectedCrash,
    corrupt_block_file,
    records_digest,
    run_checkpointed,
    sample_with_fallback,
)
from repro.exec.faults import raise_in_process
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.backend import _REGISTRY, register_backend
from repro.mbqc.mps_backend import MPSBackend
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut

from stat_helpers import assert_rows_within_sigma


def j_chain(alphas):
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a, s_domain=set())
        p.x(i + 1, {i})
    return p


@pytest.fixture
def compiled():
    return compile_pattern(j_chain([0.3, 0.7, 1.1, 0.2]))


def run_job(compiled, job_dir, **kw):
    kw.setdefault("seed", 7)
    kw.setdefault("backend", "statevector")
    kw.setdefault("block_shots", 16)
    return run_checkpointed(compiled, 50, job_dir=str(job_dir), **kw)


class TestFaultSchedule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor", "block", 0)

    def test_take_fires_once(self):
        f = Fault("crash", "block", 2, 0)
        sched = FaultSchedule([f])
        assert sched.take("block", 2, 0) is f
        assert sched.take("block", 2, 0) is None
        assert sched.fired == [f]
        assert sched.pending == ()

    def test_take_matches_site_index_attempt(self):
        sched = FaultSchedule([Fault("crash", "block", 2, 1)])
        assert sched.take("shard", 2, 1) is None
        assert sched.take("block", 1, 1) is None
        assert sched.take("block", 2, 0) is None
        assert sched.take("block", 2, 1) is not None

    def test_repeated_faults_model_retry_storms(self):
        sched = FaultSchedule([
            Fault("memory", "block", 0, 0),
            Fault("memory", "block", 0, 1),
        ])
        assert sched.take("block", 0, 0).attempt == 0
        assert sched.take("block", 0, 1).attempt == 1
        assert len(sched.fired) == 2

    def test_seeded_is_reproducible(self):
        a = FaultSchedule.seeded(42, 6, max_index=4)
        b = FaultSchedule.seeded(42, 6, max_index=4)
        assert a.pending == b.pending
        assert len(a) == 6
        for f in a.pending:
            assert f.kind in ("crash", "memory")
            assert f.site == "block"
            assert 0 <= f.index < 4
            assert f.attempt in (0, 1)

    def test_seeded_differs_across_seeds(self):
        assert (
            FaultSchedule.seeded(1, 8).pending
            != FaultSchedule.seeded(2, 8).pending
        )


class TestDelivery:
    def test_crash_raises_injected_crash(self):
        with pytest.raises(InjectedCrash, match="block 3"):
            raise_in_process(Fault("crash", "block", 3, 0))

    def test_memory_raises_memory_error(self):
        with pytest.raises(MemoryError, match="injected"):
            raise_in_process(Fault("memory", "block", 0, 0))

    def test_file_kind_cannot_raise_in_process(self):
        with pytest.raises(ValueError, match="in-process"):
            raise_in_process(Fault("bitflip", "block", 0, 0))

    def test_unknown_corruption_mode(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"data")
        with pytest.raises(ValueError, match="corruption mode"):
            corrupt_block_file(str(path), "shred")


class TestCombinedRecovery:
    def test_crash_plus_corruption_recovers_bit_identical(
        self, compiled, tmp_path
    ):
        """One schedule delivers a torn write on block 0's file AND a
        crash before block 2: the next invocation re-runs exactly the
        damaged and missing blocks and the merged stream is bit-identical
        to the fault-free reference."""
        ref = run_job(compiled, tmp_path / "ref")
        sched = FaultSchedule([
            Fault("truncate", "block-file", 0, 0),
            Fault("crash", "block", 2, 0),
        ])
        with pytest.raises(InjectedCrash):
            run_job(compiled, tmp_path / "j", faults=sched)
        assert len(sched.fired) == 2
        resumed = run_job(compiled, tmp_path / "j")
        assert set(resumed.blocks_run) == {0, 2, 3}
        assert resumed.blocks_reused == (1,)
        assert np.array_equal(resumed.run.outcomes, ref.run.outcomes)

    def test_seeded_storm_converges_to_reference(self, compiled, tmp_path):
        """The CI stress contract: under a seeded random schedule of
        crashes and OOMs, repeatedly re-invoking the job eventually
        completes with the fault-free digest."""
        ref = run_job(compiled, tmp_path / "ref")
        sched = FaultSchedule.seeded(
            2024, 5, max_index=4, kinds=("crash", "memory"), max_attempt=0
        )
        result = None
        for _ in range(len(sched) + 1):
            try:
                result = run_job(
                    compiled, tmp_path / "j", faults=sched, retries=3
                )
                break
            except InjectedCrash:
                continue
        assert result is not None, "job never completed under the storm"
        assert records_digest(result.run) == records_digest(ref.run)


_KILL_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_exec_faults import j_chain, run_job
from repro.exec import Fault, FaultSchedule
from repro.mbqc import compile_pattern

compiled = compile_pattern(j_chain([0.3, 0.7, 1.1, 0.2]))
sched = FaultSchedule([Fault("sigkill", "block", 2, 0)])
run_job(compiled, {job!r}, faults=sched)
raise SystemExit("unreachable: the SIGKILL fault never fired")
"""


class TestSigkillResume:
    def test_resume_after_real_sigkill(self, compiled, tmp_path):
        """The resume path against *real* process death, not a stand-in:
        a subprocess SIGKILLs itself mid-job (exit code -9), and the
        in-process resume completes bit-identically to the fault-free
        reference."""
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        tests = str(Path(__file__).resolve().parent)
        job = str(tmp_path / "j")
        script = _KILL_SCRIPT.format(src=src, tests=tests, job=job)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": src},
        )
        assert proc.returncode == -9, (
            proc.returncode, proc.stdout, proc.stderr
        )
        ref = run_job(compiled, tmp_path / "ref")
        resumed = run_job(compiled, job)
        assert resumed.blocks_reused == (0, 1)
        assert resumed.blocks_run == (2, 3)
        assert np.array_equal(resumed.run.outcomes, ref.run.outcomes)


class TestDegradationCorrectness:
    """The acceptance gate for graceful degradation: with the preferred
    engine deliberately failed, the chain's served result is still
    statistically correct — certified cross-engine against exact
    density-matrix branch integration (3 standard errors, per basis
    state)."""

    @pytest.fixture
    def qaoa(self):
        return compile_qaoa_pattern(
            MaxCut.ring(4).to_qubo(), [0.6], [0.4]
        ).executable()

    def test_truncation_degrade_is_cross_engine_correct(self, qaoa):
        register_backend(MPSBackend(chi_max=1), name="mps-tight")
        try:
            policy = FallbackPolicy(
                chain=("mps-tight", "statevector"), truncation_tol=1e-6
            )
            run, report = sample_with_fallback(qaoa, 1024, policy, seed=17)
            assert report.degraded and report.selected == "statevector"
            exact = get_backend("density").integrate(qaoa).probabilities()
            assert_rows_within_sigma(
                run.probability_rows(), exact,
                context="truncation degrade -> statevector",
            )
        finally:
            _REGISTRY.pop("mps-tight", None)

    def test_runtime_degrade_is_cross_engine_correct_under_noise(self, qaoa):
        class _OOM:
            name = "oom"

            def supports(self, compiled):
                return True

            def sample_batch(self, *a, **kw):
                raise MemoryError("deliberate")

        register_backend(_OOM())
        try:
            noise = NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02)
            policy = FallbackPolicy(chain=("oom", "statevector"))
            run, report = sample_with_fallback(
                qaoa, 1024, policy, seed=17, noise=noise
            )
            assert report.degraded and report.selected == "statevector"
            exact = get_backend("density").integrate(
                qaoa, noise=noise
            ).probabilities()
            assert_rows_within_sigma(
                run.probability_rows(), exact,
                context="runtime degrade under noise",
            )
        finally:
            _REGISTRY.pop("oom", None)
