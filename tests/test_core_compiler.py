"""Experiment E6 (headline): MBQC-QAOA ≡ gate-model QAOA.

For random QUBOs and MaxCut instances, arbitrary parameters and depths,
the compiled measurement pattern prepares exactly the QAOA state — checked
over all (or sampled) outcome branches — and the pattern's open graph
admits an extended gflow (the paper's determinism criterion).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CompiledQAOA,
    check_pattern_determinism,
    compile_qaoa_pattern,
    pattern_equals_unitary,
    pattern_state_equals,
)
from repro.core.compiler import measurement_order
from repro.mbqc import OpenGraph, find_gflow
from repro.mbqc.flow import verify_gflow
from repro.problems import QUBO, MaxCut, MinVertexCover
from repro.qaoa import qaoa_circuit, qaoa_state
from repro.qaoa.circuits import qaoa_circuit_from_qubo


def random_qubo(n: int, seed: int, density: float = 0.6) -> QUBO:
    rng = np.random.default_rng(seed)
    m = np.triu(rng.normal(size=(n, n)), 0)
    mask = np.triu(rng.random((n, n)) < density, 1)
    m = m * (mask + np.eye(n, dtype=bool) * (rng.random(n) < 0.5))
    return QUBO(m)


class TestStatePreparation:
    @pytest.mark.parametrize("p", [1, 2])
    def test_maxcut_triangle_all_params(self, p):
        mc = MaxCut(3, [(0, 1), (1, 2), (0, 2)])
        rng = np.random.default_rng(p)
        gammas = rng.uniform(-np.pi, np.pi, p)
        betas = rng.uniform(-np.pi, np.pi, p)
        compiled = compile_qaoa_pattern(mc.to_qubo(), gammas, betas)
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), gammas, betas)
        max_branches = None if p == 1 else 24
        assert pattern_state_equals(
            compiled.pattern, target, max_branches=max_branches, seed=1
        )

    def test_general_qubo_with_linear_terms(self):
        """The Eq. (12) general-QUBO case (nonzero γ' wires)."""
        vc = MinVertexCover(3, [(0, 1), (1, 2)])
        qubo = vc.to_qubo()
        gammas, betas = [0.37], [0.81]
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        assert compiled.count_role("field-ancilla") == len(qubo.to_ising().fields)
        assert compiled.count_role("field-ancilla") > 0
        target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(compiled.pattern, target, max_branches=48, seed=2)

    def test_random_qubo_p1(self):
        qubo = random_qubo(3, seed=5)
        gammas, betas = [0.63], [-0.29]
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(compiled.pattern, target, max_branches=64, seed=3)

    def test_depth_three(self):
        mc = MaxCut(3, [(0, 1), (1, 2)])
        rng = np.random.default_rng(33)
        gammas = rng.uniform(-1, 1, 3)
        betas = rng.uniform(-1, 1, 3)
        compiled = compile_qaoa_pattern(mc.to_qubo(), gammas, betas)
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(compiled.pattern, target, max_branches=20, seed=4)

    def test_single_vertex_no_edges(self):
        qubo = QUBO.from_terms(1, {}, [1.0])
        compiled = compile_qaoa_pattern(qubo, [0.4], [0.7])
        ising = qubo.to_ising()
        target = qaoa_state(ising.energy_vector(), [0.4], [0.7])
        assert pattern_state_equals(compiled.pattern, target)


class TestUnitaryEquivalence:
    def test_open_inputs_implements_qaoa_unitary(self):
        """With open inputs the pattern implements the QAOA circuit unitary
        (minus the initial H layer) on arbitrary states."""
        mc = MaxCut(2, [(0, 1)])
        gammas, betas = [0.52], [-0.33]
        compiled = compile_qaoa_pattern(mc.to_qubo(), gammas, betas, open_inputs=True)
        circ = qaoa_circuit_from_qubo(mc.to_qubo(), gammas, betas)
        # Strip the initial Hadamard layer: the pattern acts on raw inputs.
        no_h = qaoa_circuit(mc.to_qubo().to_ising(), gammas, betas, include_initial_layer=False)
        assert pattern_equals_unitary(compiled.pattern, no_h.unitary(), max_branches=None)

    def test_determinism_exhaustive_small(self):
        mc = MaxCut(2, [(0, 1)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.9], [0.4], open_inputs=True)
        assert check_pattern_determinism(compiled.pattern)

    @given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_parameters_property(self, gamma, beta):
        """The paper's 'arbitrary algorithm parameters' claim at p=1."""
        mc = MaxCut(2, [(0, 1)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [gamma], [beta])
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), [gamma], [beta])
        assert pattern_state_equals(compiled.pattern, target, atol=1e-7)


class TestScheduling:
    def test_graph_first_equals_eager(self):
        mc = MaxCut(3, [(0, 1), (1, 2)])
        gammas, betas = [0.7], [0.2]
        eager = compile_qaoa_pattern(mc.to_qubo(), gammas, betas, schedule="eager")
        first = compile_qaoa_pattern(mc.to_qubo(), gammas, betas, schedule="graph-first")
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(eager.pattern, target, max_branches=32, seed=5)
        assert pattern_state_equals(first.pattern, target, max_branches=32, seed=6)

    def test_graph_first_is_nemc(self):
        """Graph-first = the literal one-way model: all preparations and
        entanglers before any measurement (algorithm-independent resource
        state)."""
        from repro.mbqc.pattern import CommandE, CommandM, CommandN

        mc = MaxCut(3, [(0, 1), (1, 2)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.3], [0.5], schedule="graph-first")
        kinds = [type(c).__name__ for c in compiled.pattern.commands]
        first_m = kinds.index("CommandM")
        assert all(k != "CommandN" and k != "CommandE" for k in kinds[first_m:] if k == "CommandN" or k == "CommandE")
        # All E's precede all M's:
        assert max(i for i, k in enumerate(kinds) if k == "CommandE") < first_m

    def test_eager_live_set_smaller(self):
        from repro.core.reuse import peak_live_qubits

        mc = MaxCut.ring(4)
        eager = compile_qaoa_pattern(mc.to_qubo(), [0.1, 0.2], [0.3, 0.4], schedule="eager")
        first = compile_qaoa_pattern(mc.to_qubo(), [0.1, 0.2], [0.3, 0.4], schedule="graph-first")
        assert peak_live_qubits(eager.pattern) < peak_live_qubits(first.pattern)

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.1], [0.1], schedule="lazy")


class TestStructure:
    def test_node_counts_match_paper(self):
        """Section III.A: per layer, 1 ancilla/edge + 2/vertex (+1/field).

        Unweighted MaxCut's Ising form has no linear fields (they cancel in
        the -cut expansion), so the count is exactly ``|V| + p(|E|+2|V|)``.
        """
        mc = MaxCut.ring(5)
        p = 3
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.1] * p, [0.1] * p)
        v, e = 5, 5
        assert len(compiled.ising.fields) == 0
        assert compiled.count_role("edge-ancilla") == p * e
        assert compiled.count_role("field-ancilla") == 0
        assert compiled.count_role("mixer-ancilla") == 2 * p * v
        assert compiled.num_nodes() == v + p * (e + 2 * v)

    def test_node_counts_general_qubo(self):
        """General QUBO: +1 node per nonzero field per layer (Eq. 12)."""
        vc = MinVertexCover(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        ising = vc.to_qubo().to_ising()
        p = 2
        compiled = compile_qaoa_pattern(vc.to_qubo(), [0.1] * p, [0.1] * p)
        v, e, lin = 4, 4, len(ising.fields)
        assert compiled.num_nodes() == v + p * (e + 2 * v + lin)

    def test_measurement_order_layered(self):
        """Per layer: edge ancillas, then field ancillas, then the
        vertex-chain measurements — the paper's n-then-m ordering."""
        mc = MaxCut(3, [(0, 1), (1, 2)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.1, 0.2], [0.3, 0.4])
        order = measurement_order(compiled)
        layer_of = {
            node: compiled.roles[node][1]
            for node in order
            if node in compiled.roles and compiled.roles[node][0] != "wire-init"
        }
        # Wire-init nodes are measured during layer-1 mixing; ancillas carry
        # their own layer tag.  Check ancilla layers are non-decreasing.
        anc_layers = [
            compiled.roles[n][1]
            for n in order
            if compiled.roles.get(n, ("", 0, ()))[0] in ("edge-ancilla", "field-ancilla")
        ]
        assert anc_layers == sorted(anc_layers)

    def test_pattern_validates(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(4).to_qubo(), [0.1], [0.2])
        compiled.pattern.validate()

    def test_param_mismatch(self):
        with pytest.raises(ValueError):
            compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.1, 0.2], [0.1])

    def test_rejects_bad_problem_type(self):
        with pytest.raises(TypeError):
            compile_qaoa_pattern("not a qubo", [0.1], [0.1])

    def test_include_fields_false_drops_ancillas(self):
        vc = MinVertexCover(3, [(0, 1), (1, 2)])
        with_f = compile_qaoa_pattern(vc.to_qubo(), [0.1], [0.1], include_fields=True)
        without = compile_qaoa_pattern(vc.to_qubo(), [0.1], [0.1], include_fields=False)
        assert without.count_role("field-ancilla") == 0
        assert with_f.num_nodes() > without.num_nodes()


class TestGFlow:
    def test_compiled_pattern_has_gflow(self):
        """The paper's determinism criterion: the compiled open graph
        admits an extended gflow."""
        mc = MaxCut(3, [(0, 1), (1, 2)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.3], [0.7])
        og = OpenGraph.from_pattern(compiled.pattern)
        gf = find_gflow(og)
        assert gf is not None
        assert verify_gflow(og, gf)

    def test_gflow_with_open_inputs(self):
        mc = MaxCut(2, [(0, 1)])
        compiled = compile_qaoa_pattern(mc.to_qubo(), [0.3], [0.7], open_inputs=True)
        og = OpenGraph.from_pattern(compiled.pattern)
        gf = find_gflow(og)
        assert gf is not None
        assert verify_gflow(og, gf)
