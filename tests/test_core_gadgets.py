"""Gadget-level verification of Eqs. (8)-(10) (experiments E4, E5).

Every gadget is checked against its target unitary on *every* outcome
branch, over random angles, including stacked-gadget byproduct propagation
(the Eq. 11 parity bookkeeping).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.core.gadgets import WireTracker
from repro.core.verify import check_pattern_determinism, pattern_equals_unitary
from repro.linalg import (
    HADAMARD,
    PAULI_Z,
    allclose_up_to_global_phase,
    j_gate,
    kron_all,
    operator_on_qubits,
    rx,
    rz,
)


def zz_exponential(theta: float) -> np.ndarray:
    """exp(i (theta/2) Z⊗Z) — what edge_gadget(theta) implements."""
    zz = np.diag([1.0, -1.0, -1.0, 1.0])
    return expm(1j * (theta / 2.0) * zz)


class TestJGadget:
    @pytest.mark.parametrize("alpha", [0.0, 0.61, -2.2, math.pi])
    def test_implements_j(self, alpha):
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.j_gadget(0, alpha)
        p = tracker.finish()
        assert pattern_equals_unitary(p, j_gate(alpha))
        assert check_pattern_determinism(p)

    def test_rx_equals_eq9(self):
        """Eq. (9): two ancillas, input measured in {|+>,|->}, second angle
        sign-adapted by the first outcome."""
        beta = 0.83
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.rx(0, beta)
        p = tracker.finish()
        assert pattern_equals_unitary(p, rx(beta))
        # Structure: first measurement at angle 0, second at -beta with the
        # first node in its s-domain (the (-1)^m adaptivity).
        m0 = p.measurement_of(0)
        assert m0.angle == pytest.approx(0.0) and m0.plane == "XY"
        m1 = p.measurement_of(1)
        assert m1.angle == pytest.approx(-beta)
        assert m1.s_domain == frozenset({0})

    def test_rz_chain(self):
        gamma = -1.17
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.rz_chain(0, gamma)
        p = tracker.finish()
        assert pattern_equals_unitary(p, rz(gamma))

    @given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_j_composition_property(self, a, b):
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.j_gadget(0, a)
        tracker.j_gadget(0, b)
        p = tracker.finish()
        assert pattern_equals_unitary(p, j_gate(b) @ j_gate(a), atol=1e-7)


class TestHangingRZ:
    @pytest.mark.parametrize("theta", [0.0, 0.41, -1.9, math.pi])
    def test_implements_rz_minus_theta(self, theta):
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.hanging_rz_gadget(0, theta)
        p = tracker.finish()
        assert pattern_equals_unitary(p, rz(-theta))
        assert check_pattern_determinism(p)

    def test_wire_does_not_move(self):
        tracker = WireTracker.begin(1, open_inputs=True)
        node_before = tracker.wires[0].node
        tracker.hanging_rz_gadget(0, 0.7)
        assert tracker.wires[0].node == node_before

    def test_one_ancilla_one_entangler(self):
        """Section III.A: general QUBO costs one extra qubit + CZ per
        vertex per layer."""
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.hanging_rz_gadget(0, 0.7)
        p = tracker.finish()
        assert p.num_nodes() == 2
        assert len(p.entangling_edges()) == 1

    def test_pauli_angle_degenerates_to_z_basis(self):
        """At θ=0 the YZ measurement is the computational basis the paper
        quotes for the Pauli case."""
        tracker = WireTracker.begin(1, open_inputs=True)
        a = tracker.hanging_rz_gadget(0, 0.0)
        p = tracker.finish()
        m = p.measurement_of(a)
        assert m.plane == "YZ" and m.angle == pytest.approx(0.0)


class TestEdgeGadget:
    @pytest.mark.parametrize("theta", [0.0, 0.77, -2.3, math.pi / 2])
    def test_implements_zz_exponential(self, theta):
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, theta)
        p = tracker.finish()
        assert pattern_equals_unitary(p, zz_exponential(theta))
        assert check_pattern_determinism(p)

    def test_byproduct_is_zz(self):
        """Outcome 1 of the ancilla leaves Z⊗Z — the paper's mπ spiders on
        both wires (Eq. 8)."""
        theta = 0.9
        tracker = WireTracker.begin(2, open_inputs=True)
        a = tracker.edge_gadget(0, 1, theta)
        p = tracker.finish()
        from repro.mbqc.runner import pattern_to_matrix

        m0 = pattern_to_matrix(p, {a: 0})
        m1 = pattern_to_matrix(p, {a: 1})
        # The pattern corrects the byproduct, so both branches match; but
        # *without* corrections the raw maps differ by Z⊗Z:
        q = WireTracker.begin(2, open_inputs=True)
        q.edge_gadget(0, 1, theta)
        raw = q.pattern
        raw.output_nodes = [q.wires[0].node, q.wires[1].node]
        raw0 = pattern_to_matrix(raw, {a: 0})
        raw1 = pattern_to_matrix(raw, {a: 1})
        zz = kron_all([PAULI_Z, PAULI_Z])
        assert allclose_up_to_global_phase(raw1, zz @ raw0, atol=1e-8)
        assert allclose_up_to_global_phase(m0, m1, atol=1e-8)

    def test_one_ancilla_per_edge(self):
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, 0.3)
        p = tracker.finish()
        assert p.num_nodes() == 3
        assert len(p.entangling_edges()) == 2  # two CZs per edge gadget

    def test_rejects_same_wire(self):
        tracker = WireTracker.begin(1, open_inputs=True)
        with pytest.raises(ValueError):
            tracker.edge_gadget(0, 0, 0.1)

    def test_stacked_gadgets_commute(self):
        """Phase gadgets on overlapping edges — the neighborhood parity
        structure of Eq. (11)."""
        t1, t2 = 0.5, -1.1
        tracker = WireTracker.begin(3, open_inputs=True)
        tracker.edge_gadget(0, 1, t1)
        tracker.edge_gadget(1, 2, t2)
        p = tracker.finish()
        u = operator_on_qubits(zz_exponential(t1), [0, 1], 3) @ operator_on_qubits(
            zz_exponential(t2), [1, 2], 3
        )
        assert pattern_equals_unitary(p, u)
        assert check_pattern_determinism(p)


class TestByproductPropagation:
    """The Eq. (11)-(12) content: gadgets after gadgets stay deterministic
    because byproducts flow into later signal domains."""

    def test_edge_then_mixer(self):
        gamma, beta = 0.7, -0.45
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, -2.0 * gamma)
        tracker.rx(0, 2.0 * beta)
        tracker.rx(1, 2.0 * beta)
        p = tracker.finish()
        u_phase = zz_exponential(-2.0 * gamma)  # e^{-i γ ZZ}
        u_mix = kron_all([rx(2 * beta), rx(2 * beta)])
        assert pattern_equals_unitary(p, u_mix @ u_phase)
        assert check_pattern_determinism(p)

    def test_mixer_then_edge(self):
        """X byproducts entering an edge gadget flip its sign domain — the
        cross-layer n→m propagation."""
        beta, gamma = 0.3, 0.9
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.rx(0, 2 * beta)
        tracker.rx(1, 2 * beta)
        a = tracker.edge_gadget(0, 1, -2.0 * gamma)
        p = tracker.finish()
        m = p.measurement_of(a)
        # The edge ancilla's sign domain holds both wires' X byproducts.
        assert len(m.s_domain) == 2
        u = zz_exponential(-2 * gamma) @ kron_all([rx(2 * beta), rx(2 * beta)])
        assert pattern_equals_unitary(p, u)

    def test_hanging_rz_adaptivity(self):
        """Hanging gadget after a mixer: its angle must sign-flip with the
        wire's X byproduct."""
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.rx(0, 0.8)
        a = tracker.hanging_rz_gadget(0, 1.2)
        p = tracker.finish()
        m = p.measurement_of(a)
        assert m.plane == "YZ" and len(m.s_domain) == 1
        assert pattern_equals_unitary(p, rz(-1.2) @ rx(0.8))
        assert check_pattern_determinism(p)

    @given(st.floats(-2.0, 2.0), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0))
    @settings(max_examples=10, deadline=None)
    def test_random_gadget_chain_deterministic(self, a, b, c):
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, a)
        tracker.j_gadget(0, b)
        tracker.hanging_rz_gadget(1, c)
        tracker.j_gadget(1, 0.0)
        p = tracker.finish()
        assert check_pattern_determinism(p, max_branches=16, seed=0)


class TestTrackerMechanics:
    def test_closed_inputs_prepare_plus(self):
        tracker = WireTracker.begin(2)
        p = tracker.finish()
        from repro.core.verify import pattern_state_equals

        assert pattern_state_equals(p, np.full(4, 0.5))

    def test_unconditional_pauli_not_supported(self):
        tracker = WireTracker.begin(1, open_inputs=True)
        with pytest.raises(NotImplementedError):
            tracker.pauli_x(0)

    def test_finish_selects_outputs(self):
        tracker = WireTracker.begin(3, open_inputs=True)
        tracker.j_gadget(1, 0.4)
        with pytest.raises(Exception):
            # wires 0 and 2 never measured but not declared outputs
            tracker.finish(output_wires=[1])
