"""Pattern serialization round trips, plus the MBQC correlation oracle."""

import json

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import Pattern, PatternError, run_pattern
from repro.mbqc.serialize import (
    pattern_from_dict,
    pattern_from_json,
    pattern_to_dict,
    pattern_to_json,
)
from repro.problems import MaxCut


def example_pattern() -> Pattern:
    p = Pattern(input_nodes=[0], output_nodes=[2])
    p.n(1).n(2).e(0, 1).e(1, 2)
    p.m(0, "XY", -0.4)
    p.m(1, "YZ", 0.9, s_domain={0})
    p.z(2, {0}).x(2, {1}).c(2, "h")
    return p


class TestRoundTrip:
    def test_dict_round_trip(self):
        p = example_pattern()
        q = pattern_from_dict(pattern_to_dict(p))
        assert q.input_nodes == p.input_nodes
        assert q.output_nodes == p.output_nodes
        assert q.commands == p.commands

    def test_json_round_trip(self):
        p = example_pattern()
        text = pattern_to_json(p, indent=2)
        json.loads(text)  # valid JSON
        q = pattern_from_json(text)
        assert q.commands == p.commands

    def test_compiled_protocol_round_trip_executes(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        q = pattern_from_json(pattern_to_json(compiled.pattern))
        a = run_pattern(compiled.pattern, seed=1).state_array()
        b = run_pattern(q, seed=2).state_array()
        assert allclose_up_to_global_phase(a, b, atol=1e-9)

    def test_version_check(self):
        with pytest.raises(PatternError):
            pattern_from_dict({"version": 99, "input_nodes": [], "output_nodes": [], "commands": []})

    def test_unknown_op(self):
        with pytest.raises(PatternError):
            pattern_from_dict(
                {"version": 1, "input_nodes": [], "output_nodes": [],
                 "commands": [{"op": "Q", "node": 0}]}
            )

    def test_invalid_pattern_rejected_on_load(self):
        # Measuring an unprepared node fails validation at load time.
        with pytest.raises(PatternError):
            pattern_from_dict(
                {"version": 1, "input_nodes": [], "output_nodes": [],
                 "commands": [{"op": "M", "node": 7}]}
            )


class TestMBQCCorrelationOracle:
    def test_oracle_feeds_iterative_solver(self):
        """Section V / ref [61]: expectation values for iterative
        optimization obtained from executed measurement patterns."""
        from repro.qaoa.iterative import iterative_quantum_optimize, mbqc_correlation_oracle

        mc = MaxCut.ring(4)
        oracle = mbqc_correlation_oracle(p=1, shots=384, runs_per_batch=2, seed=3)
        res = iterative_quantum_optimize(mc.to_qubo().to_ising(), oracle=oracle, stop_at=2)
        assert mc.cut_value(res.bits()) == pytest.approx(4.0)

    def test_oracle_correlations_close_to_exact(self):
        from repro.qaoa.iterative import mbqc_correlation_oracle, qaoa_correlation_oracle

        ising = MaxCut.ring(4).to_qubo().to_ising()
        exact, _ = qaoa_correlation_oracle(p=1, grid_resolution=12)(ising)
        sampled, _ = mbqc_correlation_oracle(p=1, shots=3000, runs_per_batch=2, seed=4)(ising)
        for key in exact:
            assert sampled[key] == pytest.approx(exact[key], abs=0.12)
