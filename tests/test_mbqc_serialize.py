"""Pattern serialization round trips, plus the MBQC correlation oracle."""

import json

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import Pattern, PatternError, run_pattern
from repro.mbqc.serialize import (
    pattern_from_dict,
    pattern_from_json,
    pattern_to_dict,
    pattern_to_json,
)
from repro.problems import MaxCut


def example_pattern() -> Pattern:
    p = Pattern(input_nodes=[0], output_nodes=[2])
    p.n(1).n(2).e(0, 1).e(1, 2)
    p.m(0, "XY", -0.4)
    p.m(1, "YZ", 0.9, s_domain={0})
    p.z(2, {0}).x(2, {1}).c(2, "h")
    return p


class TestRoundTrip:
    def test_dict_round_trip(self):
        p = example_pattern()
        q = pattern_from_dict(pattern_to_dict(p))
        assert q.input_nodes == p.input_nodes
        assert q.output_nodes == p.output_nodes
        assert q.commands == p.commands

    def test_json_round_trip(self):
        p = example_pattern()
        text = pattern_to_json(p, indent=2)
        json.loads(text)  # valid JSON
        q = pattern_from_json(text)
        assert q.commands == p.commands

    def test_compiled_protocol_round_trip_executes(self):
        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        q = pattern_from_json(pattern_to_json(compiled.pattern))
        a = run_pattern(compiled.pattern, seed=1).state_array()
        b = run_pattern(q, seed=2).state_array()
        assert allclose_up_to_global_phase(a, b, atol=1e-9)

    def test_version_check(self):
        with pytest.raises(PatternError):
            pattern_from_dict({"version": 99, "input_nodes": [], "output_nodes": [], "commands": []})

    def test_unknown_op(self):
        with pytest.raises(PatternError):
            pattern_from_dict(
                {"version": 1, "input_nodes": [], "output_nodes": [],
                 "commands": [{"op": "Q", "node": 0}]}
            )

    def test_invalid_pattern_rejected_on_load(self):
        # Measuring an unprepared node fails validation at load time.
        with pytest.raises(PatternError):
            pattern_from_dict(
                {"version": 1, "input_nodes": [], "output_nodes": [],
                 "commands": [{"op": "M", "node": 7}]}
            )


class TestMBQCCorrelationOracle:
    def test_oracle_feeds_iterative_solver(self):
        """Section V / ref [61]: expectation values for iterative
        optimization obtained from executed measurement patterns."""
        from repro.qaoa.iterative import iterative_quantum_optimize, mbqc_correlation_oracle

        mc = MaxCut.ring(4)
        oracle = mbqc_correlation_oracle(p=1, shots=384, runs_per_batch=2, seed=3)
        res = iterative_quantum_optimize(mc.to_qubo().to_ising(), oracle=oracle, stop_at=2)
        assert mc.cut_value(res.bits()) == pytest.approx(4.0)

    def test_oracle_correlations_close_to_exact(self):
        from repro.qaoa.iterative import mbqc_correlation_oracle, qaoa_correlation_oracle

        ising = MaxCut.ring(4).to_qubo().to_ising()
        exact, _ = qaoa_correlation_oracle(p=1, grid_resolution=12)(ising)
        sampled, _ = mbqc_correlation_oracle(p=1, shots=3000, runs_per_batch=2, seed=4)(ising)
        for key in exact:
            assert sampled[key] == pytest.approx(exact[key], abs=0.12)


class TestNoiseModelRoundTrip:
    """Noise-lowered patterns (ChannelOps + flip_p) survive archival."""

    def model(self):
        from repro.mbqc.channels import Channel, ChannelNoiseModel

        return ChannelNoiseModel(
            prep=Channel.amplitude_damping(0.07),
            ent=Channel.depolarizing(0.02),
            meas_flip=0.05,
        )

    def test_channel_round_trip(self):
        from repro.mbqc.channels import Channel
        from repro.mbqc.serialize import channel_from_dict, channel_to_dict

        ch = Channel.amplitude_damping(0.3)
        back = channel_from_dict(channel_to_dict(ch))
        assert back.name == ch.name
        assert len(back.kraus) == len(ch.kraus)
        for a, b in zip(back.kraus, ch.kraus):
            assert np.allclose(a, b)
        assert back.pauli_probs == ch.pauli_probs  # both None (non-Pauli)

    def test_noise_model_json_round_trip(self):
        from repro.mbqc.serialize import (
            noise_model_from_json,
            noise_model_to_json,
        )

        model = self.model()
        text = noise_model_to_json(model, indent=2)
        json.loads(text)  # valid JSON
        back = noise_model_from_json(text)
        assert back.meas_flip == model.meas_flip
        assert back.prep.name == model.prep.name
        assert back.ent.pauli_probs == pytest.approx(model.ent.pauli_probs)

    def test_lowered_op_streams_identical(self):
        from repro.mbqc import lower_noise
        from repro.mbqc.compile import ChannelOp, MeasureOp
        from repro.mbqc.serialize import (
            noise_model_from_dict,
            noise_model_to_dict,
        )

        compiled = compile_qaoa_pattern(
            MaxCut.ring(3).to_qubo(), [0.4], [0.7]
        ).executable()
        model = self.model()
        a = lower_noise(compiled, model)
        b = lower_noise(compiled, noise_model_from_dict(noise_model_to_dict(model)))
        assert len(a.ops) == len(b.ops)
        for x, y in zip(a.ops, b.ops):
            assert type(x) is type(y)
            if isinstance(x, ChannelOp):
                assert x.slot == y.slot and x.label == y.label
                assert x.pauli_probs == y.pauli_probs
                for k1, k2 in zip(x.kraus, y.kraus):
                    assert np.allclose(k1, k2)
            elif isinstance(x, MeasureOp):
                assert x.flip_p == y.flip_p

    def test_round_tripped_model_executes_identically(self):
        from repro.mbqc import get_backend, lower_noise
        from repro.mbqc.channels import Channel, ChannelNoiseModel
        from repro.mbqc.serialize import (
            noise_model_from_json,
            noise_model_to_json,
        )

        compiled = compile_qaoa_pattern(
            MaxCut.ring(3).to_qubo(), [0.4], [0.7]
        ).executable()
        # flip-free: readout flips quadruple the exact-integration tree
        model = ChannelNoiseModel(prep=Channel.amplitude_damping(0.07))
        back = noise_model_from_json(noise_model_to_json(model))
        engine = get_backend("density")
        pa = engine.integrate(lower_noise(compiled, model)).probabilities()
        pb = engine.integrate(lower_noise(compiled, back)).probabilities()
        assert np.allclose(pa, pb, atol=1e-12)

    def test_unsupported_version_rejected(self):
        from repro.mbqc.serialize import noise_model_from_dict

        with pytest.raises(PatternError):
            noise_model_from_dict({"version": 99})

    def test_invalid_kraus_rejected_on_load(self):
        from repro.mbqc.serialize import channel_from_dict

        with pytest.raises(ValueError):
            channel_from_dict(
                {"name": "broken", "kraus": [[[[0.5, 0.0], [0.0, 0.0]],
                                              [[0.0, 0.0], [0.5, 0.0]]]]}
            )
