"""Graceful backend degradation (`repro.exec.degrade`).

Certification claims: a fallback chain skips links that statically cannot
serve (unregistered, unsupported, over the R101 byte budget) and links
that dynamically fail (MPS truncation over tolerance, runtime MemoryError
/ PatternError), each skip recorded as an R105 DegradationEvent; the
serving link's records are a pure function of (seed, link position) —
independent of how its predecessors failed; and the
``repro lint --fallback-chain`` pre-flight reports per-link rows, the
serving link, and cost-ordering violations.
"""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.exec import (
    FallbackPolicy,
    sample_with_fallback,
    select_backend_with_fallback,
    validate_fallback_chain,
)
from repro.mbqc import get_backend
from repro.mbqc.backend import _REGISTRY, register_backend
from repro.mbqc.mps_backend import MPSBackend
from repro.mbqc.pattern import PatternError
from repro.problems import MaxCut
from repro.utils.rng import ensure_rng, spawn_seeds


@pytest.fixture(scope="module")
def qaoa():
    return compile_qaoa_pattern(
        MaxCut.ring(4).to_qubo(), [0.6], [0.4]
    ).executable()


class _FailingBackend:
    """A registry stand-in that supports everything and fails at runtime."""

    def __init__(self, name, exc):
        self.name = name
        self._exc = exc

    def supports(self, compiled):
        return True

    def sample_batch(self, *a, **kw):
        raise self._exc


@pytest.fixture
def flaky():
    backend = _FailingBackend("flaky", MemoryError("worker OOM"))
    register_backend(backend)
    yield backend
    _REGISTRY.pop("flaky", None)


@pytest.fixture
def buggy():
    backend = _FailingBackend("buggy", RuntimeError("a real bug"))
    register_backend(backend)
    yield backend
    _REGISTRY.pop("buggy", None)


@pytest.fixture
def mps_tight():
    """An MPS engine whose bond cap is far too small for the QAOA
    pattern — its truncation probe reports a large error."""
    register_backend(MPSBackend(chi_max=1), name="mps-tight")
    yield "mps-tight"
    _REGISTRY.pop("mps-tight", None)


class TestPolicy:
    def test_parse_arrows(self):
        p = FallbackPolicy.parse("mps -> density -> statevector")
        assert p.chain == ("mps", "density", "statevector")

    def test_parse_commas_and_mixed_spacing(self):
        p = FallbackPolicy.parse("mps,density ,  statevector")
        assert p.chain == ("mps", "density", "statevector")
        assert p.format() == "mps -> density -> statevector"

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FallbackPolicy.parse("  ->  ")

    def test_parse_empty_link_located(self):
        """An empty link is named by position, not silently dropped —
        'a -> -> b' would otherwise parse to ('a', 'b')."""
        with pytest.raises(PatternError, match="position 2 of 3"):
            FallbackPolicy.parse("mps -> -> statevector")

    def test_parse_trailing_separator_rejected(self):
        with pytest.raises(PatternError, match="empty link"):
            FallbackPolicy.parse("mps ->")
        with pytest.raises(PatternError, match="empty link"):
            FallbackPolicy.parse("mps, density,")

    def test_parse_leading_separator_rejected(self):
        with pytest.raises(PatternError, match="position 1"):
            FallbackPolicy.parse("-> mps")

    def test_parse_mixed_separators_with_gap_rejected(self):
        with pytest.raises(PatternError, match="empty link"):
            FallbackPolicy.parse("mps, -> statevector")

    def test_parse_errors_are_pattern_errors(self):
        """The CLI maps PatternError (a ValueError) to exit code 2; the
        parse path must raise that type, not a bare string split crash."""
        for bad in ("", "   ", "a -> -> b", "a,,b", "->"):
            with pytest.raises(PatternError):
                FallbackPolicy.parse(bad)

    def test_repeated_link_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            FallbackPolicy(chain=("mps", "mps"))

    def test_probe_shots_positive(self):
        with pytest.raises(ValueError, match="probe_shots"):
            FallbackPolicy(chain=("mps",), probe_shots=0)


class TestStaticSelection:
    def test_first_link_serves_clean(self, qaoa):
        backend, report = select_backend_with_fallback(
            qaoa, FallbackPolicy(chain=("statevector",))
        )
        assert backend.name == "statevector"
        assert not report.degraded
        assert report.events == []
        assert "no fallback taken" in report.format()

    def test_unsupported_link_skipped(self, qaoa):
        # The QAOA pattern is non-Clifford; the stabilizer link is
        # skipped statically with an R105 event.
        backend, report = select_backend_with_fallback(
            qaoa, FallbackPolicy(chain=("stabilizer", "statevector"))
        )
        assert backend.name == "statevector"
        assert report.degraded
        [event] = report.events
        assert event.backend == "stabilizer"
        assert "does not support" in event.reason
        assert event.as_diagnostic().code == "R105"

    def test_unregistered_link_skipped(self, qaoa):
        backend, report = select_backend_with_fallback(
            qaoa, FallbackPolicy(chain=("no-such-engine", "statevector"))
        )
        assert backend.name == "statevector"
        assert "not registered" in report.events[0].reason

    def test_budget_link_skipped(self, qaoa):
        # mps needs 2560 B/shot on this pattern, statevector 512 B.
        policy = FallbackPolicy(
            chain=("mps", "statevector"), max_bytes=1000
        )
        backend, report = select_backend_with_fallback(qaoa, policy)
        assert backend.name == "statevector"
        assert "R101 budget" in report.events[0].reason

    def test_no_link_serves_raises_with_reasons(self, qaoa):
        policy = FallbackPolicy(
            chain=("stabilizer", "no-such-engine"),
        )
        with pytest.raises(PatternError) as err:
            select_backend_with_fallback(qaoa, policy)
        msg = str(err.value)
        assert "stabilizer: " in msg
        assert "no-such-engine: " in msg


class TestDynamicFallback:
    def test_truncation_probe_degrades(self, qaoa, mps_tight):
        policy = FallbackPolicy(
            chain=(mps_tight, "statevector"), truncation_tol=1e-6
        )
        run, report = sample_with_fallback(qaoa, 16, policy, seed=3)
        assert report.selected == "statevector"
        assert report.degraded
        [event] = report.events
        assert "truncation_error" in event.reason
        assert run.outcomes.shape[0] == 16

    def test_truncation_within_tolerance_serves(self, qaoa):
        # The default-chi MPS engine represents this pattern exactly.
        policy = FallbackPolicy(
            chain=("mps", "statevector"), truncation_tol=1e-6
        )
        run, report = sample_with_fallback(qaoa, 16, policy, seed=3)
        assert report.selected == "mps"
        assert not report.degraded

    def test_runtime_memory_error_degrades(self, qaoa, flaky):
        policy = FallbackPolicy(chain=("flaky", "statevector"))
        run, report = sample_with_fallback(qaoa, 8, policy, seed=3)
        assert report.selected == "statevector"
        assert "runtime failure: MemoryError" in report.events[0].reason

    def test_unexpected_exception_propagates(self, qaoa, buggy):
        # Degradation routes around resource failures, not around bugs.
        policy = FallbackPolicy(chain=("buggy", "statevector"))
        with pytest.raises(RuntimeError, match="a real bug"):
            sample_with_fallback(qaoa, 8, policy, seed=3)

    def test_generator_seed_rejected(self, qaoa):
        with pytest.raises(ValueError, match="Generator"):
            sample_with_fallback(
                qaoa, 8, FallbackPolicy(chain=("statevector",)),
                seed=ensure_rng(0),
            )

    def test_serving_records_are_function_of_seed_and_link(
        self, qaoa, flaky
    ):
        """The serving link draws from its own spawned stream, so its
        records do not depend on the failed links before it."""
        policy = FallbackPolicy(chain=("flaky", "statevector"))
        run, report = sample_with_fallback(qaoa, 32, policy, seed=11)
        # statevector is link 1; its sampling stream is child 2*1 + 1.
        run_seed = spawn_seeds(11, 2 * len(policy.chain))[3]
        direct = get_backend("statevector").sample_batch(
            qaoa, 32, ensure_rng(run_seed)
        )
        assert np.array_equal(run.outcomes, direct.outcomes)

    def test_exhausted_chain_raises(self, qaoa, flaky):
        policy = FallbackPolicy(chain=("flaky",))
        with pytest.raises(PatternError, match="no link"):
            sample_with_fallback(qaoa, 8, policy, seed=3)


class TestValidation:
    def test_rows_and_serving_link(self, qaoa):
        policy = FallbackPolicy.parse("statevector -> mps -> density")
        v = validate_fallback_chain(qaoa, policy)
        assert v.ok
        assert v.serving == "statevector"
        assert [link.backend for link in v.links] == [
            "statevector", "mps", "density"
        ]
        assert all(link.registered for link in v.links)
        # 512 < 2560 < 16384: the chain is cost-ordered.
        assert v.ordered_by_cost
        text = v.format(None)
        assert "serving link: 'statevector'" in text

    def test_unregistered_row(self, qaoa):
        v = validate_fallback_chain(
            qaoa, FallbackPolicy(chain=("no-such-engine", "statevector"))
        )
        assert not v.links[0].registered
        assert v.links[0].reason == "not registered"
        assert v.serving == "statevector"

    def test_budget_moves_serving_link(self, qaoa):
        policy = FallbackPolicy.parse("mps -> statevector")
        v = validate_fallback_chain(qaoa, policy, budget=1000)
        assert v.links[0].fits_budget is False
        assert "over budget" in v.links[0].reason
        assert v.serving == "statevector"

    def test_ordering_violation_flagged(self, qaoa):
        # mps (2560 B/shot) before statevector (512 B/shot): the
        # fallback would be cheaper than the preference — flagged.
        policy = FallbackPolicy.parse("mps -> statevector")
        v = validate_fallback_chain(qaoa, policy)
        assert not v.ordered_by_cost
        assert "not ordered" in v.format(None)

    def test_nothing_serves(self, qaoa):
        v = validate_fallback_chain(
            qaoa, FallbackPolicy(chain=("stabilizer",))
        )
        assert not v.ok
        assert v.serving is None
        assert "no link can serve" in v.format(None)
