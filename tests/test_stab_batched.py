"""Bit-packed batched tableau substrate: packed kernels vs the unpacked
helpers, and the batched engine vs per-shot scalar tableau replicas.

The contract under test is the structural invariant the whole batched
layout rests on: per-shot divergence (masked Paulis, forced outcomes)
touches sign bits only, so one shared packed GF(2) structure plus per-shot
packed sign words reproduces ``n_shots`` independent
:class:`~repro.stab.tableau.StabilizerState` evolutions bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stab import (
    BatchedTableau,
    StabilizerState,
    pack_bits,
    packed_g,
    packed_g2,
    packed_rows_mul,
    unpack_bits,
    unpack_shot_bits,
)
from repro.stab.tableau import _g_vec, rows_mul


class TestPacking:
    @given(
        n=st.integers(min_value=1, max_value=200),
        rows=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, n, rows, seed):
        bits = np.random.default_rng(seed).random((rows, n)) < 0.5
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (rows, max(1, -(-n // 64)))
        assert np.array_equal(unpack_bits(packed, n), bits)

    def test_word_boundaries(self):
        for n in (63, 64, 65, 127, 128, 129):
            bits = np.zeros(n, dtype=bool)
            bits[n - 1] = True
            assert np.array_equal(unpack_bits(pack_bits(bits), n), bits)


class TestPackedKernels:
    @given(
        n=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_g_matches_unpacked(self, n, seed):
        """The packed bit-plane ``g`` sum equals the scalar ``_g_vec``."""
        rng = np.random.default_rng(seed)
        x1, z1, x2, z2 = (rng.random((4, n)) < 0.5)
        g_ref = _g_vec(x1, z1, x2, z2)
        g_packed = int(packed_g(pack_bits(x1), pack_bits(z1), pack_bits(x2), pack_bits(z2)))
        assert g_packed == g_ref
        assert int(
            packed_g2(pack_bits(x1), pack_bits(z1), pack_bits(x2), pack_bits(z2))
        ) == (g_ref % 4) >> 1

    @given(
        n=st.integers(min_value=1, max_value=130),
        n_shots=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_rows_mul_matches_rows_mul(self, n, n_shots, seed):
        """The batched phase-tracked row product agrees with the scalar
        ``rows_mul`` for every shot's sign assignment — the mod-4 CHP
        arithmetic really does collapse to XORs."""
        rng = np.random.default_rng(seed)
        x = rng.random((3, n)) < 0.5
        z = rng.random((3, n)) < 0.5
        r = rng.random((3, n_shots)) < 0.5
        xp, zp, rp = pack_bits(x), pack_bits(z), pack_bits(r)
        packed_rows_mul(xp, zp, rp, 0, 1)
        assert np.array_equal(unpack_bits(xp, n)[1:], x[1:])  # src untouched
        for j in range(n_shots):
            xs, zs = x.copy(), z.copy()
            rs = r[:, j].astype(np.int8).copy()
            rows_mul(xs, zs, rs, 0, 1)
            assert np.array_equal(unpack_bits(xp[0], n), xs[0])
            assert np.array_equal(unpack_bits(zp[0], n), zs[0])
            assert int(unpack_bits(rp[0], n_shots)[j]) == int(rs[0] % 2)


def _random_program(rng, n, n_steps):
    """A random mixed program: unconditional Cliffords, per-shot masked
    Paulis, and Pauli measurements with shared outcome draws."""
    steps = []
    for _ in range(n_steps):
        kind = int(rng.integers(4))
        if kind == 0:
            steps.append(("gate", str(rng.choice(["h", "s", "sdg", "x", "y", "z"])),
                          int(rng.integers(n))))
        elif kind == 1 and n >= 2:
            a, b = rng.choice(n, size=2, replace=False)
            steps.append(("gate2", str(rng.choice(["cnot", "cz"])), int(a), int(b)))
        elif kind == 2:
            steps.append(("masked", str(rng.choice(["x", "y", "z"])),
                          int(rng.integers(n))))
        else:
            steps.append(("measure", str(rng.choice(["X", "Y", "Z"])),
                          int(rng.integers(n))))
    return steps


class TestBatchedVsScalarReplicas:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_programs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        n_shots = int(rng.integers(1, 70))
        bt = BatchedTableau(n, n_shots)
        reps = [StabilizerState(n) for _ in range(n_shots)]
        for step in _random_program(rng, n, 25):
            if step[0] == "gate":
                bt.apply_named(step[1], (step[2],))
                for rep in reps:
                    rep.apply_named(step[1], (step[2],))
            elif step[0] == "gate2":
                bt.apply_named(step[1], (step[2], step[3]))
                for rep in reps:
                    rep.apply_named(step[1], (step[2], step[3]))
            elif step[0] == "masked":
                fire = rng.random(n_shots) < 0.5
                bt.apply_pauli_masked(step[1], step[2], pack_bits(fire))
                for j, rep in enumerate(reps):
                    if fire[j]:
                        rep.apply_named(step[1], (step[2],))
            else:
                _, label, q = step
                bits = rng.random(n_shots) < 0.5
                out_words, random_ = bt.measure_pauli(
                    q, label, outcome_provider=lambda: pack_bits(bits)
                )
                outs = unpack_shot_bits(out_words, n_shots)
                for j, rep in enumerate(reps):
                    o, prob = rep.measure_pauli_info(
                        q, label, force=int(bits[j]) if random_ else None
                    )
                    assert prob == (0.5 if random_ else 1.0)
                    assert o == outs[j]
        for j, rep in enumerate(reps):
            shot = bt.to_stabilizer_state(j)
            assert np.array_equal(shot.x, rep.x)
            assert np.array_equal(shot.z, rep.z)
            assert np.array_equal(shot.r % 2, rep.r % 2)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_extraction_matches_scalar(self, seed):
        """One shared Gaussian elimination reproduces every shot's
        ``extract_substate`` — generators and per-shot signs."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        n_shots = int(rng.integers(1, 70))
        bt = BatchedTableau(n, n_shots)
        reps = [StabilizerState(n) for _ in range(n_shots)]
        for q in range(n):
            label = str(rng.choice(["plus", "minus", "zero", "one"]))
            bt.prep_column(q, label)
            for rep in reps:
                if label in ("plus", "minus"):
                    rep.h(q)
                    if label == "minus":
                        rep.z_gate(q)
                elif label == "one":
                    rep.x_gate(q)
        for _ in range(15):
            if rng.random() < 0.6 and n >= 2:
                a, b = rng.choice(n, size=2, replace=False)
                bt.cz(int(a), int(b))
                for rep in reps:
                    rep.cz(int(a), int(b))
            else:
                g = str(rng.choice(["x", "y", "z"]))
                q = int(rng.integers(n))
                fire = rng.random(n_shots) < 0.5
                bt.apply_pauli_masked(g, q, pack_bits(fire))
                for j, rep in enumerate(reps):
                    if fire[j]:
                        rep.apply_named(g, (q,))
        keep = sorted(
            int(c) for c in rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False)
        )
        for q in range(n):
            if q in keep:
                continue
            bits = rng.random(n_shots) < 0.5
            _, random_ = bt.measure_pauli(
                q, "Z", outcome_provider=lambda: pack_bits(bits)
            )
            for j, rep in enumerate(reps):
                rep.measure_z(q, force=int(bits[j]) if random_ else None)
        xb, zb, rb = bt.extract_substate(keep)
        assert rb.shape == (n_shots, len(keep))
        for j, rep in enumerate(reps):
            xs, zs, rs = rep.extract_substate(keep)
            assert np.array_equal(xb, xs)
            assert np.array_equal(zb, zs)
            assert np.array_equal(rb[j], rs)


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="qubit"):
            BatchedTableau(0, 4)
        with pytest.raises(ValueError, match="shot"):
            BatchedTableau(3, 0)

    def test_rejects_out_of_range(self):
        bt = BatchedTableau(3, 4)
        with pytest.raises(ValueError, match="range"):
            bt.h(3)
        with pytest.raises(ValueError, match="range"):
            bt.apply_pauli_masked("x", -1, pack_bits(np.ones(4, dtype=bool)))

    def test_random_measure_needs_provider(self):
        bt = BatchedTableau(1, 4)
        bt.h(0)
        with pytest.raises(ValueError, match="provider"):
            bt.measure_z(0)

    def test_extract_rejects_entangled_split(self):
        bt = BatchedTableau(2, 3)
        bt.h(0)
        bt.h(1)
        bt.cz(0, 1)
        with pytest.raises(ValueError, match="factor"):
            bt.extract_substate([0])

    def test_prep_column_rejects_unknown_label(self):
        with pytest.raises(ValueError, match="preparation"):
            BatchedTableau(2, 2).prep_column(0, "bell")
