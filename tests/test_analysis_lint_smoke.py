"""`repro lint` smoke over every pattern the examples and E19–E24
benchmarks build: zero error-severity diagnostics anywhere (the CI gate)."""

import pytest

from repro.analysis import analyze
from repro.cli import main
from repro.core import compile_qaoa_pattern
from repro.mbqc import lower_noise
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import compile_pattern
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut, MaximumIndependentSet, NumberPartitioning
from repro.utils import cycle_graph, grid_graph


def e19_cases():
    # bench_e19_batched_runner: open-input unitary patterns
    for name, qubo in [
        ("ring-4", MaxCut.ring(4).to_qubo()),
        ("ring-5", MaxCut.ring(5).to_qubo()),
        ("3reg-6", MaxCut.random_regular(3, 6, seed=3).to_qubo()),
    ]:
        yield f"e19-{name}", compile_qaoa_pattern(
            qubo, [0.37], [0.52], open_inputs=True
        ).executable()
    yield "e19-triangle", compile_qaoa_pattern(
        MaxCut(3, [(0, 1), (1, 2), (0, 2)]).to_qubo(), [0.41], [0.23]
    ).executable()


def e20_e22_cases():
    # Clifford graph-state patterns (γ = β = 0) for the tableau engines
    for n in (4, 6, 8):
        yield f"e20-ring-{n}", compile_qaoa_pattern(
            MaxCut.ring(n).to_qubo(), [0.0], [0.0]
        ).executable()


def e21_cases():
    # density engine: probability-bag noise lowered to channels
    compiled = compile_qaoa_pattern(
        MaxCut.ring(3).to_qubo(), [0.4], [0.7]
    ).executable()
    yield "e21-ring-3-noisy", lower_noise(
        compiled, NoiseModel(p_prep=0.01, p_ent=0.01)
    )


def e23_cases():
    # batched density: explicit channel model incl. readout flips
    compiled = compile_qaoa_pattern(
        MaxCut.ring(3).to_qubo(), [0.4], [0.7]
    ).executable()
    model = ChannelNoiseModel(
        prep=Channel.depolarizing(0.02),
        ent=Channel.dephasing(0.01),
        meas_flip=0.03,
    )
    yield "e23-ring-3-channels", lower_noise(compiled, model)
    yield "e23-amp-damp", lower_noise(
        compiled, ChannelNoiseModel(prep=Channel.amplitude_damping(0.06))
    )


def e24_cases():
    # frontier exact integration: the bench_e24 gadget-ring family, whose
    # merged branch bound collapses to 2 while the raw leaf count is 2^m
    from repro.mbqc import Pattern

    m = 8
    p = Pattern(input_nodes=[0], output_nodes=[m])
    p.n(1).e(0, 1)
    for i in range(1, m):
        p.n(i + 1).e(i, i + 1)
        p.m(i, "XY", -0.3 * i).x(i + 1, {i})
    p.e(0, m)
    p.m(0, "XY", 0.4).x(m, {0})
    model = ChannelNoiseModel(
        prep=Channel.amplitude_damping(0.05), ent=Channel.dephasing(0.02)
    )
    yield "e24-gadget-8", lower_noise(compile_pattern(p), model)


def e25_cases():
    # MPS engine: the bench_e25 bounded-interaction-width family — a ring
    # past dense reach and a pure line (width 0), noiseless and with the
    # Pauli-mixture noise the fault stream lowers
    yield "e25-ring-20", compile_qaoa_pattern(
        MaxCut.ring(20).to_qubo(), [0.37], [0.81]
    ).executable()
    line = MaxCut(12, [(i, i + 1) for i in range(11)])
    yield "e25-line-12", compile_qaoa_pattern(
        line.to_qubo(), [0.42], [0.63]
    ).executable()
    model = ChannelNoiseModel(
        prep=Channel.depolarizing(0.03), meas_flip=0.02
    )
    yield "e25-ring-8-noisy", lower_noise(
        compile_qaoa_pattern(MaxCut.ring(8).to_qubo(), [0.4], [0.7])
        .executable(),
        model,
    )


def example_cases():
    # quickstart: ring-5 state preparation
    yield "ex-quickstart", compile_qaoa_pattern(
        MaxCut.ring(5).to_qubo(), [0.35], [0.6]
    ).executable()
    # depth_study: 3-regular-8, p = 2
    yield "ex-depth-study", compile_qaoa_pattern(
        MaxCut.random_regular(3, 8, seed=21).to_qubo(), [0.3, 0.2], [0.6, 0.4]
    ).executable()
    # resource_planning: grid and complete graphs
    n_grid, e_grid = grid_graph(3, 3)
    yield "ex-grid-3x3", compile_qaoa_pattern(
        MaxCut(n_grid, e_grid).to_qubo(), [0.4], [0.7]
    ).executable()
    yield "ex-complete-5", compile_qaoa_pattern(
        MaxCut.complete(5).to_qubo(), [0.4], [0.7]
    ).executable()
    # mis_hard_constraints: penalty QUBO
    yield "ex-mis-ring-5", compile_qaoa_pattern(
        MaximumIndependentSet(*cycle_graph(5)).to_penalty_qubo(), [0.4], [0.7]
    ).executable()
    yield "ex-partition-4", compile_qaoa_pattern(
        NumberPartitioning.random(4, seed=0).to_qubo(), [0.4], [0.7]
    ).executable()
    # graph-first scheduling variant
    yield "ex-graph-first", compile_qaoa_pattern(
        MaxCut.ring(4).to_qubo(), [0.4], [0.7], schedule="graph-first"
    ).executable()


ALL_CASES = [
    *e19_cases(), *e20_e22_cases(), *e21_cases(), *e23_cases(),
    *e24_cases(), *e25_cases(), *example_cases(),
]


@pytest.mark.parametrize(
    "compiled", [c for _, c in ALL_CASES], ids=[n for n, _ in ALL_CASES]
)
def test_no_error_diagnostics(compiled):
    report = analyze(compiled)
    assert report.ok, report.format()
    assert not report.warnings, report.format()


def test_verify_ir_accepts_every_case():
    # the compile-time gate agrees with the standalone analyzer
    pattern = compile_qaoa_pattern(
        MaxCut.ring(4).to_qubo(), [0.4], [0.7]
    ).pattern
    compile_pattern(pattern, verify_ir=True)


class TestCliGate:
    """The exact invocations the CI lint job runs."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["lint", "ring:6", "--gamma", "0.4", "--beta", "0.7"],
            ["lint", "ring:8", "--gamma", "0.0", "--beta", "0.0"],
            ["lint", "regular:3,8", "--gamma", "0.37", "--beta", "0.52"],
            ["lint", "ring:4", "--gamma", "0.4", "--beta", "0.7",
             "--noise", "0.05"],
            ["lint", "mis-ring:5", "--gamma", "0.4", "--beta", "0.7"],
        ],
    )
    def test_ci_invocations_green(self, argv, capsys):
        assert main(argv) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_contracts_over_repo_src(self, capsys):
        import pathlib

        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        assert main(["lint", "--contracts", src]) == 0
        assert "contracts clean" in capsys.readouterr().out
