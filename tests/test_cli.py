"""CLI tests (argument parsing, each subcommand end to end)."""

import pytest

from repro.cli import main, parse_problem
from repro.problems import MaxCut


class TestParseProblem:
    def test_ring(self):
        name, qubo, mc = parse_problem("ring:5")
        assert name == "maxcut-ring-5"
        assert qubo.num_variables == 5
        assert isinstance(mc, MaxCut)

    def test_regular_with_seed(self):
        name, qubo, _ = parse_problem("regular:3,8,7")
        assert qubo.num_variables == 8

    def test_complete(self):
        _, qubo, _ = parse_problem("complete:4")
        assert len(qubo.quadratic_terms()) == 6

    def test_mis_ring(self):
        name, qubo, mis = parse_problem("mis-ring:5")
        assert name == "mis-ring-5"
        assert qubo.num_variables == 5

    def test_partition(self):
        _, qubo, _ = parse_problem("partition:5,3")
        assert qubo.num_variables == 5

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            parse_problem("ring")
        with pytest.raises(ValueError):
            parse_problem("ring:abc")
        with pytest.raises(ValueError):
            parse_problem("torus:5")


class TestCommands:
    def test_compile(self, capsys):
        assert main(["compile", "ring:4", "--gamma", "0.4", "--beta", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "graph-state nodes" in out
        assert "peak live qubits" in out

    def test_compile_graph_first(self, capsys):
        rc = main(["compile", "ring:4", "--gamma", "0.4", "--beta", "0.7",
                   "--schedule", "graph-first"])
        assert rc == 0
        assert "graph-first" in capsys.readouterr().out

    def test_compile_with_grid_search(self, capsys):
        assert main(["compile", "ring:4"]) == 0
        out = capsys.readouterr().out
        assert "gammas" in out

    def test_run(self, capsys):
        rc = main(["run", "ring:4", "--gamma", "0.4", "--beta", "0.7",
                   "--shots", "64", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best cut" in out

    def test_resources(self, capsys):
        assert main(["resources", "ring:6", "--depths", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "NQ_bound" in out

    def test_solve(self, capsys):
        assert main(["solve", "ring:6", "--stop-at", "2"]) == 0
        out = capsys.readouterr().out
        assert "cut          6" in out

    def test_run_with_backend(self, capsys):
        rc = main(["run", "ring:4", "--gamma", "0.4", "--beta", "0.7",
                   "--shots", "32", "--backend", "statevector"])
        assert rc == 0
        assert "backend        statevector" in capsys.readouterr().out

    def test_run_stabilizer_on_non_clifford_errors(self, capsys):
        rc = main(["run", "ring:4", "--gamma", "0.4", "--beta", "0.7",
                   "--backend", "stabilizer"])
        assert rc == 2
        assert "not Clifford" in capsys.readouterr().err

    def test_verify_dense(self, capsys):
        rc = main(["verify", "ring:4", "--gamma", "0.3", "--beta", "0.5",
                   "--max-branches", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "deterministic  yes" in out
        assert "backend        statevector" in out

    def test_verify_clifford_angles_use_stabilizer(self, capsys):
        rc = main(["verify", "ring:18", "--gamma", "0", "--beta", "0",
                   "--max-branches", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clifford       yes" in out
        assert "backend        stabilizer" in out
        assert "deterministic  yes" in out

    def test_verify_explicit_stabilizer_small(self, capsys):
        rc = main(["verify", "ring:4", "--gamma", "0", "--beta", "0",
                   "--max-branches", "8", "--backend", "stabilizer"])
        assert rc == 0
        assert "backend        stabilizer" in capsys.readouterr().out

    def test_run_density_backend(self, capsys):
        rc = main(["run", "ring:3", "--gamma", "0.4", "--beta", "0.7",
                   "--shots", "32", "--backend", "density"])
        assert rc == 0
        assert "backend        density" in capsys.readouterr().out

    def test_run_noisy_sampling(self, capsys):
        rc = main(["run", "ring:3", "--gamma", "0.4", "--beta", "0.7",
                   "--shots", "32", "--noise", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "noise          uniform rate 0.02" in out

    def test_run_exact_integration(self, capsys):
        rc = main(["run", "ring:3", "--gamma", "0.4", "--beta", "0.7",
                   "--exact"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact channel integration" in out
        assert "outcome branches integrated" in out
        assert "(exact, no sampling)" in out

    def test_verify_density_backend(self, capsys):
        rc = main(["verify", "ring:3", "--gamma", "0.4", "--beta", "0.7",
                   "--max-branches", "8", "--backend", "density"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend        density" in out
        assert "deterministic  yes" in out

    def test_param_length_error(self, capsys):
        rc = main(["compile", "ring:4", "--p", "2", "--gamma", "0.1",
                   "--beta", "0.2"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_problem_error(self, capsys):
        assert main(["compile", "nope:3"]) == 2


class TestLintCommand:
    def test_lint_problem(self, capsys):
        rc = main(["lint", "ring:4", "--gamma", "0.4", "--beta", "0.7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no diagnostics" in out
        assert "peak live" in out
        assert "statevector" in out

    def test_lint_with_noise(self, capsys):
        rc = main(["lint", "ring:3", "--gamma", "0.4", "--beta", "0.7",
                   "--noise", "0.05"])
        assert rc == 0
        assert "channels" in capsys.readouterr().out

    def test_lint_budget_changes_chunk_row(self, capsys):
        assert main(["lint", "ring:4", "--gamma", "0.4", "--beta", "0.7",
                     "--budget", str(1 << 20)]) == 0
        assert "chunk @1.0 MiB" in capsys.readouterr().out

    def test_lint_pattern_json(self, tmp_path, capsys):
        from repro.core import compile_qaoa_pattern
        from repro.mbqc.serialize import pattern_to_json

        compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
        f = tmp_path / "pattern.json"
        f.write_text(pattern_to_json(compiled.pattern))
        assert main(["lint", "--pattern-json", str(f)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_lint_contracts_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("from repro.utils.rng import ensure_rng\n")
        assert main(["lint", "--contracts", str(tmp_path)]) == 0
        assert "contracts clean" in capsys.readouterr().out

    def test_lint_contracts_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(3)\n")
        assert main(["lint", "--contracts", str(tmp_path)]) == 1
        assert "C002" in capsys.readouterr().out

    def test_lint_nothing_to_do_errors(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err


class TestExecCommands:
    """The robustness layer's CLI surface: checkpointed jobs + resume,
    supervised exact integration, fallback chains, and the chain
    pre-flight under lint."""

    JOB = ["run", "ring:4", "--gamma", "0.6", "--beta", "0.4",
           "--shots", "48", "--block-shots", "16", "--seed", "5"]

    def test_job_then_resume_same_digest(self, tmp_path, capsys):
        job = str(tmp_path / "job")
        assert main(self.JOB + ["--job-dir", job]) == 0
        first = capsys.readouterr().out
        assert "checkpointed job" in first
        assert "blocks run     3" in first
        digest = [ln for ln in first.splitlines()
                  if ln.startswith("records sha256")][0]
        # Resume needs only the job directory; the manifest replays the
        # original arguments and every block is reused.
        assert main(["run", "--resume", job]) == 0
        second = capsys.readouterr().out
        assert "blocks reused  3" in second
        assert "blocks run     0" in second
        assert digest in second

    def test_job_dir_requires_problem(self, tmp_path, capsys):
        assert main(["run", "--job-dir", str(tmp_path / "j")]) == 2
        assert "needs a problem spec" in capsys.readouterr().err

    def test_job_dir_rejects_exact(self, tmp_path, capsys):
        rc = main(self.JOB + ["--job-dir", str(tmp_path / "j"), "--exact"])
        assert rc == 2
        assert "nothing to checkpoint" in capsys.readouterr().err

    def test_resume_without_manifest_errors(self, tmp_path, capsys):
        assert main(["run", "--resume", str(tmp_path)]) == 2
        assert "no checkpoint manifest" in capsys.readouterr().err

    def test_exact_sharded_prints_supervision(self, capsys):
        rc = main(["run", "ring:4", "--gamma", "0.6", "--beta", "0.4",
                   "--exact", "--noise", "0.02", "--shards", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "supervision    2 shards" in out

    def test_fallback_chain_degrades_and_reports(self, capsys):
        # ring:4 at these angles is non-Clifford: the stabilizer link is
        # routed past with a printed R105 diagnostic.
        rc = main(["run", "ring:4", "--gamma", "0.6", "--beta", "0.4",
                   "--shots", "32", "--seed", "5",
                   "--fallback", "stabilizer->statevector"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend        statevector (fallback chain " in out
        assert "stabilizer -> statevector" in out
        assert "R105" in out
        assert "best cost" in out

    def test_lint_fallback_chain_preflight(self, capsys):
        rc = main(["lint", "ring:4", "--gamma", "0.6", "--beta", "0.4",
                   "--fallback-chain", "statevector->mps->density"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fallback chain: statevector -> mps -> density" in out
        assert "serving link: 'statevector'" in out

    def test_lint_fallback_chain_unserviceable_fails(self, capsys):
        rc = main(["lint", "ring:4", "--gamma", "0.6", "--beta", "0.4",
                   "--fallback-chain", "stabilizer"])
        assert rc == 1
        assert "no link can serve" in capsys.readouterr().out

    def test_lint_fallback_chain_needs_pattern(self, capsys):
        assert main(["lint", "--fallback-chain", "mps->density"]) == 2
        assert "pre-flights" in capsys.readouterr().err
