"""Section IV verification (experiment E9): the MIS partial mixer and the
complete MBQC MIS-QAOA pipeline."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.mis import (
    mis_mixer_circuit,
    mis_qaoa_circuit,
    mis_qaoa_pattern,
    multi_z_rotation,
    phase_on_all_ones,
)
from repro.core import circuit_to_pattern, pattern_equals_unitary
from repro.linalg import PAULI_X, allclose_up_to_global_phase, controlled, operator_on_qubits
from repro.problems import MaximumIndependentSet
from repro.sim import Circuit


def mis_mixer_dense(num_qubits, vertex, neighbors, beta):
    u = expm(1j * beta * PAULI_X)
    nbrs = sorted(neighbors)
    k = len(nbrs)
    if k == 0:
        return operator_on_qubits(u, [vertex], num_qubits)
    core = controlled(u, k)  # controls in low slots, target top
    full = operator_on_qubits(core, nbrs + [vertex], num_qubits)
    flip = np.eye(1 << num_qubits)
    for w in nbrs:
        flip = operator_on_qubits(PAULI_X, [w], num_qubits) @ flip
    return flip @ full @ flip


class TestPhasePolynomials:
    def test_multi_z_rotation(self):
        theta = 0.63
        c = Circuit(3)
        multi_z_rotation(c, [0, 2], theta)
        zz = operator_on_qubits(np.diag([1, -1, -1, 1.0]), [0, 2], 3)
        expect = expm(1j * theta * zz)
        assert allclose_up_to_global_phase(c.unitary(), expect)

    def test_multi_z_single_qubit(self):
        c = Circuit(1)
        multi_z_rotation(c, [0], 0.4)
        expect = expm(1j * 0.4 * np.diag([1.0, -1.0]))
        assert allclose_up_to_global_phase(c.unitary(), expect)

    def test_multi_z_empty(self):
        with pytest.raises(ValueError):
            multi_z_rotation(Circuit(1), [], 0.1)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_phase_on_all_ones(self, k):
        phi = 0.87
        c = Circuit(k)
        phase_on_all_ones(c, list(range(k)), phi)
        expect = np.eye(1 << k, dtype=complex)
        expect[-1, -1] = np.exp(1j * phi)
        assert allclose_up_to_global_phase(c.unitary(), expect)

    def test_phase_duplicate_qubits(self):
        with pytest.raises(ValueError):
            phase_on_all_ones(Circuit(2), [0, 0], 0.1)


class TestMixerCircuit:
    @pytest.mark.parametrize("deg", [0, 1, 2, 3])
    def test_matches_reference(self, deg):
        beta = 0.59
        n = deg + 1
        vertex = deg  # neighbors 0..deg-1
        c = mis_mixer_circuit(n, vertex, list(range(deg)), beta)
        expect = mis_mixer_dense(n, vertex, list(range(deg)), beta)
        assert allclose_up_to_global_phase(c.unitary(), expect)

    def test_rejects_self_neighbor(self):
        with pytest.raises(ValueError):
            mis_mixer_circuit(2, 0, [0], 0.3)

    def test_preserves_independent_subspace(self):
        """The partial mixer never creates an edge violation."""
        mis = MaximumIndependentSet(3, [(0, 1), (1, 2)])
        mask = mis.feasibility_mask()
        for v in range(3):
            c = mis_mixer_circuit(3, v, mis.neighborhood(v), 0.77)
            u = c.unitary()
            # Feasible block maps to feasible block.
            assert np.allclose(u[~mask][:, mask], 0, atol=1e-9)

    def test_mixer_as_pattern(self):
        """Section IV completed: the partial mixer as a measurement
        pattern."""
        beta = 0.45
        c = mis_mixer_circuit(2, 1, [0], beta)
        p = circuit_to_pattern(c)
        expect = mis_mixer_dense(2, 1, [0], beta)
        assert pattern_equals_unitary(p, expect, max_branches=24, seed=0)


class TestMISQAOAPipeline:
    def test_circuit_feasibility(self):
        mis = MaximumIndependentSet(3, [(0, 1), (1, 2)])
        warm = [1, 0, 1]
        c = mis_qaoa_circuit(mis, [0.4], [0.8], warm_start=warm)
        psi = c.run().to_array()
        mask = mis.feasibility_mask()
        assert float(np.sum(np.abs(psi[~mask]) ** 2)) < 1e-12

    def test_circuit_matches_fast_simulator(self):
        from repro.qaoa import qaoa_state_constrained_mis
        from repro.qaoa.simulator import basis_state

        mis = MaximumIndependentSet(3, [(0, 1), (1, 2)])
        warm = [0, 1, 0]
        gammas, betas = [0.7], [0.35]
        circ_psi = mis_qaoa_circuit(mis, gammas, betas, warm_start=warm).run().to_array()
        fast_psi = qaoa_state_constrained_mis(mis, gammas, betas, basis_state(warm))
        assert allclose_up_to_global_phase(circ_psi, fast_psi, atol=1e-9)

    def test_warm_start_validation(self):
        mis = MaximumIndependentSet(2, [(0, 1)])
        with pytest.raises(ValueError):
            mis_qaoa_circuit(mis, [0.1], [0.1], warm_start=[1, 1])
        with pytest.raises(ValueError):
            mis_qaoa_circuit(mis, [0.1], [0.1], warm_start=[1])
        with pytest.raises(ValueError):
            mis_qaoa_circuit(mis, [0.1, 0.2], [0.1])

    def test_full_pattern_prepares_feasible_state(self):
        """The complete MBQC MIS-QAOA: every sampled branch of the pattern
        yields a state supported on independent sets only."""
        mis = MaximumIndependentSet(2, [(0, 1)])
        warm = [1, 0]
        pattern = mis_qaoa_pattern(mis, [0.6], [0.4], warm_start=warm)
        target = mis_qaoa_circuit(mis, [0.6], [0.4], warm_start=warm).run().to_array()
        from repro.core.verify import pattern_state_equals

        assert pattern_state_equals(pattern, target, max_branches=24, seed=4)
