"""Weighted instances and problem-family sweeps through the full compiler —
the 'arbitrary QUBO' breadth claim exercised beyond the unit tests."""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern, pattern_state_equals
from repro.core.resources import estimate_resources
from repro.problems import MaxCut, NumberPartitioning, QUBO
from repro.qaoa import qaoa_state
from repro.utils import grid_graph, random_weighted_graph


class TestWeightedMaxCut:
    def test_weighted_edges_enter_gadget_angles(self):
        mc = MaxCut(2, [(0, 1)], weights={(0, 1): 2.5})
        gamma, beta = 0.3, 0.4
        compiled = compile_qaoa_pattern(mc.to_qubo(), [gamma], [beta])
        # Edge gadget YZ angle = -2γJ with J = -w/2... resolved via Ising:
        j = compiled.ising.couplings[(0, 1)]
        anc = [n for n, r in compiled.roles.items() if r[0] == "edge-ancilla"][0]
        m = compiled.pattern.measurement_of(anc)
        assert m.angle == pytest.approx(-2.0 * gamma * j)

    def test_weighted_state_preparation(self):
        mc = MaxCut(3, [(0, 1), (1, 2)], weights={(0, 1): 1.7, (1, 2): -0.6})
        gammas, betas = [0.42], [0.58]
        compiled = compile_qaoa_pattern(mc.to_qubo(), gammas, betas)
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(compiled.pattern, target, max_branches=24, seed=0)

    def test_random_weighted_graph_qubo(self):
        n, edges, weights = random_weighted_graph(3, 0.9, seed=4)
        if not edges:
            pytest.skip("empty random graph")
        mc = MaxCut(n, edges, weights=weights)
        gammas, betas = [0.31], [-0.77]
        compiled = compile_qaoa_pattern(mc.to_qubo(), gammas, betas)
        target = qaoa_state(mc.to_qubo().to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(compiled.pattern, target, max_branches=24, seed=1)

    def test_negative_weights_change_optimum(self):
        mc = MaxCut(3, [(0, 1), (1, 2)], weights={(0, 1): 1.0, (1, 2): -2.0})
        # Best cut must avoid cutting the negative edge.
        assert mc.max_cut_value() == pytest.approx(1.0)


class TestProblemFamilySweep:
    @pytest.mark.parametrize(
        "name,qubo",
        [
            ("grid2x2", MaxCut(*grid_graph(2, 2)).to_qubo()),
            ("partition3", NumberPartitioning([2.0, 3.0, 4.0]).to_qubo()),
            (
                "dense-random",
                QUBO(np.triu(np.random.default_rng(3).normal(size=(3, 3)))),
            ),
        ],
    )
    def test_family_compiles_and_matches(self, name, qubo):
        gammas, betas = [0.37], [0.52]
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)
        assert pattern_state_equals(
            compiled.pattern, target, max_branches=16, seed=2
        ), name

    def test_resource_report_consistency_across_families(self):
        for qubo in [
            MaxCut(*grid_graph(2, 3)).to_qubo(),
            NumberPartitioning.random(5, seed=2).to_qubo(),
        ]:
            rep = estimate_resources(qubo, p=2)
            assert rep.total_nodes - rep.num_vertices == rep.bound_ancilla_qubits
            assert rep.measured_nodes == rep.total_nodes - rep.num_vertices

    def test_partition_constant_tracked(self):
        """Ising offsets survive the pipeline: the reported cost of the
        sampled solution equals the true squared difference."""
        npart = NumberPartitioning([3.0, 1.0, 2.0])
        qubo = npart.to_qubo()
        val, arg = qubo.brute_force_minimum()
        from repro.utils import int_to_bitstring

        bits = int_to_bitstring(arg, 3)
        assert val == pytest.approx(npart.difference(bits) ** 2)
        assert val == pytest.approx(0.0)
