"""Static IR verifier: seeded corruptions are caught, valid IR is clean."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CODES, Diagnostic, Severity, analyze, verify_compiled
from repro.core import compile_qaoa_pattern
from repro.mbqc import Pattern, PatternError, lower_noise
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import (
    ChannelOp,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    compile_pattern,
)
from repro.problems import MaxCut, MaximumIndependentSet, NumberPartitioning
from repro.utils import cycle_graph


def ring_compiled(n=4, open_inputs=False):
    qubo = MaxCut.ring(n).to_qubo()
    return compile_qaoa_pattern(
        qubo, [0.37], [0.52], open_inputs=open_inputs
    ).executable()


def noisy_compiled(n=3):
    model = ChannelNoiseModel(
        prep=Channel.depolarizing(0.02),
        ent=Channel.dephasing(0.01),
        meas_flip=0.05,
    )
    return lower_noise(ring_compiled(n), model)


def replace_op(compiled, index, **changes):
    ops = list(compiled.ops)
    ops[index] = dataclasses.replace(ops[index], **changes)
    return dataclasses.replace(compiled, ops=tuple(ops))


def codes_of(diags):
    return {d.code for d in diags}


def first_index(compiled, tp):
    return next(i for i, op in enumerate(compiled.ops) if type(op) is tp)


def last_index(compiled, tp):
    return max(i for i, op in enumerate(compiled.ops) if type(op) is tp)


class TestSeededCorruptions:
    def test_use_after_discard_measure_slot(self):
        c = ring_compiled()
        i = last_index(c, MeasureOp)
        bad = replace_op(c, i, slot=99)
        assert "R001" in codes_of(verify_compiled(bad))

    def test_use_after_discard_entangler(self):
        c = ring_compiled()
        i = last_index(c, EntangleOp)
        bad = replace_op(c, i, slots=(0, 98))
        assert "R001" in codes_of(verify_compiled(bad))

    def test_self_entangler(self):
        c = ring_compiled()
        i = first_index(c, EntangleOp)
        bad = replace_op(c, i, slots=(0, 0))
        assert "R003" in codes_of(verify_compiled(bad))

    def test_dangling_signal(self):
        c = ring_compiled()
        i = last_index(c, MeasureOp)
        bad = replace_op(c, i, s_domain=(9999,))
        assert "R010" in codes_of(verify_compiled(bad))

    def test_dangling_correction_domain(self):
        c = ring_compiled()
        i = last_index(c, ConditionalOp)
        bad = replace_op(c, i, domain=(12345,))
        assert "R010" in codes_of(verify_compiled(bad))

    def test_dead_correction_warns(self):
        c = ring_compiled()
        i = last_index(c, ConditionalOp)
        bad = replace_op(c, i, domain=())
        diags = verify_compiled(bad)
        dead = [d for d in diags if d.code == "R011"]
        assert dead and all(d.severity == Severity.WARNING for d in dead)

    def test_wrong_max_live(self):
        c = ring_compiled()
        bad = dataclasses.replace(c, max_live=c.max_live + 3)
        assert "R005" in codes_of(verify_compiled(bad))

    def test_wrong_measured_nodes(self):
        c = ring_compiled()
        bad = dataclasses.replace(
            c, measured_nodes=tuple(reversed(c.measured_nodes))
        )
        assert "R007" in codes_of(verify_compiled(bad))

    def test_out_perm_out_of_range(self):
        c = ring_compiled()
        perm = (77,) + c.out_perm[1:]
        bad = dataclasses.replace(c, out_perm=perm)
        assert "R006" in codes_of(verify_compiled(bad))

    def test_out_perm_duplicate_slot(self):
        c = ring_compiled()
        perm = (c.out_perm[0], c.out_perm[0]) + c.out_perm[2:]
        bad = dataclasses.replace(c, out_perm=perm)
        assert "R006" in codes_of(verify_compiled(bad))

    def test_slot_node_binding_mismatch(self):
        c = ring_compiled()
        i = first_index(c, MeasureOp)
        # keep the slot live but claim a different node is being measured
        bad = replace_op(c, i, node=c.ops[i].node + 5000)
        assert "R004" in codes_of(verify_compiled(bad))

    def test_bad_channel_arity(self):
        c = noisy_compiled()
        i = first_index(c, ChannelOp)
        two_qubit = (np.eye(4, dtype=complex),)
        bad = replace_op(c, i, kraus=two_qubit, pauli_probs=None)
        assert "R020" in codes_of(verify_compiled(bad))

    def test_incomplete_kraus(self):
        c = noisy_compiled()
        i = first_index(c, ChannelOp)
        bad = replace_op(
            c, i, kraus=(0.5 * np.eye(2, dtype=complex),), pauli_probs=None
        )
        assert "R021" in codes_of(verify_compiled(bad))

    def test_flip_p_out_of_range(self):
        c = noisy_compiled()
        i = first_index(c, MeasureOp)
        bad = replace_op(c, i, flip_p=1.5)
        assert "R022" in codes_of(verify_compiled(bad))

    def test_pauli_probs_mismatch(self):
        c = noisy_compiled()
        i = first_index(c, ChannelOp)
        bad = replace_op(c, i, pauli_probs=(0.1, 0.3, 0.3, 0.3))
        assert "R023" in codes_of(verify_compiled(bad))

    def test_multiple_defects_all_reported(self):
        c = ring_compiled()
        bad = dataclasses.replace(
            replace_op(c, last_index(c, MeasureOp), s_domain=(9999,)),
            max_live=c.max_live + 1,
        )
        found = codes_of(verify_compiled(bad))
        assert {"R005", "R010"} <= found


MUTATIONS = ["slot", "s_domain", "max_live", "out_perm", "measured"]


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(MUTATIONS),
    which=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=5),
)
def test_property_mutated_patterns_are_flagged(kind, which, n):
    """Any single mutation of a valid compiled pattern draws ≥1 error."""
    c = ring_compiled(n)
    if kind == "slot":
        idxs = [i for i, op in enumerate(c.ops) if type(op) is MeasureOp]
        i = idxs[which % len(idxs)]
        bad = replace_op(c, i, slot=c.max_live + 7)
    elif kind == "s_domain":
        idxs = [i for i, op in enumerate(c.ops) if type(op) is MeasureOp]
        i = idxs[which % len(idxs)]
        bad = replace_op(c, i, s_domain=(10_000 + which,))
    elif kind == "max_live":
        bad = dataclasses.replace(c, max_live=c.max_live + 1 + which % 5)
    elif kind == "out_perm":
        bad = dataclasses.replace(
            c, out_perm=tuple(p + 50 for p in c.out_perm)
        )
    else:
        bad = dataclasses.replace(
            c, measured_nodes=c.measured_nodes + (99_000 + which,)
        )
    report = analyze(bad)
    assert not report.ok


class TestZeroFalsePositives:
    @pytest.mark.parametrize(
        "compiled",
        [
            ring_compiled(3),
            ring_compiled(5),
            ring_compiled(4, open_inputs=True),
            compile_qaoa_pattern(
                MaxCut.ring(3).to_qubo(), [0.3, 0.5], [0.7, 0.2]
            ).executable(),
            compile_qaoa_pattern(
                MaxCut.random_regular(3, 6, seed=3).to_qubo(), [0.37], [0.52]
            ).executable(),
            compile_qaoa_pattern(
                MaximumIndependentSet(*cycle_graph(5)).to_penalty_qubo(),
                [0.4],
                [0.6],
            ).executable(),
            compile_qaoa_pattern(
                NumberPartitioning.random(4, seed=0).to_qubo(), [0.2], [0.9]
            ).executable(),
            noisy_compiled(),
            lower_noise(
                ring_compiled(3),
                ChannelNoiseModel(
                    prep=Channel.amplitude_damping(0.07), meas_flip=0.02
                ),
            ),
        ],
        ids=[
            "ring3", "ring5", "ring4-open", "ring3-p2", "3regular6",
            "mis-ring5", "partition4", "noisy-pauli", "noisy-amp-damp",
        ],
    )
    def test_compiler_output_is_clean(self, compiled):
        report = analyze(compiled)
        assert report.ok
        assert not report.warnings
        # only advisory infos (dead final-layer signals) may appear
        assert all(d.severity == Severity.INFO for d in report.diagnostics)


class TestGateAndFramework:
    def test_verify_ir_clean_compile(self):
        p = Pattern(input_nodes=[0], output_nodes=[1])
        p.n(1).e(0, 1).m(0)
        compiled = compile_pattern(p, verify_ir=True)
        assert compiled.max_live == 2

    def test_raise_if_errors_lists_codes(self):
        c = ring_compiled()
        bad = dataclasses.replace(c, max_live=c.max_live + 1)
        report = analyze(bad)
        with pytest.raises(PatternError, match="R005"):
            report.raise_if_errors()

    def test_diagnostic_code_registry(self):
        d = Diagnostic("R001", Severity.ERROR, "boom", op_index=3, node=7)
        assert "R001" in d.format() and "op 3" in d.format()
        with pytest.raises(ValueError):
            Diagnostic("R999", Severity.ERROR, "no such code")
        assert all(len(code) == 4 for code in CODES)

    def test_report_format_orders_by_severity(self):
        c = noisy_compiled()
        i = first_index(c, ChannelOp)
        j = last_index(c, ConditionalOp)
        bad = replace_op(replace_op(c, i, pauli_probs=(1.0, 0, 0, 0)), j, domain=())
        report = analyze(bad)
        text = report.format()
        assert text.index("R023") < text.index("R011")  # error before warning
