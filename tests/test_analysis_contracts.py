"""Seeded-stream contract linter: the repo is clean, violations are caught."""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source, lint_tree
from repro.analysis.contracts import format_contract_report

SRC = Path(__file__).resolve().parent.parent / "src"


def codes(diags):
    return [d.code for d in diags]


class TestRepoIsClean:
    def test_src_tree_passes(self):
        diags = lint_tree(SRC)
        assert diags == [], format_contract_report(diags)


class TestC001DefaultRng:
    def test_flags_np_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        diags = lint_source(src, "src/repro/qaoa/foo.py")
        assert codes(diags) == ["C001"]
        assert "foo.py:2" in diags[0].where

    def test_flags_bare_default_rng_import(self):
        src = textwrap.dedent(
            """
            from numpy.random import default_rng
            gen = default_rng(7)
            """
        )
        assert "C001" in codes(lint_source(src, "src/repro/x.py"))

    def test_sanctioned_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_source(src, "src/repro/utils/rng.py") == []


class TestC002GlobalState:
    def test_flags_global_seed_and_draws(self):
        src = textwrap.dedent(
            """
            import numpy as np
            np.random.seed(3)
            v = np.random.rand(10)
            """
        )
        found = codes(lint_source(src, "src/repro/y.py"))
        assert found.count("C002") == 2

    def test_generator_type_annotation_allowed(self):
        src = textwrap.dedent(
            """
            import numpy as np
            def f(rng: np.random.Generator) -> None:
                pass
            seq = np.random.SeedSequence(4)
            """
        )
        assert lint_source(src, "src/repro/z.py") == []


KERNEL = "src/repro/mbqc/some_kernel.py"
NON_KERNEL = "src/repro/qaoa/driver.py"


class TestC003ScalarDrawsInLoops:
    def test_flags_scalar_draw_in_loop(self):
        src = textwrap.dedent(
            """
            def run(ops, rng):
                for op in ops:
                    if rng.random() < 0.5:
                        pass
            """
        )
        assert codes(lint_source(src, KERNEL)) == ["C003"]

    def test_whole_block_draw_allowed(self):
        src = textwrap.dedent(
            """
            def run(ops, rng):
                u = rng.random(len(ops))
                for op in ops:
                    v = rng.integers(3, size=8)
            """
        )
        assert lint_source(src, KERNEL) == []

    def test_outside_kernel_packages_not_flagged(self):
        src = textwrap.dedent(
            """
            def run(ops, rng):
                for op in ops:
                    if rng.random() < 0.5:
                        pass
            """
        )
        assert lint_source(src, NON_KERNEL) == []

    def test_allowlisted_reference_path_exempt(self):
        src = textwrap.dedent(
            """
            def run_pattern(ops, rng):
                for op in ops:
                    if rng.random() < 0.5:
                        pass
            """
        )
        assert lint_source(src, KERNEL) == []

    def test_scalar_draw_outside_loop_fine(self):
        src = "def pick(rng):\n    return rng.integers(2)\n"
        assert lint_source(src, KERNEL) == []

    def test_comprehension_counts_as_loop(self):
        src = textwrap.dedent(
            """
            def run(ops, rng):
                return [rng.random() for _ in ops]
            """
        )
        assert codes(lint_source(src, KERNEL)) == ["C003"]

    def test_nested_function_resets_loop_context(self):
        # the draw is in a fresh function body, not lexically in the loop
        src = textwrap.dedent(
            """
            def run(ops, rng):
                for op in ops:
                    def thunk():
                        return rng.random(64)
            """
        )
        assert lint_source(src, KERNEL) == []


class TestDrivers:
    def test_lint_paths_reads_files(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        diags = lint_paths([bad])
        assert codes(diags) == ["C002"]
        assert str(bad) in diags[0].where

    def test_lint_tree_on_single_file(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("import numpy as np\nr = np.random.default_rng()\n")
        assert codes(lint_tree(f)) == ["C001"]

    def test_format_contract_report_clean(self):
        assert format_contract_report([]) == "contracts clean"
