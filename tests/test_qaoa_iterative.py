"""Iterative quantum optimization (Section V; refs [56],[60],[61])."""

import numpy as np
import pytest

from repro.problems import MaxCut, MinVertexCover
from repro.problems.qubo import IsingModel
from repro.qaoa.iterative import (
    IterativeResult,
    _contract_edge,
    _fix_spin,
    iterative_quantum_optimize,
    qaoa_correlation_oracle,
)
from repro.utils import int_to_bitstring


class TestContraction:
    def test_contract_edge_preserves_energy_on_consistent_states(self):
        ising = IsingModel(
            3, {(0, 1): 1.0, (1, 2): -0.5, (0, 2): 0.25}, {1: 0.3}, offset=0.1
        )
        reduced = _contract_edge(ising, 0, 1, sign=-1)  # s_1 := -s_0
        for s0 in (-1, 1):
            for s2 in (-1, 1):
                full = [s0, -s0, s2]
                # reduced model ignores spin 1 (disconnected)
                assert reduced.energy([s0, 1, s2]) == pytest.approx(
                    ising.energy(full)
                )

    def test_contract_edge_folds_parallel_coupling(self):
        # Edge (0,1) contracted: coupling (0,1) becomes a constant.
        ising = IsingModel(2, {(0, 1): 2.0})
        reduced = _contract_edge(ising, 0, 1, sign=1)
        assert reduced.couplings == {}
        assert reduced.offset == pytest.approx(2.0)

    def test_fix_spin_preserves_energy(self):
        ising = IsingModel(3, {(0, 1): 1.0, (1, 2): -1.0}, {1: 0.5}, offset=0.2)
        reduced = _fix_spin(ising, 1, sign=-1)
        for s0 in (-1, 1):
            for s2 in (-1, 1):
                assert reduced.energy([s0, 1, s2]) == pytest.approx(
                    ising.energy([s0, -1, s2])
                )


class TestOracle:
    def test_correlations_in_range(self):
        ising = MaxCut.ring(4).to_qubo().to_ising()
        oracle = qaoa_correlation_oracle(p=1, grid_resolution=10)
        corrs, means = oracle(ising)
        assert set(corrs) == set(ising.couplings)
        assert all(-1.0 - 1e-9 <= c <= 1.0 + 1e-9 for c in corrs.values())
        assert means == {}  # MaxCut: no fields

    def test_ferromagnet_correlations_positive(self):
        # Pure ferromagnetic chain (minimize): QAOA aligns spins: <ZZ> > 0.
        ising = IsingModel(3, {(0, 1): -1.0, (1, 2): -1.0})
        corrs, _ = qaoa_correlation_oracle(p=1, grid_resolution=16)(ising)
        assert all(c > 0.1 for c in corrs.values())


class TestSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_on_small_maxcut(self, seed):
        mc = MaxCut.random_regular(3, 8, seed=seed)
        ising = mc.to_qubo().to_ising()
        res = iterative_quantum_optimize(ising, stop_at=3)
        best_cut = mc.max_cut_value()
        got_cut = mc.cut_value(res.bits())
        assert got_cut >= 0.9 * best_cut
        assert res.energy == pytest.approx(ising.energy(res.spins))

    def test_ring_solved_exactly(self):
        mc = MaxCut.ring(8)
        res = iterative_quantum_optimize(mc.to_qubo().to_ising(), stop_at=2)
        assert mc.cut_value(res.bits()) == pytest.approx(8.0)

    def test_with_fields(self):
        vc = MinVertexCover(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        qubo = vc.to_qubo()
        res = iterative_quantum_optimize(qubo.to_ising(), stop_at=2)
        x = res.bits()
        assert vc.is_cover(x)
        assert sum(x) == vc.minimum_cover_size()

    def test_steps_recorded(self):
        mc = MaxCut.ring(6)
        res = iterative_quantum_optimize(mc.to_qubo().to_ising(), stop_at=2)
        assert len(res.steps) >= 1
        assert all(s.kind in ("edge", "field") for s in res.steps)
        assert all(0.0 <= s.strength <= 1.0 + 1e-9 for s in res.steps)

    def test_stop_at_validation(self):
        with pytest.raises(ValueError):
            iterative_quantum_optimize(IsingModel(2, {(0, 1): 1.0}), stop_at=0)

    def test_energy_bookkeeping_matches_brute_force(self):
        ising = MaxCut.ring(6).to_qubo().to_ising()
        res = iterative_quantum_optimize(ising, stop_at=6)
        # stop_at >= n: pure brute force, must be the global optimum.
        ev = ising.energy_vector()
        assert res.energy == pytest.approx(float(ev.min()))

    def test_beats_single_shot_qaoa_expectation(self):
        """The Section V motivation: iteration extracts more than one
        optimized QAOA_1 expectation."""
        from repro.qaoa import grid_search_p1

        mc = MaxCut.random_regular(3, 8, seed=7)
        cost = mc.to_qubo().cost_vector()
        single = -grid_search_p1(cost, resolution=16).expectation
        res = iterative_quantum_optimize(mc.to_qubo().to_ising(), stop_at=3)
        assert mc.cut_value(res.bits()) >= single - 1e-9
