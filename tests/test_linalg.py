"""Unit tests for repro.linalg: gates, kron embedding, Pauli algebra, comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    CNOT,
    CZ,
    HADAMARD,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    PauliString,
    allclose_up_to_global_phase,
    controlled,
    global_phase_between,
    j_gate,
    kron_all,
    operator_on_qubits,
    phase_gate,
    proportionality_factor,
    rx,
    ry,
    rz,
)


class TestGates:
    def test_paulis_square_to_identity(self):
        for p in (PAULI_X, PAULI_Y, PAULI_Z):
            assert np.allclose(p @ p, np.eye(2))

    def test_pauli_anticommutation(self):
        assert np.allclose(PAULI_X @ PAULI_Y + PAULI_Y @ PAULI_X, 0)
        assert np.allclose(PAULI_X @ PAULI_Y, 1j * PAULI_Z)

    def test_hadamard_conjugation(self):
        assert np.allclose(HADAMARD @ PAULI_X @ HADAMARD, PAULI_Z)
        assert np.allclose(HADAMARD @ HADAMARD, np.eye(2))

    @pytest.mark.parametrize("theta", [0.0, 0.3, np.pi / 2, np.pi, -1.7])
    def test_rotations_unitary(self, theta):
        for r in (rx, ry, rz):
            u = r(theta)
            assert np.allclose(u @ u.conj().T, np.eye(2))

    def test_rz_convention(self):
        assert np.allclose(rz(np.pi), np.array([[-1j, 0], [0, 1j]]))

    def test_rx_is_h_rz_h(self):
        theta = 0.917
        assert np.allclose(rx(theta), HADAMARD @ rz(theta) @ HADAMARD)

    def test_phase_gate_vs_rz(self):
        theta = 0.42
        assert allclose_up_to_global_phase(phase_gate(theta), rz(theta))

    def test_j_gate_decompositions(self):
        a = 1.234
        assert np.allclose(j_gate(a), HADAMARD @ rz(a))
        # J(a) J(0) = RX(a) and J(0) J(a) = RZ(a) up to phase.
        assert allclose_up_to_global_phase(j_gate(a) @ j_gate(0.0), rx(a))
        assert allclose_up_to_global_phase(j_gate(0.0) @ j_gate(a), rz(a))

    def test_cnot_little_endian(self):
        # control = qubit 0 (low bit).  |01> (x0=1,x1=0) -> |11>.
        v = np.zeros(4)
        v[1] = 1.0
        assert np.allclose(CNOT @ v, np.eye(4)[3])

    def test_controlled_single(self):
        crx = controlled(rx(0.5))
        # Control low bit: states with x0=0 unchanged.
        assert np.allclose(crx[0, 0], 1)
        assert np.allclose(crx[2, 2], 1)
        sub = crx[np.ix_([1, 3], [1, 3])]
        assert np.allclose(sub, rx(0.5))

    def test_controlled_z_is_cz(self):
        assert np.allclose(controlled(PAULI_Z), CZ)

    def test_controlled_multi(self):
        ccx = controlled(PAULI_X, 2)
        # Only |11t> block swaps: indices 3 and 7.
        expect = np.eye(8)
        expect[[3, 7]] = expect[[7, 3]]
        assert np.allclose(ccx, expect)

    def test_controlled_validates(self):
        with pytest.raises(ValueError):
            controlled(np.ones((2, 3)))
        with pytest.raises(ValueError):
            controlled(PAULI_X, -1)


class TestKron:
    def test_kron_all_ordering(self):
        # X on qubit 0, I on qubit 1: should flip bit 0.
        op = kron_all([PAULI_X, np.eye(2)])
        v = np.zeros(4)
        v[0] = 1
        assert np.allclose(op @ v, np.eye(4)[1])

    def test_operator_on_qubits_single(self):
        n = 3
        for q in range(n):
            full = operator_on_qubits(PAULI_X, [q], n)
            v = np.zeros(8)
            v[0] = 1
            assert np.allclose(full @ v, np.eye(8)[1 << q])

    def test_operator_on_qubits_two_ordering(self):
        # CNOT control qubit 2, target qubit 0 in a 3-qubit register.
        full = operator_on_qubits(CNOT, [2, 0], 3)
        v = np.zeros(8)
        v[4] = 1  # |x2=1, x1=0, x0=0>
        out = full @ v
        assert np.allclose(out, np.eye(8)[5])  # target bit 0 flips

    def test_operator_on_qubits_matches_kron_adjacent(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        # acting on qubits (0,1) of 2 qubits is the matrix itself
        assert np.allclose(operator_on_qubits(m, [0, 1], 2), m)

    def test_operator_on_qubits_errors(self):
        with pytest.raises(ValueError):
            operator_on_qubits(PAULI_X, [0, 1], 2)
        with pytest.raises(ValueError):
            operator_on_qubits(CNOT, [0, 0], 2)
        with pytest.raises(ValueError):
            operator_on_qubits(CNOT, [0, 5], 2)


class TestPauliString:
    def test_multiplication_phases(self):
        x = PauliString.single(0, "X")
        y = PauliString.single(0, "Y")
        z = x * y
        assert z.ops == {0: "Z"}
        assert z.phase == 1j

    def test_identity(self):
        x = PauliString.single(1, "X")
        assert (x * x).ops == {}
        assert (x * x).phase == 1

    def test_commutation(self):
        xz = PauliString({0: "X", 1: "Z"})
        zx = PauliString({0: "Z", 1: "X"})
        assert xz.commutes_with(zx)  # anticommute on both sites -> commute
        assert not PauliString.single(0, "X").commutes_with(PauliString.single(0, "Z"))
        assert PauliString.single(0, "X").commutes_with(PauliString.single(1, "Z"))

    def test_to_matrix_matches_kron(self):
        ps = PauliString({0: "X", 2: "Z"}, -1)
        mat = ps.to_matrix(3)
        expect = -kron_all([PAULI_X, np.eye(2), PAULI_Z])
        assert np.allclose(mat, expect)

    def test_weight(self):
        assert PauliString({0: "X", 3: "Y"}).weight() == 2
        assert PauliString.identity().weight() == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PauliString({0: "Q"})
        with pytest.raises(ValueError):
            PauliString({0: "X"}, phase=2.0)

    @given(st.lists(st.sampled_from(["X", "Y", "Z"]), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_product_matches_matrices(self, labels):
        n = 2
        acc = PauliString.identity()
        mat = np.eye(1 << n, dtype=complex)
        for i, lab in enumerate(labels):
            p = PauliString.single(i % n, lab)
            acc = acc * p
            mat = mat @ p.to_matrix(n)
        assert np.allclose(acc.to_matrix(n), mat)


class TestCompare:
    def test_proportionality(self):
        a = np.array([1.0, 2.0, 3.0])
        assert np.isclose(proportionality_factor(2j * a, a), 2j)
        assert proportionality_factor(a, np.array([1.0, 2.0, 4.0])) is None

    def test_zero_handling(self):
        z = np.zeros(3)
        assert proportionality_factor(z, z) == 1.0
        assert proportionality_factor(z, np.ones(3)) is None
        assert proportionality_factor(np.ones(3), z) is None

    def test_global_phase(self):
        a = np.array([1.0, 1j])
        assert allclose_up_to_global_phase(np.exp(0.7j) * a, a)
        assert not allclose_up_to_global_phase(2 * a, a)
        ph = global_phase_between(np.exp(0.7j) * a, a)
        assert np.isclose(ph, np.exp(0.7j))

    def test_global_phase_raises(self):
        with pytest.raises(ValueError):
            global_phase_between(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_shape_mismatch(self):
        assert proportionality_factor(np.ones(3), np.ones(4)) is None
