"""E11 — Section V: XY mixers for coloring problems in MBQC.

The pattern-level XY interaction equals e^{iβ(XX+YY)}; ring-XY QAOA keeps
one-hot feasibility exactly; and the full coloring pipeline solves a small
instance.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import pattern_equals_unitary, xy_interaction_pattern
from repro.linalg import PAULI_X, PAULI_Y, kron_all
from repro.problems import GraphColoring
from repro.qaoa import qaoa_state_xy_ring
from repro.qaoa.simulator import basis_state
from repro.utils import cycle_graph


def xy_dense(beta):
    xx = kron_all([PAULI_X, PAULI_X])
    yy = kron_all([PAULI_Y, PAULI_Y])
    return expm(1j * beta * (xx + yy))


@pytest.mark.parametrize("beta", [0.3, -0.8, np.pi / 4])
def test_e11_xy_pattern(beta, benchmark):
    def build_and_verify():
        p = xy_interaction_pattern(beta)
        return p, pattern_equals_unitary(p, xy_dense(beta), max_branches=16, seed=0)

    p, ok = benchmark(build_and_verify)
    print(f"\nE11 — e^{{iβ(XX+YY)}} pattern at β={beta:+.3f}: nodes={p.num_nodes()}, correct={ok}")
    assert ok


def test_e11_one_hot_preservation(benchmark):
    """Ring-XY QAOA mass stays exactly in the one-hot subspace."""
    n, edges = cycle_graph(3)
    gc = GraphColoring(n, edges, k=2)  # 6 qubits
    x0 = gc.initial_feasible_state()
    rng = np.random.default_rng(7)

    def run_many():
        leaks = []
        mask = gc.feasibility_mask()
        for _ in range(4):
            gammas = rng.uniform(-np.pi, np.pi, 2)
            betas = rng.uniform(-np.pi, np.pi, 2)
            psi = qaoa_state_xy_ring(
                gc.cost_vector(), gammas, betas, gc.blocks(), basis_state(x0)
            )
            leaks.append(float(np.sum(np.abs(psi[~mask]) ** 2)))
        return leaks

    leaks = benchmark(run_many)
    print("\nE11 — infeasible leakage per random run:", [f"{l:.2e}" for l in leaks])
    assert all(l < 1e-12 for l in leaks)


def test_e11_coloring_quality(benchmark):
    """XY-QAOA finds a proper 2-coloring of an even ring (conflicts -> 0)."""
    n, edges = cycle_graph(4)
    gc = GraphColoring(n, edges, k=2)
    x0 = gc.initial_feasible_state()  # all color 0: 4 conflicts
    cost = gc.cost_vector()

    def optimize():
        best1 = np.inf
        for g in np.linspace(-np.pi, np.pi, 12):
            for b in np.linspace(-np.pi, np.pi, 12):
                psi = qaoa_state_xy_ring(cost, [g], [b], gc.blocks(), basis_state(x0))
                best1 = min(best1, float(np.abs(psi) ** 2 @ cost))
        rng = np.random.default_rng(0)
        best2 = best1
        for _ in range(150):
            g = rng.uniform(-np.pi, np.pi, 2)
            b = rng.uniform(-np.pi, np.pi, 2)
            psi = qaoa_state_xy_ring(cost, g, b, gc.blocks(), basis_state(x0))
            best2 = min(best2, float(np.abs(psi) ** 2 @ cost))
        return best1, best2

    best1, best2 = benchmark(optimize)
    start_conflicts = gc.conflict_count(x0)
    print(
        f"\nE11 — ring-4 2-coloring: start conflicts={start_conflicts}, "
        f"best <conflicts> p=1: {best1:.3f}, p=2: {best2:.3f}"
    )
    # Improvement at p=1 and further improvement with depth (Sec. II.C).
    assert best1 < start_conflicts * 0.6
    assert best2 < best1
