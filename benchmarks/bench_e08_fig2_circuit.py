"""E8 — Fig. 2: the 3-qubit QAOA example circuit.

Rebuilds the paper's Fig. 2 circuit (H layer, RZ/RZZ phase separation, RX
mixer), checks its gate census against the figure, runs it, and compiles it
to a measurement pattern through both compilers.
"""

import numpy as np
import pytest

from repro.core import circuit_to_pattern, compile_qaoa_pattern, pattern_state_equals
from repro.linalg import allclose_up_to_global_phase
from repro.problems import MaxCut
from repro.qaoa import qaoa_circuit, qaoa_state


def fig2_instance():
    """A 3-qubit problem matching Fig. 2's gate pattern: the figure shows
    RZ on qubits 1,2 (a coupling involving both) and RX everywhere —
    MaxCut on a single edge (1,2) reproduces exactly that layer shape."""
    return MaxCut(3, [(1, 2)])


def test_e08_fig2_structure(benchmark):
    mc = fig2_instance()
    ising = mc.to_qubo().to_ising()
    gammas, betas = [0.6], [0.35]
    circ = benchmark(qaoa_circuit, ising, gammas, betas)
    counts = circ.count_by_name()
    print("\nE8 — Fig. 2 circuit census:", dict(sorted(counts.items())))
    assert counts["h"] == 3          # initial |+> preparation
    assert counts["rx"] == 3         # mixer on every qubit
    assert counts["cnot"] == 2       # one RZZ = CNOT RZ CNOT
    assert counts["rz"] == 1
    assert circ.depth() >= 3


def test_e08_fig2_state(benchmark):
    mc = fig2_instance()
    ising = mc.to_qubo().to_ising()
    gammas, betas = [0.6], [0.35]

    def run():
        return qaoa_circuit(ising, gammas, betas).run().to_array()

    state = benchmark(run)
    fast = qaoa_state(ising.energy_vector(), gammas, betas)
    ok = allclose_up_to_global_phase(state, fast, atol=1e-9)
    print("\nE8 — Fig. 2 circuit == fast simulator:", ok)
    assert ok


def test_e08_fig2_to_pattern_both_routes(benchmark):
    """Fig. 2 through (a) the tailored Section III compiler and (b) the
    generic circuit translator — both prepare the same state."""
    mc = fig2_instance()
    qubo = mc.to_qubo()
    ising = qubo.to_ising()
    gammas, betas = [0.6], [0.35]
    target = qaoa_state(ising.energy_vector(), gammas, betas)

    def both():
        tailored = compile_qaoa_pattern(qubo, gammas, betas)
        circ = qaoa_circuit(ising, gammas, betas)
        generic = circuit_to_pattern(circ, open_inputs=False, initial="zero")
        return tailored, generic

    tailored, generic = benchmark(both)
    ok_t = pattern_state_equals(tailored.pattern, target, max_branches=16, seed=0)
    ok_g = pattern_state_equals(generic, target, max_branches=16, seed=1)
    print(
        f"\nE8 — Fig. 2 as MBQC: tailored nodes={tailored.num_nodes()}, "
        f"generic nodes={generic.num_nodes()}; correct: {ok_t} / {ok_g}"
    )
    assert ok_t and ok_g
    assert tailored.num_nodes() < generic.num_nodes()
