"""E9 — Section IV: MIS with hard constraints in MBQC.

Four artefacts: the ZH-diagram partial mixer equals the controlled unitary;
its exact circuit decomposition; feasibility preservation (100% independent
samples at any parameters); and the end-to-end advantage of the constrained
ansatz over the penalty-QUBO route at equal depth.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.mis import mis_mixer_circuit, mis_qaoa_circuit
from repro.linalg import PAULI_X, allclose_up_to_global_phase, controlled, operator_on_qubits, proportionality_factor
from repro.problems import MaximumIndependentSet
from repro.qaoa import optimize_qaoa, qaoa_state_constrained_mis
from repro.qaoa.simulator import basis_state
from repro.utils import ensure_rng
from repro.zx import diagram_matrix
from repro.zx.zh import mis_partial_mixer_diagram


def reference_mixer(degree, beta):
    u = expm(1j * beta * PAULI_X)
    if degree == 0:
        return u
    core = controlled(u, degree)
    n = degree + 1
    flip = np.eye(1 << n, dtype=complex)
    for q in range(degree):
        flip = operator_on_qubits(PAULI_X, [q], n) @ flip
    return flip @ core @ flip


@pytest.mark.parametrize("degree", [1, 2, 3])
def test_e09_zh_partial_mixer(degree, benchmark):
    """The paper's ZH derivation: U_v(β) as an e^{iβ} H-box diagram."""
    beta = 0.47
    m = benchmark(lambda: diagram_matrix(mis_partial_mixer_diagram(degree, beta)))
    ok = proportionality_factor(m, reference_mixer(degree, beta), atol=1e-8) is not None
    print(f"\nE9 — ZH partial mixer, deg={degree}: diagram == Λ_N(v)(e^{{iβX}}): {ok}")
    assert ok


def test_e09_circuit_decomposition(benchmark):
    beta = 0.62
    c = benchmark(mis_mixer_circuit, 3, 2, [0, 1], beta)
    ok = allclose_up_to_global_phase(c.unitary(), reference_mixer(2, beta), atol=1e-9)
    print(
        f"\nE9 — exact mixer circuit (deg 2): {len(c)} gates, "
        f"{c.count_entangling()} entangling: correct={ok}"
    )
    assert ok


def test_e09_feasibility_100_percent(benchmark):
    """Hard constraints never violated: all samples are independent sets,
    for random parameters (the Section IV guarantee, versus penalties)."""
    mis = MaximumIndependentSet(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)])
    x0 = mis.greedy_independent_set(seed=1)
    rng = ensure_rng(0)

    def run_many():
        feasible_fraction = []
        for _ in range(5):
            gammas = rng.uniform(-np.pi, np.pi, 2)
            betas = rng.uniform(-np.pi, np.pi, 2)
            psi = qaoa_state_constrained_mis(mis, gammas, betas, basis_state(x0))
            mask = mis.feasibility_mask()
            feasible_fraction.append(float(np.sum(np.abs(psi[mask]) ** 2)))
        return feasible_fraction

    fracs = benchmark(run_many)
    print("\nE9 — feasible probability mass per random-parameter run:", [f"{f:.12f}" for f in fracs])
    assert all(f == pytest.approx(1.0, abs=1e-10) for f in fracs)


def test_e09_constrained_vs_penalty(benchmark):
    """Shape claim: at p=1, the constrained ansatz attains a higher
    expected independent-set size than the penalty-QUBO route (which
    leaks probability into infeasible states)."""
    mis = MaximumIndependentSet(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    x0 = mis.greedy_independent_set(seed=2)
    size = mis.size_vector()
    mask = mis.feasibility_mask()

    def evaluate():
        # Constrained: optimize (γ, β) by dense grid.
        best_constrained = -np.inf
        for g in np.linspace(-np.pi, np.pi, 12):
            for b in np.linspace(-np.pi, np.pi, 12):
                psi = qaoa_state_constrained_mis(mis, [g], [b], basis_state(x0))
                probs = np.abs(psi) ** 2
                best_constrained = max(best_constrained, float(probs @ size))
        # Penalty route: optimize QAOA on the penalty QUBO, then score by
        # *feasible* independent-set size (infeasible samples score 0).
        qubo = mis.to_penalty_qubo(penalty=2.0)
        res = optimize_qaoa(qubo.cost_vector(), p=1, restarts=6, seed=3)
        from repro.qaoa import qaoa_state

        psi = qaoa_state(qubo.cost_vector(), res.gammas, res.betas)
        probs = np.abs(psi) ** 2
        penalty_score = float(np.sum(probs[mask] * size[mask]))
        return best_constrained, penalty_score

    constrained, penalty = benchmark(evaluate)
    opt = mis.maximum_independent_set_size()
    print(
        f"\nE9 — expected feasible IS size at p=1: constrained={constrained:.3f}, "
        f"penalty-QUBO={penalty:.3f}, optimum={opt}"
    )
    assert constrained >= penalty - 1e-6
