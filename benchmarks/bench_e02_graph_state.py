"""E2 — Eq. (5): graph-state diagrams equal the CZ-product state.

Regenerates the paper's square-graph worked example and extends it to
random graphs; the stabilizer simulator carries the check to 60+ qubits.
"""

import numpy as np
import pytest

from repro.linalg import proportionality_factor
from repro.sim import StateVector
from repro.stab import StabilizerState, graph_state_stabilizers
from repro.utils import cycle_graph, erdos_renyi_graph, grid_graph
from repro.zx import diagram_matrix, graph_state_diagram


def test_e02_square_graph_zx(benchmark):
    """The paper's 4-vertex square: ZX diagram == dense CZ product."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]

    def build():
        d = graph_state_diagram(4, edges)
        return diagram_matrix(d).ravel()

    zx_vec = benchmark(build)
    sv = StateVector.plus(4)
    for u, v in edges:
        sv.apply_cz(u, v)
    ok = proportionality_factor(zx_vec, sv.to_array(), atol=1e-9) is not None
    print("\nE2 — Eq. (5) square graph state: ZX == gate-model:", ok)
    assert ok


@pytest.mark.parametrize("n,prob,seed", [(5, 0.5, 1), (6, 0.4, 2), (7, 0.3, 3)])
def test_e02_random_graph_states(n, prob, seed, benchmark):
    n, edges = erdos_renyi_graph(n, prob, seed=seed)

    def build():
        return diagram_matrix(graph_state_diagram(n, edges)).ravel()

    zx_vec = benchmark(build)
    sv = StateVector.plus(n)
    for u, v in edges:
        sv.apply_cz(u, v)
    assert proportionality_factor(zx_vec, sv.to_array(), atol=1e-8) is not None


def test_e02_large_graph_state_stabilizer(benchmark):
    """Scale check via the tableau simulator: 64-qubit grid cluster state
    has the canonical K_v = X_v Π Z_w generators."""
    n, edges = grid_graph(8, 8)

    def build_and_check():
        st = StabilizerState.graph_state(n, edges)
        gens = graph_state_stabilizers(n, edges)
        return all(st.stabilizes(g) for g in gens[:16])

    ok = benchmark(build_and_check)
    print(f"\nE2 — 8x8 cluster state ({n} qubits): generators verified:", ok)
    assert ok
