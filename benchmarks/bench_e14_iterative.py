"""E14 — Section V (refs [56],[60],[61]): iterative quantum optimization.

The quantum device estimates correlations; the strongest one is frozen,
the problem shrinks, repeat.  Regenerates a quality table: iterative
QAOA-guided greedy vs one-shot QAOA_1 expectation vs optimum.
"""

import pytest

from repro.problems import MaxCut
from repro.qaoa import grid_search_p1
from repro.qaoa.iterative import iterative_quantum_optimize


def quality_rows():
    rows = []
    for name, mc in [
        ("ring-8", MaxCut.ring(8)),
        ("3reg-8a", MaxCut.random_regular(3, 8, seed=0)),
        ("3reg-8b", MaxCut.random_regular(3, 8, seed=5)),
        ("3reg-10", MaxCut.random_regular(3, 10, seed=2)),
    ]:
        ising = mc.to_qubo().to_ising()
        best = mc.max_cut_value()
        one_shot = -grid_search_p1(mc.to_qubo().cost_vector(), resolution=16).expectation
        res = iterative_quantum_optimize(ising, stop_at=3)
        rows.append(
            {
                "instance": name,
                "optimum": best,
                "qaoa1_expectation": one_shot,
                "iterative_cut": mc.cut_value(res.bits()),
                "rounds": len(res.steps),
            }
        )
    return rows


def test_e14_iterative_table(benchmark):
    rows = benchmark(quality_rows)
    print("\nE14 — iterative quantum optimization vs one-shot QAOA_1")
    print(f"{'instance':>9} {'optimum':>8} {'QAOA1 <cut>':>11} {'iterative':>9} {'rounds':>6}")
    for r in rows:
        print(
            f"{r['instance']:>9} {r['optimum']:>8.0f} {r['qaoa1_expectation']:>11.3f} "
            f"{r['iterative_cut']:>9.0f} {r['rounds']:>6}"
        )
        # Shape: iteration beats the one-shot expectation and lands near
        # (usually at) the optimum.
        assert r["iterative_cut"] >= r["qaoa1_expectation"] - 1e-9
        assert r["iterative_cut"] >= 0.89 * r["optimum"]


def test_e14_rounds_scale_with_size(benchmark):
    mc = MaxCut.ring(10)

    def run():
        return iterative_quantum_optimize(mc.to_qubo().to_ising(), stop_at=3)

    res = benchmark(run)
    print(f"\nE14 — ring-10: {len(res.steps)} elimination rounds, "
          f"final cut {mc.cut_value(res.bits()):.0f}/10")
    assert len(res.steps) == 10 - 3
    assert mc.cut_value(res.bits()) == pytest.approx(10.0)
