"""E20 — stabilizer-tableau fast path and the batched trajectory sampler.

Two acceptance claims of the backend-registry refactor:

1. **Stabilizer scaling.**  Clifford-angle QAOA patterns (γ = β = 0: graph
   state + Pauli measurements) verify branch-exhaustively on the
   ``StabilizerBackend`` at sizes far beyond dense statevector reach — a
   ring-24 instance measures 72 nodes with a 25-qubit peak register
   (2^25 amplitudes per dense branch run), and the tableau engine checks
   it in milliseconds.  On overlapping sizes the two engines agree
   branch for branch (weights equal, outputs equal up to phase).

2. **Batched sampler speedup.**  ``MBQCQAOASolver.sample`` runs its
   ``runs_per_batch`` pattern executions as one
   ``PatternBackend.sample_batch`` sweep (compile once, per-element RNG
   outcomes, per-element corrections) instead of the old per-run
   ``run_pattern`` loop; the acceptance bar is ≥ 3x at 256 shots.

Set ``REPRO_BENCH_QUICK=1`` to run the trimmed CI smoke variant.
"""

import os
import time

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.core.solver import MBQCQAOASolver
from repro.core.verify import check_pattern_determinism
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import compile_pattern, get_backend, select_backend
from repro.mbqc.runner import run_pattern
from repro.problems import MaxCut
from repro.sim import ZeroProbabilityBranch

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

OVERLAP_SIZES = [4, 6] if QUICK else [4, 6, 8]
STAB_ONLY_SIZES = [24] if QUICK else [16, 24, 28]
MAX_BRANCHES = 8 if QUICK else 16


def clifford_ring_pattern(n):
    """Graph-state/Pauli QAOA pattern: MaxCut ring at γ = β = 0."""
    return compile_qaoa_pattern(MaxCut.ring(n).to_qubo(), [0.0], [0.0]).pattern


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_e20_stabilizer_agrees_with_dense_on_overlap():
    """Bit-for-bit agreement on every overlapping size: equal branch
    weights, outputs equal up to global phase, same zero-weight branches."""
    sv, sb = get_backend("statevector"), get_backend("stabilizer")
    inputs = np.ones((1, 1), dtype=complex)
    for n in OVERLAP_SIZES:
        pattern = clifford_ring_pattern(n)
        c = compile_pattern(pattern)
        rng = np.random.default_rng(n)
        for _ in range(MAX_BRANCHES):
            branch = {node: int(rng.integers(2)) for node in c.measured_nodes}
            try:
                dense = sv.run_branch_batch(c, inputs, branch)
            except ZeroProbabilityBranch:
                with pytest.raises(ZeroProbabilityBranch):
                    sb.run_branch_batch(c, inputs, branch)
                continue
            stab = sb.run_branch_batch(c, inputs, branch)
            assert np.allclose(dense.weights, stab.weights, atol=1e-9)
            assert allclose_up_to_global_phase(
                dense.dense_states()[0], stab.dense_states()[0], atol=1e-9
            )


def test_e20_stabilizer_scaling():
    rows = []
    for n in OVERLAP_SIZES:
        pattern = clifford_ring_pattern(n)
        c = compile_pattern(pattern)
        ok_d, t_dense = _timed(
            lambda: check_pattern_determinism(
                pattern, max_branches=MAX_BRANCHES, seed=7, backend="statevector"
            )
        )
        ok_s, t_stab = _timed(
            lambda: check_pattern_determinism(
                pattern, max_branches=MAX_BRANCHES, seed=7, backend="stabilizer"
            )
        )
        assert ok_d and ok_s
        rows.append((n, len(c.measured_nodes), c.max_live, t_dense, t_stab))
    for n in STAB_ONLY_SIZES:
        pattern = clifford_ring_pattern(n)
        c = compile_pattern(pattern)
        engine = select_backend(c)
        assert engine.name == "stabilizer"  # auto-dispatch beyond dense reach
        ok, t_stab = _timed(
            lambda: check_pattern_determinism(
                pattern, max_branches=MAX_BRANCHES, seed=7
            )
        )
        assert ok
        rows.append((n, len(c.measured_nodes), c.max_live, None, t_stab))

    print("\nE20 — determinism verification, dense vs stabilizer tableau")
    print(f"{'ring':>5} {'measured':>9} {'peak live':>10} {'dense ms':>10} {'stab ms':>9}")
    for n, m, live, t_d, t_s in rows:
        dense_ms = f"{1e3 * t_d:.1f}" if t_d is not None else "infeasible"
        print(f"{n:>5} {m:>9} {live:>10} {dense_ms:>10} {1e3 * t_s:>9.1f}")

    # Acceptance: a Clifford-angle pattern with >= 24 measured nodes
    # (infeasible dense) verifies on the stabilizer engine.
    big = [r for r in rows if r[3] is None]
    assert any(r[1] >= 24 for r in big)


def test_e20_batched_sampler_speedup():
    """MBQCQAOASolver shot loops on sample_batch vs the old per-run loop.

    The baseline reproduces the pre-refactor ``sample``: one
    ``run_pattern`` call per batch run (each validating + compiling the
    pattern, as the old code did) followed by per-run bitstring draws.
    """
    shots = 256
    runs_per_batch = 16
    qubo = MaxCut.ring(5).to_qubo()
    gammas, betas = [0.37], [0.52]
    cost = qubo.cost_vector()

    def sample_sequential(rng):
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        per_run = -(-shots // runs_per_batch)
        bitstrings = []
        for _ in range(runs_per_batch):
            res = run_pattern(compiled.pattern, seed=rng)
            probs = np.abs(res.state_array()) ** 2
            probs = probs / probs.sum()
            take = min(per_run, shots - len(bitstrings))
            if take <= 0:
                break
            draws = rng.choice(probs.size, size=take, p=probs)
            bitstrings.extend(int(x) for x in draws)
        arr = np.asarray(bitstrings[:shots], dtype=np.int64)
        return cost[arr]

    solver = MBQCQAOASolver(
        qubo, p=1, shots=shots, runs_per_batch=runs_per_batch, seed=0
    )

    # Warm up both paths (basis-table caches, BLAS init), then time.
    rng = np.random.default_rng(0)
    sample_sequential(rng)
    solver.sample(gammas, betas)

    reps = 3 if QUICK else 5
    t_old = min(
        _timed(lambda: sample_sequential(np.random.default_rng(i)))[1]
        for i in range(reps)
    )
    t_new = min(_timed(lambda: solver.sample(gammas, betas))[1] for _ in range(reps))
    speedup = t_old / t_new

    costs_new = solver.sample(gammas, betas).costs
    costs_old = sample_sequential(np.random.default_rng(42))
    print(
        f"\nE20 — solver sampling at {shots} shots ({runs_per_batch} runs/batch): "
        f"sequential {1e3 * t_old:.1f} ms, batched {1e3 * t_new:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    # Same estimator, same distribution.
    assert costs_new.mean() == pytest.approx(costs_old.mean(), abs=0.5)
    # Acceptance: >= 3x at 256 shots.
    assert speedup >= 3.0, speedup
