"""E24 — frontier exact integration vs the scalar branch recursion.

``DensityMatrixBackend.integrate`` enumerates every measurement-outcome
branch of a noisy pattern and sums the unnormalized post-measurement
density matrices — the exact reference the trajectory samplers (E21/E23)
certify against.  The scalar recursion pays one simulator descent per
*leaf*: ``2^m`` for ``m`` live measurements, ``4^m`` once readout flips
enter.  The frontier engine rebuilt here pays per *distinct future*
instead:

1. **Live-parity merging.**  Two branches whose recorded outcomes agree on
   every parity any *future* op can still read are indistinguishable from
   here on; their unnormalized tensors sum into one frontier element.  The
   peak frontier width is the merged bound reported by
   ``repro.analysis.estimate_compiled`` (``2^rank``, often ≪ ``2^m``), and
   flip children share their recorded bit, so flips no longer quadruple
   anything.
2. **Cross-branch batching.**  The whole frontier advances as one
   ``(B, 2, ..., 2)`` batched density tensor through each compiled op —
   the E23 kernels, pointed across branches instead of shots — chunked
   against the same byte budget.

Acceptance claims:

* **Exactness.**  The frontier output ρ matches the retained scalar path
  (``vectorize=False``) at every benchmarked point, and chunkings of the
  batched sweep are *bit-identical* to each other (pure reassociation-free
  slicing).
* **Merging pays.**  Peak merged width is strictly below the raw ``2^m``
  leaf count at every point.
* **Speed.**  ≥ 4x over the scalar recursion on a noisy gadget-ring
  pattern with ≥ 16 measured nodes (full mode; the quick CI variant
  checks the same claims at smaller sizes).

Emits ``BENCH_E24.json`` in the working directory for downstream tracking.
Set ``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import time

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import lower_noise
from repro.problems import MaxCut

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

GADGET_SIZES = [10, 12] if QUICK else [10, 12, 16]
ACCEPT_SIZE = GADGET_SIZES[-1]
ACCEPT_SPEEDUP = 4.0
ATOL = 1e-11

_RESULTS = {"gadget_sizes": GADGET_SIZES, "points": []}


def gadget_ring(m, seed=5):
    """A ring of ``m`` phase gadgets hanging off one bus qubit: every
    measurement's correction lands on a later node, so each parity dies as
    soon as it is consumed and the merged frontier stays narrow while the
    raw leaf count is the full ``2^m``."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-np.pi, np.pi, size=m)
    p = Pattern(input_nodes=[0], output_nodes=[m])
    p.n(1).e(0, 1)
    for i in range(1, m):
        p.n(i + 1).e(i, i + 1)
        p.m(i, "XY", -float(a[i])).x(i + 1, {i})
    p.e(0, m)
    p.m(0, "XY", -float(a[0])).x(m, {0})
    return p


NOISE = ChannelNoiseModel(
    prep=Channel.amplitude_damping(0.05), ent=Channel.dephasing(0.02)
)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _bench_point(label, program):
    dm = get_backend("density")
    m = len(program.measured_nodes)
    scalar, t_s = _timed(lambda: dm.integrate(program, vectorize=False))
    frontier, t_f = _timed(lambda: dm.integrate(program))
    # merged-only ablation: single-element chunks keep the merge but strip
    # the cross-branch batching out of every kernel sweep
    merged_only, t_m = _timed(lambda: dm.integrate(program, max_block_bytes=1))

    diff = float(np.abs(frontier.rho._t - scalar.rho._t).max())
    assert diff < ATOL, (label, diff)
    assert np.array_equal(frontier.rho._t, merged_only.rho._t), label
    assert frontier.branches < 2 ** m, (label, frontier.branches, m)

    speedup = t_s / t_f
    _RESULTS["points"].append(
        {
            "label": label,
            "measured": m,
            "raw_leaves": scalar.branches,
            "merged_peak": frontier.branches,
            "t_scalar_s": t_s,
            "t_merged_only_s": t_m,
            "t_frontier_s": t_f,
            "speedup": speedup,
            "max_abs_diff": diff,
        }
    )
    print(
        f"{label:>12} {m:>4} {scalar.branches:>9} {frontier.branches:>7} "
        f"{1e3 * t_s:>10.1f} {1e3 * t_m:>12.1f} {1e3 * t_f:>11.1f} "
        f"{speedup:>7.1f}x {diff:>9.1e}"
    )
    return speedup


def test_e24_gadget_ring_sweep():
    """Scalar recursion vs frontier across gadget-ring sizes, with the
    exactness and merged-width checks at every point."""
    print("\nE24 — frontier exact integration vs scalar branch recursion "
          "(amplitude-damping + dephasing noise)")
    print(f"{'pattern':>12} {'m':>4} {'leaves':>9} {'merged':>7} "
          f"{'scalar ms':>10} {'merged-only':>12} {'frontier ms':>11} "
          f"{'speedup':>8} {'max diff':>9}")
    accept = None
    for m in GADGET_SIZES:
        program = lower_noise(compile_pattern(gadget_ring(m)), NOISE)
        speedup = _bench_point(f"gadget({m})", program)
        if m == ACCEPT_SIZE:
            accept = speedup
    assert accept is not None and accept >= ACCEPT_SPEEDUP, accept


def test_e24_qaoa_ring_point():
    """A wide-frontier shape: ring-QAOA's parities stay live much longer
    (merged peak 256 vs 4096 leaves), so the win here comes mostly from
    cross-branch batching rather than merging."""
    program = lower_noise(
        compile_qaoa_pattern(MaxCut.ring(4).to_qubo(), [0.4], [0.7])
        .executable(),
        NOISE,
    )
    _bench_point("qaoa-ring(4)", program)


def test_e24_emit_json():
    with open("BENCH_E24.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E24.json")
