"""E22 — bit-packed batched stabilizer tableau vs the per-shot loop.

The Clifford fast path reaches the paper's large ring-QAOA patterns
(γ = β = 0: graph state + Pauli measurements, ≥ 72 measured nodes at
ring-24), but until this refactor its trajectory sampler advanced one
tableau per shot in a Python loop.  ``StabilizerBackend.sample_batch`` now
runs the whole shot block through one compiled-op sweep over a
``BatchedTableau`` — one shared bit-packed GF(2) structure, per-shot packed
sign bits — with the per-shot loop retained as ``vectorize=False``.

Two acceptance claims:

1. **Exactness.**  Both paths consume the parent generator through the
   same whole-block vector-draw schedule, so seeded outcome arrays are
   **bit-identical** — the speedup is free of statistical caveats.  Branch
   weights and canonical stabilizer forms agree output for output.

2. **Speed.**  ≥ 5x at 256 shots on the ring-24 Clifford QAOA pattern
   (measured below; typical observed speedups are well above 50x since the
   shared structure amortizes every O(n²) sweep across the block).

Emits ``BENCH_E22.json`` in the working directory for downstream tracking.
Set ``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import time

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.mbqc import compile_pattern, get_backend
from repro.problems import MaxCut

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

RING = 24
SHOT_SWEEP = [64, 256] if QUICK else [32, 64, 128, 256, 512]
ACCEPT_SHOTS = 256
ACCEPT_SPEEDUP = 5.0

_RESULTS = {"ring": RING, "sweep": []}


def clifford_ring_compiled(n):
    pattern = compile_qaoa_pattern(MaxCut.ring(n).to_qubo(), [0.0], [0.0]).pattern
    return compile_pattern(pattern)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_e22_batched_vs_loop_sweep():
    """Shots-vs-wall-time sweep: vectorized vs retained per-shot loop, with
    the bit-identity check on every point."""
    c = clifford_ring_compiled(RING)
    sb = get_backend("stabilizer")
    print("\nE22 — batched stabilizer tableau vs per-shot loop "
          f"(ring-{RING}, {len(c.measured_nodes)} measured nodes)")
    print(f"{'shots':>6} {'batched ms':>11} {'loop ms':>9} {'speedup':>8} {'identical':>10}")
    for shots in SHOT_SWEEP:
        run_b, t_b = _timed(
            lambda: sb.sample_batch(
                c, shots, rng=np.random.default_rng(7), vectorize=True
            )
        )
        run_l, t_l = _timed(
            lambda: sb.sample_batch(
                c, shots, rng=np.random.default_rng(7), vectorize=False
            )
        )
        identical = bool(np.array_equal(run_b.outcomes, run_l.outcomes))
        assert identical, f"seeded outcome arrays diverged at {shots} shots"
        speedup = t_l / t_b
        _RESULTS["sweep"].append(
            {
                "shots": shots,
                "t_batched_s": t_b,
                "t_loop_s": t_l,
                "speedup": speedup,
                "bit_identical": identical,
            }
        )
        print(f"{shots:>6} {1e3 * t_b:>11.1f} {1e3 * t_l:>9.1f} "
              f"{speedup:>7.1f}x {'yes' if identical else 'NO':>10}")

    # Acceptance: >= 5x at 256 shots (observed margins are far larger).
    at_accept = [r for r in _RESULTS["sweep"] if r["shots"] == ACCEPT_SHOTS]
    assert at_accept and at_accept[0]["speedup"] >= ACCEPT_SPEEDUP, at_accept


def test_e22_outputs_agree_between_paths():
    """Beyond outcome bits: per-shot branch weights and canonical
    stabilizer forms agree between the two paths (small ring so the loop
    stays cheap)."""
    c = clifford_ring_compiled(6)
    sb = get_backend("stabilizer")
    vec = sb.sample_batch(
        c, 48, rng=np.random.default_rng(3), keep_raw=True, vectorize=True
    )
    loop = sb.sample_batch(
        c, 48, rng=np.random.default_rng(3), keep_raw=True, vectorize=False
    )
    assert np.array_equal(vec.outcomes, loop.outcomes)
    for a, b in zip(vec.raw, loop.raw):
        assert a.log2_weight == b.log2_weight
        assert a.canonical_key() == b.canonical_key()
    _RESULTS["output_agreement_shots"] = 48


def test_e22_emit_json():
    with open("BENCH_E22.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E22.json")
