"""E5 — Eqs. (9)-(10): single-qubit rotation gadgets.

RX via two ancillas with the ``(−1)^m β`` adaptive angle (Eq. 9, input
qubit consumed), RZ via one hanging ancilla (Eq. 10).  Swept over angles,
verified on every branch.
"""

import numpy as np
import pytest

from repro.core.gadgets import WireTracker
from repro.core.verify import check_pattern_determinism, pattern_equals_unitary
from repro.linalg import rx, rz


@pytest.mark.parametrize("beta", [0.0, 0.41, -1.7, np.pi])
def test_e05_eq9_rx_gadget(beta, benchmark):
    def build_and_verify():
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.rx(0, beta)
        p = tracker.finish()
        return p, pattern_equals_unitary(p, rx(beta)) and check_pattern_determinism(p)

    p, ok = benchmark(build_and_verify)
    m1 = p.measurement_of(1)
    print(
        f"\nE5 — Eq. (9) RX({beta:+.3f}): 2 ancillas, input measured in X basis, "
        f"second angle {-m1.angle:+.3f} adaptive on {set(m1.s_domain)}: correct={ok}"
    )
    assert ok
    assert m1.s_domain == frozenset({0})  # the (−1)^m adaptivity


@pytest.mark.parametrize("gamma", [0.0, 0.93, -2.4, np.pi / 3])
def test_e05_eq10_rz_gadget(gamma, benchmark):
    def build_and_verify():
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.hanging_rz_gadget(0, -gamma)  # gadget(θ) = RZ(−θ)
        p = tracker.finish()
        return p, pattern_equals_unitary(p, rz(gamma)) and check_pattern_determinism(p)

    p, ok = benchmark(build_and_verify)
    print(
        f"\nE5 — Eq. (10) RZ({gamma:+.3f}): 1 ancilla, wire stationary, "
        f"nodes={p.num_nodes()}: correct={ok}"
    )
    assert ok
    assert p.num_nodes() == 2


def test_e05_rotation_composition(benchmark):
    """RX(β)·RZ(γ) with the Eq. 10 + Eq. 9 chain — the per-vertex QUBO
    layer of Eq. (12)."""
    gamma, beta = 0.8, -0.55

    def build_and_verify():
        tracker = WireTracker.begin(1, open_inputs=True)
        tracker.hanging_rz_gadget(0, -gamma)
        tracker.rx(0, beta)
        p = tracker.finish()
        return p, pattern_equals_unitary(p, rx(beta) @ rz(gamma))

    p, ok = benchmark(build_and_verify)
    print(f"\nE5 — per-vertex Eq. (12) chain RX·RZ: nodes={p.num_nodes()}: correct={ok}")
    assert ok
    assert p.num_nodes() == 4  # wire + 1 hanging + 2 mixer
