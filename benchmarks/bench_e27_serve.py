"""E27 — serving-layer cache latency and coalescing bit-identity.

The serving layer's two claims, certified together:

* **Repeat-traffic latency.**  A warm cache hit (memory tier) answers a
  compile request at least 5x faster than a cold compile — the whole
  point of compile-once / serve-many.  The disk tier's ratio is also
  reported (it pays pickle + integrity hashing, so it sits between the
  memory tier and a cold compile), along with the hit ratio a bursty
  same-pattern job stream achieves through the server.
* **Coalescing bit-identity.**  Jobs fused into one shared
  ``sample_batch`` call produce receipts byte-equal to their standalone
  checkpointed runs — batching changes wall-clock, never records.

Emits ``BENCH_E27.json`` in the working directory.  Set
``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import tempfile
import time

from repro.core import compile_qaoa_pattern
from repro.exec import records_digest, run_checkpointed
from repro.mbqc.compile import (
    _basis_block,
    _basis_table,
    _clifford_words,
    _pauli_table,
)
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut
from repro.serve import JobServer, PatternCache

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

# The latency experiment wants a pattern big enough that compilation is
# worth caching; the sampling experiments want one cheap enough that the
# statevector engine isn't the bottleneck being measured.
RING = 8 if QUICK else 14
DEPTH = 2 if QUICK else 3
SAMPLE_RING = 6 if QUICK else 8
SAMPLE_DEPTH = 1 if QUICK else 2
REPEATS = 3 if QUICK else 5
SHOTS = 120 if QUICK else 480
BLOCK_SHOTS = 60 if QUICK else 120
WARM_SPEEDUP_BOUND = 5.0

_RESULTS = {}


def qaoa_pattern(n=RING, p=DEPTH):
    angles = [0.37 + 0.11 * i for i in range(p)]
    return compile_qaoa_pattern(
        MaxCut.ring(n).to_qubo(), angles, angles[::-1]
    ).pattern


def _clear_compile_memos():
    """Drop the compiler's in-process memo tables so a 'cold' compile
    pays the full lowering cost, as a fresh process would."""
    _clifford_words.cache_clear()
    _basis_table.cache_clear()
    _basis_block.cache_clear()
    _pauli_table.cache_clear()


def test_e27_cache_latency_tiers():
    print("\nE27 — compiled-pattern cache: cold vs disk tier vs memory tier")
    pattern = qaoa_pattern()
    noise = NoiseModel(p_prep=0.01, p_ent=0.01, p_meas=0.01)
    with tempfile.TemporaryDirectory() as tmp:
        cold, disk, memory = [], [], []
        for _ in range(REPEATS):
            # Cold: empty cache directory, empty compiler memos.
            with tempfile.TemporaryDirectory(dir=tmp) as cold_dir:
                _clear_compile_memos()
                cache = PatternCache(cold_dir)
                t0 = time.perf_counter()
                cache.get_or_compile(pattern, noise=noise)
                cold.append(time.perf_counter() - t0)
            # Warm tiers share one persistent directory.
            warm = PatternCache(os.path.join(tmp, "warm"))
            warm.get_or_compile(pattern, noise=noise)  # populate
            disk_reader = PatternCache(
                os.path.join(tmp, "warm"), memory_entries=0
            )
            t0 = time.perf_counter()
            disk_reader.get_or_compile(pattern, noise=noise)
            disk.append(time.perf_counter() - t0)
            assert disk_reader.stats.disk_hits == 1
            t0 = time.perf_counter()
            warm.get_or_compile(pattern, noise=noise)
            memory.append(time.perf_counter() - t0)
            assert warm.stats.memory_hits == 1
    t_cold, t_disk, t_memory = min(cold), min(disk), min(memory)
    disk_ratio = t_cold / max(t_disk, 1e-9)
    memory_ratio = t_cold / max(t_memory, 1e-9)
    _RESULTS["cache_latency"] = {
        "ring": RING,
        "depth": DEPTH,
        "cold_compile_s": t_cold,
        "disk_hit_s": t_disk,
        "memory_hit_s": t_memory,
        "disk_speedup": disk_ratio,
        "memory_speedup": memory_ratio,
    }
    print(f"  cold {1e3 * t_cold:8.2f} ms   disk hit {1e3 * t_disk:8.2f} ms "
          f"({disk_ratio:5.1f}x)   memory hit {1e6 * t_memory:8.1f} us "
          f"({memory_ratio:5.1f}x)")
    assert memory_ratio >= WARM_SPEEDUP_BOUND, memory_ratio
    assert t_disk < t_cold  # the disk tier must also beat recompiling


def test_e27_repeat_traffic_through_server():
    print("\nE27 — repeat same-pattern traffic through the job server")
    with tempfile.TemporaryDirectory() as tmp:
        with JobServer(
            cache_dir=os.path.join(tmp, "cache"), executor="inline"
        ) as srv:
            base = {
                "kind": "run", "problem": f"ring:{SAMPLE_RING}",
                "gammas": [0.4] * SAMPLE_DEPTH, "betas": [0.7] * SAMPLE_DEPTH,
                "shots": SHOTS, "block_shots": BLOCK_SHOTS,
                "noise": 0.02, "backend": "statevector",
            }
            latencies = []
            for i in range(REPEATS + 1):
                t0 = time.perf_counter()
                srv.submit({**base, "id": f"j{i}", "seed": 100 + i})
                srv.result(f"j{i}", timeout=300)
                latencies.append(time.perf_counter() - t0)
            stats = srv.cache.stats.as_dict()
    _RESULTS["repeat_traffic"] = {
        "jobs": REPEATS + 1,
        "first_job_s": latencies[0],
        "best_repeat_s": min(latencies[1:]),
        "cache_stats": stats,
    }
    print(f"  first job {1e3 * latencies[0]:8.1f} ms   "
          f"best repeat {1e3 * min(latencies[1:]):8.1f} ms   "
          f"hits {stats['memory_hits']}/{REPEATS + 1}")
    assert stats["misses"] == 1
    assert stats["memory_hits"] == REPEATS


def test_e27_coalescing_bit_identity():
    print("\nE27 — coalesced receipts equal standalone checkpointed runs")
    seeds = (7, 11, 13)
    base = {
        "kind": "run", "problem": f"ring:{SAMPLE_RING}",
        "gammas": [0.4] * SAMPLE_DEPTH, "betas": [0.7] * SAMPLE_DEPTH,
        "shots": SHOTS, "block_shots": BLOCK_SHOTS,
        "noise": 0.02, "backend": "statevector",
    }
    with tempfile.TemporaryDirectory() as tmp:
        with JobServer(
            cache_dir=os.path.join(tmp, "cache"), executor="inline"
        ) as srv:
            sub = srv.subscribe()
            srv.pause()
            for s in seeds:
                srv.submit({**base, "id": f"s{s}", "seed": s})
            srv.resume()
            receipts = {
                s: srv.result(f"s{s}", timeout=300).records_sha256
                for s in seeds
            }
            events = []
            while not sub.empty():
                events.append(sub.get())
        blocks = [e for e in events if e.get("event") == "block"]
        fused = [e for e in blocks if e.get("coalesced")]

        compiled = compile_qaoa_pattern(
            MaxCut.ring(SAMPLE_RING).to_qubo(),
            [0.4] * SAMPLE_DEPTH, [0.7] * SAMPLE_DEPTH,
        ).executable()
        noise = NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02)
        identical = True
        for s in seeds:
            ref = run_checkpointed(
                compiled, SHOTS, job_dir=os.path.join(tmp, f"ref{s}"),
                seed=s, backend="statevector", block_shots=BLOCK_SHOTS,
                noise=noise,
            )
            identical = identical and (records_digest(ref.run) == receipts[s])
    _RESULTS["coalescing"] = {
        "jobs": len(seeds),
        "blocks": len(blocks),
        "coalesced_blocks": len(fused),
        "receipts_bit_identical": identical,
    }
    print(f"  {len(fused)}/{len(blocks)} blocks coalesced   receipts "
          f"{'same' if identical else 'DIFFER'}")
    assert fused, "no blocks coalesced — pause/resume fusion regressed"
    assert identical


def test_e27_emit_json():
    with open("BENCH_E27.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E27.json")
