"""E21 — exact density-matrix noise integration vs trajectory sampling.

The channel-IR refactor's acceptance claims:

1. **Certification.**  On a bench-E15-class pattern (MBQC-QAOA, ring-3,
   p=1) under the E15 noise model, the batched Monte-Carlo fidelity
   estimator (``sample_batch`` with per-element Pauli faults) converges to
   the *exact* channel integral computed by the ``"density"`` engine: at
   1024 trajectories the two agree within 3 standard errors.

2. **Engine scaling.**  The scalar branch recursion explores the
   outcome-branch tree (``2^m`` leaves for ``m`` live-record
   measurements), so its wall time scales geometrically with the measured
   set — quantified on j-gadget chains — while a fixed trajectory budget
   scales only linearly.  (The default frontier integrator merges
   equivalent branches and escapes this wall entirely — that speedup is
   E24's claim; the scalar reference here is the certification baseline.)

Emits ``BENCH_E21.json`` next to the working directory for downstream
tracking.  Set ``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.mbqc import Pattern, compile_pattern, get_backend
from repro.mbqc.noise import NoiseModel, average_fidelity
from repro.mbqc.runner import run_pattern
from repro.problems import MaxCut

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SHOT_LADDER = [64, 256, 1024]
CHAIN_SIZES = [3, 4, 5] if QUICK else [3, 4, 5, 6, 7, 8]
NOISE = NoiseModel(p_prep=0.01, p_ent=0.01)

_RESULTS = {}


def j_chain(alphas):
    p = Pattern(input_nodes=[0], output_nodes=[len(alphas)])
    for i, a in enumerate(alphas):
        p.n(i + 1).e(i, i + 1).m(i, "XY", -a)
        p.x(i + 1, {i})
    return p


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_e21_exact_vs_trajectory_convergence():
    """Acceptance: MC fidelity at 1024 shots within 3 standard errors of
    the exact density-matrix fidelity on the E15 ring-3 pattern."""
    compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
    program = compile_pattern(compiled.pattern)

    (exact, run_info), t_exact = _timed(
        lambda: (
            average_fidelity(compiled.pattern, NOISE, exact=True),
            get_backend("density").integrate(program, noise=NOISE),
        )
    )
    ideal = run_pattern(compiled.pattern, seed=0, compiled=program).state_array()
    ref = ideal / np.linalg.norm(ideal)

    rows = []
    engine = get_backend("statevector")
    for shots in SHOT_LADDER:
        run, t_traj = _timed(
            lambda: engine.sample_batch(program, shots, rng=7, noise=NOISE)
        )
        fids = np.abs(run.dense_states() @ ref.conj()) ** 2
        mean = float(fids.mean())
        sem = float(fids.std(ddof=1) / np.sqrt(fids.size))
        rows.append((shots, mean, sem, abs(mean - exact), t_traj))

    print("\nE21 — exact channel integral vs Monte-Carlo trajectories "
          f"(ring-3 p=1, {run_info.branches} branches, "
          f"exact in {1e3 * t_exact:.0f} ms)")
    print(f"  exact <F> = {exact:.6f}")
    print(f"  {'shots':>6} {'<F> MC':>9} {'sem':>8} {'|Δ|':>8} {'Δ/sem':>6} {'ms':>7}")
    for shots, mean, sem, delta, t in rows:
        print(f"  {shots:>6} {mean:>9.5f} {sem:>8.5f} {delta:>8.5f} "
              f"{delta / sem:>6.2f} {1e3 * t:>7.1f}")

    _RESULTS["convergence"] = {
        "pattern": "maxcut-ring-3 p=1",
        "noise": {"p_prep": NOISE.p_prep, "p_ent": NOISE.p_ent,
                  "p_meas": NOISE.p_meas},
        "exact_fidelity": exact,
        "exact_branches": run_info.branches,
        "exact_seconds": t_exact,
        "trajectories": [
            {"shots": s, "mean": m, "sem": e, "abs_err": d, "seconds": t}
            for s, m, e, d, t in rows
        ],
    }

    assert 0.0 < exact < 1.0
    shots, mean, sem, delta, _ = rows[-1]
    assert shots == 1024
    # Acceptance: 3 standard errors at the largest shot count.
    assert delta <= 3.0 * sem + 1e-12, (mean, exact, sem)


def test_e21_density_engine_scaling():
    """Scalar exact-integration cost grows with the measured set (2^m
    leaves; the frontier path merges these — see E24); the trajectory
    estimator's cost stays flat per shot."""
    rng = np.random.default_rng(0)
    rows = []
    for m in CHAIN_SIZES:
        pattern = j_chain(list(rng.uniform(-np.pi, np.pi, size=m)))
        program = compile_pattern(pattern)
        run, t_exact = _timed(
            lambda: get_backend("density").integrate(
                program, noise=NOISE, vectorize=False
            )
        )
        _, t_traj = _timed(
            lambda: get_backend("statevector").sample_batch(
                program, 256, rng=1, noise=NOISE
            )
        )
        rows.append((m, run.branches, t_exact, t_traj))

    print("\nE21 — density engine scaling (j-gadget chains, 256-shot MC "
          "column for contrast)")
    print(f"  {'m':>3} {'branches':>9} {'exact ms':>9} {'mc ms':>7}")
    for m, branches, t_e, t_t in rows:
        print(f"  {m:>3} {branches:>9} {1e3 * t_e:>9.1f} {1e3 * t_t:>7.1f}")

    _RESULTS["scaling"] = [
        {"measurements": m, "branches": b, "exact_seconds": t_e,
         "trajectory_256_seconds": t_t}
        for m, b, t_e, t_t in rows
    ]

    # Branch tree doubles per measurement with a live record.
    for (m0, b0, *_), (m1, b1, *_) in zip(rows, rows[1:]):
        assert b1 == b0 * (1 << (m1 - m0))

    with open("BENCH_E21.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E21.json")
