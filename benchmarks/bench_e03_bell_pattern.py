"""E3 — Appendix A worked example: the Bell-state measurement pattern.

{M4_Z→n, M2_X→m, Λ3_m(X)} on the square graph state leaves qubits (1,3)
in |Φ+> on *every* outcome branch — regenerated here with the branch table
the paper's derivation implies.
"""

import numpy as np
import pytest

from repro.linalg import allclose_up_to_global_phase
from repro.mbqc import Pattern, run_pattern
from repro.mbqc.runner import enumerate_branches


def bell_pattern() -> Pattern:
    p = Pattern(input_nodes=[], output_nodes=[0, 2])
    for v in range(4):
        p.n(v)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        p.e(u, v)
    p.m(3, "YZ", 0.0)   # M4_Z -> n
    p.m(1, "XY", 0.0)   # M2_X -> m
    p.x(2, {1})         # Λ3_m(X)
    return p


def test_e03_bell_example(benchmark):
    p = bell_pattern()
    phi_plus = np.array([1, 0, 0, 1]) / np.sqrt(2)

    def run_all_branches():
        rows = []
        for branch in enumerate_branches(p):
            res = run_pattern(p, forced_outcomes=branch)
            arr = res.state_array()
            fid = abs(np.vdot(phi_plus, arr)) ** 2
            rows.append((branch[3], branch[1], fid))
        return rows

    rows = benchmark(run_all_branches)
    print("\nE3 — Appendix A Bell pattern, all outcome branches")
    print(" n   m   |<Φ+|out>|^2")
    for n, m, fid in rows:
        print(f" {n}   {m}   {fid:.12f}")
        assert fid == pytest.approx(1.0, abs=1e-10)
