"""E25 — the matrix-product-state engine on bounded-entanglement patterns.

Ring- and line-MaxCut QAOA patterns entangle each compiled slot with at
most two register neighbors: their compile-time ``interaction_width`` is
0–1, so site tensors stay small however many nodes the pattern measures.
The dense engines pay ``2^max_live`` amplitudes per shot regardless — a
ring-40 pattern (peak live register 41 qubits) costs ~35 TB per shot
dense, and ~100 KiB on the MPS engine at the default bond cap.

Acceptance claims:

* **Exactness.**  On small patterns the MPS engine agrees with the dense
  statevector engine to ≤ 1e-10: forced-branch weights and output states,
  and *bit-identical* seeded sample records (both engines consume the
  same per-measurement draw convention).
* **Chunk invariance.**  Seeded records are bit-identical across shot
  chunk sizes and to the ``vectorize=False`` scalar reference — the PR 5
  contract on the fourth engine.
* **Scaling.**  Line and ring patterns with ≥ 100 measured non-Clifford
  nodes sample within the default byte budget; auto-dispatch routes them
  to the MPS engine off ``interaction_width``, and reported truncation
  error stays at machine noise (the entanglement really is bounded).

Emits ``BENCH_E25.json`` in the working directory for downstream
tracking.  Set ``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import time

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.mbqc import get_backend, select_backend
from repro.mbqc.backend import PEAK_BYTE_BUDGET
from repro.problems import MaxCut

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ATOL = 1e-10
EXACT_SIZES = [3, 4] if QUICK else [3, 4, 5, 6]
SCALE_RINGS = [40] if QUICK else [40, 60, 80]
SCALE_LINES = [51] if QUICK else [51, 101]
SCALE_SHOTS = 4 if QUICK else 16

_RESULTS = {"exact_points": [], "scale_points": []}


def ring_pattern(n, gamma=0.37, beta=0.81):
    return compile_qaoa_pattern(
        MaxCut.ring(n).to_qubo(), [gamma], [beta]
    ).executable()


def line_pattern(n, gamma=0.42, beta=0.63):
    line = MaxCut(n, [(i, i + 1) for i in range(n - 1)])
    return compile_qaoa_pattern(line.to_qubo(), [gamma], [beta]).executable()


def test_e25_exactness_vs_statevector():
    """Small rings: forced-branch states/weights within 1e-10 of the dense
    engine, and seeded sample records bit-identical to it."""
    print("\nE25 — MPS engine exactness vs dense statevector")
    print(f"{'pattern':>10} {'measured':>9} {'branch diff':>12} "
          f"{'weight rel':>11} {'records':>9}")
    mps = get_backend("mps")
    sv = get_backend("statevector")
    for n in EXACT_SIZES:
        compiled = ring_pattern(n)
        inputs = np.ones((1, 1), dtype=complex)
        rng = np.random.default_rng(n)
        worst_state = 0.0
        worst_weight = 0.0
        for _ in range(4 if QUICK else 8):
            branch = {
                node: int(b)
                for node, b in zip(
                    compiled.measured_nodes,
                    rng.integers(0, 2, size=len(compiled.measured_nodes)),
                )
            }
            a = mps.run_branch_batch(compiled, inputs, branch)
            b = sv.run_branch_batch(compiled, inputs, branch)
            psi_a, psi_b = a.raw[0].to_statevector(), b.dense_states()[0]
            phase = np.vdot(psi_b, psi_a)
            if abs(phase) > 0:
                psi_a = psi_a * (phase.conjugate() / abs(phase))
            worst_state = max(worst_state, float(np.abs(psi_a - psi_b).max()))
            worst_weight = max(
                worst_weight,
                abs(a.weights[0] - b.weights[0]) / max(b.weights[0], 1e-300),
            )
        ra = mps.sample_batch(compiled, 64, rng=7)
        rb = sv.sample_batch(compiled, 64, rng=7)
        identical = bool(np.array_equal(ra.outcomes, rb.outcomes))
        _RESULTS["exact_points"].append(
            {
                "ring": n,
                "measured": len(compiled.measured_nodes),
                "max_state_diff": worst_state,
                "max_weight_rel": worst_weight,
                "records_bit_identical": identical,
            }
        )
        print(f"{'ring-' + str(n):>10} {len(compiled.measured_nodes):>9} "
              f"{worst_state:>12.1e} {worst_weight:>11.1e} "
              f"{'same' if identical else 'DIFFER':>9}")
        assert worst_state <= ATOL, (n, worst_state)
        assert worst_weight <= ATOL, (n, worst_weight)
        assert identical, n


def test_e25_chunk_and_scalar_bit_identity():
    """Records invariant to the shot chunking and to vectorize=False."""
    compiled = ring_pattern(6)
    eng = get_backend("mps")
    ref = eng.sample_batch(compiled, 48, rng=13, vectorize=False)
    for chunk_mult in (1, 3, 7):
        run = eng.sample_batch(
            compiled, 48, rng=13,
            max_block_bytes=chunk_mult * eng.bytes_per_shot(compiled),
        )
        assert np.array_equal(run.outcomes, ref.outcomes), chunk_mult
    _RESULTS["chunk_bit_identity"] = True


def _scale_point(label, compiled):
    eng = select_backend(compiled)
    assert eng.name == "mps", (label, eng.name)
    per_shot = eng.bytes_per_shot(compiled)
    assert per_shot <= PEAK_BYTE_BUDGET, (label, per_shot)
    t0 = time.perf_counter()
    run = eng.sample_batch(compiled, SCALE_SHOTS, rng=1, keep_raw=True)
    dt = time.perf_counter() - t0
    trunc = max(out.truncation_error for out in run.raw)
    bond = max(out.mps.max_bond for out in run.raw)
    point = {
        "label": label,
        "measured": len(compiled.measured_nodes),
        "max_live": compiled.max_live,
        "interaction_width": compiled.interaction_width,
        "bytes_per_shot": per_shot,
        "shots": SCALE_SHOTS,
        "time_s": dt,
        "max_bond": bond,
        "max_truncation_error": trunc,
    }
    _RESULTS["scale_points"].append(point)
    print(f"{label:>10} {point['measured']:>9} {compiled.max_live:>9} "
          f"{compiled.interaction_width:>6} {bond:>5} "
          f"{1e3 * dt / SCALE_SHOTS:>9.1f} {trunc:>10.1e}")
    assert trunc < 1e-8, (label, trunc)
    return point


def test_e25_scaling_sweep():
    """Line/ring patterns past dense reach: ≥ 100 measured non-Clifford
    nodes, sampled within the default byte budget."""
    print("\nE25 — bounded-width scaling past dense reach")
    print(f"{'pattern':>10} {'measured':>9} {'max_live':>9} {'width':>6} "
          f"{'bond':>5} {'ms/shot':>9} {'trunc':>10}")
    points = []
    for n in SCALE_RINGS:
        points.append(_scale_point(f"ring-{n}", ring_pattern(n)))
    for n in SCALE_LINES:
        points.append(_scale_point(f"line-{n}", line_pattern(n)))
    big = max(points, key=lambda p: p["measured"])
    assert big["measured"] >= 100, big
    # Past any dense engine: 2^max_live amplitudes would exceed the budget.
    assert 16 * (1 << big["max_live"]) > PEAK_BYTE_BUDGET


def test_e25_emit_json():
    with open("BENCH_E25.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E25.json")
