"""E6 — the headline result (Eqs. 11-12): MBQC-QAOA ≡ gate-model QAOA.

For MaxCut and general QUBO instances, depths p=1..3, random parameters:
the compiled measurement pattern prepares the QAOA state on every sampled
outcome branch, and its open graph admits an extended gflow.
"""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern, pattern_state_equals
from repro.mbqc import OpenGraph, find_gflow
from repro.mbqc.flow import verify_gflow
from repro.problems import MaxCut, MinVertexCover
from repro.qaoa import qaoa_state


CASES = [
    ("MaxCut-triangle-p1", MaxCut(3, [(0, 1), (1, 2), (0, 2)]).to_qubo(), 1, 0),
    ("MaxCut-path3-p2", MaxCut(3, [(0, 1), (1, 2)]).to_qubo(), 2, 1),
    ("MaxCut-path3-p3", MaxCut(3, [(0, 1), (1, 2)]).to_qubo(), 3, 2),
    ("VertexCover-path3-p1", MinVertexCover(3, [(0, 1), (1, 2)]).to_qubo(), 1, 3),
    ("MaxCut-ring4-p1", MaxCut.ring(4).to_qubo(), 1, 4),
]


@pytest.mark.parametrize("name,qubo,p,seed", CASES)
def test_e06_equivalence(name, qubo, p, seed, benchmark):
    rng = np.random.default_rng(seed)
    gammas = rng.uniform(-np.pi, np.pi, p)
    betas = rng.uniform(-np.pi / 2, np.pi / 2, p)
    target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)

    def compile_and_verify():
        compiled = compile_qaoa_pattern(qubo, gammas, betas)
        ok = pattern_state_equals(compiled.pattern, target, max_branches=24, seed=seed)
        return compiled, ok

    compiled, ok = benchmark(compile_and_verify)
    measured = len(compiled.pattern.measured_nodes())
    print(
        f"\nE6 — {name}: nodes={compiled.num_nodes()}, measured={measured}, "
        f"branches-checked={min(24, 1 << measured)}, state-equal={ok}"
    )
    assert ok


def test_e06_gflow_certificate(benchmark):
    """Determinism certificate: extended gflow exists on the compiled
    open graph (Section II.B criterion)."""
    qubo = MaxCut(3, [(0, 1), (1, 2)]).to_qubo()
    compiled = compile_qaoa_pattern(qubo, [0.4], [0.9])

    def find():
        og = OpenGraph.from_pattern(compiled.pattern)
        gf = find_gflow(og)
        return og, gf

    og, gf = benchmark(find)
    ok = gf is not None and verify_gflow(og, gf)
    depth = max(gf.layer.values()) if gf else -1
    print(f"\nE6 — gflow certificate: exists={gf is not None}, verified={ok}, layers={depth}")
    assert ok
