"""Shared fixtures for the experiment-regeneration harness.

Each ``bench_eXX_*.py`` module regenerates one paper artefact (figure,
equation, worked example, or resource table — see EXPERIMENTS.md) and
asserts its qualitative shape; the ``benchmark`` fixture additionally
times the central computation so regressions stay visible.
"""

import pytest


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")
