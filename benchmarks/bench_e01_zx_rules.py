"""E1 — Fig. 1: numerical validation of every ZX rewrite rule.

Regenerates the content of the paper's Fig. 1 as a table: each rule applied
to randomized diagrams, checked against tensor semantics (up to scalar).
"""

import math

import numpy as np
import pytest

from repro.linalg import proportionality_factor
from repro.sim import Circuit
from repro.zx import Diagram, EdgeType, VertexType, circuit_to_diagram, diagram_matrix
from repro.zx.rules import (
    bialgebra,
    color_change,
    copy_state,
    fuse,
    pi_push,
    remove_identity,
    remove_parallel_pair,
)


def _check(diagram, transform):
    before = diagram_matrix(diagram)
    d = diagram.copy()
    transform(d)
    after = diagram_matrix(d)
    return proportionality_factor(after, before, atol=1e-8) is not None


def _rule_trials(rng):
    """(rule label, trial outcome) pairs across randomized inputs."""
    results = []
    for trial in range(10):
        p1, p2 = rng.uniform(-math.pi, math.pi, 2)
        # (f) fusion
        d = Diagram()
        i = d.add_boundary("input")
        a = d.add_z(p1)
        b = d.add_z(p2)
        o = d.add_boundary("output")
        d.add_edge(i, a)
        d.add_edge(a, b)
        d.add_edge(b, o)
        e = d.edges_between(a, b)[0]
        results.append(("(f) fusion", _check(d, lambda dd: fuse(dd, e))))
        # (h) color change
        d2 = d.copy()
        results.append(("(h) color", _check(d2, lambda dd: color_change(dd, a))))
        # (id) identity
        d3 = Diagram()
        i3 = d3.add_boundary("input")
        m = d3.add_x(0.0)
        o3 = d3.add_boundary("output")
        d3.add_edge(i3, m, EdgeType.HADAMARD)
        d3.add_edge(m, o3, EdgeType.HADAMARD)
        results.append(("(id)+(hh)", _check(d3, lambda dd: remove_identity(dd, m))))
        # (π) commutation
        d4 = Diagram()
        i4 = d4.add_boundary("input")
        pi_v = d4.add_x(math.pi)
        z = d4.add_z(p1)
        o4 = d4.add_boundary("output")
        d4.add_edge(i4, pi_v)
        d4.add_edge(pi_v, z)
        d4.add_edge(z, o4)
        results.append(("(π) push", _check(d4, lambda dd: pi_push(dd, pi_v))))
        # (c) copy
        d5 = Diagram()
        s = d5.add_x(math.pi * int(rng.integers(2)))
        z5 = d5.add_z(0.0)
        o5a = d5.add_boundary("output")
        o5b = d5.add_boundary("output")
        d5.add_edge(s, z5)
        d5.add_edge(z5, o5a)
        d5.add_edge(z5, o5b)
        results.append(("(c) copy", _check(d5, lambda dd: copy_state(dd, s))))
        # (b) bialgebra
        d6 = Diagram()
        i6a = d6.add_boundary("input")
        i6b = d6.add_boundary("input")
        z6 = d6.add_z(0.0)
        x6 = d6.add_x(0.0)
        o6a = d6.add_boundary("output")
        o6b = d6.add_boundary("output")
        d6.add_edge(i6a, z6)
        d6.add_edge(i6b, z6)
        d6.add_edge(z6, x6)
        d6.add_edge(x6, o6a)
        d6.add_edge(x6, o6b)
        e6 = d6.edges_between(z6, x6)[0]
        results.append(("(b) bialgebra", _check(d6, lambda dd: bialgebra(dd, e6))))
        # (hopf)
        d7 = Diagram()
        i7 = d7.add_boundary("input")
        z7 = d7.add_z(0.0)
        x7 = d7.add_x(0.0)
        o7 = d7.add_boundary("output")
        d7.add_edge(i7, z7)
        d7.add_edge(z7, x7)
        d7.add_edge(z7, x7)
        d7.add_edge(x7, o7)
        results.append(("(hopf)", _check(d7, lambda dd: remove_parallel_pair(dd, z7, x7))))
    return results


def test_e01_fig1_rules(benchmark):
    rng = np.random.default_rng(42)
    results = benchmark(_rule_trials, rng)
    by_rule = {}
    for label, ok in results:
        by_rule.setdefault(label, []).append(ok)
    print("\nE1 — Fig. 1 rewrite rules, randomized validation")
    print(f"{'rule':>15}  trials  all-sound")
    for label, oks in sorted(by_rule.items()):
        print(f"{label:>15}  {len(oks):>6}  {all(oks)}")
        assert all(oks), f"rule {label} broke semantics"
