"""E23 — vectorized density-matrix trajectory sampling vs the per-shot loop.

The density engine is the only backend that executes *non-Pauli* channels
(amplitude damping, dephasing mixtures) — exactly, per trajectory — but
until this refactor its sampler advanced one scalar density matrix per shot
in a Python loop, capping noisy-channel studies of the paper's MBQC-QAOA
patterns at toy shot counts.  ``DensityMatrixBackend.sample_batch`` now
advances one ``(B, 2, ..., 2, 2, ..., 2)`` batched density tensor through a
single compiled-op sweep, chunked against a byte budget
(``B · 4^max_live`` complex amplitudes resident), with the per-shot loop
retained as ``vectorize=False``.

Two acceptance claims:

1. **Exactness.**  Both paths — and every chunking of the vectorized one —
   consume the parent generator through the same whole-block draw schedule,
   so seeded outcome records are **bit-identical**: the speedup carries no
   statistical caveats.

2. **Speed.**  ≥ 3x at 256 shots on a noisy ring-QAOA pattern under an
   amplitude-damping + dephasing + readout-flip channel model (the win is
   memory-bounded by design: each shot carries a whole density tensor, so
   the batch chunk — unlike the stabilizer engine's shared-structure
   block — cannot amortize O(n²) structure across shots).

Emits ``BENCH_E23.json`` in the working directory for downstream tracking.
Set ``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import time

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.mbqc import compile_pattern, get_backend
from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.compile import lower_noise
from repro.problems import MaxCut

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

RING = 4
SHOT_SWEEP = [64, 256] if QUICK else [32, 64, 128, 256]
ACCEPT_SHOTS = 256
ACCEPT_SPEEDUP = 3.0

_RESULTS = {"ring": RING, "sweep": []}


def noisy_ring_program():
    pattern = compile_qaoa_pattern(
        MaxCut.ring(RING).to_qubo(), [0.4], [0.7]
    ).pattern
    model = ChannelNoiseModel(
        prep=Channel.amplitude_damping(0.05),
        ent=Channel.dephasing(0.02),
        meas_flip=0.02,
    )
    return lower_noise(compile_pattern(pattern), model)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_e23_batched_vs_loop_sweep():
    """Shots-vs-wall-time sweep: vectorized vs retained per-shot loop, with
    the bit-identity check on every point."""
    program = noisy_ring_program()
    dm = get_backend("density")
    print("\nE23 — batched density trajectories vs per-shot loop "
          f"(ring-{RING}, {len(program.measured_nodes)} measured nodes, "
          f"max_live {program.max_live}, amplitude-damping noise)")
    print(f"{'shots':>6} {'batched ms':>11} {'loop ms':>9} {'speedup':>8} {'identical':>10}")
    for shots in SHOT_SWEEP:
        run_b, t_b = _timed(
            lambda: dm.sample_batch(
                program, shots, rng=np.random.default_rng(7), vectorize=True
            )
        )
        run_l, t_l = _timed(
            lambda: dm.sample_batch(
                program, shots, rng=np.random.default_rng(7), vectorize=False
            )
        )
        identical = bool(np.array_equal(run_b.outcomes, run_l.outcomes))
        assert identical, f"seeded outcome records diverged at {shots} shots"
        speedup = t_l / t_b
        _RESULTS["sweep"].append(
            {
                "shots": shots,
                "t_batched_s": t_b,
                "t_loop_s": t_l,
                "speedup": speedup,
                "bit_identical": identical,
            }
        )
        print(f"{shots:>6} {1e3 * t_b:>11.1f} {1e3 * t_l:>9.1f} "
              f"{speedup:>7.1f}x {'yes' if identical else 'NO':>10}")

    # Acceptance: >= 3x at 256 shots.
    at_accept = [r for r in _RESULTS["sweep"] if r["shots"] == ACCEPT_SHOTS]
    assert at_accept and at_accept[0]["speedup"] >= ACCEPT_SPEEDUP, at_accept


def test_e23_chunking_is_invisible_in_records():
    """The memory-budget fallback: forcing small shot chunks (down to one
    shot's tensor) must leave seeded records and per-shot output mixtures
    identical to the unchunked block."""
    program = noisy_ring_program()
    dm = get_backend("density")
    per_shot = 16 * 4 ** program.max_live
    ref = dm.sample_batch(
        program, 48, rng=np.random.default_rng(3), keep_raw=True
    )
    for chunk_shots in (1, 7):
        run = dm.sample_batch(
            program, 48, rng=np.random.default_rng(3), keep_raw=True,
            max_block_bytes=chunk_shots * per_shot,
        )
        assert np.array_equal(ref.outcomes, run.outcomes)
        for a, b in zip(ref.raw, run.raw):
            assert np.allclose(a.rho.to_matrix(), b.rho.to_matrix(), atol=1e-12)
    _RESULTS["chunking_shots"] = 48


def test_e23_emit_json():
    with open("BENCH_E23.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E23.json")
