"""E18 — refs [6],[24]: the circuit ↔ pattern loop ("there and back again").

Circuits translate to patterns (generic compiler) and patterns with causal
flow extract back to circuits; the round trip preserves the unitary and
the J+CZ census — closing the correspondence the paper's Section II
machinery rests on.
"""

import numpy as np
import pytest

from repro.core.generic import circuit_to_pattern
from repro.linalg import allclose_up_to_global_phase
from repro.mbqc.extract import extract_circuit
from repro.problems import MaxCut
from repro.qaoa import qaoa_circuit


def test_e18_round_trip_table(benchmark):
    instances = [
        ("ring-3 p=1", MaxCut(3, [(0, 1), (1, 2), (0, 2)]), 1),
        ("path-4 p=1", MaxCut(4, [(0, 1), (1, 2), (2, 3)]), 1),
        ("path-3 p=2", MaxCut(3, [(0, 1), (1, 2)]), 2),
    ]

    def round_trip_all():
        rows = []
        for name, mc, p in instances:
            circ = qaoa_circuit(
                mc.to_qubo().to_ising(), [0.4] * p, [0.7] * p, include_initial_layer=False
            )
            pattern = circuit_to_pattern(circ)
            extracted = extract_circuit(pattern)
            same = allclose_up_to_global_phase(
                extracted.unitary(), circ.unitary(), atol=1e-8
            )
            rows.append(
                (
                    name,
                    len(circ),
                    pattern.num_nodes(),
                    len(extracted),
                    extracted.count_by_name().get("j", 0),
                    same,
                )
            )
        return rows

    rows = benchmark(round_trip_all)
    print("\nE18 — circuit → pattern → circuit round trip")
    print(f"{'instance':>12} {'gates in':>8} {'pattern nodes':>13} {'gates out':>9} {'J gates':>7} {'equal':>5}")
    for name, gin, nodes, gout, js, same in rows:
        print(f"{name:>12} {gin:>8} {nodes:>13} {gout:>9} {js:>7} {str(same):>5}")
        assert same
        assert js > 0


def test_e18_j_count_equals_measurements(benchmark):
    mc = MaxCut(3, [(0, 1), (1, 2)])
    circ = qaoa_circuit(mc.to_qubo().to_ising(), [0.3], [0.6], include_initial_layer=False)
    pattern = circuit_to_pattern(circ)

    def extract():
        return extract_circuit(pattern)

    extracted = benchmark(extract)
    js = extracted.count_by_name().get("j", 0)
    measured = len(pattern.measured_nodes())
    print(f"\nE18 — J gates in extracted circuit: {js} == measured nodes: {measured}")
    assert js == measured
