"""E12 — Section I claim: generic circuit→MBQC translation "typically
comes with significant resource overhead" versus the tailored patterns.

Regenerates an overhead table: tailored Section III compilation vs the
J(α)+CZ generic translation of the same QAOA circuit, across instances.
"""

import pytest

from repro.core import compile_qaoa_pattern
from repro.core.generic import generic_pattern_counts
from repro.problems import MaxCut, MinVertexCover
from repro.qaoa import qaoa_circuit


def overhead_rows(depths):
    instances = [
        ("ring-4", MaxCut.ring(4).to_qubo()),
        ("ring-6", MaxCut.ring(6).to_qubo()),
        ("K-4", MaxCut.complete(4).to_qubo()),
        ("vcover-path4", MinVertexCover(4, [(0, 1), (1, 2), (2, 3)]).to_qubo()),
    ]
    rows = []
    for name, qubo in instances:
        ising = qubo.to_ising()
        for p in depths:
            tailored = compile_qaoa_pattern(qubo, [0.3] * p, [0.5] * p)
            circ = qaoa_circuit(ising, [0.3] * p, [0.5] * p)
            generic = generic_pattern_counts(circ)
            rows.append(
                {
                    "instance": name,
                    "p": p,
                    "tailored_nodes": tailored.num_nodes(),
                    "generic_nodes": generic["nodes"],
                    "node_overhead": generic["nodes"] / tailored.num_nodes(),
                    "tailored_CZs": tailored.num_entanglers(),
                    "generic_CZs": generic["entanglers"],
                }
            )
    return rows


def test_e12_overhead_table(benchmark):
    rows = benchmark(overhead_rows, [1, 2])
    print("\nE12 — generic translation vs tailored MBQC-QAOA")
    hdr = f"{'instance':>14} {'p':>2} {'tailored_N':>10} {'generic_N':>9} {'overhead':>8} {'tailored_CZ':>11} {'generic_CZ':>10}"
    print(hdr)
    for r in rows:
        print(
            f"{r['instance']:>14} {r['p']:>2} {r['tailored_nodes']:>10} "
            f"{r['generic_nodes']:>9} {r['node_overhead']:>8.2f} "
            f"{r['tailored_CZs']:>11} {r['generic_CZs']:>10}"
        )
        # The paper's claim: strictly more nodes and entanglers generically.
        assert r["generic_nodes"] > r["tailored_nodes"]
        assert r["generic_CZs"] > r["tailored_CZs"]
    # "Significant": at least ~1.5x nodes on these workloads.
    assert min(r["node_overhead"] for r in rows) > 1.5
