"""A1 — design-choice ablations (DESIGN.md §5).

Three choices the compiler makes, each measured against its alternative:

1. **linear terms**: paper's Eq. (10) hanging ancilla vs fusing RZ(γ') into
   the first mixer J — the fused form beats the paper's general-QUBO bound
   by p·#fields qubits;
2. **RZ realization** (generic compiler): one-ancilla hanging gadget vs the
   two-ancilla J(0)∘J(θ) chain;
3. **scheduling**: eager vs graph-first — identical semantics, very
   different peak memory, comparable simulation time at these sizes.
"""

import time

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern, pattern_state_equals
from repro.core.gadgets import WireTracker
from repro.core.reuse import peak_live_qubits
from repro.core.verify import pattern_equals_unitary
from repro.linalg import rz
from repro.mbqc import run_pattern
from repro.problems import MinVertexCover
from repro.qaoa import qaoa_state


def test_a01_linear_term_ablation(benchmark):
    vc = MinVertexCover(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    qubo = vc.to_qubo()
    nf = len(qubo.to_ising().fields)
    gammas, betas = [0.45, -0.3], [0.25, 0.6]
    target = qaoa_state(qubo.to_ising().energy_vector(), gammas, betas)

    def build_both():
        hang = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="hanging")
        fused = compile_qaoa_pattern(qubo, gammas, betas, linear_mode="fused")
        return hang, fused

    hang, fused = benchmark(build_both)
    # Verify once, outside the timed loop (2 sampled branches each).
    ok_h = pattern_state_equals(hang.pattern, target, max_branches=2, seed=0)
    ok_f = pattern_state_equals(fused.pattern, target, max_branches=2, seed=1)
    print("\nA1.1 — linear-term realization (vertex cover C4, p=2)")
    print(f"  hanging (paper): {hang.num_nodes()} nodes, {hang.num_entanglers()} CZs, correct={ok_h}")
    print(f"  fused (ours)   : {fused.num_nodes()} nodes, {fused.num_entanglers()} CZs, correct={ok_f}")
    print(f"  saving         : {hang.num_nodes() - fused.num_nodes()} qubits "
          f"(= p·#fields = {2 * nf})")
    assert ok_h and ok_f
    assert hang.num_nodes() - fused.num_nodes() == 2 * nf


def test_a01_rz_gadget_ablation(benchmark):
    theta = 0.81

    def build_both():
        t1 = WireTracker.begin(1, open_inputs=True)
        t1.hanging_rz_gadget(0, -theta)
        hanging = t1.finish()
        t2 = WireTracker.begin(1, open_inputs=True)
        t2.rz_chain(0, theta)
        chain = t2.finish()
        return hanging, chain

    hanging, chain = benchmark(build_both)
    ok_h = pattern_equals_unitary(hanging, rz(theta))
    ok_c = pattern_equals_unitary(chain, rz(theta))
    print("\nA1.2 — RZ realization")
    print(f"  hanging: {hanging.num_nodes()} nodes / {len(hanging.entangling_edges())} CZ, "
          f"wire stays put, correct={ok_h}")
    print(f"  J-chain: {chain.num_nodes()} nodes / {len(chain.entangling_edges())} CZ, "
          f"wire moves twice, correct={ok_c}")
    assert ok_h and ok_c
    assert hanging.num_nodes() < chain.num_nodes()


def test_a01_schedule_ablation(benchmark):
    """Graph-first must hold the *entire* resource state live (here 12
    qubits; at ring-5 p=3 it would already be 50 — beyond any dense
    simulator), while eager stays at |V|+1.  Sizes are chosen so both are
    simulable and the memory/time gap is visible."""
    from repro.problems import MaxCut

    qubo = MaxCut.ring(3).to_qubo()
    p = 1
    eager = compile_qaoa_pattern(qubo, [0.2] * p, [0.4] * p, schedule="eager")
    gfirst = compile_qaoa_pattern(qubo, [0.2] * p, [0.4] * p, schedule="graph-first")

    def run_both():
        t0 = time.perf_counter()
        a = run_pattern(eager.pattern, seed=0).state_array()
        t1 = time.perf_counter()
        b = run_pattern(gfirst.pattern, seed=0).state_array()
        t2 = time.perf_counter()
        return a, b, t1 - t0, t2 - t1

    a, b, te, tg = benchmark(run_both)
    from repro.linalg import allclose_up_to_global_phase

    same = allclose_up_to_global_phase(a, b, atol=1e-8)
    print("\nA1.3 — scheduling (ring-3, p=1)")
    print(f"  eager      : peak live {peak_live_qubits(eager.pattern):>3}, run {te*1e3:7.2f} ms")
    print(f"  graph-first: peak live {peak_live_qubits(gfirst.pattern):>3}, run {tg*1e3:7.2f} ms")
    print(f"  same output state: {same}")
    assert same
    assert peak_live_qubits(eager.pattern) < peak_live_qubits(gfirst.pattern)
    # Larger live registers cost more to simulate; allow generous jitter.
    assert te < tg * 1.5
