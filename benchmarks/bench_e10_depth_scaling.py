"""E10 — Section II.C claim: "QAOA performance generally improves with
increasing number of layers p".

Regenerates the approximation-ratio-vs-p series for MaxCut on rings and
random 3-regular graphs (layerwise warm-started optimization).
"""

import numpy as np
import pytest

from repro.problems import MaxCut
from repro.qaoa import optimize_qaoa
from repro.qaoa.simulator import qaoa_state


def ratio_series(mc: MaxCut, depths, seed=0):
    cost = mc.to_qubo().cost_vector()
    best = mc.max_cut_value()
    series = []
    warm = None
    for p in depths:
        res = optimize_qaoa(
            cost, p=p, restarts=6, seed=seed, warm_start=warm, maxiter=500
        )
        warm = (res.gammas, res.betas)
        series.append(-res.expectation / best)  # cost = -cut
    return series


def test_e10_ring_depth_scaling(benchmark):
    mc = MaxCut.ring(8)
    depths = [1, 2, 3]
    series = benchmark(ratio_series, mc, depths, 0)
    print("\nE10 — MaxCut ring-8 approximation ratio vs p")
    for p, r in zip(depths, series):
        print(f"  p={p}:  {r:.4f}")
    # Monotone non-decreasing (within optimizer noise) and matching the
    # known p=1 ring value (~0.75) and growth toward 1.
    assert series[0] > 0.70
    for a, b in zip(series, series[1:]):
        assert b >= a - 1e-6
    assert series[-1] > series[0]


def test_e10_random_regular_depth_scaling(benchmark):
    mc = MaxCut.random_regular(3, 8, seed=11)
    depths = [1, 2, 3]
    series = benchmark(ratio_series, mc, depths, 1)
    print("\nE10 — MaxCut 3-regular-8 approximation ratio vs p")
    for p, r in zip(depths, series):
        print(f"  p={p}:  {r:.4f}")
    assert series[0] > 0.6
    for a, b in zip(series, series[1:]):
        assert b >= a - 1e-6


def test_e10_p1_ring_analytic_check(benchmark):
    """At p=1 on a large even ring the optimal ratio approaches 3/4 — the
    known analytic value; our optimizer must land on it."""
    mc = MaxCut.ring(10)
    cost = mc.to_qubo().cost_vector()

    def run():
        return optimize_qaoa(cost, p=1, restarts=8, seed=5, maxiter=600)

    res = benchmark(run)
    ratio = -res.expectation / mc.max_cut_value()
    print(f"\nE10 — ring-10 p=1 ratio: {ratio:.4f} (analytic 0.75)")
    assert ratio == pytest.approx(0.75, abs=0.01)
