"""E15 — the paper's Section I motivation: MBQC noise enters through
resource-state preparation and measurement rather than gates.

Ablation: output fidelity of compiled MBQC-QAOA patterns versus the
per-operation error rate and the pattern size — the "limited by the size
of the entangled resource state" trade-off made quantitative on the
simulator.
"""

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.mbqc.noise import NoiseModel, average_fidelity
from repro.problems import MaxCut


def fidelity_vs_rate():
    compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
    rows = []
    for rate in (0.0, 0.002, 0.01, 0.05):
        f = average_fidelity(
            compiled.pattern,
            NoiseModel(p_prep=rate, p_ent=rate, p_meas=rate),
            trajectories=60,
            seed=0,
        )
        rows.append((rate, f))
    return rows


def test_e15_fidelity_vs_rate(benchmark):
    rows = benchmark(fidelity_vs_rate)
    print("\nE15 — fidelity vs per-operation error rate (ring-3, p=1)")
    print("  rate     <F>")
    for rate, f in rows:
        print(f"  {rate:<7.3f}  {f:.4f}")
    fids = [f for _, f in rows]
    assert fids[0] == pytest.approx(1.0, abs=1e-9)
    assert all(a >= b - 0.02 for a, b in zip(fids, fids[1:]))  # monotone ↓
    assert fids[-1] < 0.8


def test_e15_fidelity_vs_pattern_size(benchmark):
    """At fixed error rate, deeper protocols (bigger resource states)
    lose more fidelity — the size-limited regime the paper describes."""
    rate = 0.01
    qubo = MaxCut.ring(3).to_qubo()

    def sweep():
        rows = []
        for p in (1, 2, 3):
            compiled = compile_qaoa_pattern(qubo, [0.3] * p, [0.5] * p)
            f = average_fidelity(
                compiled.pattern,
                NoiseModel(p_prep=rate, p_ent=rate, p_meas=rate),
                trajectories=50,
                seed=p,
            )
            rows.append((p, compiled.num_nodes(), f))
        return rows

    rows = benchmark(sweep)
    print("\nE15 — fidelity vs depth at 1% per-operation error (ring-3)")
    print("  p  nodes   <F>")
    for p, nodes, f in rows:
        print(f"  {p}  {nodes:>5}  {f:.4f}")
    assert rows[0][2] > rows[-1][2]  # bigger resource state, lower fidelity


def test_e15_measurement_flips_vs_state_noise(benchmark):
    """Readout flips corrupt the classical signal chain; compare channels
    at equal rate."""
    compiled = compile_qaoa_pattern(MaxCut.ring(3).to_qubo(), [0.4], [0.7])
    rate = 0.03

    def compare():
        f_meas = average_fidelity(
            compiled.pattern, NoiseModel(p_meas=rate), trajectories=60, seed=0
        )
        f_ent = average_fidelity(
            compiled.pattern, NoiseModel(p_ent=rate), trajectories=60, seed=0
        )
        return f_meas, f_ent

    f_meas, f_ent = benchmark(compare)
    print(f"\nE15 — channel comparison at rate {rate}: readout-flip <F>={f_meas:.4f}, "
          f"entangler-depolarizing <F>={f_ent:.4f}")
    assert f_meas < 1.0 and f_ent < 1.0
