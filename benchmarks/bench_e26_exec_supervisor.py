"""E26 — overhead and exactness of the resilient execution supervisor.

The robustness layer (`repro.exec`) must be effectively free when nothing
fails: checkpointing only adds a seed spawn, a hash, and one small file
write per shot block, and shard supervision only adds schedule lookups
and a report around the same worker function the raw sharded integrator
runs.  This benchmark certifies both directions at once:

* **Bit-identity.**  A checkpointed job's merged record stream equals the
  direct per-block ``sample_batch`` concatenation (the supervisor adds no
  randomness), a resumed job reproduces the uninterrupted digest while
  re-running only the missing blocks, and a supervised sharded
  integration equals the raw ``integrate(shards=N)`` density matrix
  bitwise.
* **Overhead.**  Checkpointed execution stays within 5x of the direct
  per-block loop (dominated by block-file I/O), and supervised
  integration stays within 3x of the raw sharded path (both pay the same
  process-pool startup).

Emits ``BENCH_E26.json`` in the working directory.  Set
``REPRO_BENCH_QUICK=1`` for the trimmed CI smoke variant.
"""

import json
import os
import tempfile
import time

import numpy as np

from repro.core import compile_qaoa_pattern
from repro.exec import (
    Fault,
    FaultSchedule,
    InjectedCrash,
    plan_blocks,
    records_digest,
    run_checkpointed,
    supervised_integrate,
)
from repro.mbqc import get_backend
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut
from repro.utils.rng import ensure_rng, spawn_seeds

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SHOTS = 256 if QUICK else 1024
BLOCK_SHOTS = 64
SEED = 11
CHECKPOINT_OVERHEAD_BOUND = 5.0
SUPERVISION_OVERHEAD_BOUND = 3.0

_RESULTS = {}


def qaoa_pattern(n=6, gamma=0.37, beta=0.81):
    return compile_qaoa_pattern(
        MaxCut.ring(n).to_qubo(), [gamma], [beta]
    ).executable()


def _direct_blocks(compiled, n_shots, block_shots, seed):
    """The no-supervision baseline: the same per-block seeded calls the
    checkpoint runner makes, without directories, hashing, or manifests."""
    engine = get_backend("statevector")
    plans = plan_blocks(n_shots, block_shots)
    seeds = spawn_seeds(seed, len(plans))
    return np.concatenate(
        [
            engine.sample_batch(
                compiled, p.shots, ensure_rng(seeds[p.index])
            ).outcomes
            for p in plans
        ]
    )


def test_e26_checkpoint_overhead_and_bit_identity():
    print("\nE26 — checkpointed shot blocks vs direct per-block baseline")
    compiled = qaoa_pattern()
    t0 = time.perf_counter()
    direct = _direct_blocks(compiled, SHOTS, BLOCK_SHOTS, SEED)
    t_direct = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        result = run_checkpointed(
            compiled, SHOTS, job_dir=os.path.join(tmp, "job"),
            seed=SEED, backend="statevector", block_shots=BLOCK_SHOTS,
        )
        t_job = time.perf_counter() - t0
    ratio = t_job / max(t_direct, 1e-9)
    identical = bool(np.array_equal(result.run.outcomes, direct))
    _RESULTS["checkpoint"] = {
        "shots": SHOTS,
        "block_shots": BLOCK_SHOTS,
        "n_blocks": result.n_blocks,
        "direct_s": t_direct,
        "checkpointed_s": t_job,
        "overhead_ratio": ratio,
        "records_bit_identical": identical,
    }
    print(f"  direct {1e3 * t_direct:8.1f} ms   "
          f"checkpointed {1e3 * t_job:8.1f} ms   "
          f"ratio {ratio:4.2f}x   records "
          f"{'same' if identical else 'DIFFER'}")
    assert identical
    assert ratio <= CHECKPOINT_OVERHEAD_BOUND, ratio


def test_e26_resume_runs_only_missing_blocks():
    print("\nE26 — resume after crash re-runs only the missing blocks")
    compiled = qaoa_pattern()
    kw = dict(seed=SEED, backend="statevector", block_shots=BLOCK_SHOTS)
    n_blocks = len(plan_blocks(SHOTS, BLOCK_SHOTS))
    crash_at = n_blocks // 2
    with tempfile.TemporaryDirectory() as tmp:
        ref = run_checkpointed(
            compiled, SHOTS, job_dir=os.path.join(tmp, "ref"), **kw
        )
        sched = FaultSchedule([Fault("crash", "block", crash_at, 0)])
        try:
            run_checkpointed(
                compiled, SHOTS, job_dir=os.path.join(tmp, "job"),
                faults=sched, **kw
            )
        except InjectedCrash:
            pass
        t0 = time.perf_counter()
        resumed = run_checkpointed(
            compiled, SHOTS, job_dir=os.path.join(tmp, "job"), **kw
        )
        t_resume = time.perf_counter() - t0
    same = records_digest(resumed.run) == records_digest(ref.run)
    _RESULTS["resume"] = {
        "n_blocks": n_blocks,
        "crash_at_block": crash_at,
        "blocks_reused": len(resumed.blocks_reused),
        "blocks_rerun": len(resumed.blocks_run),
        "resume_s": t_resume,
        "digest_identical": same,
    }
    print(f"  {len(resumed.blocks_reused)}/{n_blocks} blocks reused, "
          f"{len(resumed.blocks_run)} re-run in {1e3 * t_resume:.1f} ms   "
          f"digest {'same' if same else 'DIFFER'}")
    assert resumed.blocks_reused == tuple(range(crash_at))
    assert same


def test_e26_supervised_integration_overhead_and_bit_identity():
    print("\nE26 — supervised sharded integration vs raw integrate")
    compiled = qaoa_pattern(4)
    noise = NoiseModel(p_prep=0.02, p_ent=0.02, p_meas=0.02)
    density = get_backend("density")
    t0 = time.perf_counter()
    raw = density.integrate(compiled, noise=noise, shards=2)
    t_raw = time.perf_counter() - t0
    t0 = time.perf_counter()
    sup = supervised_integrate(compiled, noise=noise, shards=2, backoff=0.0)
    t_sup = time.perf_counter() - t0
    ratio = t_sup / max(t_raw, 1e-9)
    identical = bool(np.array_equal(sup.rho._t, raw.rho._t))
    _RESULTS["supervision"] = {
        "shards": 2,
        "branches": sup.branches,
        "raw_s": t_raw,
        "supervised_s": t_sup,
        "overhead_ratio": ratio,
        "clean": sup.supervision.clean,
        "rho_bit_identical": identical,
    }
    print(f"  raw {1e3 * t_raw:8.1f} ms   supervised {1e3 * t_sup:8.1f} ms   "
          f"ratio {ratio:4.2f}x   rho "
          f"{'same' if identical else 'DIFFER'}")
    assert identical
    assert sup.supervision.clean
    assert ratio <= SUPERVISION_OVERHEAD_BOUND, ratio


def test_e26_emit_json():
    with open("BENCH_E26.json", "w") as fh:
        json.dump(_RESULTS, fh, indent=2)
    print("  wrote BENCH_E26.json")
