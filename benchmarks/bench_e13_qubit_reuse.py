"""E13 — Section III.A / ref. [51]: qubit reuse.

"The number of qubits required can be significantly reduced in some cases
by reusing qubits after measurement": under the eager schedule the live
register is depth-independent (~|V|+1), while the graph-first resource
state grows as |V| + p(|E|+2|V|).  Regenerates the live-qubit profile and
the reuse-factor table.
"""

import pytest

from repro.core import compile_qaoa_pattern, live_qubit_profile, peak_live_qubits
from repro.core.reuse import reuse_summary
from repro.problems import MaxCut


def reuse_rows():
    rows = []
    for name, qubo, v in [
        ("ring-6", MaxCut.ring(6).to_qubo(), 6),
        ("3reg-8", MaxCut.random_regular(3, 8, seed=2).to_qubo(), 8),
        ("K-5", MaxCut.complete(5).to_qubo(), 5),
    ]:
        for p in (1, 2, 4):
            eager = compile_qaoa_pattern(qubo, [0.1] * p, [0.1] * p, schedule="eager")
            total, peak, factor = reuse_summary(eager.pattern)
            rows.append(
                {
                    "instance": name,
                    "V": v,
                    "p": p,
                    "total_nodes": total,
                    "peak_live": peak,
                    "reuse_factor": factor,
                }
            )
    return rows


def test_e13_reuse_table(benchmark):
    rows = benchmark(reuse_rows)
    print("\nE13 — qubit reuse under eager measurement order")
    print(f"{'instance':>8} {'V':>3} {'p':>2} {'total':>6} {'peak_live':>9} {'reuse':>6}")
    for r in rows:
        print(
            f"{r['instance']:>8} {r['V']:>3} {r['p']:>2} {r['total_nodes']:>6} "
            f"{r['peak_live']:>9} {r['reuse_factor']:>6.2f}"
        )
    # Peak live is V+1 and independent of p on every instance.
    for r in rows:
        assert r["peak_live"] <= r["V"] + 2
    by_instance = {}
    for r in rows:
        by_instance.setdefault(r["instance"], set()).add(r["peak_live"])
    for peaks in by_instance.values():
        assert len(peaks) == 1  # depth-independent


def test_e13_profile_shape(benchmark):
    qubo = MaxCut.ring(5).to_qubo()
    compiled = compile_qaoa_pattern(qubo, [0.1] * 3, [0.1] * 3)
    prof = benchmark(live_qubit_profile, compiled.pattern)
    peak = max(prof)
    print(
        f"\nE13 — ring-5 p=3 live profile: length={len(prof)}, peak={peak}, "
        f"final={prof[-1]} (outputs)"
    )
    # Sawtooth between V and V+1 after warmup:
    assert peak == 6
    assert prof[-1] == 5


def test_e13_graph_first_contrast(benchmark):
    qubo = MaxCut.ring(5).to_qubo()

    def peaks():
        out = []
        for p in (1, 2, 4):
            gf = compile_qaoa_pattern(qubo, [0.1] * p, [0.1] * p, schedule="graph-first")
            out.append(peak_live_qubits(gf.pattern))
        return out

    gf_peaks = benchmark(peaks)
    print("\nE13 — graph-first peak live qubits vs p:", gf_peaks)
    v, e = 5, 5
    assert gf_peaks == [v + p * (e + 2 * v) for p in (1, 2, 4)]
