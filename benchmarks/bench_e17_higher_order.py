"""E17 — Section III: "straightforward to extend ... to higher-order
problems beyond quadratic".

Max-3-SAT through the full pipeline: cubic PUBO encoding, one hyperedge
gadget per term, branch-verified state preparation, and the generalized
resource counts ``N_Q ≤ p(#terms + 2|V|)``.
"""

import numpy as np
import pytest

from repro.core.hyper import compile_pubo_qaoa_pattern, pubo_resource_counts
from repro.core.verify import pattern_state_equals
from repro.problems.pubo import PUBO, MaxThreeSat
from repro.qaoa import grid_search_p1, qaoa_state
from repro.utils import int_to_bitstring


def test_e17_max3sat_pipeline(benchmark):
    sat = MaxThreeSat(4, [
        ((0, False), (1, True), (2, False)),
        ((1, False), (2, True), (3, False)),
        ((0, True), (2, False), (3, True)),
    ])
    pubo = sat.to_pubo()
    cost = pubo.energy_vector()
    res = grid_search_p1(cost, resolution=16)
    gammas, betas = res.gammas, res.betas

    def compile_and_verify():
        pattern = compile_pubo_qaoa_pattern(pubo, gammas, betas)
        target = qaoa_state(cost, gammas, betas)
        return pattern, pattern_state_equals(pattern, target, max_branches=16, seed=0)

    pattern, ok = benchmark(compile_and_verify)
    counts = pubo_resource_counts(pubo, p=1)
    print(
        f"\nE17 — Max-3-SAT (4 vars, 3 clauses): cubic PUBO with "
        f"{len(pubo.interaction_terms())} terms (max order {pubo.max_order});"
        f"\n      pattern: {pattern.num_nodes()} nodes "
        f"(= {counts['total_nodes']} predicted), "
        f"{len(pattern.entangling_edges())} CZs; state-equal: {ok}"
    )
    assert ok
    assert pattern.num_nodes() == counts["total_nodes"]


def test_e17_qaoa_solves_sat(benchmark):
    """Shape: QAOA sampling on the cubic encoding finds a maximally
    satisfying assignment."""
    sat = MaxThreeSat.random(6, 10, seed=4)
    pubo = sat.to_pubo()
    cost = pubo.energy_vector()

    def solve():
        res = grid_search_p1(cost, resolution=16)
        psi = qaoa_state(cost, res.gammas, res.betas)
        probs = np.abs(psi) ** 2
        rng = np.random.default_rng(0)
        samples = rng.choice(probs.size, size=256, p=probs / probs.sum())
        return max(sat.num_satisfied(int_to_bitstring(int(s), 6)) for s in samples)

    best_found = benchmark(solve)
    optimum = sat.max_satisfiable()
    print(f"\nE17 — best sampled satisfied clauses: {best_found}/{optimum} (10 clauses)")
    assert best_found >= optimum - 1


def test_e17_order_scaling(benchmark):
    """One ancilla per term at every order k (vs the naive CNOT-ladder
    circuit costing 2(k−1) CNOTs + compilation)."""

    def counts_by_order():
        rows = []
        for k in (2, 3, 4, 5):
            pubo = PUBO(k, {frozenset(range(k)): 1.0})
            c = pubo_resource_counts(pubo, p=1)
            rows.append((k, c["term_ancillas"], c["entanglers"] - 2 * k))
        return rows

    rows = benchmark(counts_by_order)
    print("\nE17 — hyperedge gadget footprint vs interaction order k")
    print("  k  ancillas/term  CZs/term")
    for k, anc, czs in rows:
        print(f"  {k}  {anc:>12}  {czs:>8}")
        assert anc == 1
        assert czs == k
