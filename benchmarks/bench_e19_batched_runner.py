"""E19 — batched pattern-execution engine vs sequential map extraction.

``pattern_to_matrix`` on a compiled QAOA pattern with ``k`` open inputs
needs all ``2^k`` input basis columns.  The sequential reference re-runs
the full pattern once per column; the batched engine
(:mod:`repro.mbqc.backend`) simulates the whole block in one vectorized
sweep over a :class:`~repro.sim.BatchedStateVector`.  This regenerates the
speedup table for p=1 QAOA instances and asserts the acceptance criterion:
≥ 5x on a 4-input pattern with outputs matching to 1e-9.
"""

import time

import numpy as np
import pytest

from repro.core import compile_qaoa_pattern
from repro.mbqc import pattern_to_matrix, pattern_to_matrix_sequential
from repro.problems import MaxCut

CASES = [
    ("ring-4-p1", MaxCut.ring(4).to_qubo(), 4),
    ("ring-5-p1", MaxCut.ring(5).to_qubo(), 5),
    ("3reg-6-p1", MaxCut.random_regular(3, 6, seed=3).to_qubo(), 6),
]


def _median_time(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def speedup_rows():
    rows = []
    for name, qubo, v in CASES:
        compiled = compile_qaoa_pattern(qubo, [0.37], [0.52], open_inputs=True)
        pat = compiled.pattern
        batched = pattern_to_matrix(pat)
        sequential = pattern_to_matrix_sequential(pat)
        max_diff = float(np.abs(batched - sequential).max())
        t_seq = _median_time(lambda: pattern_to_matrix_sequential(pat))
        t_bat = _median_time(lambda: pattern_to_matrix(pat))
        rows.append(
            {
                "instance": name,
                "inputs": v,
                "columns": 1 << v,
                "t_sequential_ms": 1e3 * t_seq,
                "t_batched_ms": 1e3 * t_bat,
                "speedup": t_seq / t_bat,
                "max_diff": max_diff,
            }
        )
    return rows


def test_e19_batched_speedup(benchmark):
    rows = benchmark(speedup_rows)
    print("\nE19 — batched vs sequential pattern_to_matrix (p=1 QAOA, open inputs)")
    print(
        f"{'instance':>10} {'k':>3} {'cols':>5} {'seq ms':>9} {'batch ms':>9} "
        f"{'speedup':>8} {'max diff':>10}"
    )
    for r in rows:
        print(
            f"{r['instance']:>10} {r['inputs']:>3} {r['columns']:>5} "
            f"{r['t_sequential_ms']:>9.2f} {r['t_batched_ms']:>9.2f} "
            f"{r['speedup']:>8.1f} {r['max_diff']:>10.2e}"
        )
    for r in rows:
        # Exact same engine semantics: branch outputs agree far below 1e-9.
        assert r["max_diff"] < 1e-9
    # Acceptance: >= 5x on the >= 4-input p=1 instances.
    for r in rows:
        if r["inputs"] >= 4:
            assert r["speedup"] >= 5.0, (r["instance"], r["speedup"])


def test_e19_branch_enumeration_amortizes_compile(benchmark):
    """Branch-exhaustive verification reuses one compiled program: the
    per-branch cost is a single batched sweep."""
    from repro.core.verify import check_pattern_determinism

    qubo = MaxCut(3, [(0, 1), (1, 2), (0, 2)]).to_qubo()
    compiled = compile_qaoa_pattern(qubo, [0.41], [0.23])

    ok = benchmark(
        lambda: check_pattern_determinism(compiled.pattern, max_branches=16, seed=7)
    )
    assert ok
