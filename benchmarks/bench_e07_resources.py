"""E7 — Section III.A: the resource-requirements comparison table.

Regenerates N_Q / N_E bounds vs exact compiled counts vs the gate-model
baseline across graph families and depths — the paper's central resource
discussion as one table.
"""

import pytest

from repro.core import estimate_resources, resource_table
from repro.core.resources import format_table
from repro.problems import MaxCut, MinVertexCover, NumberPartitioning
from repro.utils import grid_graph


def build_instances():
    n_grid, e_grid = grid_graph(2, 3)
    return [
        ("ring-6", MaxCut.ring(6).to_qubo()),
        ("3reg-8", MaxCut.random_regular(3, 8, seed=7).to_qubo()),
        ("K-5", MaxCut.complete(5).to_qubo()),
        ("grid-2x3", MaxCut(n_grid, e_grid).to_qubo()),
        ("vcover-ring5", MinVertexCover(5, MaxCut.ring(5).edges).to_qubo()),
        ("partition-6", NumberPartitioning.random(6, seed=3).to_qubo()),
    ]


def test_e07_resource_table(benchmark):
    instances = build_instances()
    rows = benchmark(resource_table, instances, [1, 2, 3])
    print("\nE7 — Section III.A resource comparison (MBQC vs gate model)")
    print(format_table(rows))
    for row in rows:
        # Exact ancilla count equals the bound (no-reuse convention)...
        assert row["NQ_exact"] - row["V"] == row["NQ_bound"]
        assert row["NE_exact"] == row["NE_bound"]
        # ...and the gate model needs fewer qubits but comparable entanglers.
        assert row["gate_qubits"] <= row["NQ_exact"]


def test_e07_scaling_in_p(benchmark):
    """Resources grow linearly in p (both models)."""
    qubo = MaxCut.ring(8).to_qubo()

    def reports():
        return [estimate_resources(qubo, p=p) for p in (1, 2, 4, 8)]

    reps = benchmark(reports)
    print("\nE7 — linear-in-p scaling (ring-8)")
    print("  p   MBQC nodes   MBQC CZs   gate CZs")
    for r in reps:
        print(f"  {r.p}   {r.total_nodes:>10}   {r.total_entanglers:>8}   {r.gate_model_entanglers:>8}")
    diffs_q = [reps[i + 1].total_nodes - 2 * reps[i].total_nodes + (reps[i].num_vertices) for i in range(0, 2)]
    # exact linearity: nodes(p) = V + p*(E+2V)
    v, e = 8, 8
    for r in reps:
        assert r.total_nodes == v + r.p * (e + 2 * v)
        assert r.gate_model_entanglers == 2 * r.p * e
