"""E4 — Eqs. (7)-(8): the phase-separation gadget.

Two artefacts: (i) the ZX phase-gadget identity Eq. (7) — the RZZ circuit
equals the gadget diagram; (ii) the Eq. (8) measurement gadget implements
``e^{iγ Z_u Z_v}`` deterministically, one ancilla per edge, across random γ
and every outcome branch.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.gadgets import WireTracker
from repro.core.verify import check_pattern_determinism, pattern_equals_unitary
from repro.linalg import proportionality_factor
from repro.sim import Circuit
from repro.zx import circuit_to_diagram, diagram_matrix, phase_gadget_diagram


def zz_exp(theta):
    return expm(1j * (theta / 2.0) * np.diag([1.0, -1.0, -1.0, 1.0]))


def test_e04_eq7_phase_gadget_diagram(benchmark):
    """Eq. (7): RZZ circuit == ZX phase gadget."""
    gamma = 0.73

    def both():
        gadget = diagram_matrix(phase_gadget_diagram(2, [(0, 1)], gamma))
        circuit = diagram_matrix(circuit_to_diagram(Circuit(2).rzz(0, 1, gamma)))
        return gadget, circuit

    gadget, circuit = benchmark(both)
    ok = proportionality_factor(gadget, circuit, atol=1e-8) is not None
    print("\nE4 — Eq. (7) phase gadget == RZZ circuit (ZX):", ok)
    assert ok


@pytest.mark.parametrize("gamma", [0.0, 0.37, -1.2, np.pi / 2, 2.9])
def test_e04_eq8_measurement_gadget(gamma, benchmark):
    """Eq. (8): the one-ancilla edge gadget implements e^{iγZZ} on every
    branch (γ-parameterized sweep)."""

    def build_and_verify():
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, -2.0 * gamma)  # e^{-i(2γ/2)... = e^{-iγZZ}
        p = tracker.finish()
        target = zz_exp(-2.0 * gamma)  # = e^{-iγ ZZ}... gadget(θ)=e^{iθ/2 ZZ}
        return pattern_equals_unitary(p, target) and check_pattern_determinism(p)

    ok = benchmark(build_and_verify)
    print(f"\nE4 — Eq. (8) gadget at γ={gamma:+.3f}: deterministic & correct: {ok}")
    assert ok


def test_e04_resource_per_edge(benchmark):
    """One ancilla and two CZs per edge — the Eq. (8) footprint."""

    def build():
        tracker = WireTracker.begin(2, open_inputs=True)
        tracker.edge_gadget(0, 1, 0.4)
        return tracker.finish()

    p = benchmark(build)
    print(
        f"\nE4 — per-edge footprint: nodes={p.num_nodes()} (2 wires + 1 ancilla), "
        f"CZs={len(p.entangling_edges())}"
    )
    assert p.num_nodes() == 3
    assert len(p.entangling_edges()) == 2
