"""E16 — Section III / ref. [49]: planarization by un-fusing nodes.

"The resource graph state ... is not a planar graph in general. However,
it can be compiled in a straight-forward way into planar graphs of the
target hardware via un-fusing nodes [49]."  Regenerates the degree-capping
table: max spider degree before/after, extra nodes paid, semantics intact.
"""

import pytest

from repro.linalg import proportionality_factor
from repro.utils import complete_graph, star_graph
from repro.zx import diagram_matrix, graph_state_diagram
from repro.zx.unfuse import cap_degree, max_spider_degree


def capping_rows(cap=3):
    rows = []
    for name, (n, edges) in [
        ("star-6", star_graph(6)),
        ("star-8", star_graph(8)),
        ("K-4", complete_graph(4)),
        ("K-5", complete_graph(5)),
    ]:
        d = graph_state_diagram(n, edges)
        before_deg = max_spider_degree(d)
        before_nodes = d.num_spiders()
        before_tensor = diagram_matrix(d) if n <= 6 else None
        splits = cap_degree(d, cap)
        row = {
            "graph": name,
            "deg_before": before_deg,
            "deg_after": max_spider_degree(d),
            "extra_nodes": d.num_spiders() - before_nodes,
            "splits": splits,
            "semantics_ok": True,
        }
        if before_tensor is not None:
            after = diagram_matrix(d)
            row["semantics_ok"] = (
                proportionality_factor(after, before_tensor, atol=1e-8) is not None
            )
        rows.append(row)
    return rows


def test_e16_degree_capping(benchmark):
    rows = benchmark(capping_rows, 3)
    print("\nE16 — un-fusing to degree ≤ 3 (ref. [49] planarization step)")
    print(f"{'graph':>7} {'deg before':>10} {'deg after':>9} {'extra nodes':>11} {'semantics':>9}")
    for r in rows:
        print(
            f"{r['graph']:>7} {r['deg_before']:>10} {r['deg_after']:>9} "
            f"{r['extra_nodes']:>11} {str(r['semantics_ok']):>9}"
        )
        assert r["deg_after"] <= 3
        assert r["semantics_ok"]
        assert r["extra_nodes"] == r["splits"]


def test_e16_cost_scales_with_excess_degree(benchmark):
    """Each split removes (cap−2) excess legs: extra nodes ≈
    excess/(cap−2) — linear overhead, as 'straight-forward' promises."""
    cap = 4

    def run():
        out = []
        for hub in (6, 10, 14):
            n, edges = star_graph(hub)
            d = graph_state_diagram(n, edges)
            out.append((hub, cap_degree(d, cap)))
        return out

    rows = benchmark(run)
    print("\nE16 — splits vs hub degree (cap=4)")
    for hub, splits in rows:
        # hub spider degree = (hub-1 edges) + 1 output = hub.
        excess = hub - cap
        expected = -(-excess // (cap - 2))  # ceil
        print(f"  star-{hub}: splits={splits}, ceil(excess/(cap-2))={expected}")
        assert splits == expected
