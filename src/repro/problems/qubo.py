"""QUBO and Ising cost models.

A QUBO instance is ``min_x  x^T Q x`` over ``x ∈ {0,1}^n`` with ``Q`` upper
triangular (diagonal = linear terms).  The equivalent Ising form
``c(s) = Σ_{i<j} J_ij s_i s_j + Σ_i h_i s_i + offset`` with ``s = 1 - 2x``
is what the QAOA phase operator consumes: quadratic Ising terms become the
paper's ``e^{iγ Z_u Z_v}`` factors and linear terms the ``e^{iγ Z_v}``
factors (Eq. 6), so :meth:`QUBO.to_ising` is the entry point of the
MBQC-QAOA compiler.

Cost-vector evaluation is fully vectorized (bit-matrix contraction) per the
hpc guides; it is the hot path of every expectation computed in the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int]


def _bits_matrix(n: int) -> np.ndarray:
    """``(2^n, n)`` little-endian bit matrix of all assignments."""
    if n > 26:
        raise ValueError("refusing to enumerate more than 2^26 assignments")
    idx = np.arange(1 << n, dtype=np.int64)
    return ((idx[:, None] >> np.arange(n)) & 1).astype(np.int8)


@dataclass
class IsingModel:
    """``c(s) = Σ_{i<j} J_ij s_i s_j + Σ_i h_i s_i + offset``, s ∈ {±1}^n."""

    num_spins: int
    couplings: Dict[Edge, float] = field(default_factory=dict)
    fields: Dict[int, float] = field(default_factory=dict)
    offset: float = 0.0

    def __post_init__(self) -> None:
        fixed: Dict[Edge, float] = {}
        for (u, v), w in self.couplings.items():
            if u == v:
                raise ValueError("Ising couplings must be off-diagonal")
            if not (0 <= u < self.num_spins and 0 <= v < self.num_spins):
                raise ValueError("spin index out of range")
            key = (u, v) if u < v else (v, u)
            fixed[key] = fixed.get(key, 0.0) + float(w)
        self.couplings = {k: w for k, w in fixed.items() if w != 0.0}
        for i in self.fields:
            if not 0 <= i < self.num_spins:
                raise ValueError("field index out of range")
        self.fields = {i: float(h) for i, h in self.fields.items() if h != 0.0}

    def interaction_graph(self) -> List[Edge]:
        """Edges with nonzero coupling — the resource-graph generator of
        the MBQC protocol (Section III)."""
        return sorted(self.couplings)

    def energy(self, spins: Sequence[int]) -> float:
        if len(spins) != self.num_spins:
            raise ValueError("spin vector length mismatch")
        if any(s not in (-1, 1) for s in spins):
            raise ValueError("spins must be ±1")
        e = self.offset
        for (u, v), w in self.couplings.items():
            e += w * spins[u] * spins[v]
        for i, h in self.fields.items():
            e += h * spins[i]
        return e

    def energy_vector(self) -> np.ndarray:
        """Energies of all ``2^n`` assignments, little-endian over bits
        ``x`` with ``s = 1 - 2x`` (so bit 0 ↦ spin +1)."""
        n = self.num_spins
        bits = _bits_matrix(n)
        spins = 1.0 - 2.0 * bits  # (2^n, n)
        e = np.full(1 << n, self.offset, dtype=np.float64)
        for (u, v), w in self.couplings.items():
            e += w * spins[:, u] * spins[:, v]
        for i, h in self.fields.items():
            e += h * spins[:, i]
        return e

    def to_qubo(self) -> "QUBO":
        """Inverse of :meth:`QUBO.to_ising` (exact round trip)."""
        n = self.num_spins
        quad: Dict[Edge, float] = {}
        lin = np.zeros(n)
        const = self.offset
        # s_i = 1 - 2 x_i:
        # J s_u s_v = J (1 - 2x_u)(1 - 2x_v) = J(1 - 2x_u - 2x_v + 4x_u x_v)
        for (u, v), w in self.couplings.items():
            quad[(u, v)] = quad.get((u, v), 0.0) + 4.0 * w
            lin[u] -= 2.0 * w
            lin[v] -= 2.0 * w
            const += w
        for i, h in self.fields.items():
            lin[i] -= 2.0 * h
            const += h
        return QUBO.from_terms(n, quad, lin, const)


@dataclass
class QUBO:
    """Quadratic unconstrained binary optimization instance.

    ``matrix`` is square upper-triangular; diagonal entries are linear
    coefficients.  ``constant`` is an additive offset carried through the
    Ising conversion (the paper absorbs constants into γ; we track them so
    objective values match the original problem exactly).
    """

    matrix: np.ndarray
    constant: float = 0.0

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError("QUBO matrix must be square")
        if np.any(np.tril(m, -1) != 0):
            # Fold lower triangle up rather than reject: Q and Q^T encode
            # the same form.
            upper = np.triu(m, 0) + np.tril(m, -1).T
            m = upper
        self.matrix = m

    @staticmethod
    def from_terms(
        n: int,
        quadratic: Optional[Mapping[Edge, float]] = None,
        linear: Optional[Sequence[float]] = None,
        constant: float = 0.0,
    ) -> "QUBO":
        m = np.zeros((n, n))
        for (u, v), w in (quadratic or {}).items():
            if u == v:
                m[u, u] += w  # x^2 = x on binaries: fold into linear
                continue
            a, b = (u, v) if u < v else (v, u)
            m[a, b] += w
        if linear is not None:
            if len(linear) != n:
                raise ValueError("linear term length mismatch")
            m[np.diag_indices(n)] += np.asarray(linear, dtype=np.float64)
        return QUBO(m, constant)

    @property
    def num_variables(self) -> int:
        return self.matrix.shape[0]

    def quadratic_terms(self) -> Dict[Edge, float]:
        n = self.num_variables
        iu = np.triu_indices(n, 1)
        return {
            (int(i), int(j)): float(self.matrix[i, j])
            for i, j in zip(*iu)
            if self.matrix[i, j] != 0.0
        }

    def linear_terms(self) -> np.ndarray:
        return np.diag(self.matrix).copy()

    def interaction_graph(self) -> List[Edge]:
        return sorted(self.quadratic_terms())

    def cost(self, x: Sequence[int]) -> float:
        xv = np.asarray(x, dtype=np.float64)
        if xv.shape != (self.num_variables,):
            raise ValueError("assignment length mismatch")
        if np.any((xv != 0) & (xv != 1)):
            raise ValueError("assignment must be binary")
        return float(xv @ self.matrix @ xv + self.constant)

    def cost_vector(self) -> np.ndarray:
        """Costs of all assignments, little-endian index order (vectorized)."""
        n = self.num_variables
        bits = _bits_matrix(n).astype(np.float64)
        # x Q x^T row-wise: (B Q) ⊙ B summed over columns.
        return np.einsum("ij,ij->i", bits @ self.matrix, bits) + self.constant

    def brute_force_minimum(self) -> Tuple[float, int]:
        """(min cost, argmin index) by exhaustive evaluation."""
        c = self.cost_vector()
        i = int(np.argmin(c))
        return float(c[i]), i

    def to_ising(self) -> IsingModel:
        """Substitute ``x = (1 - s)/2``; exact (round-trips with
        :meth:`IsingModel.to_qubo`)."""
        n = self.num_variables
        couplings: Dict[Edge, float] = {}
        fields: Dict[int, float] = {}
        offset = self.constant
        for (u, v), w in self.quadratic_terms().items():
            # w x_u x_v = w/4 (1 - s_u)(1 - s_v)
            couplings[(u, v)] = couplings.get((u, v), 0.0) + w / 4.0
            fields[u] = fields.get(u, 0.0) - w / 4.0
            fields[v] = fields.get(v, 0.0) - w / 4.0
            offset += w / 4.0
        for i, h in enumerate(self.linear_terms()):
            if h != 0.0:
                fields[i] = fields.get(i, 0.0) - h / 2.0
                offset += h / 2.0
        return IsingModel(n, couplings, fields, offset)

    def __add__(self, other: "QUBO") -> "QUBO":
        if other.num_variables != self.num_variables:
            raise ValueError("size mismatch")
        return QUBO(self.matrix + other.matrix, self.constant + other.constant)

    def scaled(self, factor: float) -> "QUBO":
        return QUBO(self.matrix * factor, self.constant * factor)
