"""MaxCut — the paper's running example (Section III).

Cost Hamiltonian ``C = |E|/2 · I − 1/2 Σ_{(ij)∈E} Z_i Z_j`` counts crossing
edges; QAOA *maximizes* the cut, so the minimization-form QUBO used by the
compiler is the negated cut.  Weighted graphs are supported (each edge term
scaled by its weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.problems.qubo import QUBO, IsingModel, _bits_matrix
from repro.utils.graphs import (
    Edge,
    complete_graph,
    cycle_graph,
    normalize_edges,
    random_regular_graph,
)
from repro.utils.rng import SeedLike


@dataclass
class MaxCut:
    """A (weighted) MaxCut instance on ``num_vertices`` vertices."""

    num_vertices: int
    edges: List[Edge]
    weights: Optional[Dict[Edge, float]] = None

    def __post_init__(self) -> None:
        self.edges = normalize_edges(self.edges)
        for u, v in self.edges:
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
                raise ValueError("edge endpoint out of range")
        if self.weights is not None:
            self.weights = {
                ((u, v) if u < v else (v, u)): float(w)
                for (u, v), w in self.weights.items()
            }
            missing = set(self.edges) - set(self.weights)
            if missing:
                raise ValueError(f"missing weights for edges {sorted(missing)}")

    # -- constructors --------------------------------------------------------
    @staticmethod
    def ring(n: int) -> "MaxCut":
        return MaxCut(*cycle_graph(n))

    @staticmethod
    def complete(n: int) -> "MaxCut":
        return MaxCut(*complete_graph(n))

    @staticmethod
    def random_regular(degree: int, n: int, seed: SeedLike = None) -> "MaxCut":
        return MaxCut(*random_regular_graph(degree, n, seed))

    # -- semantics -----------------------------------------------------------
    def weight(self, e: Edge) -> float:
        return 1.0 if self.weights is None else self.weights[e]

    def cut_value(self, x: Sequence[int]) -> float:
        if len(x) != self.num_vertices:
            raise ValueError("assignment length mismatch")
        return float(sum(self.weight(e) for e in self.edges if x[e[0]] != x[e[1]]))

    def cut_vector(self) -> np.ndarray:
        """Cut sizes of all ``2^n`` assignments (vectorized)."""
        n = self.num_vertices
        bits = _bits_matrix(n)
        out = np.zeros(1 << n, dtype=np.float64)
        for u, v in self.edges:
            out += self.weight((u, v)) * (bits[:, u] ^ bits[:, v])
        return out

    def max_cut_value(self) -> float:
        return float(self.cut_vector().max())

    def to_qubo(self) -> QUBO:
        """Minimization form: ``cost(x) = -cut(x)``.

        ``-cut = Σ_e w_e (2 x_u x_v - x_u - x_v)``.
        """
        quad: Dict[Edge, float] = {}
        lin = np.zeros(self.num_vertices)
        for e in self.edges:
            w = self.weight(e)
            quad[e] = quad.get(e, 0.0) + 2.0 * w
            lin[e[0]] -= w
            lin[e[1]] -= w
        return QUBO.from_terms(self.num_vertices, quad, lin, 0.0)

    def cost_hamiltonian(self) -> IsingModel:
        """The paper's ``C = |E|/2 − 1/2 Σ Z_i Z_j`` (maximization form,
        eigenvalue = cut size), for direct comparison with Section III."""
        couplings = {e: -self.weight(e) / 2.0 for e in self.edges}
        offset = sum(self.weight(e) for e in self.edges) / 2.0
        return IsingModel(self.num_vertices, couplings, {}, offset)

    def approximation_ratio(self, expected_cut: float) -> float:
        best = self.max_cut_value()
        if best == 0:
            return 1.0
        return expected_cut / best


@dataclass
class MaxKCut:
    """Max-k-Cut in one-hot encoding (ref [19] considered the MBQC-native
    version of this problem; we include it for the Section V experiments).

    Vertex ``v`` gets qubits ``v*k .. v*k+k-1``; feasible states are one-hot
    per vertex; the objective counts edges whose endpoints take different
    colors.
    """

    num_vertices: int
    edges: List[Edge]
    k: int = 3

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("need at least 2 colors")
        self.edges = normalize_edges(self.edges)

    @property
    def num_qubits(self) -> int:
        return self.num_vertices * self.k

    def qubit(self, vertex: int, color: int) -> int:
        if not (0 <= vertex < self.num_vertices and 0 <= color < self.k):
            raise ValueError("vertex/color out of range")
        return vertex * self.k + color

    def is_feasible(self, x: Sequence[int]) -> bool:
        """One-hot constraint per vertex."""
        if len(x) != self.num_qubits:
            raise ValueError("assignment length mismatch")
        for v in range(self.num_vertices):
            if sum(x[self.qubit(v, c)] for c in range(self.k)) != 1:
                return False
        return True

    def coloring_of(self, x: Sequence[int]) -> List[int]:
        if not self.is_feasible(x):
            raise ValueError("assignment is not one-hot feasible")
        return [
            next(c for c in range(self.k) if x[self.qubit(v, c)])
            for v in range(self.num_vertices)
        ]

    def cut_of_coloring(self, colors: Sequence[int]) -> int:
        return sum(1 for u, v in self.edges if colors[u] != colors[v])

    def cost_vector(self) -> np.ndarray:
        """Minimization cost over all assignments: −(cut) on feasible
        states; infeasible states get +num_edges+1 (never optimal) so that
        penalty-free constrained mixers can be validated against it."""
        n = self.num_qubits
        bits = _bits_matrix(n)
        cost = np.zeros(1 << n, dtype=np.float64)
        feas = np.ones(1 << n, dtype=bool)
        for v in range(self.num_vertices):
            cols = [self.qubit(v, c) for c in range(self.k)]
            feas &= bits[:, cols].sum(axis=1) == 1
        for u, v in self.edges:
            same = np.zeros(1 << n, dtype=bool)
            for c in range(self.k):
                same |= (bits[:, self.qubit(u, c)] == 1) & (bits[:, self.qubit(v, c)] == 1)
            cost -= (~same).astype(np.float64)
        cost[~feas] = len(self.edges) + 1.0
        return cost
