"""Graph coloring in one-hot encoding (Section V: XY-mixer problems).

Feasible states assign each vertex exactly one of ``k`` colors (one-hot over
its qubit block); the objective counts monochromatic edges (to minimize;
zero iff proper coloring).  XY partial mixers ``e^{iβ(XX+YY)}`` preserve the
one-hot (Hamming-weight-1) subspace of each block, which is the Section V
claim exercised in experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.problems.qubo import _bits_matrix
from repro.utils.graphs import Edge, normalize_edges


@dataclass
class GraphColoring:
    """k-coloring instance; qubit ``v*k + c`` means "vertex v has color c"."""

    num_vertices: int
    edges: List[Edge]
    k: int

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("need at least 2 colors")
        self.edges = normalize_edges(self.edges)

    @property
    def num_qubits(self) -> int:
        return self.num_vertices * self.k

    def qubit(self, vertex: int, color: int) -> int:
        if not (0 <= vertex < self.num_vertices and 0 <= color < self.k):
            raise ValueError("vertex/color out of range")
        return vertex * self.k + color

    def blocks(self) -> List[List[int]]:
        """One-hot qubit blocks, one per vertex."""
        return [
            [self.qubit(v, c) for c in range(self.k)]
            for v in range(self.num_vertices)
        ]

    def is_feasible(self, x: Sequence[int]) -> bool:
        if len(x) != self.num_qubits:
            raise ValueError("assignment length mismatch")
        return all(sum(x[q] for q in block) == 1 for block in self.blocks())

    def conflict_count(self, x: Sequence[int]) -> int:
        """Monochromatic edges of a feasible assignment."""
        if not self.is_feasible(x):
            raise ValueError("assignment is not one-hot feasible")
        colors = [
            next(c for c in range(self.k) if x[self.qubit(v, c)])
            for v in range(self.num_vertices)
        ]
        return sum(1 for u, v in self.edges if colors[u] == colors[v])

    def feasibility_mask(self) -> np.ndarray:
        bits = _bits_matrix(self.num_qubits)
        ok = np.ones(1 << self.num_qubits, dtype=bool)
        for block in self.blocks():
            ok &= bits[:, block].sum(axis=1) == 1
        return ok

    def cost_vector(self) -> np.ndarray:
        """Monochromatic-edge count extended to all assignments via the
        quadratic form Σ_e Σ_c x_{u,c} x_{v,c} (penalty-free)."""
        bits = _bits_matrix(self.num_qubits).astype(np.float64)
        cost = np.zeros(1 << self.num_qubits)
        for u, v in self.edges:
            for c in range(self.k):
                cost += bits[:, self.qubit(u, c)] * bits[:, self.qubit(v, c)]
        return cost

    def initial_feasible_state(self) -> List[int]:
        """All vertices colored 0 — a trivially feasible warm start."""
        x = [0] * self.num_qubits
        for v in range(self.num_vertices):
            x[self.qubit(v, 0)] = 1
        return x
