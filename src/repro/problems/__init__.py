"""Combinatorial optimization problems.

The paper targets the QUBO class (Section III) — "a wide variety of
optimization problems can be mapped to QUBO problems [39], [48]" — plus
constrained problems handled natively by alternating-operator mixers
(Sections IV-V).  This package provides the QUBO/Ising core and the concrete
problems used across the experiments: MaxCut (the paper's running example),
maximum independent set (Section IV), graph coloring / Max-k-Cut for the XY
mixers of Section V, and two further Lucas-style encodings (number
partitioning, minimum vertex cover) exercising general QUBOs with linear
terms.
"""

from repro.problems.qubo import QUBO, IsingModel
from repro.problems.maxcut import MaxCut, MaxKCut
from repro.problems.mis import MaximumIndependentSet
from repro.problems.coloring import GraphColoring
from repro.problems.partition import NumberPartitioning
from repro.problems.vertex_cover import MinVertexCover

__all__ = [
    "QUBO",
    "IsingModel",
    "MaxCut",
    "MaxKCut",
    "MaximumIndependentSet",
    "GraphColoring",
    "NumberPartitioning",
    "MinVertexCover",
]
