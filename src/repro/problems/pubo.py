"""Polynomial (higher-order) unconstrained binary optimization.

Section III of the paper: "it is straightforward to extend our
constructions here to QAOA for higher-order problems beyond quadratic."
This module provides the problem side of that extension: cost functions
that are polynomials over ±1 spins (multi-linear in Z operators), e.g.
Max-3-SAT or hypergraph cuts, with the same vectorized cost-vector
interface the QAOA stack consumes.  The compiler side is
:meth:`repro.core.gadgets.WireTracker.hyperedge_gadget` /
:func:`repro.core.hyper.compile_pubo_qaoa_pattern`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.problems.qubo import _bits_matrix
from repro.utils.rng import SeedLike, ensure_rng

Term = FrozenSet[int]


@dataclass
class PUBO:
    """``c(s) = Σ_T w_T Π_{i∈T} s_i`` over spins ``s ∈ {±1}^n``.

    ``terms`` maps frozensets of spin indices to weights; the empty set is
    the constant offset.  This is the spin (Ising-like) form — each term is
    a single ``e^{iγ w Z_T}`` factor in the QAOA phase separator, realized
    by one hyperedge gadget.
    """

    num_spins: int
    terms: Dict[Term, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        fixed: Dict[Term, float] = {}
        for t, w in self.terms.items():
            key = frozenset(t)
            if any(i < 0 or i >= self.num_spins for i in key):
                raise ValueError("spin index out of range")
            fixed[key] = fixed.get(key, 0.0) + float(w)
        self.terms = {t: w for t, w in fixed.items() if w != 0.0 or t == frozenset()}

    @property
    def max_order(self) -> int:
        return max((len(t) for t in self.terms), default=0)

    def interaction_terms(self) -> List[Tuple[Term, float]]:
        """Non-constant terms sorted by (order, indices)."""
        return sorted(
            ((t, w) for t, w in self.terms.items() if t),
            key=lambda tw: (len(tw[0]), sorted(tw[0])),
        )

    def energy(self, spins: Sequence[int]) -> float:
        if len(spins) != self.num_spins:
            raise ValueError("spin vector length mismatch")
        if any(s not in (-1, 1) for s in spins):
            raise ValueError("spins must be ±1")
        e = 0.0
        for t, w in self.terms.items():
            prod = 1
            for i in t:
                prod *= spins[i]
            e += w * prod
        return e

    def energy_vector(self) -> np.ndarray:
        """Vectorized energies over all assignments (little-endian bits,
        ``s = 1 − 2x``)."""
        n = self.num_spins
        bits = _bits_matrix(n)
        spins = 1.0 - 2.0 * bits
        e = np.zeros(1 << n, dtype=np.float64)
        for t, w in self.terms.items():
            if not t:
                e += w
                continue
            prod = np.ones(1 << n)
            for i in t:
                prod = prod * spins[:, i]
            e += w * prod
        return e

    def brute_force_minimum(self) -> Tuple[float, int]:
        ev = self.energy_vector()
        i = int(np.argmin(ev))
        return float(ev[i]), i


@dataclass
class MaxThreeSat:
    """Max-3-SAT: clauses of three literals; maximize satisfied clauses.

    ``clauses`` hold (variable, negated) triples.  Spin encoding with
    ``σ = 1 − 2x`` (x=1 ⇒ σ=−1): a clause is *unsatisfied* iff every
    literal is false, i.e. ``unsat = Π_i (1 + a_i σ_i)/2`` with ``a_i = +1``
    for a positive literal (false ⇔ σ=+1) and ``a_i = −1`` for a negated
    one — a cubic spin polynomial, 8 monomials per clause.
    """

    num_variables: int
    clauses: List[Tuple[Tuple[int, bool], Tuple[int, bool], Tuple[int, bool]]]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            vars_ = [v for v, _ in clause]
            if len(set(vars_)) != 3:
                raise ValueError("clauses need three distinct variables")
            if any(v < 0 or v >= self.num_variables for v in vars_):
                raise ValueError("variable index out of range")

    @staticmethod
    def random(
        num_variables: int, num_clauses: int, seed: SeedLike = None
    ) -> "MaxThreeSat":
        rng = ensure_rng(seed)
        clauses = []
        for _ in range(num_clauses):
            vars_ = rng.choice(num_variables, size=3, replace=False)
            negs = rng.integers(2, size=3).astype(bool)
            clauses.append(tuple((int(v), bool(ng)) for v, ng in zip(vars_, negs)))
        return MaxThreeSat(num_variables, clauses)

    def num_satisfied(self, x: Sequence[int]) -> int:
        if len(x) != self.num_variables:
            raise ValueError("assignment length mismatch")
        count = 0
        for clause in self.clauses:
            ok = False
            for v, negated in clause:
                lit = (not x[v]) if negated else bool(x[v])
                if lit:
                    ok = True
                    break
            count += ok
        return count

    def max_satisfiable(self) -> int:
        n = self.num_variables
        bits = _bits_matrix(n)
        # Vectorized clause evaluation.
        sat = np.zeros(1 << n, dtype=np.int64)
        for clause in self.clauses:
            clause_sat = np.zeros(1 << n, dtype=bool)
            for v, negated in clause:
                lit = bits[:, v] == (0 if negated else 1)
                clause_sat |= lit
            sat += clause_sat
        return int(sat.max())

    def to_pubo(self) -> PUBO:
        """Minimization form: number of *unsatisfied* clauses as a cubic
        spin polynomial (each clause contributes 8 monomials / 2^3)."""
        terms: Dict[Term, float] = {}

        def add(t: Term, w: float) -> None:
            terms[t] = terms.get(t, 0.0) + w

        for clause in self.clauses:
            # unsat = Π_i (1 + a_i σ_i)/2, a_i = +1 for a positive literal.
            signs = [(v, -1.0 if negated else 1.0) for v, negated in clause]
            for mask in range(8):
                subset = [signs[i] for i in range(3) if (mask >> i) & 1]
                w = 1.0 / 8.0
                idxs = []
                for v, a in subset:
                    w *= a
                    idxs.append(v)
                add(frozenset(idxs), w)
        return PUBO(self.num_variables, terms)
