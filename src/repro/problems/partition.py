"""Number partitioning (Lucas 2014, §2.1) — a fully-connected Ising model.

Split numbers ``a_1..a_n`` into two sets with minimal difference:
``c(s) = (Σ_i a_i s_i)^2 = Σ_i a_i^2 + 2 Σ_{i<j} a_i a_j s_i s_j``.
A dense-interaction workload for the resource experiments (E7): its MBQC
resource graph is the complete graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.problems.qubo import QUBO, IsingModel
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class NumberPartitioning:
    """Partition instance over positive numbers."""

    numbers: List[float]

    def __post_init__(self) -> None:
        if not self.numbers:
            raise ValueError("need at least one number")
        if any(a <= 0 for a in self.numbers):
            raise ValueError("numbers must be positive")
        self.numbers = [float(a) for a in self.numbers]

    @staticmethod
    def random(n: int, seed: SeedLike = None, high: int = 20) -> "NumberPartitioning":
        rng = ensure_rng(seed)
        return NumberPartitioning(list(rng.integers(1, high, size=n).astype(float)))

    @property
    def num_variables(self) -> int:
        return len(self.numbers)

    def difference(self, x: Sequence[int]) -> float:
        """|sum(set 0) − sum(set 1)| for the bipartition encoded by x."""
        if len(x) != self.num_variables:
            raise ValueError("assignment length mismatch")
        s0 = sum(a for a, b in zip(self.numbers, x) if b == 0)
        s1 = sum(a for a, b in zip(self.numbers, x) if b == 1)
        return abs(s0 - s1)

    def to_ising(self) -> IsingModel:
        n = self.num_variables
        a = np.asarray(self.numbers)
        couplings = {
            (i, j): 2.0 * a[i] * a[j] for i in range(n) for j in range(i + 1, n)
        }
        return IsingModel(n, couplings, {}, float((a**2).sum()))

    def to_qubo(self) -> QUBO:
        return self.to_ising().to_qubo()

    def best_difference(self) -> float:
        """Brute-force optimum: min over assignments of the difference."""
        q = self.to_qubo()
        best, _ = q.brute_force_minimum()
        # cost = (difference)^2
        return float(np.sqrt(max(best, 0.0)))
