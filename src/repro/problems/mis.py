"""Maximum independent set (Section IV of the paper).

Two routes to QAOA:

1. **Penalty QUBO** (Section V route): ``cost(x) = -Σ x_i + A Σ_{(uv)∈E}
   x_u x_v`` with ``A > 1`` — compiled like any QUBO through the MBQC-QAOA
   pipeline of Section III;
2. **Constrained mixer** (Section IV route): the partial mixer
   ``U_v(β) = Λ_{N(v)}(e^{iβX_v})`` only moves amplitude between independent
   sets, so hard constraints are *never violated* — the point of the
   quantum alternating operator ansatz.  Feasibility helpers here back the
   E9 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.problems.qubo import QUBO, _bits_matrix
from repro.utils.graphs import Edge, erdos_renyi_graph, normalize_edges
from repro.utils.rng import SeedLike


@dataclass
class MaximumIndependentSet:
    """MIS instance on a graph."""

    num_vertices: int
    edges: List[Edge]

    def __post_init__(self) -> None:
        self.edges = normalize_edges(self.edges)
        for u, v in self.edges:
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
                raise ValueError("edge endpoint out of range")

    @staticmethod
    def random(n: int, prob: float, seed: SeedLike = None) -> "MaximumIndependentSet":
        return MaximumIndependentSet(*erdos_renyi_graph(n, prob, seed))

    def neighborhood(self, v: int) -> List[int]:
        out = []
        for a, b in self.edges:
            if a == v:
                out.append(b)
            elif b == v:
                out.append(a)
        return sorted(out)

    def is_independent(self, x: Sequence[int]) -> bool:
        if len(x) != self.num_vertices:
            raise ValueError("assignment length mismatch")
        return all(not (x[u] and x[v]) for u, v in self.edges)

    def set_size(self, x: Sequence[int]) -> int:
        return int(sum(x))

    def feasibility_mask(self) -> np.ndarray:
        """Boolean vector over all assignments: True iff independent."""
        n = self.num_vertices
        bits = _bits_matrix(n)
        ok = np.ones(1 << n, dtype=bool)
        for u, v in self.edges:
            ok &= ~((bits[:, u] == 1) & (bits[:, v] == 1))
        return ok

    def size_vector(self) -> np.ndarray:
        return _bits_matrix(self.num_vertices).sum(axis=1).astype(np.float64)

    def maximum_independent_set_size(self) -> int:
        mask = self.feasibility_mask()
        return int(self.size_vector()[mask].max())

    def to_penalty_qubo(self, penalty: float = 2.0) -> QUBO:
        """``-Σ x_i + A Σ_{(uv)} x_u x_v``; any ``A > 1`` makes the optima
        exactly the maximum independent sets (Lucas 2014)."""
        if penalty <= 1.0:
            raise ValueError("penalty must exceed 1 for exactness")
        quad = {e: penalty for e in self.edges}
        lin = -np.ones(self.num_vertices)
        return QUBO.from_terms(self.num_vertices, quad, lin, 0.0)

    def greedy_independent_set(self, seed: SeedLike = None) -> List[int]:
        """Classical warm start for the Section IV initial state: greedy by
        (randomized) degree order."""
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        order = list(rng.permutation(self.num_vertices))
        nbrs: Dict[int, set] = {v: set(self.neighborhood(v)) for v in range(self.num_vertices)}
        chosen: List[int] = []
        blocked: set = set()
        for v in order:
            if v not in blocked:
                chosen.append(int(v))
                blocked |= nbrs[v] | {v}
        x = [0] * self.num_vertices
        for v in chosen:
            x[v] = 1
        assert self.is_independent(x)
        return x
