"""Minimum vertex cover (Lucas 2014, §4.3).

``cost(x) = Σ_i x_i + A Σ_{(uv)∈E} (1 - x_u)(1 - x_v)`` with ``A > 1``:
minimize cover size subject to every edge being covered.  A QUBO with both
linear and quadratic terms — exercising the general-QUBO path of the
MBQC-QAOA compiler (the Eq. 12 case with nonzero γ' wires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.problems.qubo import QUBO, _bits_matrix
from repro.utils.graphs import Edge, normalize_edges


@dataclass
class MinVertexCover:
    """Vertex cover instance."""

    num_vertices: int
    edges: List[Edge]

    def __post_init__(self) -> None:
        self.edges = normalize_edges(self.edges)
        for u, v in self.edges:
            if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
                raise ValueError("edge endpoint out of range")

    def is_cover(self, x: Sequence[int]) -> bool:
        if len(x) != self.num_vertices:
            raise ValueError("assignment length mismatch")
        return all(x[u] or x[v] for u, v in self.edges)

    def cover_size(self, x: Sequence[int]) -> int:
        return int(sum(x))

    def minimum_cover_size(self) -> int:
        n = self.num_vertices
        bits = _bits_matrix(n)
        ok = np.ones(1 << n, dtype=bool)
        for u, v in self.edges:
            ok &= (bits[:, u] == 1) | (bits[:, v] == 1)
        sizes = bits.sum(axis=1)
        return int(sizes[ok].min())

    def to_qubo(self, penalty: float = 2.0) -> QUBO:
        if penalty <= 1.0:
            raise ValueError("penalty must exceed 1 for exactness")
        quad: Dict[Edge, float] = {}
        lin = np.ones(self.num_vertices)
        const = 0.0
        for u, v in self.edges:
            # A (1 - x_u)(1 - x_v) = A (1 - x_u - x_v + x_u x_v)
            const += penalty
            lin[u] -= penalty
            lin[v] -= penalty
            quad[(u, v)] = quad.get((u, v), 0.0) + penalty
        return QUBO.from_terms(self.num_vertices, quad, lin, const)
