"""Seeded random number generation helpers.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion keeps experiment
scripts reproducible with a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` or
        :class:`numpy.random.SeedSequence` for a deterministic stream, or an
        existing generator which is returned unchanged (so callers can thread
        one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: Union[int, np.random.SeedSequence], n: int) -> tuple:
    """``n`` independent child :class:`numpy.random.SeedSequence` streams of
    one root seed.

    The derivation is a pure function of ``(seed, n-index)``: child ``i`` is
    the same stream no matter which process spawns it or in which order —
    the property the checkpointed shot-block executor
    (:mod:`repro.exec.checkpoint`) relies on to re-run only the missing
    blocks of a crashed job and still reproduce the uninterrupted record
    stream bit for bit."""
    root = (
        seed if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return tuple(root.spawn(int(n)))
