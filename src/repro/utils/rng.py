"""Seeded random number generation helpers.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion keeps experiment
scripts reproducible with a single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing generator which is returned unchanged (so callers can thread
        one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
