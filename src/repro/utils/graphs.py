"""Graph workload generators.

The paper's protocols are parameterized by the *interaction graph* of the
cost Hamiltonian; these generators provide the graph families used across
the experiment harness (EXPERIMENTS.md, E6/E7/E9-E13).  All functions return
``(n, edges)`` where edges are canonicalized ``(u, v)`` with ``u < v``, plus
optionally a weight map, instead of a networkx object: the simulators and
compilers only ever need the edge list, and a plain representation keeps the
hot paths allocation-free.  networkx is still used internally where its
algorithms help (random regular graphs).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.utils.rng import SeedLike, ensure_rng

Edge = Tuple[int, int]


def normalize_edges(edges: Sequence[Tuple[int, int]]) -> List[Edge]:
    """Canonicalize an edge list: sorted endpoints, no self-loops, no dups.

    Raises ``ValueError`` on self-loops since none of the Hamiltonians here
    admit them (``Z_u Z_u = I`` would silently change the cost otherwise).
    """
    seen = set()
    out: List[Edge] = []
    for u, v in edges:
        if u == v:
            raise ValueError(f"self-loop ({u},{v}) not allowed")
        e = (u, v) if u < v else (v, u)
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


def path_graph(n: int) -> Tuple[int, List[Edge]]:
    """Path on ``n`` vertices: 0-1-2-...-(n-1)."""
    if n < 1:
        raise ValueError("need at least one vertex")
    return n, [(i, i + 1) for i in range(n - 1)]


def cycle_graph(n: int) -> Tuple[int, List[Edge]]:
    """Ring on ``n >= 3`` vertices; the standard QAOA benchmark graph."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    return n, normalize_edges([(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Tuple[int, List[Edge]]:
    """Complete graph K_n (dense QUBO / SK-model style workloads)."""
    if n < 1:
        raise ValueError("need at least one vertex")
    return n, [(i, j) for i in range(n) for j in range(i + 1, n)]


def star_graph(n: int) -> Tuple[int, List[Edge]]:
    """Star with center 0 and ``n-1`` leaves (max-degree stress case)."""
    if n < 2:
        raise ValueError("star needs at least 2 vertices")
    return n, [(0, i) for i in range(1, n)]


def grid_graph(rows: int, cols: int) -> Tuple[int, List[Edge]]:
    """``rows x cols`` square lattice; vertex (r,c) -> r*cols + c.

    Planar, matching the hardware-motivated cluster-state geometries
    discussed in Section II.B of the paper.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return rows * cols, edges


def erdos_renyi_graph(n: int, prob: float, seed: SeedLike = None) -> Tuple[int, List[Edge]]:
    """G(n, p) random graph with explicit seeding."""
    if not 0.0 <= prob <= 1.0:
        raise ValueError("prob must be in [0, 1]")
    rng = ensure_rng(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < prob
    ]
    return n, edges


def random_regular_graph(degree: int, n: int, seed: SeedLike = None) -> Tuple[int, List[Edge]]:
    """Random ``degree``-regular graph on ``n`` vertices (3-regular MaxCut
    instances are the canonical QAOA evaluation family)."""
    rng = ensure_rng(seed)
    g = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31 - 1)))
    return n, normalize_edges(list(g.edges()))


def random_weighted_graph(
    n: int,
    prob: float,
    seed: SeedLike = None,
    low: float = -1.0,
    high: float = 1.0,
) -> Tuple[int, List[Edge], Dict[Edge, float]]:
    """Random graph with uniform edge weights in ``[low, high)``.

    Used to generate generic QUBO instances (weighted quadratic terms).
    """
    rng = ensure_rng(seed)
    _, edges = erdos_renyi_graph(n, prob, rng)
    weights = {e: float(rng.uniform(low, high)) for e in edges}
    return n, edges, weights
