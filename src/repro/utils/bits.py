"""Bit-level helpers shared by simulators, cost functions and samplers.

Conventions
-----------
The library is *little-endian*: a basis state index ``x`` encodes qubit ``i``
in bit ``i``, i.e. ``x = sum_i x_i * 2**i``.  Bitstrings as Python tuples are
ordered ``(x_0, x_1, ..., x_{n-1})``.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np


def int_to_bitstring(x: int, n: int) -> Tuple[int, ...]:
    """Expand integer ``x`` into an ``n``-tuple of bits, little-endian.

    >>> int_to_bitstring(6, 4)
    (0, 1, 1, 0)
    """
    if x < 0 or x >= (1 << n):
        raise ValueError(f"index {x} out of range for {n} bits")
    return tuple((x >> i) & 1 for i in range(n))


def bitstring_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bitstring`.

    >>> bitstring_to_int((0, 1, 1, 0))
    6
    """
    x = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit {i} is {b!r}, expected 0 or 1")
        x |= b << i
    return x


def iter_bitstrings(n: int) -> Iterator[Tuple[int, ...]]:
    """Iterate all ``2**n`` little-endian bitstrings in index order."""
    for x in range(1 << n):
        yield int_to_bitstring(x, n)


def hamming_weight(x: int) -> int:
    """Population count of a non-negative integer."""
    if x < 0:
        raise ValueError("hamming_weight expects a non-negative integer")
    return bin(x).count("1")


def bit_parity(x: int) -> int:
    """Parity (mod-2 popcount) of a non-negative integer."""
    return hamming_weight(x) & 1


def popcount_vector(n: int) -> np.ndarray:
    """Vector of Hamming weights of ``0..2**n-1``.

    Computed by doubling: ``w[2k] = w[k]``, ``w[2k+1] = w[k]+1``.  Used to
    vectorize diagonal Hamiltonians such as the transverse-field mixer
    spectrum and one-hot penalty counts.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    w = np.zeros(1, dtype=np.int64)
    for _ in range(n):
        w = np.concatenate([w, w + 1])
    return w
