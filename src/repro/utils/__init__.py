"""General utilities: seeded RNG helpers, graph workload generators, bit tricks.

These are the workload-generation substrate for every experiment in
``EXPERIMENTS.md``: the paper's protocols are parameterized by an interaction
graph, so reproducible graph families (rings, grids, random regular,
Erdos--Renyi, complete) are provided here with explicit seeding.
"""

from repro.utils.bits import (
    bit_parity,
    bitstring_to_int,
    hamming_weight,
    int_to_bitstring,
    iter_bitstrings,
    popcount_vector,
)
from repro.utils.graphs import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    normalize_edges,
    path_graph,
    random_regular_graph,
    random_weighted_graph,
    star_graph,
)
from repro.utils.rng import ensure_rng

__all__ = [
    "bit_parity",
    "bitstring_to_int",
    "hamming_weight",
    "int_to_bitstring",
    "iter_bitstrings",
    "popcount_vector",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "normalize_edges",
    "path_graph",
    "random_regular_graph",
    "random_weighted_graph",
    "star_graph",
    "ensure_rng",
]
