"""Measurement patterns and their standardization.

A :class:`Pattern` is an ordered command list over integer node ids, with
designated input and output nodes.  Validation enforces the well-formedness
rules of the measurement calculus — in particular *causality*: a
measurement's signal domains may only reference nodes measured strictly
earlier, which is exactly the paper's requirement that "each measurement can
only depend on measurement outcomes from earlier in the sequence".

:func:`standardize` rewrites a pattern into NEMC normal form (all
preparations, then entanglers, then measurements, then corrections on
outputs) using the command commutation relations; corrections passing
through entanglers generate byproducts (``CZ·X_i = X_i Z_j·CZ``) and
corrections hitting their node's measurement are absorbed into its signal
domains via the plane-dependent table:

=====  ====================  ====================
plane  X-correction          Z-correction
=====  ====================  ====================
XY     s-domain (sign)       t-domain (+π)
YZ     t-domain (+π)         s-domain (sign)
XZ     s- and t-domain       s-domain (sign)
=====  ====================  ====================

These entries are verified against the simulator in
``tests/test_mbqc_pattern.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple, Union

PLANES = ("XY", "YZ", "XZ")

STATE_LABELS = ("plus", "minus", "zero", "one")


class PatternError(ValueError):
    """Raised for malformed or non-causal patterns."""


def _dom(nodes: Iterable[int] = ()) -> FrozenSet[int]:
    return frozenset(nodes)


@dataclass(frozen=True)
class CommandN:
    """Prepare ``node`` in a product state (default ``|+>``)."""

    node: int
    state: str = "plus"

    def __post_init__(self) -> None:
        if self.state not in STATE_LABELS:
            raise PatternError(f"unknown preparation state {self.state!r}")


@dataclass(frozen=True)
class CommandE:
    """Entangle two nodes with CZ."""

    nodes: Tuple[int, int]

    def __post_init__(self) -> None:
        u, v = self.nodes
        if u == v:
            raise PatternError("cannot entangle a node with itself")
        if u > v:
            object.__setattr__(self, "nodes", (v, u))


@dataclass(frozen=True)
class CommandM:
    """Adaptive measurement of ``node``.

    Effective angle is ``(-1)^s * angle + t*π`` where ``s``/``t`` are the
    parities of the recorded outcomes over ``s_domain``/``t_domain``.
    """

    node: int
    plane: str = "XY"
    angle: float = 0.0
    s_domain: FrozenSet[int] = field(default_factory=frozenset)
    t_domain: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.plane not in PLANES:
            raise PatternError(f"unknown measurement plane {self.plane!r}")
        object.__setattr__(self, "s_domain", frozenset(self.s_domain))
        object.__setattr__(self, "t_domain", frozenset(self.t_domain))


@dataclass(frozen=True)
class CommandX:
    """Apply Pauli X to ``node`` iff the parity over ``domain`` is odd."""

    node: int
    domain: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", frozenset(self.domain))


@dataclass(frozen=True)
class CommandZ:
    """Apply Pauli Z to ``node`` iff the parity over ``domain`` is odd."""

    node: int
    domain: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", frozenset(self.domain))


@dataclass(frozen=True)
class CommandC:
    """Apply an unconditional single-qubit Clifford (by gate name) to
    ``node``; used for fixed basis changes on outputs."""

    node: int
    gate: str = "h"

    def __post_init__(self) -> None:
        if self.gate not in ("h", "s", "sdg", "x", "y", "z"):
            raise PatternError(f"unsupported Clifford {self.gate!r}")


Command = Union[CommandN, CommandE, CommandM, CommandX, CommandZ, CommandC]


@dataclass
class Pattern:
    """An MBQC pattern: ordered commands plus input/output node lists."""

    input_nodes: List[int] = field(default_factory=list)
    output_nodes: List[int] = field(default_factory=list)
    commands: List[Command] = field(default_factory=list)

    # -- builders ------------------------------------------------------------
    def add(self, cmd: Command) -> "Pattern":
        self.commands.append(cmd)
        return self

    def n(self, node: int, state: str = "plus") -> "Pattern":
        return self.add(CommandN(node, state))

    def e(self, u: int, v: int) -> "Pattern":
        return self.add(CommandE((u, v)))

    def m(
        self,
        node: int,
        plane: str = "XY",
        angle: float = 0.0,
        s_domain: Iterable[int] = (),
        t_domain: Iterable[int] = (),
    ) -> "Pattern":
        return self.add(CommandM(node, plane, angle, _dom(s_domain), _dom(t_domain)))

    def x(self, node: int, domain: Iterable[int]) -> "Pattern":
        return self.add(CommandX(node, _dom(domain)))

    def z(self, node: int, domain: Iterable[int]) -> "Pattern":
        return self.add(CommandZ(node, _dom(domain)))

    def c(self, node: int, gate: str) -> "Pattern":
        return self.add(CommandC(node, gate))

    # -- inspection ------------------------------------------------------------
    def nodes(self) -> Set[int]:
        out: Set[int] = set(self.input_nodes) | set(self.output_nodes)
        for cmd in self.commands:
            if isinstance(cmd, CommandE):
                out.update(cmd.nodes)
            else:
                out.add(cmd.node)
        return out

    def measured_nodes(self) -> List[int]:
        """Nodes in measurement order."""
        return [c.node for c in self.commands if isinstance(c, CommandM)]

    def measurement_of(self, node: int) -> CommandM:
        for c in self.commands:
            if isinstance(c, CommandM) and c.node == node:
                return c
        raise KeyError(f"node {node} is not measured")

    def entangling_edges(self) -> List[Tuple[int, int]]:
        return [c.nodes for c in self.commands if isinstance(c, CommandE)]

    def num_nodes(self) -> int:
        return len(self.nodes())

    def max_live_nodes(self) -> int:
        """Peak number of simultaneously-alive qubits under this command
        order — the actual register size needed with qubit reuse (the
        paper's Section III.A discussion of [51])."""
        live = len(self.input_nodes)
        peak = live
        for cmd in self.commands:
            if isinstance(cmd, CommandN):
                live += 1
                peak = max(peak, live)
            elif isinstance(cmd, CommandM):
                live -= 1
        return peak

    # -- validation ------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`PatternError` on any well-formedness violation."""
        prepared: Set[int] = set(self.input_nodes)
        measured: Set[int] = set()
        if len(set(self.input_nodes)) != len(self.input_nodes):
            raise PatternError("duplicate input nodes")
        if len(set(self.output_nodes)) != len(self.output_nodes):
            raise PatternError("duplicate output nodes")
        for cmd in self.commands:
            if isinstance(cmd, CommandN):
                if cmd.node in prepared:
                    raise PatternError(f"node {cmd.node} prepared twice (or is an input)")
                prepared.add(cmd.node)
            elif isinstance(cmd, CommandE):
                for v in cmd.nodes:
                    if v not in prepared:
                        raise PatternError(f"entangling unprepared node {v}")
                    if v in measured:
                        raise PatternError(f"entangling already-measured node {v}")
            elif isinstance(cmd, CommandM):
                if cmd.node not in prepared:
                    raise PatternError(f"measuring unprepared node {cmd.node}")
                if cmd.node in measured:
                    raise PatternError(f"node {cmd.node} measured twice")
                for dom in (cmd.s_domain, cmd.t_domain):
                    bad = dom - measured
                    if bad:
                        raise PatternError(
                            f"measurement of {cmd.node} depends on unmeasured nodes {sorted(bad)}"
                        )
                measured.add(cmd.node)
            elif isinstance(cmd, (CommandX, CommandZ, CommandC)):
                if cmd.node not in prepared or cmd.node in measured:
                    raise PatternError(
                        f"correction on node {cmd.node} which is not alive"
                    )
                if isinstance(cmd, (CommandX, CommandZ)):
                    bad = cmd.domain - measured
                    if bad:
                        raise PatternError(
                            f"correction on {cmd.node} depends on unmeasured nodes {sorted(bad)}"
                        )
            else:  # pragma: no cover - defensive
                raise PatternError(f"unknown command {cmd!r}")
        missing_out = set(self.output_nodes) - prepared
        if missing_out:
            raise PatternError(f"output nodes never prepared: {sorted(missing_out)}")
        out_measured = set(self.output_nodes) & measured
        if out_measured:
            raise PatternError(f"output nodes measured: {sorted(out_measured)}")
        unmeasured = prepared - measured - set(self.output_nodes)
        if unmeasured:
            raise PatternError(
                f"non-output nodes left unmeasured: {sorted(unmeasured)}"
            )

    def copy(self) -> "Pattern":
        return Pattern(list(self.input_nodes), list(self.output_nodes), list(self.commands))

    def __len__(self) -> int:
        return len(self.commands)


def _absorb_correction(m: CommandM, correction: Union[CommandX, CommandZ]) -> CommandM:
    """Absorb a correction immediately preceding its node's measurement."""
    dom = correction.domain
    is_x = isinstance(correction, CommandX)
    s, t = m.s_domain, m.t_domain
    if m.plane == "XY":
        if is_x:
            s = s ^ dom
        else:
            t = t ^ dom
    elif m.plane == "YZ":
        if is_x:
            t = t ^ dom
        else:
            s = s ^ dom
    elif m.plane == "XZ":
        if is_x:
            s = s ^ dom
            t = t ^ dom
        else:
            s = s ^ dom
    return replace(m, s_domain=s, t_domain=t)


def standardize(pattern: Pattern) -> Pattern:
    """Rewrite ``pattern`` into NEMC normal form.

    The result is semantically identical (same branch maps and outcome
    statistics) with commands ordered: all N, all E, all M (original
    relative order), then merged corrections on output nodes.
    """
    pattern.validate()
    cmds = list(pattern.commands)

    # Pass 1: push corrections rightward until absorbed or at the end.
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(cmds) - 1:
            a, b = cmds[i], cmds[i + 1]
            if isinstance(a, (CommandX, CommandZ)):
                if isinstance(b, CommandE):
                    if isinstance(a, CommandX) and a.node in b.nodes:
                        other = b.nodes[0] if b.nodes[1] == a.node else b.nodes[1]
                        cmds[i : i + 2] = [b, a, CommandZ(other, a.domain)]
                    else:
                        cmds[i : i + 2] = [b, a]
                    changed = True
                elif isinstance(b, CommandM):
                    if b.node == a.node:
                        cmds[i : i + 2] = [_absorb_correction(b, a)]
                    else:
                        cmds[i : i + 2] = [b, a]
                    changed = True
                elif isinstance(b, CommandN):
                    cmds[i : i + 2] = [b, a]
                    changed = True
                elif isinstance(b, CommandC):
                    # Unconditional Cliffords on other nodes commute; on the
                    # same node we do not reorder (C is used only on outputs
                    # after corrections in compiled patterns).
                    if b.node != a.node:
                        cmds[i : i + 2] = [b, a]
                        changed = True
            i += 1

    # Pass 2: stable partition N / E / M / rest.
    ns = [c for c in cmds if isinstance(c, CommandN)]
    es = [c for c in cmds if isinstance(c, CommandE)]
    ms = [c for c in cmds if isinstance(c, CommandM)]
    rest = [c for c in cmds if isinstance(c, (CommandX, CommandZ, CommandC))]

    # Pass 3: merge per-node corrections (X with X, Z with Z) preserving the
    # relative order of any C commands.
    merged: List[Command] = []
    xdom: Dict[int, FrozenSet[int]] = {}
    zdom: Dict[int, FrozenSet[int]] = {}
    has_c = any(isinstance(c, CommandC) for c in rest)
    if has_c:
        merged = rest  # don't merge across unconditional Cliffords
    else:
        for c in rest:
            if isinstance(c, CommandX):
                xdom[c.node] = xdom.get(c.node, frozenset()) ^ c.domain
            else:
                zdom[c.node] = zdom.get(c.node, frozenset()) ^ c.domain
        for node in sorted(set(xdom) | set(zdom)):
            if zdom.get(node):
                merged.append(CommandZ(node, zdom[node]))
            if xdom.get(node):
                merged.append(CommandX(node, xdom[node]))

    out = Pattern(list(pattern.input_nodes), list(pattern.output_nodes), ns + es + ms + merged)
    out.validate()
    return out
