"""Noise models for measurement patterns: channels + trajectory sampling.

The paper's opening motivation: gate-model algorithms are limited by the
number of high-fidelity *gates*, while "MBQC algorithms are primarily
limited by the size of the entangled resource state one can prepare", with
potentially "much less demanding" coherence requirements on platforms that
prepare resource states probabilistically.  This module provides the
simulation substrate to study that trade-off (experiment E15).

Noise is specified as a channel model
(:class:`~repro.mbqc.channels.ChannelNoiseModel`: Kraus channels per
operation type plus readout flips) and lowered onto the compiled pattern as
explicit channel ops (:func:`repro.mbqc.compile.lower_noise`), so every
execution engine runs the *same* noise program.  :class:`NoiseModel` is the
thin back-compat probability bag over that IR:

- qubit preparation (``p_prep`` — depolarizing on the fresh ``|+>``),
- entangling CZs (``p_ent`` — depolarizing on both qubits),
- measurements (``p_meas`` — classical outcome flip, equivalent to a Pauli
  error in the measured basis).

:func:`average_fidelity` estimates fidelity by trajectories — all shots in
one batched sweep on the pattern-execution backend (per-element Pauli fault
masks) — or, with ``exact=True``, integrates the channels exactly on the
density-matrix engine (``E[|<ideal|noisy>|²] = <ideal|ρ|ideal>``), which is
the convergence reference certifying the Monte-Carlo estimator (E21).
:func:`run_pattern_noisy` keeps the command-by-command single-trajectory
reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.backend import get_backend, resolve_backend
from repro.mbqc.channels import (
    Channel,
    ChannelNoiseModel,
    as_channel_model,
)
from repro.mbqc.compile import _CLIFFORD, _PREP, compile_pattern, lower_noise
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
)
from repro.mbqc.runner import (
    PatternResult,
    run_pattern,
    _PLANE_BASIS,
    _Register,
    _reorder_output,
    _signal,
)
from repro.sim.statevector import StateVector
from repro.utils.rng import SeedLike, ensure_rng

_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


@dataclass(frozen=True)
class NoiseModel:
    """Independent error probabilities per operation type.

    Back-compat shim over the channel IR: :meth:`channels` lowers the
    probability bag to depolarizing Kraus channels plus readout flips
    (matching the historical Monte-Carlo semantics); everything downstream
    consumes the lowered :class:`~repro.mbqc.channels.ChannelNoiseModel`.
    """

    p_prep: float = 0.0
    p_ent: float = 0.0
    p_meas: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_prep", "p_ent", "p_meas"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")

    def is_trivial(self) -> bool:
        return self.p_prep == self.p_ent == self.p_meas == 0.0

    def channels(self) -> ChannelNoiseModel:
        """Lower to the channel IR: depolarizing per noisy op + flips."""
        return ChannelNoiseModel(
            prep=Channel.depolarizing(self.p_prep) if self.p_prep > 0.0 else None,
            ent=Channel.depolarizing(self.p_ent) if self.p_ent > 0.0 else None,
            meas_flip=self.p_meas,
        )


def _maybe_depolarize(sv: StateVector, slot: int, prob: float, rng) -> None:
    if prob > 0.0 and rng.random() < prob:
        sv.apply_1q(_PAULIS[int(rng.integers(3))], slot)


def run_pattern_noisy(
    pattern: Pattern,
    noise: NoiseModel,
    input_state: Optional[StateVector] = None,
    seed: SeedLike = None,
) -> PatternResult:
    """One noisy trajectory of ``pattern`` under ``noise``.

    Mirrors :func:`repro.mbqc.runner.run_pattern` with fault injection; with
    a trivial noise model the two agree trajectory-for-trajectory given the
    same seed stream structure is not guaranteed — compare *states*, not
    outcomes.
    """
    pattern.validate()
    rng = ensure_rng(seed)

    k = len(pattern.input_nodes)
    sv = StateVector.plus(k) if input_state is None else input_state.copy()
    if sv.num_qubits != k:
        raise ValueError("input state size mismatch")
    reg = _Register()
    for i, node in enumerate(pattern.input_nodes):
        reg.add(node, i)

    outcomes: Dict[int, int] = {}
    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            slot = sv.add_qubit(_PREP[cmd.state])
            reg.add(cmd.node, slot)
            _maybe_depolarize(sv, slot, noise.p_prep, rng)
        elif isinstance(cmd, CommandE):
            sv.apply_cz(reg[cmd.nodes[0]], reg[cmd.nodes[1]])
            _maybe_depolarize(sv, reg[cmd.nodes[0]], noise.p_ent, rng)
            _maybe_depolarize(sv, reg[cmd.nodes[1]], noise.p_ent, rng)
        elif isinstance(cmd, CommandM):
            s = _signal(outcomes, cmd.s_domain)
            t = _signal(outcomes, cmd.t_domain)
            angle = ((-1) ** s) * cmd.angle + t * np.pi
            basis = _PLANE_BASIS[cmd.plane](angle)
            out, _ = sv.measure(reg[cmd.node], basis, rng=rng, remove=True)
            reg.remove(cmd.node)
            if noise.p_meas > 0.0 and rng.random() < noise.p_meas:
                out ^= 1  # readout flip: corrupts downstream adaptivity too
            outcomes[cmd.node] = out
        elif isinstance(cmd, CommandX):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_X, reg[cmd.node])
        elif isinstance(cmd, CommandZ):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_Z, reg[cmd.node])
        elif isinstance(cmd, CommandC):
            sv.apply_1q(_CLIFFORD[cmd.gate], reg[cmd.node])

    order = [reg[node] for node in pattern.output_nodes]
    out_state = _reorder_output(sv, order)
    return PatternResult(outcomes, out_state, list(pattern.output_nodes))


def average_fidelity(
    pattern: Pattern,
    noise: NoiseModel,
    trajectories: int = 50,
    seed: SeedLike = 0,
    reference: Optional[np.ndarray] = None,
    backend=None,
    exact: bool = False,
) -> float:
    """Mean ``|<ideal|noisy>|^2`` over noise trajectories — or its exact
    channel-integrated value.

    ``reference`` defaults to one (noise-free) run of the pattern — valid
    for deterministic patterns, which all compiled protocols are.  All
    trajectories run in one batched sweep on the pattern-execution backend
    (per-element fault masks and per-element adaptive corrections); pass
    ``backend`` (name or instance) to override the automatic dispatch.

    With ``exact=True`` the channels are integrated exactly on the
    density-matrix engine — no Monte-Carlo variance — returning
    ``<ideal|ρ_noisy|ideal>``, the value the trajectory estimate converges
    to (the E21 certification).  ``noise`` may then be any channel model,
    including non-Pauli channels no trajectory engine can sample.  A
    trivial noise model short-circuits: no shot loop runs, and without an
    explicit ``reference`` the fidelity is exactly 1.
    """
    rng = ensure_rng(seed)
    compiled = compile_pattern(pattern)
    model = as_channel_model(noise)
    trivial = model is None or model.is_trivial()
    if trivial and reference is None:
        return 1.0  # deterministic pattern vs its own ideal run
    if reference is None:
        reference = run_pattern(pattern, seed=rng, compiled=compiled).state_array()
    ref = np.asarray(reference, dtype=complex)
    ref = ref / np.linalg.norm(ref)
    if trivial:
        ideal = run_pattern(pattern, seed=rng, compiled=compiled).state_array()
        return float(np.abs(np.vdot(ref, ideal)) ** 2)
    if exact:
        if backend is None or backend == "auto":
            engine = get_backend("density")
        elif isinstance(backend, str):
            engine = get_backend(backend)
        else:
            engine = backend
        if not hasattr(engine, "integrate"):
            raise ValueError(
                f"exact=True needs an engine with exact channel integration "
                f"(the 'density' backend), got {getattr(engine, 'name', engine)!r}"
            )
        return engine.integrate(compiled, noise=model).fidelity_with_pure(ref)
    # Lower the noise program before dispatch: non-Pauli channels route
    # automatic selection to the density engine (trajectories with exact
    # channels); an explicit trajectory backend then fails with a clear
    # error rather than silently dropping the channels.
    lowered = lower_noise(compiled, model)
    engine = resolve_backend(backend, lowered, dense_outputs=True)
    # keep_raw: fidelities are read off per-trajectory outputs below.
    run = engine.sample_batch(lowered, trajectories, rng, keep_raw=True)
    if run.states is None and run.raw and hasattr(run.raw[0], "rho"):
        # Density-engine trajectories are mixed states: fidelity per shot.
        return float(np.mean([out.rho.fidelity_with_pure(ref) for out in run.raw]))
    states = run.dense_states()  # (trajectories, 2**n_out), normalized rows
    overlaps = states @ ref.conj()
    return float(np.mean(np.abs(overlaps) ** 2))
