"""Monte-Carlo Pauli noise for measurement patterns.

The paper's opening motivation: gate-model algorithms are limited by the
number of high-fidelity *gates*, while "MBQC algorithms are primarily
limited by the size of the entangled resource state one can prepare", with
potentially "much less demanding" coherence requirements on platforms that
prepare resource states probabilistically.  This module provides the
simulation substrate to study that trade-off (experiment E15): pattern
execution with independent Pauli errors injected at

- qubit preparation (``p_prep`` — depolarizing on the fresh ``|+>``),
- entangling CZs (``p_ent`` — two-qubit depolarizing),
- measurements (``p_meas`` — classical outcome flip, equivalent to a Pauli
  error in the measured basis).

Noise is trajectory-sampled: each run draws one Pauli fault pattern, so
fidelity estimates come from averaging over trajectories.
:func:`average_fidelity` runs all trajectories in one batched sweep on the
pattern-execution backend (:meth:`PatternBackend.sample_batch` with per-
element fault masks); :func:`run_pattern_noisy` keeps the command-by-command
single-trajectory reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.backend import resolve_backend
from repro.mbqc.compile import compile_pattern
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
)
from repro.mbqc.runner import (
    PatternResult,
    run_pattern,
    _PREP,
    _CLIFFORD,
    _PLANE_BASIS,
    _Register,
    _reorder_output,
    _signal,
)
from repro.sim.statevector import StateVector
from repro.utils.rng import SeedLike, ensure_rng

_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


@dataclass(frozen=True)
class NoiseModel:
    """Independent error probabilities per operation type."""

    p_prep: float = 0.0
    p_ent: float = 0.0
    p_meas: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_prep", "p_ent", "p_meas"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")

    def is_trivial(self) -> bool:
        return self.p_prep == self.p_ent == self.p_meas == 0.0


def _maybe_depolarize(sv: StateVector, slot: int, prob: float, rng) -> None:
    if prob > 0.0 and rng.random() < prob:
        sv.apply_1q(_PAULIS[int(rng.integers(3))], slot)


def run_pattern_noisy(
    pattern: Pattern,
    noise: NoiseModel,
    input_state: Optional[StateVector] = None,
    seed: SeedLike = None,
) -> PatternResult:
    """One noisy trajectory of ``pattern`` under ``noise``.

    Mirrors :func:`repro.mbqc.runner.run_pattern` with fault injection; with
    a trivial noise model the two agree trajectory-for-trajectory given the
    same seed stream structure is not guaranteed — compare *states*, not
    outcomes.
    """
    pattern.validate()
    rng = ensure_rng(seed)

    k = len(pattern.input_nodes)
    sv = StateVector.plus(k) if input_state is None else input_state.copy()
    if sv.num_qubits != k:
        raise ValueError("input state size mismatch")
    reg = _Register()
    for i, node in enumerate(pattern.input_nodes):
        reg.add(node, i)

    outcomes: Dict[int, int] = {}
    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            slot = sv.add_qubit(_PREP[cmd.state])
            reg.add(cmd.node, slot)
            _maybe_depolarize(sv, slot, noise.p_prep, rng)
        elif isinstance(cmd, CommandE):
            sv.apply_cz(reg[cmd.nodes[0]], reg[cmd.nodes[1]])
            _maybe_depolarize(sv, reg[cmd.nodes[0]], noise.p_ent, rng)
            _maybe_depolarize(sv, reg[cmd.nodes[1]], noise.p_ent, rng)
        elif isinstance(cmd, CommandM):
            s = _signal(outcomes, cmd.s_domain)
            t = _signal(outcomes, cmd.t_domain)
            angle = ((-1) ** s) * cmd.angle + t * np.pi
            basis = _PLANE_BASIS[cmd.plane](angle)
            out, _ = sv.measure(reg[cmd.node], basis, rng=rng, remove=True)
            reg.remove(cmd.node)
            if noise.p_meas > 0.0 and rng.random() < noise.p_meas:
                out ^= 1  # readout flip: corrupts downstream adaptivity too
            outcomes[cmd.node] = out
        elif isinstance(cmd, CommandX):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_X, reg[cmd.node])
        elif isinstance(cmd, CommandZ):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_Z, reg[cmd.node])
        elif isinstance(cmd, CommandC):
            sv.apply_1q(_CLIFFORD[cmd.gate], reg[cmd.node])

    order = [reg[node] for node in pattern.output_nodes]
    out_state = _reorder_output(sv, order)
    return PatternResult(outcomes, out_state, list(pattern.output_nodes))


def average_fidelity(
    pattern: Pattern,
    noise: NoiseModel,
    trajectories: int = 50,
    seed: SeedLike = 0,
    reference: Optional[np.ndarray] = None,
    backend=None,
) -> float:
    """Mean ``|<ideal|noisy>|^2`` over noise trajectories.

    ``reference`` defaults to one (noise-free) run of the pattern — valid
    for deterministic patterns, which all compiled protocols are.  All
    trajectories run in one batched sweep on the pattern-execution backend
    (per-element fault masks and per-element adaptive corrections); pass
    ``backend`` (name or instance) to override the automatic dispatch.
    """
    rng = ensure_rng(seed)
    compiled = compile_pattern(pattern)
    if reference is None:
        reference = run_pattern(pattern, seed=rng, compiled=compiled).state_array()
    ref = np.asarray(reference, dtype=complex)
    ref = ref / np.linalg.norm(ref)
    engine = resolve_backend(backend, compiled, dense_outputs=True)
    run = engine.sample_batch(compiled, trajectories, rng, noise=noise)
    states = run.dense_states()  # (trajectories, 2**n_out), normalized rows
    overlaps = states @ ref.conj()
    return float(np.mean(np.abs(overlaps) ** 2))
