"""Measurement-based quantum computing substrate (Section II.B).

Implements the *measurement calculus* (Danos–Kashefi–Panangaden): patterns
are sequences of commands

- ``N(i)``      prepare node ``i`` (default ``|+>``),
- ``E(i, j)``   entangle with CZ,
- ``M(i, plane, angle, s_domain, t_domain)``  adaptive single-qubit
  measurement — the actual angle is ``(-1)^s * angle + t*π`` with ``s, t``
  the parities of earlier outcomes in the two domains,
- ``X(i, domain)`` / ``Z(i, domain)``  conditional Pauli corrections,

with the paper's notation ``M_i^P -> n`` and ``Λ_i^n(U)`` mapping onto
``M``/``X``/``Z`` commands.  Patterns are pre-compiled to slot-resolved ops
(:mod:`repro.mbqc.compile`) and executed on the dynamic statevector
simulator, supporting exhaustive outcome-branch enumeration — the
determinism checks of Sections II.B/III are run over *all* branches.  Branch
map extraction runs on a pluggable batched engine
(:mod:`repro.mbqc.backend`): all ``2^k`` input columns in one vectorized
sweep.

:mod:`repro.mbqc.flow` implements causal flow and (extended, three-plane)
generalized flow, the graph-theoretic determinism criterion the paper cites
([32], [33]).
"""

from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
    standardize,
)
from repro.mbqc.channels import Channel, ChannelNoiseModel, as_channel_model
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    compile_pattern,
    lower_noise,
)
from repro.mbqc.backend import (
    BranchRun,
    PackedStabilizerOutput,
    PatternBackend,
    SampleRun,
    StabilizerBackend,
    StabilizerOutput,
    StatevectorBackend,
    draw_pauli_fault,
    draw_pauli_fault_batch,
    available_backends,
    default_backend,
    get_backend,
    list_backends,
    register_backend,
    select_backend,
)
from repro.mbqc.mps_backend import MPSBackend, MPSOutput
from repro.mbqc.density_backend import (
    DensityMatrixBackend,
    DensityOutput,
    DensityRun,
)
from repro.mbqc.runner import (
    PatternResult,
    pattern_to_matrix,
    pattern_to_matrix_sequential,
    run_pattern,
)
from repro.mbqc.flow import OpenGraph, find_causal_flow, find_gflow
from repro.mbqc.noise import NoiseModel, average_fidelity, run_pattern_noisy
from repro.mbqc.extract import ExtractionError, extract_circuit, extractable
from repro.mbqc.serialize import (
    channel_from_dict,
    channel_to_dict,
    noise_model_from_dict,
    noise_model_from_json,
    noise_model_to_dict,
    noise_model_to_json,
    pattern_from_dict,
    pattern_from_json,
    pattern_to_dict,
    pattern_to_json,
)

__all__ = [
    "CommandC",
    "CommandE",
    "CommandM",
    "CommandN",
    "CommandX",
    "CommandZ",
    "Pattern",
    "PatternError",
    "standardize",
    "PatternResult",
    "Channel",
    "ChannelNoiseModel",
    "as_channel_model",
    "ChannelOp",
    "CompiledPattern",
    "compile_pattern",
    "lower_noise",
    "BranchRun",
    "SampleRun",
    "PatternBackend",
    "StatevectorBackend",
    "StabilizerBackend",
    "StabilizerOutput",
    "PackedStabilizerOutput",
    "draw_pauli_fault",
    "draw_pauli_fault_batch",
    "DensityMatrixBackend",
    "DensityOutput",
    "DensityRun",
    "MPSBackend",
    "MPSOutput",
    "available_backends",
    "default_backend",
    "get_backend",
    "list_backends",
    "register_backend",
    "select_backend",
    "pattern_to_matrix",
    "pattern_to_matrix_sequential",
    "run_pattern",
    "OpenGraph",
    "find_causal_flow",
    "find_gflow",
    "NoiseModel",
    "average_fidelity",
    "run_pattern_noisy",
    "ExtractionError",
    "extract_circuit",
    "extractable",
    "channel_from_dict",
    "channel_to_dict",
    "noise_model_from_dict",
    "noise_model_from_json",
    "noise_model_to_dict",
    "noise_model_to_json",
    "pattern_from_dict",
    "pattern_from_json",
    "pattern_to_dict",
    "pattern_to_json",
]
