"""Exact density-matrix execution engine (registered as ``"density"``).

The third engine of the backend registry: where the dense and stabilizer
engines *sample* noise trajectories, this one evolves the full density
operator, applying every lowered :class:`~repro.mbqc.compile.ChannelOp` as
an exact Kraus map.  Three execution modes:

- :meth:`DensityMatrixBackend.sample_batch` — trajectories with *sampled*
  measurement outcomes but *exact* channels (each shot's output is the
  conditional mixed state given its outcome record).
- :meth:`DensityMatrixBackend.run_branch_batch` /
  :meth:`~DensityMatrixBackend.run_branch_choi` — one forced outcome
  branch, exactly; readout flips make the branch state a two-term mixture
  per measurement, integrated in place.  The Choi variant entangles the
  input register with spectator ancillas, so branch *maps* compare without
  any global-phase ambiguity (the exact determinism check of
  :func:`repro.core.verify.check_pattern_determinism`).
- :meth:`DensityMatrixBackend.integrate` — the headline: sum over **all**
  outcome branches, weighting each by its exact probability.  The result
  is the true noisy output state ``ρ = Σ_m p(m) ρ_m``, the convergence
  reference that certifies the Monte-Carlo trajectory estimator
  (``average_fidelity(..., exact=True)``, benchmark E21).  Cost is
  ``O(2^m)`` branches (``4^m`` with readout flips on live outcomes);
  measurements whose record is never read downstream are retired by a
  basis dephase + partial trace instead of branching.

Everything dispatches over the same compiled op stream as the other
engines — noise enters through :func:`repro.mbqc.compile.lower_noise`, so
all three backends execute the identical noise program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.linalg.gates import CZ
from repro.mbqc.backend import (
    BranchRun,
    SampleRun,
    _check_branch,
    _check_n_shots,
    _input_row,
    register_backend,
)
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    lower_noise,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.density import DensityMatrix
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng

# A density tensor holds 4^n amplitudes: 10 live qubits is ~16 MiB complex,
# the practical ceiling for this engine's per-op tensordot sweeps.
DENSITY_MAX_LIVE = 10

# Exact integration explores the outcome-branch tree; past this many leaves
# the sum is better estimated by trajectories.
DENSITY_MAX_BRANCHES = 1 << 18

_ZERO_PROB = 1e-12


def _normalized_probs(rho: DensityMatrix) -> np.ndarray:
    """Unit-sum computational-basis probabilities of a (possibly
    unnormalized) density operator."""
    p = rho.probabilities()
    total = p.sum()
    return p / total if total > 0 else p


@dataclass
class DensityOutput:
    """One batch element's output on the density engine.

    ``rho`` is the normalized output density operator (output nodes in
    output order, little-endian); ``weight`` is the branch probability
    (1.0 for sampled trajectories).  Densification to a state vector is
    only defined for pure outputs and, like the stabilizer engine's, is
    exact up to a global phase.
    """

    rho: DensityMatrix
    weight: float = 1.0

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the output."""
        return _normalized_probs(self.rho)

    def unit_statevector(self) -> np.ndarray:
        """Dense unit-norm output column (pure outputs only, phase-free)."""
        m = self.rho.to_matrix()
        tr = float(np.real(np.trace(m)))
        if tr <= 0.0:
            raise ValueError("cannot densify a zero-trace output")
        m = m / tr
        purity = float(np.real(np.trace(m @ m)))
        if purity < 1.0 - 1e-6:
            raise ValueError(
                f"output is mixed (purity {purity:.6f}); a state vector does "
                f"not exist — use probabilities() or the rho field"
            )
        _, vecs = np.linalg.eigh(m)
        return np.ascontiguousarray(vecs[:, -1])

    def to_statevector(self) -> np.ndarray:
        """Dense output column scaled to ``‖·‖² = weight`` (pure only)."""
        return np.sqrt(self.weight) * self.unit_statevector()


@dataclass
class DensityRun:
    """Result of exact channel integration over all outcome branches.

    ``rho`` is the exact noisy output state (trace ≈ 1 up to branch
    pruning); ``branches`` counts the leaves actually explored.
    """

    rho: DensityMatrix
    branches: int

    def probabilities(self) -> np.ndarray:
        return _normalized_probs(self.rho)

    def expectation_diagonal(self, diag: np.ndarray) -> float:
        """Exact ``Tr(ρ D)`` for a real little-endian diagonal cost."""
        return float(np.dot(self.probabilities(), np.asarray(diag, dtype=float)))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """Exact ``<ψ|ρ|ψ>`` against a pure reference."""
        return self.rho.fidelity_with_pure(vec)


def _dead_records(ops: Tuple[object, ...]) -> List[bool]:
    """``dead[i]`` is True when op ``i`` is a measurement whose recorded
    outcome is never referenced by any later signal domain — its branch
    pair can be merged (dephase + partial trace) instead of explored."""
    dead = [False] * len(ops)
    referenced: set = set()
    for i in reversed(range(len(ops))):
        op = ops[i]
        tp = type(op)
        if tp is MeasureOp:
            dead[i] = op.node not in referenced
            referenced |= set(op.s_domain) | set(op.t_domain)
        elif tp is ConditionalOp:
            referenced |= set(op.domain)
    return dead


class DensityMatrixBackend:
    """Exact open-system execution over :class:`repro.sim.density`."""

    name = "density"

    def supports(self, compiled: CompiledPattern) -> bool:
        return compiled.max_live <= DENSITY_MAX_LIVE

    def _require_reach(self, compiled: CompiledPattern, extra: int = 0) -> None:
        if compiled.max_live + extra > DENSITY_MAX_LIVE:
            raise PatternError(
                f"pattern needs {compiled.max_live + extra} live qubits, past "
                f"the density engine's {DENSITY_MAX_LIVE}-qubit reach "
                f"(4^n density amplitudes); use a trajectory backend"
            )

    # -- forced-branch execution --------------------------------------------
    def _exec_forced(
        self,
        compiled: CompiledPattern,
        rho: DensityMatrix,
        forced: Mapping[int, int],
        live: int,
    ) -> float:
        """Run ``compiled`` on ``rho`` (mutating) with every outcome pinned;
        returns the exact branch probability.  Readout flips fold in as
        two-term mixtures — the recorded (forced) bit may come from either
        true outcome."""
        weight = 1.0
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                rho.add_qubit(op.state, position=live)
                live += 1
            elif tp is EntangleOp:
                rho.apply_2q(CZ, *op.slots)
            elif tp is ChannelOp:
                rho.apply_kraus(op.kraus, op.slot, check=False)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                basis = op.bases[s + 2 * t]
                r = forced[op.node]
                dm, p = rho.measure_project(op.slot, basis, r)
                tensor, prob = dm._t, p
                if op.flip_p > 0.0:
                    dm_w, p_w = rho.measure_project(op.slot, basis, r ^ 1)
                    f = op.flip_p
                    tensor = (1.0 - f) * tensor + f * dm_w._t
                    prob = (1.0 - f) * p + f * p_w
                if prob < _ZERO_PROB:
                    raise ZeroProbabilityBranch(
                        f"forced outcome {r} on node {op.node} has "
                        f"probability ~0"
                    )
                rho._t = tensor / prob
                rho._n = dm._n
                weight *= prob
                live -= 1
                outcomes[op.node] = r
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    rho.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                rho.apply_1q(op.matrix, op.slot)
        return weight

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        self._require_reach(compiled)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {inputs.shape}"
            )
        raw: List[DensityOutput] = []
        for row in inputs:
            norm2 = float(np.real(np.vdot(row, row)))
            if norm2 <= 0.0:
                raise PatternError(
                    f"the {self.name} engine got an input row with zero norm"
                )
            rho = DensityMatrix.from_pure(row / np.sqrt(norm2))
            weight = norm2 * self._exec_forced(
                compiled, rho, forced, compiled.num_inputs
            )
            rho.permute(compiled.out_perm)
            raw.append(DensityOutput(rho, weight))
        return BranchRun(
            outcomes=forced,
            weights=np.array([o.weight for o in raw]),
            raw=tuple(raw),
        )

    def run_branch_choi(
        self,
        compiled: CompiledPattern,
        forced_outcomes: Mapping[int, int],
    ) -> DensityOutput:
        """One forced branch on the Choi input: each pattern input is
        maximally entangled with a spectator ancilla, so the returned state
        (outputs in output order, then ancillas) encodes the branch *map*
        with no global-phase ambiguity.  For input-free patterns this is a
        plain forced branch run."""
        k = compiled.num_inputs
        self._require_reach(compiled, extra=k)
        forced = _check_branch(compiled, forced_outcomes)
        if k == 0:
            rho = DensityMatrix.from_pure(_input_row(compiled, None))
        else:
            vec = np.zeros(1 << (2 * k), dtype=complex)
            for x in range(1 << k):
                vec[x | (x << k)] = 1.0
            rho = DensityMatrix.from_pure(vec / np.sqrt(1 << k))
        weight = self._exec_forced(compiled, rho, forced, k)
        n_out = compiled.num_outputs
        rho.permute(list(compiled.out_perm) + [n_out + j for j in range(k)])
        return DensityOutput(rho, weight)

    # -- trajectory sampling (exact channels, sampled outcomes) -------------
    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
    ) -> SampleRun:
        # Mixed trajectory outputs have no state vector, so the raw density
        # matrices ARE the usable output — but the protocol-wide default
        # stays off (outcome records only); consumers that read
        # probability_rows()/run.raw pass keep_raw=True.
        _check_n_shots(n_shots, self.name)
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        row = _input_row(compiled, input_state, self.name)
        row = row / np.linalg.norm(row)
        raw: List[DensityOutput] = []
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        for j in range(n_shots):
            rho = DensityMatrix.from_pure(row)
            live = compiled.num_inputs
            outcomes: Dict[int, int] = {}
            for op in compiled.ops:
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is MeasureOp:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    pinned = forced.get(op.node)
                    try:
                        out, _prob = rho.measure(
                            op.slot, basis, rng=rng, force=pinned
                        )
                    except ValueError:
                        if pinned is None:
                            raise
                        raise ZeroProbabilityBranch(
                            f"forced outcome {pinned} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    if op.flip_p > 0.0 and rng.random() < op.flip_p:
                        out ^= 1  # readout flip corrupts downstream adaptivity
                    outcomes[op.node] = out
                    live -= 1
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                else:  # UnitaryOp
                    rho.apply_1q(op.matrix, op.slot)
            if keep_raw:
                rho.permute(compiled.out_perm)
                raw.append(DensityOutput(rho, 1.0))
            for i, node in enumerate(compiled.measured_nodes):
                outs[j, i] = outcomes[node]
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    # -- exact integration ---------------------------------------------------
    def integrate(
        self,
        compiled: CompiledPattern,
        noise: Optional[object] = None,
        input_state: Optional[np.ndarray] = None,
        prune_tol: float = _ZERO_PROB,
        max_branches: int = DENSITY_MAX_BRANCHES,
    ) -> DensityRun:
        """Integrate the (noisy) pattern exactly over every outcome branch.

        Returns the true output mixture ``ρ = Σ_m p(m) ρ_m`` — the
        convergence reference for the Monte-Carlo trajectory estimator.
        ``noise`` is lowered onto ``compiled`` if given (anything
        :func:`~repro.mbqc.channels.as_channel_model` accepts; the program
        may also already carry lowered channels).  Branches with weight
        below ``prune_tol`` are dropped; the statically bounded branch
        count must stay within ``max_branches``.
        """
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        ops = compiled.ops
        dead = _dead_records(ops)
        bound = 1
        for i, op in enumerate(ops):
            if type(op) is MeasureOp and not dead[i]:
                bound *= 4 if op.flip_p > 0.0 else 2
                if bound > max_branches:
                    raise PatternError(
                        f"exact integration would explore > {max_branches} "
                        f"outcome branches; reduce the pattern's measured "
                        f"set (or readout-flip noise), raise max_branches, "
                        f"or estimate by trajectories instead"
                    )
        row = _input_row(compiled, input_state)
        row = row / np.linalg.norm(row)
        n_out = compiled.num_outputs
        acc: Optional[np.ndarray] = None
        branches = 0

        def finalize(rho: DensityMatrix) -> None:
            nonlocal acc, branches
            rho.permute(compiled.out_perm)
            acc = rho._t if acc is None else acc + rho._t
            branches += 1

        def rec(start: int, rho: DensityMatrix, outcomes: Dict[int, int],
                live: int) -> None:
            # ``rho`` is owned by this frame and unnormalized: its trace is
            # the branch weight accumulated so far.
            for idx in range(start, len(ops)):
                op = ops[idx]
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                elif tp is UnitaryOp:
                    rho.apply_1q(op.matrix, op.slot)
                else:  # MeasureOp — the branch point
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    if dead[idx]:
                        # Record never read: the sum of both outcome
                        # projections is the partial trace (in *any*
                        # basis), so retire the qubit in place instead of
                        # doubling the branch tree.
                        rho.partial_trace(op.slot)
                        outcomes[op.node] = 0  # dead record, never read
                        live -= 1
                        continue
                    for o in (0, 1):
                        dm, p = rho.measure_project(op.slot, basis, o)
                        if p < prune_tol:
                            continue
                        if op.flip_p > 0.0:
                            f = op.flip_p
                            for r, fw in ((o, 1.0 - f), (o ^ 1, f)):
                                if fw <= 0.0:
                                    continue
                                child = DensityMatrix(tensor=dm._t * fw)
                                rec(idx + 1, child, {**outcomes, op.node: r},
                                    live - 1)
                        else:
                            rec(idx + 1, dm, {**outcomes, op.node: o},
                                live - 1)
                    return
            finalize(rho)

        rec(0, DensityMatrix.from_pure(row), {}, compiled.num_inputs)
        if acc is None:  # pragma: no cover - defensive (trace sums to 1)
            raise PatternError("every outcome branch was pruned")
        shape_n = n_out
        rho_out = DensityMatrix(
            tensor=acc if shape_n else np.asarray(acc, dtype=complex).reshape(1, 1)
        )
        return DensityRun(rho=rho_out, branches=branches)


register_backend(DensityMatrixBackend())
