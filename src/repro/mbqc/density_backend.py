"""Exact density-matrix execution engine (registered as ``"density"``).

The third engine of the backend registry: where the dense and stabilizer
engines *sample* noise trajectories, this one evolves the full density
operator, applying every lowered :class:`~repro.mbqc.compile.ChannelOp` as
an exact Kraus map.  Three execution modes:

- :meth:`DensityMatrixBackend.sample_batch` — trajectories with *sampled*
  measurement outcomes but *exact* channels (each shot's output is the
  conditional mixed state given its outcome record), vectorized across the
  shot block over a :class:`~repro.sim.density_batched.BatchedDensityMatrix`
  (chunked against a byte budget; a retained per-shot loop shares the
  identical whole-block draw schedule, so seeded trajectories are
  bit-identical between paths — benchmark E23).
- :meth:`DensityMatrixBackend.run_branch_batch` /
  :meth:`~DensityMatrixBackend.run_branch_choi` — one forced outcome
  branch, exactly; readout flips make the branch state a two-term mixture
  per measurement, integrated in place.  The Choi variant entangles the
  input register with spectator ancillas, so branch *maps* compare without
  any global-phase ambiguity (the exact determinism check of
  :func:`repro.core.verify.check_pattern_determinism`).
- :meth:`DensityMatrixBackend.integrate` — the headline: sum over **all**
  outcome branches, weighting each by its exact probability.  The result
  is the true noisy output state ``ρ = Σ_m p(m) ρ_m``, the convergence
  reference that certifies the Monte-Carlo trajectory estimator
  (``average_fidelity(..., exact=True)``, benchmark E21).  Cost is
  ``O(2^m)`` branches (``4^m`` with readout flips on live outcomes);
  measurements whose record is never read downstream are retired by a
  basis dephase + partial trace instead of branching.

Everything dispatches over the same compiled op stream as the other
engines — noise enters through :func:`repro.mbqc.compile.lower_noise`, so
all three backends execute the identical noise program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.linalg.gates import CZ
from repro.mbqc.backend import (
    BranchRun,
    SampleRun,
    _check_branch,
    _check_n_shots,
    _input_row,
    _measure_vecs,
    _parity_vec,
    _ShotDrawTable,
    register_backend,
)
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    lower_noise,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.density import DensityMatrix
from repro.sim.density_batched import BatchedDensityMatrix
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng

# A density tensor holds 4^n amplitudes: 10 live qubits is ~16 MiB complex,
# the practical ceiling for this engine's per-op tensordot sweeps.
DENSITY_MAX_LIVE = 10

# Exact integration explores the outcome-branch tree; past this many leaves
# the sum is better estimated by trajectories.
DENSITY_MAX_BRANCHES = 1 << 18

# Byte budget for one batched density block (B · 16 · 4^max_live bytes):
# the vectorized sweeps chunk their batch so the steady-state block stays
# under it.  64 MiB holds 4096 shots of a 5-live-qubit pattern but only 4
# shots at the 10-qubit reach ceiling — the win is memory-bounded by
# design.  Note the budget covers the *resident* block only: the kernels
# (tensordot conjugations, projection pairs) materialize one or two
# block-sized temporaries while the old block is still alive, so transient
# peak memory is ~2-3x the budget — size it accordingly.
DENSITY_BATCH_MAX_BYTES = 1 << 26

_ZERO_PROB = 1e-12


def _chunk_elements(n: int, max_live: int, max_block_bytes: Optional[int]) -> int:
    """Largest batch chunk whose density block fits the byte budget."""
    budget = (
        DENSITY_BATCH_MAX_BYTES if max_block_bytes is None
        else int(max_block_bytes)
    )
    per_element = 16 * (4 ** max_live)  # one complex128 density tensor
    return max(1, min(n, budget // per_element))


def _normalized_probs(rho: DensityMatrix) -> np.ndarray:
    """Unit-sum computational-basis probabilities of a (possibly
    unnormalized) density operator."""
    p = rho.probabilities()
    total = p.sum()
    return p / total if total > 0 else p


@dataclass
class DensityOutput:
    """One batch element's output on the density engine.

    ``rho`` is the normalized output density operator (output nodes in
    output order, little-endian); ``weight`` is the branch probability
    (1.0 for sampled trajectories).  Densification to a state vector is
    only defined for pure outputs and, like the stabilizer engine's, is
    exact up to a global phase.
    """

    rho: DensityMatrix
    weight: float = 1.0

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the output."""
        return _normalized_probs(self.rho)

    def unit_statevector(self) -> np.ndarray:
        """Dense unit-norm output column (pure outputs only, phase-free)."""
        m = self.rho.to_matrix()
        tr = float(np.real(np.trace(m)))
        if tr <= 0.0:
            raise ValueError("cannot densify a zero-trace output")
        m = m / tr
        purity = float(np.real(np.trace(m @ m)))
        if purity < 1.0 - 1e-6:
            raise ValueError(
                f"output is mixed (purity {purity:.6f}); a state vector does "
                f"not exist — use probabilities() or the rho field"
            )
        _, vecs = np.linalg.eigh(m)
        return np.ascontiguousarray(vecs[:, -1])

    def to_statevector(self) -> np.ndarray:
        """Dense output column scaled to ``‖·‖² = weight`` (pure only)."""
        return np.sqrt(self.weight) * self.unit_statevector()


@dataclass
class DensityRun:
    """Result of exact channel integration over all outcome branches.

    ``rho`` is the exact noisy output state (trace ≈ 1 up to branch
    pruning); ``branches`` counts the leaves actually explored.
    """

    rho: DensityMatrix
    branches: int

    def probabilities(self) -> np.ndarray:
        return _normalized_probs(self.rho)

    def expectation_diagonal(self, diag: np.ndarray) -> float:
        """Exact ``Tr(ρ D)`` for a real little-endian diagonal cost."""
        return float(np.dot(self.probabilities(), np.asarray(diag, dtype=float)))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """Exact ``<ψ|ρ|ψ>`` against a pure reference."""
        return self.rho.fidelity_with_pure(vec)


def _dead_records(ops: Tuple[object, ...]) -> List[bool]:
    """``dead[i]`` is True when op ``i`` is a measurement whose recorded
    outcome is never referenced by any later signal domain — its branch
    pair can be merged (dephase + partial trace) instead of explored."""
    dead = [False] * len(ops)
    referenced: set = set()
    for i in reversed(range(len(ops))):
        op = ops[i]
        tp = type(op)
        if tp is MeasureOp:
            dead[i] = op.node not in referenced
            referenced |= set(op.s_domain) | set(op.t_domain)
        elif tp is ConditionalOp:
            referenced |= set(op.domain)
    return dead


class DensityMatrixBackend:
    """Exact open-system execution over :class:`repro.sim.density`."""

    name = "density"

    def supports(self, compiled: CompiledPattern) -> bool:
        return compiled.max_live <= DENSITY_MAX_LIVE

    def _require_reach(self, compiled: CompiledPattern, extra: int = 0) -> None:
        if compiled.max_live + extra > DENSITY_MAX_LIVE:
            raise PatternError(
                f"pattern needs {compiled.max_live + extra} live qubits, past "
                f"the density engine's {DENSITY_MAX_LIVE}-qubit reach "
                f"(4^n density amplitudes); use a trajectory backend"
            )

    # -- forced-branch execution --------------------------------------------
    def _exec_forced_block(
        self,
        compiled: CompiledPattern,
        rho: BatchedDensityMatrix,
        forced: Mapping[int, int],
        live: Optional[int] = None,
    ) -> np.ndarray:
        """Run ``compiled`` on a whole batched block (mutating) with every
        outcome pinned; returns the per-element exact branch probabilities.
        The vectorized core of :meth:`run_branch_batch` (and, at B=1, of
        :meth:`run_branch_choi`, whose ``live`` starts below the register
        width — prepared nodes insert *before* the spectator ancillas) —
        readout flips fold in as two-term mixtures via the batched flip-mix
        kernel."""
        b = rho.batch_size
        weights = np.ones(b, dtype=float)
        outcomes: Dict[int, int] = {}
        if live is None:
            live = compiled.num_inputs
        for tp, run in compiled.grouped_ops:
            if tp is PrepOp:
                for op in run:
                    rho.add_qubit(op.state, position=live)
                    live += 1
            elif tp is EntangleOp:
                for op in run:
                    rho.apply_cz(*op.slots)
            elif tp is ChannelOp:
                for op in run:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
            elif tp is MeasureOp:
                for op in run:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    vecs = np.broadcast_to(_measure_vecs(op, s, t), (b, 2, 2))
                    r = forced[op.node]
                    try:
                        probs = rho.measure_forced(
                            op.slot, vecs, np.full(b, r, dtype=np.int8),
                            flip_p=op.flip_p,
                        )
                    except ZeroProbabilityBranch:
                        raise ZeroProbabilityBranch(
                            f"forced outcome {r} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    weights *= probs
                    outcomes[op.node] = r
                    live -= 1
            elif tp is ConditionalOp:
                for op in run:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                for op in run:
                    rho.apply_1q(op.matrix, op.slot)
        return weights

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        self._require_reach(compiled)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {inputs.shape}"
            )
        norms2 = np.einsum("bi,bi->b", inputs.conj(), inputs).real
        if np.any(norms2 <= 0.0):
            raise PatternError(
                f"the {self.name} engine got an input row with zero norm"
            )
        raw: List[DensityOutput] = []
        weights = np.zeros(inputs.shape[0], dtype=float)
        chunk = _chunk_elements(inputs.shape[0], compiled.max_live, None)
        for lo in range(0, inputs.shape[0], chunk):
            hi = min(lo + chunk, inputs.shape[0])
            rows = inputs[lo:hi] / np.sqrt(norms2[lo:hi])[:, None]
            rho = BatchedDensityMatrix.from_pure_rows(rows)
            w = norms2[lo:hi] * self._exec_forced_block(compiled, rho, forced)
            rho.permute(compiled.out_perm)
            weights[lo:hi] = w
            raw.extend(
                DensityOutput(rho.shot(j), float(w[j]))
                for j in range(hi - lo)
            )
        return BranchRun(outcomes=forced, weights=weights, raw=tuple(raw))

    def run_branch_choi(
        self,
        compiled: CompiledPattern,
        forced_outcomes: Mapping[int, int],
    ) -> DensityOutput:
        """One forced branch on the Choi input: each pattern input is
        maximally entangled with a spectator ancilla, so the returned state
        (outputs in output order, then ancillas) encodes the branch *map*
        with no global-phase ambiguity.  For input-free patterns this is a
        plain forced branch run."""
        k = compiled.num_inputs
        self._require_reach(compiled, extra=k)
        forced = _check_branch(compiled, forced_outcomes)
        if k == 0:
            vec = _input_row(compiled, None)
        else:
            vec = np.zeros(1 << (2 * k), dtype=complex)
            for x in range(1 << k):
                vec[x | (x << k)] = 1.0
            vec = vec / np.sqrt(1 << k)
        rho = BatchedDensityMatrix.from_pure_rows(vec[None, :])
        weight = float(self._exec_forced_block(compiled, rho, forced, live=k)[0])
        n_out = compiled.num_outputs
        rho.permute(list(compiled.out_perm) + [n_out + j for j in range(k)])
        return DensityOutput(rho.shot(0), weight)

    # -- trajectory sampling (exact channels, sampled outcomes) -------------
    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
        vectorize: bool = True,
        max_block_bytes: Optional[int] = None,
    ) -> SampleRun:
        """Sample ``n_shots`` trajectories (exact channels, sampled
        outcomes), vectorized across the shot block.

        The default path advances one
        :class:`~repro.sim.density_batched.BatchedDensityMatrix` — ``B``
        whole per-shot density tensors — through a single compiled-op sweep
        (:attr:`CompiledPattern.grouped_ops`), chunking the shot block so
        the resident ``B · 4^max_live`` tensor stays under
        ``max_block_bytes`` (default :data:`DENSITY_BATCH_MAX_BYTES`;
        kernel temporaries transiently add ~2x on top of the budget).
        ``vectorize=False`` keeps the per-shot scalar loop.  Both paths —
        and every chunking of the vectorized one — consume the parent
        generator through the same whole-block draw schedule (one uniform
        vector per unpinned measurement, one flip vector per noisy readout,
        in op order), so seeded trajectories are **bit-identical** between
        them (benchmark E23 asserts this).  The two paths are deliberately
        *distinct implementations* (scalar tensordot chain vs batched
        einsum) cross-checking each other, so the record identity rests on
        their Born probabilities agreeing to well under one uniform-deviate
        ULP — exact chunking invariance, by contrast, holds by construction
        (same kernels, per-shot-independent contractions).

        Mixed trajectory outputs have no state vector, so the raw density
        matrices ARE the usable output — but the protocol-wide default
        stays off (outcome records only); consumers that read
        ``probability_rows()``/``run.raw`` pass ``keep_raw=True``.
        """
        _check_n_shots(n_shots, self.name)
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        row = _input_row(compiled, input_state, self.name)
        row = row / np.linalg.norm(row)
        # Channels are exact, so the draw schedule is shot-independent by
        # construction: both paths share one whole-block vector table.
        draws = _ShotDrawTable(rng, n_shots)
        if vectorize:
            return self._sample_batch_vectorized(
                compiled, n_shots, row, forced, draws, keep_raw,
                max_block_bytes,
            )
        return self._sample_batch_loop(
            compiled, n_shots, row, forced, draws, keep_raw
        )

    def _sample_batch_loop(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        row: np.ndarray,
        forced: Mapping[int, int],
        draws: _ShotDrawTable,
        keep_raw: bool,
    ) -> SampleRun:
        """Retained per-shot reference sampler: one scalar density matrix
        per shot, randomness via the shared whole-block draw table."""
        raw: List[DensityOutput] = []
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        for j in range(n_shots):
            draws.start_shot(j)
            rho = DensityMatrix.from_pure(row)
            live = compiled.num_inputs
            outcomes: Dict[int, int] = {}
            for op in compiled.ops:
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is MeasureOp:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    pinned = forced.get(op.node)
                    u = draws.uniform() if pinned is None else None
                    try:
                        out, _prob = rho.measure(
                            op.slot, basis, u=u, force=pinned
                        )
                    except ValueError:
                        if pinned is None:
                            raise
                        raise ZeroProbabilityBranch(
                            f"forced outcome {pinned} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    if op.flip_p > 0.0 and draws.flip(op.flip_p):
                        out ^= 1  # readout flip corrupts downstream adaptivity
                    outcomes[op.node] = out
                    live -= 1
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                else:  # UnitaryOp
                    rho.apply_1q(op.matrix, op.slot)
            if keep_raw:
                rho.permute(compiled.out_perm)
                raw.append(DensityOutput(rho, 1.0))
            for i, node in enumerate(compiled.measured_nodes):
                outs[j, i] = outcomes[node]
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    def _sample_batch_vectorized(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        row: np.ndarray,
        forced: Mapping[int, int],
        draws: _ShotDrawTable,
        keep_raw: bool,
        max_block_bytes: Optional[int],
    ) -> SampleRun:
        """One compiled-op sweep per shot chunk over a batched density block.

        Per-shot divergence — adaptive bases, sampled outcomes, conditional
        corrections, readout flips — rides the batch axis (per-shot basis
        gathers, masked 1q conjugations); channels apply once per chunk as
        exact Kraus maps.  Each chunk replays the draw schedule from the
        top (``start_pass``) and slices its shot range out of the shared
        whole-block vectors, so records are seed-identical to the unchunked
        block and to the per-shot loop."""
        chunk = _chunk_elements(n_shots, compiled.max_live, max_block_bytes)
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        raw: List[DensityOutput] = []
        rho0 = DensityMatrix.from_pure(row)
        for lo in range(0, n_shots, chunk):
            hi = min(lo + chunk, n_shots)
            b = hi - lo
            draws.start_pass()
            rho = BatchedDensityMatrix.from_replicas(rho0, b)
            rec: Dict[int, np.ndarray] = {}  # node -> (b,) outcome bits
            live = compiled.num_inputs
            for tp, run in compiled.grouped_ops:
                if tp is PrepOp:
                    for op in run:
                        rho.add_qubit(op.state, position=live)
                        live += 1
                elif tp is EntangleOp:
                    for op in run:
                        rho.apply_cz(*op.slots)
                elif tp is ChannelOp:
                    for op in run:
                        rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is MeasureOp:
                    for op in run:
                        s = _parity_vec(rec, op.s_domain, b)
                        t = _parity_vec(rec, op.t_domain, b)
                        vecs = _measure_vecs(op, s, t)
                        pinned = forced.get(op.node)
                        u = (
                            draws.uniform_vec()[lo:hi]
                            if pinned is None else None
                        )
                        try:
                            outs_vec, _probs = rho.measure_sampled(
                                op.slot, vecs, u=u, force=pinned
                            )
                        except ZeroProbabilityBranch:
                            raise ZeroProbabilityBranch(
                                f"forced outcome {pinned} on node {op.node} "
                                f"has probability ~0"
                            ) from None
                        if op.flip_p > 0.0:
                            flips = draws.flip_vec(op.flip_p)[lo:hi]
                            outs_vec = outs_vec ^ flips.astype(np.int8)
                        rec[op.node] = outs_vec
                        live -= 1
                elif tp is ConditionalOp:
                    for op in run:
                        fire = _parity_vec(rec, op.domain, b).astype(bool)
                        rho.apply_1q_masked(op.matrix, op.slot, fire)
                else:  # UnitaryOp
                    for op in run:
                        rho.apply_1q(op.matrix, op.slot)
            for i, node in enumerate(compiled.measured_nodes):
                outs[lo:hi, i] = rec[node]
            if keep_raw:
                rho.permute(compiled.out_perm)
                raw.extend(
                    DensityOutput(rho.shot(j), 1.0) for j in range(b)
                )
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    # -- exact integration ---------------------------------------------------
    def integrate(
        self,
        compiled: CompiledPattern,
        noise: Optional[object] = None,
        input_state: Optional[np.ndarray] = None,
        prune_tol: float = _ZERO_PROB,
        max_branches: int = DENSITY_MAX_BRANCHES,
    ) -> DensityRun:
        """Integrate the (noisy) pattern exactly over every outcome branch.

        Returns the true output mixture ``ρ = Σ_m p(m) ρ_m`` — the
        convergence reference for the Monte-Carlo trajectory estimator.
        ``noise`` is lowered onto ``compiled`` if given (anything
        :func:`~repro.mbqc.channels.as_channel_model` accepts; the program
        may also already carry lowered channels).  Branches with weight
        below ``prune_tol`` are dropped; the statically bounded branch
        count must stay within ``max_branches``.
        """
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        ops = compiled.ops
        dead = _dead_records(ops)
        bound = 1
        for i, op in enumerate(ops):
            if type(op) is MeasureOp and not dead[i]:
                bound *= 4 if op.flip_p > 0.0 else 2
                if bound > max_branches:
                    raise PatternError(
                        f"R102: exact integration would explore > "
                        f"{max_branches} outcome branches; reduce the "
                        f"pattern's measured set (or readout-flip noise), "
                        f"raise max_branches, or estimate by trajectories "
                        f"instead (repro.analysis.estimate_compiled reports "
                        f"the exact bound)"
                    )
        row = _input_row(compiled, input_state)
        row = row / np.linalg.norm(row)
        n_out = compiled.num_outputs
        acc: Optional[np.ndarray] = None
        branches = 0

        def finalize(rho: DensityMatrix) -> None:
            nonlocal acc, branches
            rho.permute(compiled.out_perm)
            acc = rho._t if acc is None else acc + rho._t
            branches += 1

        def rec(start: int, rho: DensityMatrix, outcomes: Dict[int, int],
                live: int) -> None:
            # ``rho`` is owned by this frame and unnormalized: its trace is
            # the branch weight accumulated so far.
            for idx in range(start, len(ops)):
                op = ops[idx]
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                elif tp is UnitaryOp:
                    rho.apply_1q(op.matrix, op.slot)
                else:  # MeasureOp — the branch point
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    if dead[idx]:
                        # Record never read: the sum of both outcome
                        # projections is the partial trace (in *any*
                        # basis), so retire the qubit in place instead of
                        # doubling the branch tree.
                        rho.partial_trace(op.slot)
                        outcomes[op.node] = 0  # dead record, never read
                        live -= 1
                        continue
                    for o in (0, 1):
                        dm, p = rho.measure_project(op.slot, basis, o)
                        if p < prune_tol:
                            continue
                        if op.flip_p > 0.0:
                            f = op.flip_p
                            for r, fw in ((o, 1.0 - f), (o ^ 1, f)):
                                if fw <= 0.0:
                                    continue
                                child = DensityMatrix(tensor=dm._t * fw)
                                rec(idx + 1, child, {**outcomes, op.node: r},
                                    live - 1)
                        else:
                            rec(idx + 1, dm, {**outcomes, op.node: o},
                                live - 1)
                    return
            finalize(rho)

        rec(0, DensityMatrix.from_pure(row), {}, compiled.num_inputs)
        if acc is None:  # pragma: no cover - defensive (trace sums to 1)
            raise PatternError("every outcome branch was pruned")
        shape_n = n_out
        rho_out = DensityMatrix(
            tensor=acc if shape_n else np.asarray(acc, dtype=complex).reshape(1, 1)
        )
        return DensityRun(rho=rho_out, branches=branches)


register_backend(DensityMatrixBackend())
