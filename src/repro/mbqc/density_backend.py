"""Exact density-matrix execution engine (registered as ``"density"``).

The third engine of the backend registry: where the dense and stabilizer
engines *sample* noise trajectories, this one evolves the full density
operator, applying every lowered :class:`~repro.mbqc.compile.ChannelOp` as
an exact Kraus map.  Three execution modes:

- :meth:`DensityMatrixBackend.sample_batch` — trajectories with *sampled*
  measurement outcomes but *exact* channels (each shot's output is the
  conditional mixed state given its outcome record), vectorized across the
  shot block over a :class:`~repro.sim.density_batched.BatchedDensityMatrix`
  (chunked against a byte budget; a retained per-shot loop shares the
  identical whole-block draw schedule, so seeded trajectories are
  bit-identical between paths — benchmark E23).
- :meth:`DensityMatrixBackend.run_branch_batch` /
  :meth:`~DensityMatrixBackend.run_branch_choi` — one forced outcome
  branch, exactly; readout flips make the branch state a two-term mixture
  per measurement, integrated in place.  The Choi variant entangles the
  input register with spectator ancillas, so branch *maps* compare without
  any global-phase ambiguity (the exact determinism check of
  :func:`repro.core.verify.check_pattern_determinism`).
- :meth:`DensityMatrixBackend.integrate` — the headline: sum over **all**
  outcome branches, weighting each by its exact probability.  The result
  is the true noisy output state ``ρ = Σ_m p(m) ρ_m``, the convergence
  reference that certifies the Monte-Carlo trajectory estimator
  (``average_fidelity(..., exact=True)``, benchmarks E21/E24).  The
  default engine is a level-by-level **frontier** over the op stream:
  all live branches ride one batched density tensor (cross-branch
  batching, chunked under the byte budget), and after every measurement
  branches whose records agree on every *future-referenced* signal
  parity are merged by summing their unnormalized tensors (live-parity
  merging, :func:`repro.mbqc.compile.signal_liveness`) — so cost scales
  with the number of distinguishable future-read parity patterns, not
  raw ``2^m``.  ``shards=N`` splits the post-prefix frontier across
  worker processes; ``vectorize=False`` retains the scalar recursive
  reference (merging only dead records), which the frontier path is
  certified against.

Everything dispatches over the same compiled op stream as the other
engines — noise enters through :func:`repro.mbqc.compile.lower_noise`, so
all three backends execute the identical noise program.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.gates import CZ
from repro.mbqc.backend import (
    BranchRun,
    SampleRun,
    _check_branch,
    _check_n_shots,
    _empty_sample_run,
    _input_row,
    _measure_vecs,
    _parity_vec,
    _ShotDrawTable,
    register_backend,
)
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    lower_noise,
    signal_liveness,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.density import DensityMatrix
from repro.sim.density_batched import BatchedDensityMatrix, _batch_traces
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng

# A density tensor holds 4^n amplitudes: 10 live qubits is ~16 MiB complex,
# the practical ceiling for this engine's per-op tensordot sweeps.
DENSITY_MAX_LIVE = 10

# Exact integration explores the outcome-branch tree; past this many leaves
# the sum is better estimated by trajectories.
DENSITY_MAX_BRANCHES = 1 << 18

# Byte budget for one batched density block (B · 16 · 4^max_live bytes):
# the vectorized sweeps chunk their batch so the steady-state block stays
# under it.  64 MiB holds 4096 shots of a 5-live-qubit pattern but only 4
# shots at the 10-qubit reach ceiling — the win is memory-bounded by
# design.  Note the budget covers the *resident* block only: the kernels
# (tensordot conjugations, projection pairs) materialize one or two
# block-sized temporaries while the old block is still alive, so transient
# peak memory is ~2-3x the budget — size it accordingly.
DENSITY_BATCH_MAX_BYTES = 1 << 26

_ZERO_PROB = 1e-12


def _chunk_elements(n: int, max_live: int, max_block_bytes: Optional[int]) -> int:
    """Largest batch chunk whose density block fits the byte budget."""
    budget = (
        DENSITY_BATCH_MAX_BYTES if max_block_bytes is None
        else int(max_block_bytes)
    )
    per_element = 16 * (4 ** max_live)  # one complex128 density tensor
    return max(1, min(n, budget // per_element))


def _normalized_probs(rho: DensityMatrix) -> np.ndarray:
    """Unit-sum computational-basis probabilities of a (possibly
    unnormalized) density operator."""
    p = rho.probabilities()
    total = p.sum()
    return p / total if total > 0 else p


@dataclass
class DensityOutput:
    """One batch element's output on the density engine.

    ``rho`` is the normalized output density operator (output nodes in
    output order, little-endian); ``weight`` is the branch probability
    (1.0 for sampled trajectories).  Densification to a state vector is
    only defined for pure outputs and, like the stabilizer engine's, is
    exact up to a global phase.
    """

    rho: DensityMatrix
    weight: float = 1.0

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the output."""
        return _normalized_probs(self.rho)

    def unit_statevector(self) -> np.ndarray:
        """Dense unit-norm output column (pure outputs only, phase-free)."""
        m = self.rho.to_matrix()
        tr = float(np.real(np.trace(m)))
        if tr <= 0.0:
            raise ValueError("cannot densify a zero-trace output")
        m = m / tr
        purity = float(np.real(np.trace(m @ m)))
        if purity < 1.0 - 1e-6:
            raise ValueError(
                f"output is mixed (purity {purity:.6f}); a state vector does "
                f"not exist — use probabilities() or the rho field"
            )
        _, vecs = np.linalg.eigh(m)
        return np.ascontiguousarray(vecs[:, -1])

    def to_statevector(self) -> np.ndarray:
        """Dense output column scaled to ``‖·‖² = weight`` (pure only)."""
        return np.sqrt(self.weight) * self.unit_statevector()


@dataclass
class DensityRun:
    """Result of exact channel integration over all outcome branches.

    ``rho`` is the exact noisy output state; ``branches`` counts the
    branch work actually done — the peak post-merge frontier width on the
    default vectorized path, or the leaves explored by the retained scalar
    recursion (``vectorize=False``), whose count matches the raw
    per-measurement product bound.  Pruning is observable instead of
    silent: ``trace`` is ``Tr ρ`` as integrated (1.0 exactly when nothing
    was pruned, up to float error) and ``dropped_weight`` is the total
    probability mass of branches discarded by ``prune_tol``, so
    ``trace + dropped_weight ≈ 1``.
    """

    rho: DensityMatrix
    branches: int
    trace: float = 1.0
    dropped_weight: float = 0.0

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the integrated output.

        Normalization contract: the returned vector is renormalized to
        unit sum — pruned branch mass (``dropped_weight``) is spread
        proportionally over the surviving branches, not reported as
        missing probability.  Consumers that need the unnormalized
        diagonal (summing to ``trace``) read ``rho.probabilities()``.
        """
        return _normalized_probs(self.rho)

    def expectation_diagonal(self, diag: np.ndarray) -> float:
        """Exact ``Tr(ρ D)`` for a real little-endian diagonal cost."""
        return float(np.dot(self.probabilities(), np.asarray(diag, dtype=float)))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """Exact ``<ψ|ρ|ψ>`` against a pure reference."""
        return self.rho.fidelity_with_pure(vec)


# -- frontier integration machinery -------------------------------------------


@dataclass(frozen=True)
class _FrontierPlan:
    """Static per-op schedule driving the frontier integrator: which
    parity-table column each measurement/conditional reads, which columns
    any *future* op will read (the merge signature after each
    measurement), and which records are dead — all derived from one
    :func:`~repro.mbqc.compile.signal_liveness` pass."""

    n_reads: int
    s_col: Dict[int, int]               # MeasureOp index -> s_domain column
    t_col: Dict[int, int]               # MeasureOp index -> t_domain column
    cond_col: Dict[int, int]            # ConditionalOp index -> domain column
    touch: Dict[int, Tuple[int, ...]]   # node -> columns containing it
    future_cols: Dict[int, np.ndarray]  # MeasureOp index -> signature columns
    dead: Tuple[bool, ...]
    merged_bound: int


def _frontier_plan(compiled: CompiledPattern) -> _FrontierPlan:
    lv = signal_liveness(compiled.ops)
    s_col: Dict[int, int] = {}
    t_col: Dict[int, int] = {}
    cond_col: Dict[int, int] = {}
    for rid, read in enumerate(lv.reads):
        if read.kind == "s":
            s_col[read.op_index] = rid
        elif read.kind == "t":
            t_col[read.op_index] = rid
        else:
            cond_col[read.op_index] = rid
    future_cols = {
        i: np.asarray(lv.future_read_ids(i), dtype=np.intp)
        for i, op in enumerate(compiled.ops)
        if type(op) is MeasureOp
    }
    return _FrontierPlan(
        n_reads=len(lv.reads),
        s_col=s_col,
        t_col=t_col,
        cond_col=cond_col,
        touch=lv.touch,
        future_cols=future_cols,
        dead=lv.dead,
        merged_bound=lv.merged_bound,
    )


def _raw_branch_bound(ops: Tuple[object, ...], dead: Tuple[bool, ...]) -> int:
    """Scalar-path leaf count: the per-measurement product bound (2 per
    live record, 4 with readout flips) that the frontier's merged bound
    replaces.  The resource estimator reports both."""
    bound = 1
    for i, op in enumerate(ops):
        if type(op) is MeasureOp and not dead[i]:
            bound *= 4 if op.flip_p > 0.0 else 2
    return bound


@dataclass
class _FrontierState:
    """Resumable frontier snapshot: the op cursor, the stacked branch
    tensor ``(B,) + (2,)*2·live``, the per-branch parity table ``bits``
    (one int8 column per signal read), and the running accounting.  Plain
    arrays and ints so a shard worker can receive one slice by pickle."""

    op_index: int
    tensor: np.ndarray
    bits: np.ndarray
    live: int
    peak: int
    dropped: float


def _merge_frontier(
    t: np.ndarray, bits: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum branches whose parity tables agree on the signature ``cols``.

    Two merged branches are *exactly* interchangeable from here on: every
    future basis choice, conditional fire, and merge signature reads only
    the signature columns, so summing their unnormalized tensors commutes
    with the rest of the integration.  Deterministic and order-stable:
    groups keep first-occurrence order and each group sums its members in
    frontier order (``np.add.reduceat`` after a stable sort), making the
    result a pure function of the incoming frontier — reruns and shard
    joins are bit-identical.
    """
    b = t.shape[0]
    if b <= 1:
        return t, bits
    if cols.size == 0:
        # No future reads at all: every branch is indistinguishable.
        return t.sum(axis=0, keepdims=True), bits[:1].copy()
    sig = bits[:, cols]
    uniq, first, inv = np.unique(
        sig, axis=0, return_index=True, return_inverse=True
    )
    inv = inv.reshape(-1)  # numpy >= 2.1 returns it shaped (b, 1)
    g = uniq.shape[0]
    if g == b:
        return t, bits
    order = np.argsort(first, kind="stable")  # lexicographic -> first-seen
    pos = np.empty(g, dtype=np.intp)
    pos[order] = np.arange(g, dtype=np.intp)
    group = pos[inv]
    sort_idx = np.argsort(group, kind="stable")
    starts = np.searchsorted(group[sort_idx], np.arange(g))
    merged = np.add.reduceat(t[sort_idx], starts, axis=0)
    return merged, bits[sort_idx[starts]].copy()


def _chunked_kernel(t, live, max_block_bytes, apply) -> np.ndarray:
    """Run ``apply(view, lo, hi)`` over byte-budget-sized slices of the
    frontier tensor, writing each slice's result back; returns the
    (possibly replaced) tensor.  Keeps kernel temporaries — not the
    resident frontier, which is gated by ``max_branches`` — under the
    block budget."""
    b = t.shape[0]
    chunk = _chunk_elements(b, live, max_block_bytes)
    if chunk >= b:
        view = BatchedDensityMatrix(b, tensor=t)
        apply(view, 0, b)
        return view._t
    for lo in range(0, b, chunk):
        hi = min(lo + chunk, b)
        view = BatchedDensityMatrix(hi - lo, tensor=t[lo:hi])
        apply(view, lo, hi)
        t[lo:hi] = view._t
    return t


def _frontier_measure(
    plan: _FrontierPlan,
    op: MeasureOp,
    i: int,
    t: np.ndarray,
    bits: np.ndarray,
    live: int,
    prune_tol: float,
    max_block_bytes: Optional[int],
    dropped: float,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """One branch point: chunked both-outcome projection, readout-flip
    mixing, pruning, parity-table update, live-parity merge.  Returns the
    new ``(tensor, bits, dropped_weight)``."""
    b = t.shape[0]
    s = bits[:, plan.s_col[i]]
    tt = bits[:, plan.t_col[i]]
    vecs = _measure_vecs(op, s, tt)
    chunk = _chunk_elements(b, live, max_block_bytes)
    parts: List[np.ndarray] = []
    for lo in range(0, b, chunk):
        hi = min(lo + chunk, b)
        view = BatchedDensityMatrix(hi - lo, tensor=t[lo:hi])
        view.measure_split(op.slot, vecs[lo:hi])
        parts.append(view._t)
    children = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
    traces = _batch_traces(children, live - 1)
    rec = np.tile(np.array([0, 1], dtype=np.int8), b)
    child_bits = np.repeat(bits, 2, axis=0)
    if op.flip_p > 0.0:
        # A flipped child's recorded bit equals its sibling's, so both
        # flip contributions land on an already-existing child: mix the
        # sibling pair in place instead of branching — readout flips cost
        # nothing here, where the scalar path pays 4^m.
        zero = traces < prune_tol
        dropped += float(traces[zero].sum())
        if zero.any():
            children[zero] = 0.0
        pair = children.reshape((b, 2) + children.shape[1:])
        f = op.flip_p
        mixed = np.empty_like(pair)
        mixed[:, 0] = (1.0 - f) * pair[:, 0] + f * pair[:, 1]
        mixed[:, 1] = (1.0 - f) * pair[:, 1] + f * pair[:, 0]
        children = mixed.reshape(children.shape)
        keep = _batch_traces(children, live - 1) > 0.0
    else:
        keep = traces >= prune_tol
        dropped += float(traces[~keep].sum())
    if not keep.all():
        children = children[keep]
        rec = rec[keep]
        child_bits = child_bits[keep]
    if children.shape[0] == 0:
        raise PatternError("every outcome branch was pruned")
    for rid in plan.touch.get(op.node, ()):
        child_bits[:, rid] ^= rec
    children, child_bits = _merge_frontier(
        children, child_bits, plan.future_cols[i]
    )
    return children, child_bits, dropped


def _frontier_advance(
    compiled: CompiledPattern,
    plan: _FrontierPlan,
    state: _FrontierState,
    prune_tol: float,
    max_block_bytes: Optional[int],
    stop_width: Optional[int] = None,
) -> _FrontierState:
    """Drive the frontier from ``state`` to the end of the op stream — or,
    when ``stop_width`` is given, suspend as soon as a post-merge frontier
    reaches that width (the shard fan-out point)."""
    ops = compiled.ops
    t, bits, live = state.tensor, state.bits, state.live
    peak, dropped = state.peak, state.dropped
    i = state.op_index
    while i < len(ops):
        op = ops[i]
        tp = type(op)
        if tp is PrepOp:
            rho = BatchedDensityMatrix(t.shape[0], tensor=t)
            rho.add_qubit(op.state, position=live)
            t = rho._t
            live += 1
        elif tp is EntangleOp:
            # apply_cz mutates the tensor in place (pure sign flips).
            BatchedDensityMatrix(t.shape[0], tensor=t).apply_cz(*op.slots)
        elif tp is ChannelOp:
            kraus, slot = op.kraus, op.slot
            t = _chunked_kernel(
                t, live, max_block_bytes,
                lambda v, lo, hi: v.apply_kraus(kraus, slot, check=False),
            )
        elif tp is UnitaryOp:
            mat, slot = op.matrix, op.slot
            t = _chunked_kernel(
                t, live, max_block_bytes,
                lambda v, lo, hi: v.apply_1q(mat, slot),
            )
        elif tp is ConditionalOp:
            fire = bits[:, plan.cond_col[i]].astype(bool)
            mat, slot = op.matrix, op.slot
            t = _chunked_kernel(
                t, live, max_block_bytes,
                lambda v, lo, hi: v.apply_1q_masked(mat, slot, fire[lo:hi]),
            )
        else:  # MeasureOp
            if plan.dead[i]:
                # Record never read: both outcome projections sum to the
                # partial trace (in any basis) — retire the qubit across
                # the whole frontier instead of splitting it.
                rho = BatchedDensityMatrix(t.shape[0], tensor=t)
                rho.discard(op.slot)
                t = rho._t
            else:
                t, bits, dropped = _frontier_measure(
                    plan, op, i, t, bits, live, prune_tol,
                    max_block_bytes, dropped,
                )
                peak = max(peak, t.shape[0])
            live -= 1
            if stop_width is not None and t.shape[0] >= stop_width:
                i += 1
                break
        i += 1
    return _FrontierState(i, t, bits, live, peak, dropped)


def _frontier_collapse(compiled: CompiledPattern, tensor: np.ndarray) -> np.ndarray:
    """Permute each branch to output order and sum the frontier — the
    integrated (unnormalized) output tensor."""
    rho = BatchedDensityMatrix(tensor.shape[0], tensor=tensor)
    rho.permute(compiled.out_perm)
    return rho._t.sum(axis=0)


def _integrate_shard(
    compiled: CompiledPattern,
    op_index: int,
    tensor: np.ndarray,
    bits: np.ndarray,
    live: int,
    prune_tol: float,
    max_block_bytes: Optional[int],
) -> Tuple[np.ndarray, int, float]:
    """Worker entry for ``integrate(..., shards=N)``: resume one suspended
    frontier slice to completion and return its collapsed partial sum plus
    accounting.  Module-level (picklable) and plan-rebuilding, so the
    payload is just the compiled pattern and the slice arrays; with no
    randomness anywhere in integration, the join is deterministic."""
    plan = _frontier_plan(compiled)
    state = _FrontierState(op_index, tensor, bits, live, tensor.shape[0], 0.0)
    state = _frontier_advance(compiled, plan, state, prune_tol, max_block_bytes)
    return _frontier_collapse(compiled, state.tensor), state.peak, state.dropped


class DensityMatrixBackend:
    """Exact open-system execution over :class:`repro.sim.density`."""

    name = "density"
    byte_model_note = "4^max_live density tensor"

    def supports(self, compiled: CompiledPattern) -> bool:
        return compiled.max_live <= DENSITY_MAX_LIVE

    def bytes_per_shot(self, compiled: CompiledPattern) -> int:
        """``16 · 4^max_live`` density amplitudes per batch element (kernel
        temporaries transiently add ~2x) — the resource-estimator registry
        hook."""
        return 16 * (1 << (2 * compiled.max_live))

    def _require_reach(self, compiled: CompiledPattern, extra: int = 0) -> None:
        if compiled.max_live + extra > DENSITY_MAX_LIVE:
            raise PatternError(
                f"pattern needs {compiled.max_live + extra} live qubits, past "
                f"the density engine's {DENSITY_MAX_LIVE}-qubit reach "
                f"(4^n density amplitudes); use a trajectory backend"
            )

    # -- forced-branch execution --------------------------------------------
    def _exec_forced_block(
        self,
        compiled: CompiledPattern,
        rho: BatchedDensityMatrix,
        forced: Mapping[int, int],
        live: Optional[int] = None,
    ) -> np.ndarray:
        """Run ``compiled`` on a whole batched block (mutating) with every
        outcome pinned; returns the per-element exact branch probabilities.
        The vectorized core of :meth:`run_branch_batch` (and, at B=1, of
        :meth:`run_branch_choi`, whose ``live`` starts below the register
        width — prepared nodes insert *before* the spectator ancillas) —
        readout flips fold in as two-term mixtures via the batched flip-mix
        kernel."""
        b = rho.batch_size
        weights = np.ones(b, dtype=float)
        outcomes: Dict[int, int] = {}
        if live is None:
            live = compiled.num_inputs
        for tp, run in compiled.grouped_ops:
            if tp is PrepOp:
                for op in run:
                    rho.add_qubit(op.state, position=live)
                    live += 1
            elif tp is EntangleOp:
                for op in run:
                    rho.apply_cz(*op.slots)
            elif tp is ChannelOp:
                for op in run:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
            elif tp is MeasureOp:
                for op in run:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    vecs = np.broadcast_to(_measure_vecs(op, s, t), (b, 2, 2))
                    r = forced[op.node]
                    try:
                        probs = rho.measure_forced(
                            op.slot, vecs, np.full(b, r, dtype=np.int8),
                            flip_p=op.flip_p,
                        )
                    except ZeroProbabilityBranch:
                        raise ZeroProbabilityBranch(
                            f"forced outcome {r} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    weights *= probs
                    outcomes[op.node] = r
                    live -= 1
            elif tp is ConditionalOp:
                for op in run:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                for op in run:
                    rho.apply_1q(op.matrix, op.slot)
        return weights

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        self._require_reach(compiled)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {inputs.shape}"
            )
        norms2 = np.einsum("bi,bi->b", inputs.conj(), inputs).real
        if np.any(norms2 <= 0.0):
            raise PatternError(
                f"the {self.name} engine got an input row with zero norm"
            )
        raw: List[DensityOutput] = []
        weights = np.zeros(inputs.shape[0], dtype=float)
        chunk = _chunk_elements(inputs.shape[0], compiled.max_live, None)
        for lo in range(0, inputs.shape[0], chunk):
            hi = min(lo + chunk, inputs.shape[0])
            rows = inputs[lo:hi] / np.sqrt(norms2[lo:hi])[:, None]
            rho = BatchedDensityMatrix.from_pure_rows(rows)
            w = norms2[lo:hi] * self._exec_forced_block(compiled, rho, forced)
            rho.permute(compiled.out_perm)
            weights[lo:hi] = w
            raw.extend(
                DensityOutput(rho.shot(j), float(w[j]))
                for j in range(hi - lo)
            )
        return BranchRun(outcomes=forced, weights=weights, raw=tuple(raw))

    def run_branch_choi(
        self,
        compiled: CompiledPattern,
        forced_outcomes: Mapping[int, int],
    ) -> DensityOutput:
        """One forced branch on the Choi input: each pattern input is
        maximally entangled with a spectator ancilla, so the returned state
        (outputs in output order, then ancillas) encodes the branch *map*
        with no global-phase ambiguity.  For input-free patterns this is a
        plain forced branch run."""
        k = compiled.num_inputs
        self._require_reach(compiled, extra=k)
        forced = _check_branch(compiled, forced_outcomes)
        if k == 0:
            vec = _input_row(compiled, None)
        else:
            vec = np.zeros(1 << (2 * k), dtype=complex)
            for x in range(1 << k):
                vec[x | (x << k)] = 1.0
            vec = vec / np.sqrt(1 << k)
        rho = BatchedDensityMatrix.from_pure_rows(vec[None, :])
        weight = float(self._exec_forced_block(compiled, rho, forced, live=k)[0])
        n_out = compiled.num_outputs
        rho.permute(list(compiled.out_perm) + [n_out + j for j in range(k)])
        return DensityOutput(rho.shot(0), weight)

    def _exec_forced_vec(
        self,
        compiled: CompiledPattern,
        rho: BatchedDensityMatrix,
        forced_list: Sequence[Mapping[int, int]],
        live: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forced-branch sweep with *per-element* outcome records — the
        cross-branch generalization of :meth:`_exec_forced_block` (which
        pins one shared record): element ``j`` runs ``forced_list[j]``.
        Zero-probability elements survive as dead weight
        (``measure_forced(..., allow_zero=True)``) instead of aborting the
        block; returns ``(weights, alive)``."""
        b = rho.batch_size
        weights = np.ones(b, dtype=float)
        alive = np.ones(b, dtype=bool)
        rec: Dict[int, np.ndarray] = {}
        if live is None:
            live = compiled.num_inputs
        for tp, run in compiled.grouped_ops:
            if tp is PrepOp:
                for op in run:
                    rho.add_qubit(op.state, position=live)
                    live += 1
            elif tp is EntangleOp:
                for op in run:
                    rho.apply_cz(*op.slots)
            elif tp is ChannelOp:
                for op in run:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
            elif tp is MeasureOp:
                for op in run:
                    s = _parity_vec(rec, op.s_domain, b)
                    t = _parity_vec(rec, op.t_domain, b)
                    vecs = _measure_vecs(op, s, t)
                    outs = np.array(
                        [f[op.node] for f in forced_list], dtype=np.int8
                    )
                    rel = rho.measure_forced(
                        op.slot, vecs, outs, flip_p=op.flip_p,
                        allow_zero=True,
                    )
                    weights *= rel
                    alive &= rel >= 1e-12
                    rec[op.node] = outs
                    live -= 1
            elif tp is ConditionalOp:
                for op in run:
                    fire = _parity_vec(rec, op.domain, b).astype(bool)
                    rho.apply_1q_masked(op.matrix, op.slot, fire)
            else:  # UnitaryOp
                for op in run:
                    rho.apply_1q(op.matrix, op.slot)
        return weights, alive

    def run_branch_choi_batch(
        self,
        compiled: CompiledPattern,
        branches: Sequence[Mapping[int, int]],
    ) -> List[Optional[DensityOutput]]:
        """Choi runs of many forced branches in one cross-branch batched
        sweep — the vectorized form of looping :meth:`run_branch_choi`
        over a pattern's outcome records (the density determinism check's
        hot path).  Entries whose record has ~zero probability come back
        as ``None`` instead of raising: the whole block executes with
        zero-tolerant projections and unreachable elements are filtered by
        weight afterwards.  Chunked against the batch byte budget like
        every other cross-element sweep."""
        k = compiled.num_inputs
        self._require_reach(compiled, extra=k)
        checked = [_check_branch(compiled, b) for b in branches]
        if not checked:
            return []
        if k == 0:
            vec = _input_row(compiled, None)
        else:
            vec = np.zeros(1 << (2 * k), dtype=complex)
            for x in range(1 << k):
                vec[x | (x << k)] = 1.0
            vec = vec / np.sqrt(1 << k)
        n_out = compiled.num_outputs
        perm = list(compiled.out_perm) + [n_out + j for j in range(k)]
        outputs: List[Optional[DensityOutput]] = [None] * len(checked)
        chunk = _chunk_elements(len(checked), compiled.max_live + k, None)
        for lo in range(0, len(checked), chunk):
            sub = checked[lo:lo + chunk]
            rho = BatchedDensityMatrix.from_pure_rows(
                np.broadcast_to(vec, (len(sub), vec.size))
            )
            weights, alive = self._exec_forced_vec(compiled, rho, sub, live=k)
            rho.permute(perm)
            for j in range(len(sub)):
                if alive[j]:
                    outputs[lo + j] = DensityOutput(
                        rho.shot(j), float(weights[j])
                    )
        return outputs

    # -- trajectory sampling (exact channels, sampled outcomes) -------------
    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
        vectorize: bool = True,
        max_block_bytes: Optional[int] = None,
    ) -> SampleRun:
        """Sample ``n_shots`` trajectories (exact channels, sampled
        outcomes), vectorized across the shot block.

        The default path advances one
        :class:`~repro.sim.density_batched.BatchedDensityMatrix` — ``B``
        whole per-shot density tensors — through a single compiled-op sweep
        (:attr:`CompiledPattern.grouped_ops`), chunking the shot block so
        the resident ``B · 4^max_live`` tensor stays under
        ``max_block_bytes`` (default :data:`DENSITY_BATCH_MAX_BYTES`;
        kernel temporaries transiently add ~2x on top of the budget).
        ``vectorize=False`` keeps the per-shot scalar loop.  Both paths —
        and every chunking of the vectorized one — consume the parent
        generator through the same whole-block draw schedule (one uniform
        vector per unpinned measurement, one flip vector per noisy readout,
        in op order), so seeded trajectories are **bit-identical** between
        them (benchmark E23 asserts this).  The two paths are deliberately
        *distinct implementations* (scalar tensordot chain vs batched
        einsum) cross-checking each other, so the record identity rests on
        their Born probabilities agreeing to well under one uniform-deviate
        ULP — exact chunking invariance, by contrast, holds by construction
        (same kernels, per-shot-independent contractions).

        Mixed trajectory outputs have no state vector, so the raw density
        matrices ARE the usable output — but the protocol-wide default
        stays off (outcome records only); consumers that read
        ``probability_rows()``/``run.raw`` pass ``keep_raw=True``.
        """
        _check_n_shots(n_shots, self.name)
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        row = _input_row(compiled, input_state, self.name)
        row = row / np.linalg.norm(row)
        if n_shots == 0:
            return _empty_sample_run(compiled, keep_raw)
        # Channels are exact, so the draw schedule is shot-independent by
        # construction: both paths share one whole-block vector table.
        draws = _ShotDrawTable(rng, n_shots)
        if vectorize:
            return self._sample_batch_vectorized(
                compiled, n_shots, row, forced, draws, keep_raw,
                max_block_bytes,
            )
        return self._sample_batch_loop(
            compiled, n_shots, row, forced, draws, keep_raw
        )

    def _sample_batch_loop(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        row: np.ndarray,
        forced: Mapping[int, int],
        draws: _ShotDrawTable,
        keep_raw: bool,
    ) -> SampleRun:
        """Retained per-shot reference sampler: one scalar density matrix
        per shot, randomness via the shared whole-block draw table."""
        raw: List[DensityOutput] = []
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        for j in range(n_shots):
            draws.start_shot(j)
            rho = DensityMatrix.from_pure(row)
            live = compiled.num_inputs
            outcomes: Dict[int, int] = {}
            for op in compiled.ops:
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is MeasureOp:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    pinned = forced.get(op.node)
                    u = draws.uniform() if pinned is None else None
                    try:
                        out, _prob = rho.measure(
                            op.slot, basis, u=u, force=pinned
                        )
                    except ValueError:
                        if pinned is None:
                            raise
                        raise ZeroProbabilityBranch(
                            f"forced outcome {pinned} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    if op.flip_p > 0.0 and draws.flip(op.flip_p):
                        out ^= 1  # readout flip corrupts downstream adaptivity
                    outcomes[op.node] = out
                    live -= 1
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                else:  # UnitaryOp
                    rho.apply_1q(op.matrix, op.slot)
            if keep_raw:
                rho.permute(compiled.out_perm)
                raw.append(DensityOutput(rho, 1.0))
            for i, node in enumerate(compiled.measured_nodes):
                outs[j, i] = outcomes[node]
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    def _sample_batch_vectorized(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        row: np.ndarray,
        forced: Mapping[int, int],
        draws: _ShotDrawTable,
        keep_raw: bool,
        max_block_bytes: Optional[int],
    ) -> SampleRun:
        """One compiled-op sweep per shot chunk over a batched density block.

        Per-shot divergence — adaptive bases, sampled outcomes, conditional
        corrections, readout flips — rides the batch axis (per-shot basis
        gathers, masked 1q conjugations); channels apply once per chunk as
        exact Kraus maps.  Each chunk replays the draw schedule from the
        top (``start_pass``) and slices its shot range out of the shared
        whole-block vectors, so records are seed-identical to the unchunked
        block and to the per-shot loop."""
        chunk = _chunk_elements(n_shots, compiled.max_live, max_block_bytes)
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        raw: List[DensityOutput] = []
        rho0 = DensityMatrix.from_pure(row)
        for lo in range(0, n_shots, chunk):
            hi = min(lo + chunk, n_shots)
            b = hi - lo
            draws.start_pass()
            rho = BatchedDensityMatrix.from_replicas(rho0, b)
            rec: Dict[int, np.ndarray] = {}  # node -> (b,) outcome bits
            live = compiled.num_inputs
            for tp, run in compiled.grouped_ops:
                if tp is PrepOp:
                    for op in run:
                        rho.add_qubit(op.state, position=live)
                        live += 1
                elif tp is EntangleOp:
                    for op in run:
                        rho.apply_cz(*op.slots)
                elif tp is ChannelOp:
                    for op in run:
                        rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is MeasureOp:
                    for op in run:
                        s = _parity_vec(rec, op.s_domain, b)
                        t = _parity_vec(rec, op.t_domain, b)
                        vecs = _measure_vecs(op, s, t)
                        pinned = forced.get(op.node)
                        u = (
                            draws.uniform_vec()[lo:hi]
                            if pinned is None else None
                        )
                        try:
                            outs_vec, _probs = rho.measure_sampled(
                                op.slot, vecs, u=u, force=pinned
                            )
                        except ZeroProbabilityBranch:
                            raise ZeroProbabilityBranch(
                                f"forced outcome {pinned} on node {op.node} "
                                f"has probability ~0"
                            ) from None
                        if op.flip_p > 0.0:
                            flips = draws.flip_vec(op.flip_p)[lo:hi]
                            outs_vec = outs_vec ^ flips.astype(np.int8)
                        rec[op.node] = outs_vec
                        live -= 1
                elif tp is ConditionalOp:
                    for op in run:
                        fire = _parity_vec(rec, op.domain, b).astype(bool)
                        rho.apply_1q_masked(op.matrix, op.slot, fire)
                else:  # UnitaryOp
                    for op in run:
                        rho.apply_1q(op.matrix, op.slot)
            for i, node in enumerate(compiled.measured_nodes):
                outs[lo:hi, i] = rec[node]
            if keep_raw:
                rho.permute(compiled.out_perm)
                raw.extend(
                    DensityOutput(rho.shot(j), 1.0) for j in range(b)
                )
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    # -- exact integration ---------------------------------------------------
    def integrate(
        self,
        compiled: CompiledPattern,
        noise: Optional[object] = None,
        input_state: Optional[np.ndarray] = None,
        prune_tol: float = _ZERO_PROB,
        max_branches: int = DENSITY_MAX_BRANCHES,
        vectorize: bool = True,
        max_block_bytes: Optional[int] = None,
        shards: int = 1,
    ) -> DensityRun:
        """Integrate the (noisy) pattern exactly over every outcome branch.

        Returns the true output mixture ``ρ = Σ_m p(m) ρ_m`` — the
        convergence reference for the Monte-Carlo trajectory estimator.
        ``noise`` is lowered onto ``compiled`` if given (anything
        :func:`~repro.mbqc.channels.as_channel_model` accepts; the program
        may also already carry lowered channels).

        The default path is the batched **frontier** integrator: all live
        branches advance level-by-level in one stacked density tensor
        (kernel temporaries chunked under ``max_block_bytes``, default
        :data:`DENSITY_BATCH_MAX_BYTES`), and after every measurement,
        branches whose records agree on each *future-referenced* signal
        parity merge by summing — so the frontier is bounded by the
        **merged bound** (distinguishable future-read parity patterns,
        :func:`~repro.mbqc.compile.signal_liveness`), typically far below
        the raw ``2^m``.  ``shards=N`` forks the frontier across ``N``
        worker processes once it is at least ``N`` wide — opt-in, and
        deterministic because integration draws no randomness.
        ``vectorize=False`` retains the scalar recursive reference (merges
        dead records only, explores the raw bound, ``shards`` not
        supported), which the frontier path is certified against (E24).

        Branches whose weight falls below ``prune_tol`` are dropped — the
        lost mass is reported as ``DensityRun.dropped_weight``, never
        silently folded in.  The static branch bound for the chosen path
        must stay within ``max_branches`` (R102).
        """
        shards = int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shards > 1 and not vectorize:
            raise PatternError(
                "shards requires the vectorized frontier integrator; drop "
                "shards or drop vectorize=False"
            )
        compiled, plan, row = self._integration_setup(
            compiled, noise, input_state, max_branches, vectorize
        )
        if vectorize:
            return self._integrate_frontier(
                compiled, plan, row, prune_tol, max_block_bytes, shards
            )
        return self._integrate_scalar(compiled, plan, row, prune_tol)

    def _integration_setup(
        self,
        compiled: CompiledPattern,
        noise: Optional[object],
        input_state: Optional[np.ndarray],
        max_branches: int = DENSITY_MAX_BRANCHES,
        vectorize: bool = True,
    ) -> Tuple[CompiledPattern, _FrontierPlan, np.ndarray]:
        """Shared front half of exact integration: lower ``noise``, check
        reach and the R102 branch bound, and normalize the input row.
        Factored out of :meth:`integrate` so the execution supervisor
        (:func:`repro.exec.supervisor.supervised_integrate`) applies the
        identical guards before taking over shard orchestration."""
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_reach(compiled)
        plan = _frontier_plan(compiled)
        raw_bound = _raw_branch_bound(compiled.ops, plan.dead)
        bound = plan.merged_bound if vectorize else raw_bound
        if bound > max_branches:
            raise PatternError(
                f"R102: exact integration would explore > {max_branches} "
                f"outcome branches (merged frontier bound "
                f"{plan.merged_bound}, raw scalar bound {raw_bound}); "
                f"reduce the pattern's measured set (or, on the scalar "
                f"path, its readout-flip noise), raise max_branches, or "
                f"estimate by trajectories instead "
                f"(repro.analysis.estimate_compiled reports both bounds)"
            )
        row = _input_row(compiled, input_state)
        row = row / np.linalg.norm(row)
        return compiled, plan, row

    def _integrate_frontier(
        self,
        compiled: CompiledPattern,
        plan: _FrontierPlan,
        row: np.ndarray,
        prune_tol: float,
        max_block_bytes: Optional[int],
        shards: int,
    ) -> DensityRun:
        """Frontier-driven integration (see :meth:`integrate`); with
        ``shards > 1`` the shared prefix runs in-process, then contiguous
        frontier slices finish in a :class:`ProcessPoolExecutor` and their
        partial sums join in slice order."""
        t0 = BatchedDensityMatrix.from_pure_rows(row[None, :])._t
        bits = np.zeros((1, plan.n_reads), dtype=np.int8)
        state = _FrontierState(0, t0, bits, compiled.num_inputs, 1, 0.0)
        state = _frontier_advance(
            compiled, plan, state, prune_tol, max_block_bytes,
            stop_width=shards if shards > 1 else None,
        )
        if state.op_index >= len(compiled.ops):
            # Ran to completion in-process (shards == 1, or the frontier
            # never got wide enough to be worth forking).
            acc = _frontier_collapse(compiled, state.tensor)
            branches, dropped = state.peak, state.dropped
        else:
            b = state.tensor.shape[0]
            cuts = np.array_split(np.arange(b), shards)
            cuts = [c for c in cuts if c.size]
            with ProcessPoolExecutor(max_workers=len(cuts)) as pool:
                futures = [
                    pool.submit(
                        _integrate_shard, compiled, state.op_index,
                        state.tensor[c], state.bits[c], state.live,
                        prune_tol, max_block_bytes,
                    )
                    for c in cuts
                ]
                results = []
                for k, f in enumerate(futures):
                    try:
                        results.append(f.result())
                    except (BrokenProcessPool, pickle.PicklingError) as exc:
                        raise PatternError(
                            f"shard {k}/{len(cuts)} of the frontier "
                            f"integration died ({type(exc).__name__}: "
                            f"{exc}); the shard held {cuts[k].size} of "
                            f"{b} frontier branches. Retry with "
                            f"supervision — repro.exec.supervised_integrate"
                            f"(..., shards={shards}, retries=, "
                            f"shard_timeout=) recovers worker deaths and "
                            f"can fall back in-process (CLI: repro run "
                            f"--exact --shards {shards} --retries N)"
                        ) from exc
            acc = results[0][0]
            for part, _, _ in results[1:]:
                acc = acc + part
            # Shards hit their peaks at roughly the same op level, so the
            # concurrently-resident branch count is the sum of shard peaks
            # (or the prefix peak, whichever is larger).
            branches = max(state.peak, sum(peak for _, peak, _ in results))
            dropped = state.dropped + sum(d for _, _, d in results)
        return self._finish_run(compiled, acc, branches, dropped)

    def _integrate_scalar(
        self,
        compiled: CompiledPattern,
        plan: _FrontierPlan,
        row: np.ndarray,
        prune_tol: float,
    ) -> DensityRun:
        """Retained scalar reference integrator: recursive depth-first
        branch exploration, one :class:`DensityMatrix` at a time, merging
        dead records only — the independent implementation the frontier
        path is certified against."""
        ops = compiled.ops
        dead = plan.dead
        acc: Optional[np.ndarray] = None
        branches = 0
        dropped = 0.0

        def finalize(rho: DensityMatrix) -> None:
            nonlocal acc, branches
            rho.permute(compiled.out_perm)
            acc = rho._t if acc is None else acc + rho._t
            branches += 1

        def rec(start: int, rho: DensityMatrix, outcomes: Dict[int, int],
                live: int) -> None:
            # ``rho`` is owned by this frame and unnormalized: its trace is
            # the branch weight accumulated so far.
            nonlocal dropped
            for idx in range(start, len(ops)):
                op = ops[idx]
                tp = type(op)
                if tp is PrepOp:
                    rho.add_qubit(op.state, position=live)
                    live += 1
                elif tp is EntangleOp:
                    rho.apply_2q(CZ, *op.slots)
                elif tp is ChannelOp:
                    rho.apply_kraus(op.kraus, op.slot, check=False)
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        rho.apply_1q(op.matrix, op.slot)
                elif tp is UnitaryOp:
                    rho.apply_1q(op.matrix, op.slot)
                else:  # MeasureOp — the branch point
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    basis = op.bases[s + 2 * t]
                    if dead[idx]:
                        # Record never read: the sum of both outcome
                        # projections is the partial trace (in *any*
                        # basis), so retire the qubit in place instead of
                        # doubling the branch tree.
                        rho.partial_trace(op.slot)
                        outcomes[op.node] = 0  # dead record, never read
                        live -= 1
                        continue
                    for o in (0, 1):
                        dm, p = rho.measure_project(op.slot, basis, o)
                        if p < prune_tol:
                            dropped += p
                            continue
                        if op.flip_p > 0.0:
                            f = op.flip_p
                            for r, fw in ((o, 1.0 - f), (o ^ 1, f)):
                                if fw <= 0.0:
                                    continue
                                child = DensityMatrix(tensor=dm._t * fw)
                                rec(idx + 1, child, {**outcomes, op.node: r},
                                    live - 1)
                        else:
                            rec(idx + 1, dm, {**outcomes, op.node: o},
                                live - 1)
                    return
            finalize(rho)

        rec(0, DensityMatrix.from_pure(row), {}, compiled.num_inputs)
        if acc is None:  # pragma: no cover - defensive (trace sums to 1)
            raise PatternError("every outcome branch was pruned")
        return self._finish_run(compiled, acc, branches, dropped)

    def _finish_run(
        self,
        compiled: CompiledPattern,
        acc: np.ndarray,
        branches: int,
        dropped: float,
    ) -> DensityRun:
        rho_out = DensityMatrix(
            tensor=acc if compiled.num_outputs
            else np.asarray(acc, dtype=complex).reshape(1, 1)
        )
        return DensityRun(
            rho=rho_out,
            branches=branches,
            trace=rho_out.trace(),
            dropped_weight=dropped,
        )


register_backend(DensityMatrixBackend())
