"""Execution backends for compiled measurement patterns.

A :class:`PatternBackend` runs a :class:`~repro.mbqc.compile.CompiledPattern`
on a *forced outcome branch* for a whole block of input states at once.
This is the engine under :func:`repro.mbqc.runner.pattern_to_matrix` and the
branch-exhaustive verification in :mod:`repro.core.verify`: extracting the
linear map of a pattern on ``k`` inputs needs all ``2^k`` basis columns, and
a backend simulates them in one batched sweep instead of ``2^k`` sequential
pattern re-runs.

The protocol is deliberately small (``supports`` + ``run_branch_batch``) so
alternative engines can slot in.  The default is the dense
:class:`StatevectorBackend` built on
:class:`~repro.sim.statevector.BatchedStateVector`.  A stabilizer-tableau
backend over :mod:`repro.stab` is the planned fast path for Clifford-angle
patterns (``supports`` would check that every measurement basis table is
Pauli); see ROADMAP.md open items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.mbqc.compile import (
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.statevector import BatchedStateVector

try:  # typing.Protocol exists on all supported pythons; keep a soft fallback
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@dataclass(frozen=True)
class BranchRun:
    """Result of one forced-branch batched execution.

    ``states`` is a ``(B, 2**n_out)`` block: row ``j`` is the (unnormalized)
    output state for input row ``j``, with output qubits little-endian in
    ``output_nodes`` order.  ``outcomes`` echoes the forced branch in
    measurement order.
    """

    outcomes: Dict[int, int]
    states: np.ndarray


@runtime_checkable
class PatternBackend(Protocol):
    """Minimal contract a pattern-execution engine must satisfy."""

    name: str

    def supports(self, compiled: CompiledPattern) -> bool:
        """Whether this backend can execute ``compiled`` exactly."""
        ...

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        """Run every row of ``inputs`` (``(B, 2**k)``) through ``compiled``
        on the branch pinned by ``forced_outcomes`` (all measured nodes)."""
        ...


class StatevectorBackend:
    """Dense batched-statevector execution (always applicable)."""

    name = "statevector"

    def supports(self, compiled: CompiledPattern) -> bool:
        return True

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        missing = [n for n in compiled.measured_nodes if n not in forced_outcomes]
        if missing:
            raise PatternError(
                f"branch must force all outcomes; missing {sorted(missing)}"
            )
        inputs = np.asarray(inputs, dtype=complex)
        sv = BatchedStateVector.from_arrays(inputs)
        if sv.num_qubits != compiled.num_inputs:
            raise PatternError(
                f"input block has {sv.num_qubits} qubits, "
                f"pattern has {compiled.num_inputs} inputs"
            )
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                sv.add_qubit(op.state)
            elif tp is EntangleOp:
                sv.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                out = forced_outcomes[op.node]
                if out not in (0, 1):
                    raise PatternError(f"forced outcome for node {op.node} must be 0 or 1")
                sv.measure_forced(op.slot, op.bases[s + 2 * t], out)
                outcomes[op.node] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    sv.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                sv.apply_1q(op.matrix, op.slot)
        sv.permute(compiled.out_perm)
        return BranchRun(outcomes=outcomes, states=sv.to_arrays())


_DEFAULT_BACKEND: Optional[StatevectorBackend] = None


def default_backend() -> StatevectorBackend:
    """The process-wide default engine (a shared, stateless instance)."""
    global _DEFAULT_BACKEND
    if _DEFAULT_BACKEND is None:
        _DEFAULT_BACKEND = StatevectorBackend()
    return _DEFAULT_BACKEND
