"""Execution backends for compiled measurement patterns.

A :class:`PatternBackend` runs a :class:`~repro.mbqc.compile.CompiledPattern`
either on a *forced outcome branch* for a whole block of input states at
once (``run_branch_batch`` — the engine under
:func:`repro.mbqc.runner.pattern_to_matrix` and the branch-exhaustive
verification in :mod:`repro.core.verify`) or as a block of *sampled
trajectories* with per-element RNG outcomes and per-element corrections
(``sample_batch`` — the engine under :meth:`repro.core.solver.MBQCQAOASolver
.sample` shot loops and the noise-trajectory averaging in
:mod:`repro.mbqc.noise`).

Backends live in a named registry.  :func:`select_backend` dispatches a
compiled pattern automatically: the dense :class:`StatevectorBackend`
(always applicable) is the default, and Clifford-angle patterns — every
measurement basis Pauli, every correction/Clifford a single-qubit Clifford,
as classified at compile time (:attr:`CompiledPattern.is_clifford`) — fall
through to the :class:`StabilizerBackend` once the live register outgrows
dense reach.  Stabilizer outputs stay in tableau form
(:class:`StabilizerOutput`) and densify only on demand, so graph-state and
Pauli-measurement patterns verify at sizes far beyond ``2^n`` memory.

Noise enters as a compile-time channel program
(:func:`repro.mbqc.compile.lower_noise` weaves ``ChannelOp``s and readout
flips into the op stream), executed identically by every engine: the
trajectory engines here sample Pauli-mixture channels per element, while
the density-matrix engine (:mod:`repro.mbqc.density_backend`, registered as
``"density"``) applies arbitrary channels exactly — automatic dispatch
routes programs carrying non-Pauli channels to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    lower_noise,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.statevector import (
    BatchedStateVector,
    KET_PLUS,
    StateVector,
    ZeroProbabilityBranch,
)
from repro.stab.tableau import (
    ForcedOutcomeContradiction,
    StabilizerState,
    canonical_stabilizer_key,
    stab_rows_to_paulis,
    statevector_from_generators,
)
from repro.utils.rng import SeedLike, ensure_rng

try:  # typing.Protocol exists on all supported pythons; keep a soft fallback
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


# Dense execution allocates 2^max_live amplitudes per batch element; past
# this register width the auto-dispatcher prefers a non-dense backend.
DENSE_AUTO_MAX_LIVE = 16

# Densifying a tableau output materializes 2^n_out amplitudes (cap enforced
# by repro.stab.tableau.statevector_from_generators); consumers that need
# dense outputs must not be auto-dispatched to the stabilizer engine past it.
DENSE_EXTRACT_MAX = 20

_PAULI_GATES = ("x", "y", "z")


@dataclass
class StabilizerOutput:
    """One batch element's output on the stabilizer engine.

    The tableau covers *every* node the pattern ever prepared (measured
    columns stay collapsed in place); ``out_cols`` are the columns of the
    output nodes in output order.  ``log2_weight`` is the exact log-2
    branch probability — each random forced measurement contributes -1,
    each deterministic one 0 — kept in the log domain because a float
    product of 1/2's underflows to 0.0 past ~1074 random outcomes, exactly
    the scale this engine exists for.  Densification is on demand only:
    :meth:`to_statevector` matches the dense engine's unnormalized
    convention ``‖state‖² = weight`` (up to the global phase a tableau
    cannot represent).
    """

    tableau: Optional[StabilizerState]
    out_cols: Tuple[int, ...]
    log2_weight: float

    @property
    def weight(self) -> float:
        """Branch probability (may underflow to 0.0 at extreme depths;
        compare ``log2_weight`` when exactness matters)."""
        return float(2.0 ** self.log2_weight)

    def stabilizer_bits(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generator rows ``(x, z, r)`` of the output-restricted state."""
        if not self.out_cols:
            z = np.zeros((0, 0), dtype=bool)
            return z, z.copy(), np.zeros(0, dtype=np.int8)
        assert self.tableau is not None
        return self.tableau.extract_substate(self.out_cols)

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the (unit-norm) output."""
        return np.abs(self.unit_statevector()) ** 2

    def canonical_key(self) -> bytes:
        """Branch-comparison key: canonical stabilizer form of the output."""
        return canonical_stabilizer_key(*self.stabilizer_bits())

    def unit_statevector(self) -> np.ndarray:
        """Dense little-endian output column at unit norm."""
        n_out = len(self.out_cols)
        if n_out > DENSE_EXTRACT_MAX:
            raise ValueError(
                f"cannot densify a {n_out}-qubit stabilizer output "
                f"(cap {DENSE_EXTRACT_MAX}); compare canonical forms instead, "
                f"or run on the statevector backend"
            )
        x, z, r = self.stabilizer_bits()
        return statevector_from_generators(stab_rows_to_paulis(x, z, r), n_out)

    def to_statevector(self) -> np.ndarray:
        """Dense little-endian output column, scaled to ``‖·‖² = weight``."""
        return np.sqrt(self.weight) * self.unit_statevector()


@dataclass
class BranchRun:
    """Result of one forced-branch batched execution.

    ``outcomes`` echoes the forced branch in measurement order.  Dense
    engines fill ``states`` — a ``(B, 2**n_out)`` block whose row ``j`` is
    the (unnormalized) output state for input row ``j``, output qubits
    little-endian in ``output_nodes`` order.  Non-dense engines fill ``raw``
    (one backend-native output per element, e.g. :class:`StabilizerOutput`)
    and leave ``states`` to :meth:`dense_states` densification on demand.
    ``weights[j]`` is the probability of this outcome branch for element
    ``j`` (for unit-norm inputs, ``‖states[j]‖²``).
    """

    outcomes: Dict[int, int]
    states: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    raw: Optional[Tuple[object, ...]] = None

    def dense_states(self) -> np.ndarray:
        """The ``(B, 2**n_out)`` block, densifying ``raw`` if needed.

        Tableau-backed rows are exact up to a per-row global phase (a
        stabilizer tableau does not represent one)."""
        if self.states is None:
            if self.raw is None:
                raise ValueError("branch run carries neither states nor raw outputs")
            self.states = np.stack([out.to_statevector() for out in self.raw])
        return self.states


@dataclass
class SampleRun:
    """Result of one batched trajectory-sampling execution.

    ``outcomes[j, i]`` is element ``j``'s outcome for the ``i``-th measured
    node (order ``nodes`` = ``compiled.measured_nodes``).  Dense engines
    fill ``states`` with normalized output rows; non-dense engines fill
    ``raw`` instead (densified on demand by :meth:`dense_states`).
    """

    nodes: Tuple[int, ...]
    outcomes: np.ndarray
    states: Optional[np.ndarray] = None
    raw: Optional[Tuple[object, ...]] = None

    @property
    def n_shots(self) -> int:
        return self.outcomes.shape[0]

    def outcome_dicts(self) -> List[Dict[int, int]]:
        """Per-trajectory ``node -> bit`` maps."""
        return [
            {node: int(self.outcomes[j, i]) for i, node in enumerate(self.nodes)}
            for j in range(self.n_shots)
        ]

    def dense_states(self) -> np.ndarray:
        """Normalized ``(n_shots, 2**n_out)`` output block.

        Raises for raw outputs that are genuinely mixed (density-engine
        trajectories under noise cannot be a state vector) — use
        :meth:`probability_rows` or the raw density matrices instead."""
        if self.states is None:
            if self.raw is None:
                raise ValueError("sample run carries neither states nor raw outputs")
            self.states = np.stack([out.unit_statevector() for out in self.raw])
        return self.states

    def probability_rows(self) -> np.ndarray:
        """Per-trajectory computational-basis probabilities
        (``(n_shots, 2**n_out)``) — works on every engine, including mixed
        density-matrix outputs that cannot densify to state vectors."""
        if self.states is None and self.raw is not None:
            return np.stack([out.probabilities() for out in self.raw])
        states = self.dense_states()
        p = np.abs(states) ** 2
        return p / p.sum(axis=1, keepdims=True)

    def sample_bitstrings(self, shots: int, rng) -> np.ndarray:
        """Draw ``shots`` computational-basis samples spread evenly over
        the run's trajectories (ceil split; the tail trajectory takes the
        remainder).  The shared resampling step under the solver's shot
        loop and the CLI's noisy sampling path."""
        if shots < 1:
            raise ValueError("shots must be positive")
        rows = self.probability_rows()
        per_run = -(-shots // rows.shape[0])  # ceil
        draws: List[int] = []
        for row in rows:
            take = min(per_run, shots - len(draws))
            if take <= 0:
                break
            picks = rng.choice(row.size, size=take, p=row / row.sum())
            draws.extend(int(x) for x in picks)
        return np.asarray(draws[:shots], dtype=np.int64)


@runtime_checkable
class PatternBackend(Protocol):
    """Contract a pattern-execution engine must satisfy."""

    name: str

    def supports(self, compiled: CompiledPattern) -> bool:
        """Whether this backend can execute ``compiled`` exactly."""
        ...

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        """Run every row of ``inputs`` (``(B, 2**k)``) through ``compiled``
        on the branch pinned by ``forced_outcomes`` (all measured nodes)."""
        ...

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
    ) -> SampleRun:
        """Run ``n_shots`` independent trajectories from one input state,
        drawing measurement outcomes per element from the Born rule
        (``forced_outcomes`` pins a subset for every element).  ``noise``
        is an optional :class:`repro.mbqc.noise.NoiseModel`-like object
        (``p_prep``/``p_ent``/``p_meas``) injecting per-element Pauli
        faults."""
        ...


def _input_row(compiled: CompiledPattern, input_state) -> np.ndarray:
    """Coerce ``input_state`` to one little-endian amplitude row."""
    k = compiled.num_inputs
    if input_state is None:
        row = np.ones(1, dtype=complex)
        for _ in range(k):
            row = np.multiply.outer(row, KET_PLUS).reshape(-1)
        return row
    if isinstance(input_state, StateVector):
        row = input_state.to_array()
    else:
        row = np.asarray(input_state, dtype=complex).reshape(-1)
    if row.size != 1 << k:
        raise PatternError(
            f"input state has {row.size} amplitudes, pattern has {k} inputs"
        )
    return row


def _check_branch(compiled: CompiledPattern, forced_outcomes) -> Dict[int, int]:
    missing = [n for n in compiled.measured_nodes if n not in forced_outcomes]
    if missing:
        raise PatternError(
            f"branch must force all outcomes; missing {sorted(missing)}"
        )
    for node in compiled.measured_nodes:
        if forced_outcomes[node] not in (0, 1):
            raise PatternError(f"forced outcome for node {node} must be 0 or 1")
    return {node: forced_outcomes[node] for node in compiled.measured_nodes}


class StatevectorBackend:
    """Dense batched-statevector execution (applicable to every pattern
    except programs carrying lowered non-Pauli channels, which cannot be
    trajectory-sampled — those need the density engine)."""

    name = "statevector"

    def supports(self, compiled: CompiledPattern) -> bool:
        return not compiled.has_non_pauli_channel

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        _check_branch_noiseless(compiled, self.name)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        sv = BatchedStateVector.from_arrays(inputs)
        if sv.num_qubits != compiled.num_inputs:
            raise PatternError(
                f"input block has {sv.num_qubits} qubits, "
                f"pattern has {compiled.num_inputs} inputs"
            )
        weights = np.ones(sv.batch_size, dtype=float)
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                sv.add_qubit(op.state)
            elif tp is EntangleOp:
                sv.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                out = forced[op.node]
                weights *= sv.measure_forced(op.slot, op.bases[s + 2 * t], out)
                outcomes[op.node] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    sv.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                sv.apply_1q(op.matrix, op.slot)
        sv.permute(compiled.out_perm)
        return BranchRun(outcomes=outcomes, states=sv.to_arrays(), weights=weights)

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
    ) -> SampleRun:
        if n_shots < 1:
            raise ValueError("n_shots must be positive")
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        row = _input_row(compiled, input_state)
        sv = BatchedStateVector.from_arrays(np.tile(row, (n_shots, 1)))
        rec: Dict[int, np.ndarray] = {}  # node -> (B,) outcome bits
        since_renorm = 0
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                sv.add_qubit(op.state)
            elif tp is EntangleOp:
                sv.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = _parity_vec(rec, op.s_domain, n_shots)
                t = _parity_vec(rec, op.t_domain, n_shots)
                block = op.basis_block
                if block is None:  # hand-built op without the prebuilt view
                    block = np.array([[b.b0, b.b1] for b in op.bases], dtype=complex)
                vecs = block[s + 2 * t]  # (B, 2, 2) per-element bases
                outs, _probs = sv.measure_sampled(
                    op.slot, vecs, rng=rng, force=forced.get(op.node),
                    renormalize=False,
                )
                # Outcome draws only need amplitude ratios, so per-step
                # normalization is deferred — but each projection shrinks
                # the norm (typically by ~1/2), so rescale periodically to
                # keep thousand-measurement patterns clear of underflow.
                since_renorm += 1
                if since_renorm >= 64:
                    sv.renormalize()
                    since_renorm = 0
                if op.flip_p > 0.0:
                    # Readout flip: corrupts downstream adaptivity too.
                    outs = outs ^ (rng.random(n_shots) < op.flip_p)
                rec[op.node] = outs.astype(np.int8)
            elif tp is ConditionalOp:
                fire = _parity_vec(rec, op.domain, n_shots).astype(bool)
                sv.apply_1q_masked(op.matrix, op.slot, fire)
            elif tp is ChannelOp:
                _sample_pauli_channel_batch(sv, op, rng)
            else:  # UnitaryOp
                sv.apply_1q(op.matrix, op.slot)
        sv.permute(compiled.out_perm)
        outcomes = (
            np.stack([rec[n] for n in compiled.measured_nodes], axis=1)
            if compiled.measured_nodes
            else np.zeros((n_shots, 0), dtype=np.int8)
        )
        # Normalization was deferred through the measurement sweep (outcome
        # probabilities only need amplitude ratios); restore unit rows once.
        states = sv.to_arrays()
        states /= np.linalg.norm(states, axis=1, keepdims=True)
        return SampleRun(
            nodes=compiled.measured_nodes, outcomes=outcomes, states=states
        )


def _parity_vec(rec: Dict[int, np.ndarray], domain, n_shots: int) -> np.ndarray:
    """Per-element XOR of recorded outcome vectors over ``domain``."""
    parity = np.zeros(n_shots, dtype=np.int8)
    for node in domain:
        parity ^= rec[node]
    return parity


_DENSE_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


def _check_branch_noiseless(compiled: CompiledPattern, name: str) -> None:
    """Forced-branch extraction on a trajectory engine is only defined for
    noiseless programs — a sampled channel would make the branch map a
    random variable.  The density engine integrates channels exactly and
    accepts noise-lowered programs."""
    if compiled.has_noise:
        raise PatternError(
            f"backend {name!r} cannot run forced branches of a noise-lowered "
            f"program; use the 'density' backend for exact noisy branch maps"
        )


def _require_pauli_channel(op: ChannelOp) -> Tuple[float, float, float, float]:
    if op.pauli_probs is None:
        raise PatternError(
            f"channel {op.label!r} is not a Pauli mixture; trajectory engines "
            f"cannot sample it — run the 'density' backend (exact integration)"
        )
    return op.pauli_probs


def _sample_pauli_channel_batch(sv: BatchedStateVector, op: ChannelOp, rng) -> None:
    """Sample ``op``'s Pauli mixture independently per batch element."""
    _, px, py, pz = _require_pauli_channel(op)
    b = sv.batch_size
    if px == py == pz:
        # Uniform (depolarizing) mixture: one fire draw + one Pauli pick,
        # byte-compatible with the historical fault stream so seeded
        # trajectories reproduce across the refactor.
        p = 3.0 * px
        if p <= 0.0:
            return
        fire = rng.random(b) < p
        if not fire.any():
            return
        which = rng.integers(3, size=b)
        for i, mat in enumerate(_DENSE_PAULIS):
            sv.apply_1q_masked(mat, op.slot, fire & (which == i))
        return
    u = rng.random(b)
    lo = 1.0 - (px + py + pz)
    for mat, p in zip(_DENSE_PAULIS, (px, py, pz)):
        if p > 0.0:
            sv.apply_1q_masked(mat, op.slot, (u >= lo) & (u < lo + p))
        lo += p


class StabilizerBackend:
    """Stabilizer-tableau execution for Clifford-angle patterns.

    Applicable exactly when the compile-time classifier tagged every op
    Clifford (:attr:`CompiledPattern.is_clifford`).  Slot add/remove is
    mapped onto tableau columns: the tableau grows one column per prepared
    node and measured columns stay behind, collapsed in place, so the cost
    is ``O(total_nodes²)`` bits instead of ``2^max_live`` amplitudes.
    Forced Pauli measurements carry exact branch weights — 1/2 per random
    outcome, 1 per deterministic one — and forcing against a deterministic
    outcome raises :class:`~repro.sim.statevector.ZeroProbabilityBranch`
    (zero-weight branch), mirroring the dense engine's semantics.

    Outputs are :class:`StabilizerOutput` tableaus; densification (which
    loses only a global phase) happens on demand.  Input rows must be
    stabilizer product rows the engine recognizes: computational basis
    columns (what :func:`~repro.mbqc.runner.pattern_to_matrix` sends) or
    the uniform ``|+>^k`` row (the default pattern input).
    """

    name = "stabilizer"

    def supports(self, compiled: CompiledPattern) -> bool:
        return compiled.is_clifford

    def _require_clifford(self, compiled: CompiledPattern) -> None:
        if not compiled.is_clifford:
            raise PatternError(
                "pattern is not Clifford (a measurement basis is not Pauli, a "
                "correction is not a single-qubit Clifford, or a lowered "
                "channel is not a Pauli mixture); run it on the statevector "
                "or density backend instead"
            )

    # -- input handling ----------------------------------------------------
    def _total_nodes(self, compiled: CompiledPattern) -> int:
        """Tableau width: inputs plus every node the pattern prepares."""
        return compiled.num_inputs + sum(
            1 for op in compiled.ops if type(op) is PrepOp
        )

    def _init_tableau(
        self, compiled: CompiledPattern, row: np.ndarray, n_total: int
    ) -> Tuple[Optional[StabilizerState], float]:
        """Full-width tableau with the input columns in state ``row`` (all
        prep columns start ``|0>`` and are rotated when their ``PrepOp``
        executes — preallocating avoids an O(n²) tableau copy per prepared
        node).  Returns the tableau (``None`` when the pattern has no
        nodes at all) and the log-2 squared input norm.
        """
        k = compiled.num_inputs
        if n_total == 0:
            w = float(abs(row[0]) ** 2)
            if w <= 0.0:
                raise PatternError("input row has zero norm")
            return None, float(np.log2(w))
        st = StabilizerState(n_total)
        if k == 0:
            return st, 0.0
        nz = np.nonzero(np.abs(row) > 1e-12)[0]
        if nz.size == 1:
            bits = int(nz[0])
            for q in range(k):
                if (bits >> q) & 1:
                    st.x_gate(q)
            return st, float(np.log2(abs(row[nz[0]]) ** 2))
        if nz.size == row.size and np.allclose(row, row[0], atol=1e-12):
            for q in range(k):
                st.h(q)
            return st, float(np.log2(np.vdot(row, row).real))
        raise PatternError(
            "stabilizer backend accepts computational-basis or uniform |+>^k "
            "input rows only; use the statevector backend for general inputs"
        )

    # -- execution ---------------------------------------------------------
    def _run_one(
        self,
        compiled: CompiledPattern,
        st: Optional[StabilizerState],
        log2_weight: float,
        rng,
        forced: Mapping[int, int],
    ) -> Tuple[StabilizerOutput, Dict[int, int]]:
        """Execute one trajectory/branch on one (preallocated) tableau.

        ``forced`` pins outcomes for the nodes it contains; the rest are
        sampled with ``rng``.  Replays the compiled slot dynamics against
        monotonically assigned tableau columns: ``slot_cols[s]`` is the
        column of the node currently in slot ``s``.
        """
        next_col = compiled.num_inputs
        slot_cols = list(range(next_col))
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                col = next_col
                next_col += 1
                # The column starts |0>; rotate it into the prep state.
                if op.label in ("plus", "minus"):
                    st.h(col)
                    if op.label == "minus":
                        st.z_gate(col)
                elif op.label == "one":
                    st.x_gate(col)
                slot_cols.append(col)
            elif tp is EntangleOp:
                st.cz(slot_cols[op.slots[0]], slot_cols[op.slots[1]])
            elif tp is ChannelOp:
                _sample_tableau_channel(st, slot_cols[op.slot], op, rng)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                label, flip = op.pauli[s + 2 * t]
                col = slot_cols.pop(op.slot)
                pinned = forced.get(op.node)
                try:
                    tab_out, prob = st.measure_pauli_info(
                        col, label,
                        rng=rng,
                        force=None if pinned is None else pinned ^ flip,
                    )
                except ForcedOutcomeContradiction:
                    raise ZeroProbabilityBranch(
                        f"forced outcome {pinned} on node {op.node} has "
                        f"probability 0 (deterministic Pauli measurement)"
                    ) from None
                if prob == 0.5:  # random outcome; deterministic ones weigh 1
                    log2_weight -= 1.0
                out = tab_out ^ flip
                if op.flip_p > 0.0 and rng.random() < op.flip_p:
                    out ^= 1  # readout flip corrupts downstream adaptivity
                outcomes[op.node] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    col = slot_cols[op.slot]
                    for name in op.clifford:
                        st.apply_named(name, (col,))
            else:  # UnitaryOp
                col = slot_cols[op.slot]
                for name in op.clifford:
                    st.apply_named(name, (col,))
        out_cols = tuple(slot_cols[s] for s in compiled.out_perm)
        return StabilizerOutput(st, out_cols, log2_weight), outcomes

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        self._require_clifford(compiled)
        _check_branch_noiseless(compiled, self.name)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"input block must have shape (B, {1 << compiled.num_inputs})"
            )
        n_total = self._total_nodes(compiled)
        raw: List[StabilizerOutput] = []
        for row in inputs:
            st, log2_w = self._init_tableau(compiled, row, n_total)
            out, _ = self._run_one(compiled, st, log2_w, None, forced)
            raw.append(out)
        return BranchRun(
            outcomes=forced,
            weights=np.array([o.weight for o in raw]),
            raw=tuple(raw),
        )

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
    ) -> SampleRun:
        if n_shots < 1:
            raise ValueError("n_shots must be positive")
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_clifford(compiled)
        row = _input_row(compiled, input_state)
        n_total = self._total_nodes(compiled)
        raw: List[StabilizerOutput] = []
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        for j in range(n_shots):
            st, log2_w = self._init_tableau(compiled, row, n_total)
            out, outcomes = self._run_one(compiled, st, log2_w, rng, forced)
            raw.append(out)
            for i, node in enumerate(compiled.measured_nodes):
                outs[j, i] = outcomes[node]
        return SampleRun(nodes=compiled.measured_nodes, outcomes=outs, raw=tuple(raw))


def draw_pauli_fault(op: ChannelOp, rng) -> Optional[int]:
    """Sample ``op``'s Pauli mixture once: X/Y/Z index, or ``None`` for
    identity.  Shared by every single-trajectory executor (the stabilizer
    engine and the in-process interpreter in :mod:`repro.mbqc.runner`)."""
    _, px, py, pz = _require_pauli_channel(op)
    if px == py == pz:
        # Uniform (depolarizing) mixture: keep the historical draw pattern
        # so seeded trajectories reproduce across the refactor.
        p = 3.0 * px
        if p > 0.0 and rng.random() < p:
            return int(rng.integers(3))
        return None
    u = rng.random()
    lo = 1.0 - (px + py + pz)
    for i, p in enumerate((px, py, pz)):
        if lo <= u < lo + p:
            return i
        lo += p
    return None


def _sample_tableau_channel(st: StabilizerState, col: int, op: ChannelOp, rng) -> None:
    """Sample ``op``'s Pauli mixture as a fault on one tableau column."""
    i = draw_pauli_fault(op, rng)
    if i is not None:
        st.apply_named(_PAULI_GATES[i], (col,))


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, PatternBackend] = {}


def register_backend(backend: PatternBackend, name: Optional[str] = None) -> None:
    """Register an engine under ``name`` (default: ``backend.name``)."""
    _REGISTRY[name or backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Registered engine names."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> PatternBackend:
    """Look up a registered engine by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PatternError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def select_backend(
    compiled: CompiledPattern,
    prefer: Union[str, PatternBackend, None] = "auto",
    dense_outputs: bool = False,
) -> PatternBackend:
    """Pick an engine for ``compiled``.

    ``prefer`` may be a backend instance (returned as-is after a
    ``supports`` check), a registered name (strict: raises
    :class:`PatternError` when the engine cannot execute the pattern — e.g.
    a non-Clifford pattern forced onto the stabilizer engine), or
    ``"auto"``/``None``: dense statevector while the peak register fits in
    ``DENSE_AUTO_MAX_LIVE`` qubits, the stabilizer fast path beyond that
    for Clifford-classified patterns.

    Automatic dispatch only picks the stabilizer engine for
    state-preparation patterns (no inputs): tableau columns carry no global
    phase, so a multi-column branch map would have phase-incoherent columns
    — explicit ``prefer="stabilizer"`` still allows it, with that caveat.
    Consumers that must densify the outputs (``run_pattern``, the solver's
    sampler, dense branch maps) pass ``dense_outputs=True``, which keeps
    auto-dispatch dense whenever the output register exceeds the
    ``DENSE_EXTRACT_MAX``-qubit densification cap.
    """
    if prefer is None:
        prefer = "auto"
    if not isinstance(prefer, str):
        if not prefer.supports(compiled):
            raise PatternError(
                f"backend {getattr(prefer, 'name', prefer)!r} cannot execute "
                f"this pattern"
            )
        return prefer
    if prefer != "auto":
        backend = get_backend(prefer)
        if not backend.supports(compiled):
            raise PatternError(
                f"backend {prefer!r} cannot execute this pattern"
                + (
                    ": it is not Clifford (non-Pauli measurement bases or "
                    "non-Clifford corrections); use 'statevector' or 'auto'"
                    if prefer == "stabilizer"
                    else ""
                )
            )
        return backend
    if compiled.has_non_pauli_channel:
        # Non-Pauli channels cannot be trajectory-sampled: the density
        # engine is the only one that executes such a program (exactly).
        dens = _REGISTRY.get("density")
        if dens is not None and dens.supports(compiled):
            return dens
        raise PatternError(
            "pattern carries non-Pauli channels beyond the density engine's "
            "reach; no registered backend can execute it"
        )
    if (
        compiled.max_live > DENSE_AUTO_MAX_LIVE
        and compiled.num_inputs == 0
        and not (dense_outputs and compiled.num_outputs > DENSE_EXTRACT_MAX)
    ):
        stab = _REGISTRY.get("stabilizer")
        if stab is not None and stab.supports(compiled):
            return stab
    return get_backend("statevector")


def resolve_backend(
    backend: Union[str, PatternBackend, None],
    compiled: CompiledPattern,
    dense_outputs: bool = False,
) -> PatternBackend:
    """Coerce a user-supplied ``backend`` argument (name, instance, or
    ``None`` for automatic dispatch) to an engine for ``compiled``."""
    if backend is None or isinstance(backend, str):
        return select_backend(compiled, backend, dense_outputs=dense_outputs)
    return backend


def default_backend() -> PatternBackend:
    """The shared dense engine (kept for API compatibility; prefer
    :func:`select_backend` for automatic dispatch)."""
    return get_backend("statevector")


register_backend(StatevectorBackend())
register_backend(StabilizerBackend())

# The density-matrix engine lives in its own module (it pulls in the
# repro.sim.density substrate) and registers itself on import.
import repro.mbqc.density_backend  # noqa: E402,F401  (registers "density")
