"""Execution backends for compiled measurement patterns.

A :class:`PatternBackend` runs a :class:`~repro.mbqc.compile.CompiledPattern`
either on a *forced outcome branch* for a whole block of input states at
once (``run_branch_batch`` — the engine under
:func:`repro.mbqc.runner.pattern_to_matrix` and the branch-exhaustive
verification in :mod:`repro.core.verify`) or as a block of *sampled
trajectories* with per-element RNG outcomes and per-element corrections
(``sample_batch`` — the engine under :meth:`repro.core.solver.MBQCQAOASolver
.sample` shot loops and the noise-trajectory averaging in
:mod:`repro.mbqc.noise`).

Backends live in a named registry.  :func:`select_backend` dispatches a
compiled pattern automatically: the dense :class:`StatevectorBackend`
(always applicable) is the default, and Clifford-angle patterns — every
measurement basis Pauli, every correction/Clifford a single-qubit Clifford,
as classified at compile time (:attr:`CompiledPattern.is_clifford`) — fall
through to the :class:`StabilizerBackend` once the live register outgrows
dense reach.  Stabilizer outputs stay in tableau form
(:class:`StabilizerOutput`) and densify only on demand, so graph-state and
Pauli-measurement patterns verify at sizes far beyond ``2^n`` memory.

Both engines vectorize ``sample_batch`` across the shot block: the dense
engine over a :class:`~repro.sim.statevector.BatchedStateVector`, the
stabilizer engine over a bit-packed
:class:`~repro.stab.batched.BatchedTableau` (one shared GF(2) structure,
per-shot packed sign bits) with a retained per-shot loop
(``vectorize=False``) that consumes the identical whole-block draw
schedule — seeded trajectories are bit-identical between the two stabilizer
paths (benchmark E22).

Noise enters as a compile-time channel program
(:func:`repro.mbqc.compile.lower_noise` weaves ``ChannelOp``s and readout
flips into the op stream), executed identically by every engine: the
trajectory engines here sample Pauli-mixture channels per element, while
the density-matrix engine (:mod:`repro.mbqc.density_backend`, registered as
``"density"``) applies arbitrary channels exactly — automatic dispatch
routes programs carrying non-Pauli channels to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    lower_noise,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.statevector import (
    BatchedStateVector,
    KET_PLUS,
    StateVector,
    ZeroProbabilityBranch,
)
from repro.stab.batched import (
    BatchedTableau,
    pack_bits,
    unpack_shot_bits,
)
from repro.stab.tableau import (
    ForcedOutcomeContradiction,
    StabilizerState,
    canonical_stabilizer_key,
    stab_rows_to_paulis,
    statevector_from_generators,
)
from repro.utils.rng import SeedLike, ensure_rng

try:  # typing.Protocol exists on all supported pythons; keep a soft fallback
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


# Dense execution allocates 2^max_live amplitudes per batch element; past
# this register width the auto-dispatcher prefers a non-dense backend.
DENSE_AUTO_MAX_LIVE = 16

# Densifying a tableau output materializes 2^n_out amplitudes (cap enforced
# by repro.stab.tableau.statevector_from_generators); consumers that need
# dense outputs must not be auto-dispatched to the stabilizer engine past it.
DENSE_EXTRACT_MAX = 20

# Default per-shot byte budget for backend selection (2 GiB).  Routing a
# pattern whose statically-estimated footprint exceeds this raises an
# actionable PatternError (diagnostic R101) instead of letting numpy OOM
# mid-allocation; select_backend(..., max_bytes=0) disables the check.
PEAK_BYTE_BUDGET = 1 << 31

#: Auto-dispatch picks the MPS engine past dense reach only while the
#: compile-time interaction-width statistic stays this small: line/ring
#: cluster patterns compile to width ≤ 1 (bounded entanglement, bond
#: dimensions stay tiny), dense interaction graphs to ~max_live (an MPS
#: would truncate heavily).  Explicit ``prefer="mps"`` is never gated.
MPS_AUTO_MAX_WIDTH = 2

_PAULI_GATES = ("x", "y", "z")


@dataclass
class StabilizerOutput:
    """One batch element's output on the stabilizer engine.

    The tableau covers *every* node the pattern ever prepared (measured
    columns stay collapsed in place); ``out_cols`` are the columns of the
    output nodes in output order.  ``log2_weight`` is the exact log-2
    branch probability — each random forced measurement contributes -1,
    each deterministic one 0 — kept in the log domain because a float
    product of 1/2's underflows to 0.0 past ~1074 random outcomes, exactly
    the scale this engine exists for.  Densification is on demand only:
    :meth:`to_statevector` matches the dense engine's unnormalized
    convention ``‖state‖² = weight`` (up to the global phase a tableau
    cannot represent).
    """

    tableau: Optional[StabilizerState]
    out_cols: Tuple[int, ...]
    log2_weight: float

    @property
    def weight(self) -> float:
        """Branch probability (may underflow to 0.0 at extreme depths;
        compare ``log2_weight`` when exactness matters)."""
        return float(2.0 ** self.log2_weight)

    def stabilizer_bits(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generator rows ``(x, z, r)`` of the output-restricted state."""
        if not self.out_cols:
            z = np.zeros((0, 0), dtype=bool)
            return z, z.copy(), np.zeros(0, dtype=np.int8)
        assert self.tableau is not None
        return self.tableau.extract_substate(self.out_cols)

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the (unit-norm) output."""
        return np.abs(self.unit_statevector()) ** 2

    def canonical_key(self) -> bytes:
        """Branch-comparison key: canonical stabilizer form of the output."""
        return canonical_stabilizer_key(*self.stabilizer_bits())

    def unit_statevector(self) -> np.ndarray:
        """Dense little-endian output column at unit norm."""
        return _densify_generator_bits(*self.stabilizer_bits(), len(self.out_cols))

    def to_statevector(self) -> np.ndarray:
        """Dense little-endian output column, scaled to ``‖·‖² = weight``."""
        return np.sqrt(self.weight) * self.unit_statevector()


def _densify_generator_bits(
    x: np.ndarray, z: np.ndarray, r: np.ndarray, n_out: int
) -> np.ndarray:
    """Unit statevector from generator bits, with the densification cap."""
    if n_out > DENSE_EXTRACT_MAX:
        raise ValueError(
            f"cannot densify a {n_out}-qubit stabilizer output "
            f"(cap {DENSE_EXTRACT_MAX}); compare canonical forms instead, "
            f"or run on the statevector backend"
        )
    return statevector_from_generators(stab_rows_to_paulis(x, z, r), n_out)


class _BatchedExtraction:
    """Shared, lazily computed output extraction of one batched run.

    The Gaussian elimination that isolates the output generators runs once
    on the batch's shared X/Z bits; every shot reuses it, differing only in
    sign bits — so retaining per-shot outputs costs O(n_out) per shot, not
    a full O(n²) tableau.
    """

    def __init__(self, tab: BatchedTableau, out_cols: Tuple[int, ...]):
        self._tab = tab
        self._out_cols = tuple(out_cols)
        self._bits: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def log2_weight(self, shot: int) -> float:
        return float(self._tab.log2_weight[shot])

    def bits(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._bits is None:
            if not self._out_cols:
                empty = np.zeros((0, 0), dtype=bool)
                self._bits = (
                    empty,
                    empty.copy(),
                    np.zeros((self._tab.n_shots, 0), dtype=np.int8),
                )
            else:
                self._bits = self._tab.extract_substate(self._out_cols)
        return self._bits


@dataclass
class PackedStabilizerOutput:
    """One shot's output view into a shared batched extraction.

    Duck-type compatible with :class:`StabilizerOutput` (canonical keys,
    exact log-2 branch weights, on-demand densification): the generator
    X/Z bits — identical across shots — live once in the parent
    :class:`_BatchedExtraction`; only the sign bits are per shot.
    """

    batch: _BatchedExtraction
    shot: int

    @property
    def log2_weight(self) -> float:
        return self.batch.log2_weight(self.shot)

    @property
    def weight(self) -> float:
        return float(2.0 ** self.log2_weight)

    def stabilizer_bits(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x, z, r = self.batch.bits()
        return x, z, r[self.shot]

    def canonical_key(self) -> bytes:
        return canonical_stabilizer_key(*self.stabilizer_bits())

    def probabilities(self) -> np.ndarray:
        return np.abs(self.unit_statevector()) ** 2

    def unit_statevector(self) -> np.ndarray:
        x, z, r = self.stabilizer_bits()
        return _densify_generator_bits(x, z, r, x.shape[1])

    def to_statevector(self) -> np.ndarray:
        return np.sqrt(self.weight) * self.unit_statevector()


@dataclass
class BranchRun:
    """Result of one forced-branch batched execution.

    ``outcomes`` echoes the forced branch in measurement order.  Dense
    engines fill ``states`` — a ``(B, 2**n_out)`` block whose row ``j`` is
    the (unnormalized) output state for input row ``j``, output qubits
    little-endian in ``output_nodes`` order.  Non-dense engines fill ``raw``
    (one backend-native output per element, e.g. :class:`StabilizerOutput`)
    and leave ``states`` to :meth:`dense_states` densification on demand.
    ``weights[j]`` is the probability of this outcome branch for element
    ``j`` (for unit-norm inputs, ``‖states[j]‖²``).
    """

    outcomes: Dict[int, int]
    states: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    raw: Optional[Tuple[object, ...]] = None

    def dense_states(self) -> np.ndarray:
        """The ``(B, 2**n_out)`` block, densifying ``raw`` if needed.

        Tableau-backed rows are exact up to a per-row global phase (a
        stabilizer tableau does not represent one)."""
        if self.states is None:
            if self.raw is None:
                raise ValueError("branch run carries neither states nor raw outputs")
            self.states = np.stack([out.to_statevector() for out in self.raw])
        return self.states


@dataclass
class SampleRun:
    """Result of one batched trajectory-sampling execution.

    ``outcomes[j, i]`` is element ``j``'s outcome for the ``i``-th measured
    node (order ``nodes`` = ``compiled.measured_nodes``).  Dense engines
    fill ``states`` with normalized output rows; non-dense engines fill
    ``raw`` instead (densified on demand by :meth:`dense_states`) — but only
    when asked to via ``sample_batch(..., keep_raw=True)``: a run carrying
    neither ``states`` nor ``raw`` is outcome-records-only, and the
    state-consuming accessors raise a :class:`ValueError` pointing at the
    flag (retaining one output per shot costs O(shots · output size)).
    """

    nodes: Tuple[int, ...]
    outcomes: np.ndarray
    states: Optional[np.ndarray] = None
    raw: Optional[Tuple[object, ...]] = None

    @property
    def n_shots(self) -> int:
        return self.outcomes.shape[0]

    def outcome_dicts(self) -> List[Dict[int, int]]:
        """Per-trajectory ``node -> bit`` maps."""
        return [
            {node: int(self.outcomes[j, i]) for i, node in enumerate(self.nodes)}
            for j in range(self.n_shots)
        ]

    def dense_states(self) -> np.ndarray:
        """Normalized ``(n_shots, 2**n_out)`` output block.

        Raises for raw outputs that are genuinely mixed (density-engine
        trajectories under noise cannot be a state vector) — use
        :meth:`probability_rows` or the raw density matrices instead."""
        if self.states is None:
            if self.raw is None:
                raise ValueError(
                    "sample run carries neither states nor raw outputs; "
                    "request per-shot outputs with sample_batch(..., keep_raw=True)"
                )
            self.states = np.stack([out.unit_statevector() for out in self.raw])
        return self.states

    def probability_rows(self) -> np.ndarray:
        """Per-trajectory computational-basis probabilities
        (``(n_shots, 2**n_out)``) — works on every engine, including mixed
        density-matrix outputs that cannot densify to state vectors."""
        if self.states is None and self.raw is not None:
            return np.stack([out.probabilities() for out in self.raw])
        states = self.dense_states()
        p = np.abs(states) ** 2
        return p / p.sum(axis=1, keepdims=True)

    def sample_bitstrings(self, shots: int, rng) -> np.ndarray:
        """Draw ``shots`` computational-basis samples spread evenly over
        the run's trajectories (ceil split; the tail trajectory takes the
        remainder).  The shared resampling step under the solver's shot
        loop and the CLI's noisy sampling path."""
        if shots < 1:
            raise ValueError("shots must be positive")
        rows = self.probability_rows()
        per_run = -(-shots // rows.shape[0])  # ceil
        draws: List[int] = []
        for row in rows:
            take = min(per_run, shots - len(draws))
            if take <= 0:
                break
            picks = rng.choice(row.size, size=take, p=row / row.sum())
            draws.extend(int(x) for x in picks)
        return np.asarray(draws[:shots], dtype=np.int64)


@runtime_checkable
class PatternBackend(Protocol):
    """Contract a pattern-execution engine must satisfy."""

    name: str

    def supports(self, compiled: CompiledPattern) -> bool:
        """Whether this backend can execute ``compiled`` exactly."""
        ...

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        """Run every row of ``inputs`` (``(B, 2**k)``) through ``compiled``
        on the branch pinned by ``forced_outcomes`` (all measured nodes)."""
        ...

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
    ) -> SampleRun:
        """Run ``n_shots`` independent trajectories from one input state,
        drawing measurement outcomes per element from the Born rule
        (``forced_outcomes`` pins a subset for every element).  ``noise``
        is an optional :class:`repro.mbqc.noise.NoiseModel`-like object
        (``p_prep``/``p_ent``/``p_meas``) injecting per-element Pauli
        faults.  ``keep_raw=True`` retains per-shot backend-native outputs;
        the default ``False`` *permits* dropping them (outcome records
        only — retaining costs O(shots · output size)), though engines
        whose sweep materializes dense ``states`` anyway (the statevector
        engine) always fill them.  Consumers that call ``dense_states``/
        ``probability_rows`` must pass ``keep_raw=True`` to be
        engine-generic."""
        ...


def _check_n_shots(n_shots: int, name: str) -> None:
    if n_shots < 0:
        raise ValueError(
            f"the {name} engine needs a non-negative n_shots, got {n_shots}"
        )


def _empty_sample_run(
    compiled: CompiledPattern, keep_raw: bool, dense: bool = False
) -> SampleRun:
    """The uniform ``n_shots=0`` result: a well-shaped empty record block,
    no RNG draw, no chunk planning.  Every engine early-returns this
    after validating its inputs, so a zero-shot request succeeds exactly
    when a one-shot request would (contract shared by all four engines —
    the checkpoint executor's empty-job path relies on it)."""
    return SampleRun(
        nodes=compiled.measured_nodes,
        outcomes=np.zeros((0, len(compiled.measured_nodes)), dtype=np.int8),
        states=(
            np.zeros((0, 1 << compiled.num_outputs), dtype=complex)
            if dense else None
        ),
        raw=() if keep_raw and not dense else None,
    )


def _input_row(
    compiled: CompiledPattern, input_state, name: str = "pattern"
) -> np.ndarray:
    """Coerce ``input_state`` to one little-endian amplitude row."""
    k = compiled.num_inputs
    if input_state is None:
        row = np.ones(1, dtype=complex)
        for _ in range(k):
            row = np.multiply.outer(row, KET_PLUS).reshape(-1)
        return row
    if isinstance(input_state, StateVector):
        row = input_state.to_array()
    else:
        row = np.asarray(input_state, dtype=complex).reshape(-1)
    if row.size != 1 << k:
        raise PatternError(
            f"the {name} engine got an input state of {row.size} amplitudes "
            f"for a pattern with {k} inputs (expected {1 << k})"
        )
    return row


def _measure_vecs(op: MeasureOp, s, t) -> np.ndarray:
    """Effective basis vectors of ``op`` for signal parities ``(s, t)``.

    Scalar parities give one ``(2, 2)`` basis; per-element ``(B,)`` parity
    vectors gather a ``(B, 2, 2)`` per-element block from the precompiled
    ``basis_block`` (hand-built ops without the view get it rebuilt) — the
    shared gather of the dense and density batched sweeps."""
    block = op.basis_block
    if block is None:
        block = np.array([[b.b0, b.b1] for b in op.bases], dtype=complex)
    return block[s + 2 * t]


def _check_branch(compiled: CompiledPattern, forced_outcomes) -> Dict[int, int]:
    missing = [n for n in compiled.measured_nodes if n not in forced_outcomes]
    if missing:
        raise PatternError(
            f"branch must force all outcomes; missing {sorted(missing)}"
        )
    for node in compiled.measured_nodes:
        if forced_outcomes[node] not in (0, 1):
            raise PatternError(f"forced outcome for node {node} must be 0 or 1")
    return {node: forced_outcomes[node] for node in compiled.measured_nodes}


class StatevectorBackend:
    """Dense batched-statevector execution (applicable to every pattern
    except programs carrying lowered non-Pauli channels, which cannot be
    trajectory-sampled — those need the density engine)."""

    name = "statevector"
    byte_model_note = "2^max_live dense amplitudes"

    def supports(self, compiled: CompiledPattern) -> bool:
        return not compiled.has_non_pauli_channel

    def bytes_per_shot(self, compiled: CompiledPattern) -> int:
        """``16 · 2^max_live`` amplitudes per batch element — the registry
        hook the resource estimator builds its per-engine rows from."""
        return 16 * (1 << compiled.max_live)

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        _check_branch_noiseless(compiled, self.name)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        sv = BatchedStateVector.from_arrays(inputs)
        if sv.num_qubits != compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {sv.num_qubits}-qubit rows"
            )
        weights = np.ones(sv.batch_size, dtype=float)
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                sv.add_qubit(op.state)
            elif tp is EntangleOp:
                sv.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                out = forced[op.node]
                weights *= sv.measure_forced(op.slot, op.bases[s + 2 * t], out)
                outcomes[op.node] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    sv.apply_1q(op.matrix, op.slot)
            else:  # UnitaryOp
                sv.apply_1q(op.matrix, op.slot)
        sv.permute(compiled.out_perm)
        return BranchRun(outcomes=outcomes, states=sv.to_arrays(), weights=weights)

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
    ) -> SampleRun:
        # keep_raw is accepted for interface uniformity; the dense sweep
        # materializes the state block either way, so there is nothing to
        # drop and `states` is always filled.
        _check_n_shots(n_shots, self.name)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        row = _input_row(compiled, input_state, self.name)
        if n_shots == 0:
            return _empty_sample_run(compiled, keep_raw, dense=True)
        sv = BatchedStateVector.from_arrays(np.tile(row, (n_shots, 1)))
        rec: Dict[int, np.ndarray] = {}  # node -> (B,) outcome bits
        since_renorm = 0
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                sv.add_qubit(op.state)
            elif tp is EntangleOp:
                sv.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = _parity_vec(rec, op.s_domain, n_shots)
                t = _parity_vec(rec, op.t_domain, n_shots)
                vecs = _measure_vecs(op, s, t)  # (B, 2, 2) per-element bases
                outs, _probs = sv.measure_sampled(
                    op.slot, vecs, rng=rng, force=forced.get(op.node),
                    renormalize=False,
                )
                # Outcome draws only need amplitude ratios, so per-step
                # normalization is deferred — but each projection shrinks
                # the norm (typically by ~1/2), so rescale periodically to
                # keep thousand-measurement patterns clear of underflow.
                since_renorm += 1
                if since_renorm >= 64:
                    sv.renormalize()
                    since_renorm = 0
                if op.flip_p > 0.0:
                    # Readout flip: corrupts downstream adaptivity too.
                    outs = outs ^ (rng.random(n_shots) < op.flip_p)
                rec[op.node] = outs.astype(np.int8)
            elif tp is ConditionalOp:
                fire = _parity_vec(rec, op.domain, n_shots).astype(bool)
                sv.apply_1q_masked(op.matrix, op.slot, fire)
            elif tp is ChannelOp:
                _sample_pauli_channel_batch(sv, op, rng)
            else:  # UnitaryOp
                sv.apply_1q(op.matrix, op.slot)
        sv.permute(compiled.out_perm)
        outcomes = (
            np.stack([rec[n] for n in compiled.measured_nodes], axis=1)
            if compiled.measured_nodes
            else np.zeros((n_shots, 0), dtype=np.int8)
        )
        # Normalization was deferred through the measurement sweep (outcome
        # probabilities only need amplitude ratios); restore unit rows once.
        states = sv.to_arrays()
        states /= np.linalg.norm(states, axis=1, keepdims=True)
        return SampleRun(
            nodes=compiled.measured_nodes, outcomes=outcomes, states=states
        )


def _parity_vec(rec: Dict[int, np.ndarray], domain, n_shots: int) -> np.ndarray:
    """Per-element XOR of recorded outcome vectors over ``domain``."""
    parity = np.zeros(n_shots, dtype=np.int8)
    for node in domain:
        parity ^= rec[node]
    return parity


_DENSE_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


def _check_branch_noiseless(compiled: CompiledPattern, name: str) -> None:
    """Forced-branch extraction on a trajectory engine is only defined for
    noiseless programs — a sampled channel would make the branch map a
    random variable.  The density engine integrates channels exactly and
    accepts noise-lowered programs."""
    if compiled.has_noise:
        raise PatternError(
            f"backend {name!r} cannot run forced branches of a noise-lowered "
            f"program; use the 'density' backend for exact noisy branch maps"
        )


def _require_pauli_channel(op: ChannelOp) -> Tuple[float, float, float, float]:
    if op.pauli_probs is None:
        raise PatternError(
            f"channel {op.label!r} is not a Pauli mixture; trajectory engines "
            f"cannot sample it — run the 'density' backend (exact integration)"
        )
    return op.pauli_probs


def _sample_pauli_channel_batch(sv: BatchedStateVector, op: ChannelOp, rng) -> None:
    """Sample ``op``'s Pauli mixture independently per batch element."""
    _, px, py, pz = _require_pauli_channel(op)
    b = sv.batch_size
    if px == py == pz:
        # Uniform (depolarizing) mixture: one fire draw + one Pauli pick,
        # byte-compatible with the historical fault stream so seeded
        # trajectories reproduce across the refactor.
        p = 3.0 * px
        if p <= 0.0:
            return
        fire = rng.random(b) < p
        # The Pauli pick is drawn unconditionally: skipping it when no
        # shot fired would make the draw *schedule* depend on the sampled
        # data, so the stream consumed after this op would differ between
        # a block where nothing fired and the same shots embedded in a
        # larger coalesced batch (repro.serve muxes per-job generators
        # through whole-block draws — the schedule must be data-free).
        which = rng.integers(3, size=b)
        if not fire.any():
            return
        for i, mat in enumerate(_DENSE_PAULIS):
            sv.apply_1q_masked(mat, op.slot, fire & (which == i))
        return
    u = rng.random(b)
    lo = 1.0 - (px + py + pz)
    for mat, p in zip(_DENSE_PAULIS, (px, py, pz)):
        if p > 0.0:
            sv.apply_1q_masked(mat, op.slot, (u >= lo) & (u < lo + p))
        lo += p


class StabilizerBackend:
    """Stabilizer-tableau execution for Clifford-angle patterns.

    Applicable exactly when the compile-time classifier tagged every op
    Clifford (:attr:`CompiledPattern.is_clifford`).  Slot add/remove is
    mapped onto tableau columns: the tableau grows one column per prepared
    node and measured columns stay behind, collapsed in place, so the cost
    is ``O(total_nodes²)`` bits instead of ``2^max_live`` amplitudes.
    Forced Pauli measurements carry exact branch weights — 1/2 per random
    outcome, 1 per deterministic one — and forcing against a deterministic
    outcome raises :class:`~repro.sim.statevector.ZeroProbabilityBranch`
    (zero-weight branch), mirroring the dense engine's semantics.

    Branch outputs are :class:`StabilizerOutput` tableaus, vectorized
    ``sample_batch`` outputs :class:`PackedStabilizerOutput` views into one
    shared extraction; densification (which loses only a global phase)
    happens on demand.  Input rows must be stabilizer product rows the
    engine recognizes: computational basis columns (what
    :func:`~repro.mbqc.runner.pattern_to_matrix` sends) or the uniform
    ``|+>^k`` row (the default pattern input).
    """

    name = "stabilizer"
    byte_model_note = "total-nodes scalar tableau"

    def supports(self, compiled: CompiledPattern) -> bool:
        return compiled.is_clifford

    def bytes_per_shot(self, compiled: CompiledPattern) -> int:
        """``4·n² + 2·n`` tableau bytes over ``n = total_nodes`` (the
        scalar per-shot tableau; the bit-packed batched path is strictly
        cheaper) — the resource-estimator registry hook."""
        n = self._total_nodes(compiled)
        return 4 * n * n + 2 * n

    def _require_clifford(self, compiled: CompiledPattern) -> None:
        if not compiled.is_clifford:
            raise PatternError(
                "pattern is not Clifford (a measurement basis is not Pauli, a "
                "correction is not a single-qubit Clifford, or a lowered "
                "channel is not a Pauli mixture); run it on the statevector "
                "or density backend instead"
            )

    # -- input handling ----------------------------------------------------
    def _total_nodes(self, compiled: CompiledPattern) -> int:
        """Tableau width: inputs plus every node the pattern prepares."""
        return compiled.num_inputs + sum(
            1 for op in compiled.ops if type(op) is PrepOp
        )

    def _classify_input_row(self, row: np.ndarray) -> Tuple[str, int, float]:
        """``row`` as a recognized stabilizer product: ``(kind, bits, log2w)``.

        ``kind`` is ``"basis"`` (computational column ``bits``) or
        ``"uniform"`` (the ``|+>^k`` row); ``log2w`` is the log-2 squared
        input norm.  Shared by the scalar and the batched initializers so
        the two execution paths cannot diverge on input acceptance.
        """
        nz = np.nonzero(np.abs(row) > 1e-12)[0]
        if nz.size == 1:
            return "basis", int(nz[0]), float(np.log2(abs(row[nz[0]]) ** 2))
        if nz.size == row.size and np.allclose(row, row[0], atol=1e-12):
            return "uniform", 0, float(np.log2(np.vdot(row, row).real))
        raise PatternError(
            f"the {self.name} engine accepts computational-basis or uniform "
            f"|+>^k input rows only; use the statevector backend for general "
            f"inputs"
        )

    def _init_tableau(
        self, compiled: CompiledPattern, row: np.ndarray, n_total: int
    ) -> Tuple[Optional[StabilizerState], float]:
        """Full-width tableau with the input columns in state ``row`` (all
        prep columns start ``|0>`` and are rotated when their ``PrepOp``
        executes — preallocating avoids an O(n²) tableau copy per prepared
        node).  Returns the tableau (``None`` when the pattern has no
        nodes at all) and the log-2 squared input norm.
        """
        k = compiled.num_inputs
        if n_total == 0:
            w = float(abs(row[0]) ** 2)
            if w <= 0.0:
                raise PatternError(
                    f"the {self.name} engine got an input row with zero norm"
                )
            return None, float(np.log2(w))
        kind, bits, log2_w = self._classify_input_row(row)
        st = StabilizerState(n_total)
        if kind == "basis":
            for q in range(k):
                if (bits >> q) & 1:
                    st.x_gate(q)
        else:
            for q in range(k):
                st.h(q)
        return st, log2_w

    # -- per-shot (scalar) execution ----------------------------------------
    def _run_one(
        self,
        compiled: CompiledPattern,
        st: Optional[StabilizerState],
        log2_weight: float,
        draws,
        forced: Mapping[int, int],
    ) -> Tuple[StabilizerOutput, Dict[int, int]]:
        """Execute one trajectory/branch on one (preallocated) tableau.

        ``forced`` pins outcomes for the nodes it contains; the rest are
        sampled through ``draws`` (a :class:`_ShotDrawTable` view for
        batch-applicable programs, :class:`_GeneratorDraws` otherwise —
        branch runs, which force everything and are noiseless-checked, pass
        ``None``).  Replays the compiled slot dynamics against monotonically
        assigned tableau columns: ``slot_cols[s]`` is the column of the node
        currently in slot ``s``.
        """
        next_col = compiled.num_inputs
        slot_cols = list(range(next_col))
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                col = next_col
                next_col += 1
                # The column starts |0>; rotate it into the prep state.
                if op.label in ("plus", "minus"):
                    st.h(col)
                    if op.label == "minus":
                        st.z_gate(col)
                elif op.label == "one":
                    st.x_gate(col)
                slot_cols.append(col)
            elif tp is EntangleOp:
                st.cz(slot_cols[op.slots[0]], slot_cols[op.slots[1]])
            elif tp is ChannelOp:
                if draws is not None:
                    i = draws.fault(op)
                    if i >= 0:
                        st.apply_named(_PAULI_GATES[i], (slot_cols[op.slot],))
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                label, flip = op.pauli[s + 2 * t]
                col = slot_cols.pop(op.slot)
                pinned = forced.get(op.node)
                try:
                    tab_out, prob = st.measure_pauli_info(
                        col, label,
                        rng=None if draws is None else draws.outcome,
                        force=None if pinned is None else pinned ^ flip,
                    )
                except ForcedOutcomeContradiction:
                    raise ZeroProbabilityBranch(
                        f"forced outcome {pinned} on node {op.node} has "
                        f"probability 0 (deterministic Pauli measurement)"
                    ) from None
                if prob == 0.5:  # random outcome; deterministic ones weigh 1
                    log2_weight -= 1.0
                out = tab_out ^ flip
                if op.flip_p > 0.0 and draws is not None and draws.flip(op.flip_p):
                    out ^= 1  # readout flip corrupts downstream adaptivity
                outcomes[op.node] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    col = slot_cols[op.slot]
                    for name in op.clifford:
                        st.apply_named(name, (col,))
            else:  # UnitaryOp
                col = slot_cols[op.slot]
                for name in op.clifford:
                    st.apply_named(name, (col,))
        out_cols = tuple(slot_cols[s] for s in compiled.out_perm)
        return StabilizerOutput(st, out_cols, log2_weight), outcomes

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        self._require_clifford(compiled)
        _check_branch_noiseless(compiled, self.name)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {inputs.shape}"
            )
        n_total = self._total_nodes(compiled)
        raw: List[StabilizerOutput] = []
        for row in inputs:
            st, log2_w = self._init_tableau(compiled, row, n_total)
            out, _ = self._run_one(compiled, st, log2_w, None, forced)
            raw.append(out)
        return BranchRun(
            outcomes=forced,
            weights=np.array([o.weight for o in raw]),
            raw=tuple(raw),
        )

    # -- trajectory sampling -------------------------------------------------
    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
        vectorize: Optional[bool] = None,
    ) -> SampleRun:
        """Sample ``n_shots`` trajectories, vectorized across the shot block.

        The default path advances one :class:`~repro.stab.batched
        .BatchedTableau` — a shared bit-packed GF(2) structure with per-shot
        packed sign bits — through a single compiled-op sweep (the tableau
        analogue of the dense engine's ``measure_sampled``/
        ``apply_1q_masked`` sweep).  ``vectorize=False`` forces the retained
        per-shot loop; ``None`` falls back to it automatically when the
        program cannot be batch-applied (empty register, a non-Pauli
        conditional word, or a measurement whose effective bases span
        several Pauli axes).  Both paths consume the parent generator
        through the same sequence of whole-block vector draws, so seeded
        trajectories are **bit-identical** between them (benchmark E22
        asserts this).

        ``keep_raw`` (default off) controls whether per-shot outputs are
        retained: the vectorized path keeps them as O(n_out)-per-shot
        :class:`PackedStabilizerOutput` views into one shared extraction,
        the loop path as full :class:`StabilizerOutput` tableaus
        (O(shots · n²) — the historical memory sink this flag retires).
        """
        _check_n_shots(n_shots, self.name)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self._require_clifford(compiled)
        row = _input_row(compiled, input_state, self.name)
        if n_shots == 0:
            return _empty_sample_run(compiled, keep_raw)
        n_total = self._total_nodes(compiled)
        eligible = n_total > 0 and _batch_applicable(compiled)
        if vectorize is None:
            vectorize = eligible
        elif vectorize and not eligible:
            raise PatternError(
                f"the {self.name} engine cannot vectorize this program "
                f"(empty register, a non-Pauli conditional, or a measurement "
                f"whose effective bases span several Pauli axes); pass "
                f"vectorize=None for automatic fallback to the per-shot loop"
            )
        if vectorize:
            return self._sample_batch_vectorized(
                compiled, n_shots, rng, row, forced, keep_raw, n_total
            )
        return self._sample_batch_loop(
            compiled, n_shots, rng, row, forced, keep_raw, n_total,
            shared_table=eligible,
        )

    def _sample_batch_loop(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng,
        row: np.ndarray,
        forced: Mapping[int, int],
        keep_raw: bool,
        n_total: int,
        shared_table: bool = True,
    ) -> SampleRun:
        """Retained per-shot reference sampler: one scalar tableau per shot.

        For batch-applicable programs (``shared_table=True``) randomness
        comes from the same lazily-drawn vector table the vectorized path
        consumes (one ``(n_shots,)`` draw per randomness-consuming op, in op
        order — the schedule is shot-independent because it is a property of
        the shared GF(2) structure), so the two paths produce bit-identical
        seeded trajectories.  Programs the batched tableau cannot execute
        (e.g. a hand-built non-Pauli conditional, whose firing diverges the
        X/Z structure per shot and with it the draw schedule) fall back to
        plain per-shot scalar draws in the historical order.
        """
        draws = (
            _ShotDrawTable(rng, n_shots) if shared_table
            else _GeneratorDraws(rng)
        )
        raw: List[StabilizerOutput] = []
        outs = np.zeros((n_shots, len(compiled.measured_nodes)), dtype=np.int8)
        for j in range(n_shots):
            draws.start_shot(j)
            st, log2_w = self._init_tableau(compiled, row, n_total)
            out, outcomes = self._run_one(compiled, st, log2_w, draws, forced)
            if keep_raw:
                raw.append(out)
            for i, node in enumerate(compiled.measured_nodes):
                outs[j, i] = outcomes[node]
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outs,
            raw=tuple(raw) if keep_raw else None,
        )

    def _sample_batch_vectorized(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng,
        row: np.ndarray,
        forced: Mapping[int, int],
        keep_raw: bool,
        n_total: int,
    ) -> SampleRun:
        """One compiled-op sweep over the whole shot block.

        Unconditional Cliffords update the shared packed structure once;
        per-shot divergence (adaptive corrections, Pauli faults, readout
        flips, outcome records) lives entirely in packed shot words.
        Grouped op runs (:attr:`CompiledPattern.grouped_ops`) keep the
        Python dispatch per *run* of same-kind ops.
        """
        tab = BatchedTableau(n_total, n_shots)
        kind, bits, log2_w = self._classify_input_row(row)
        if kind == "basis":
            for q in range(compiled.num_inputs):
                if (bits >> q) & 1:
                    tab.x_gate(q)
        else:
            for q in range(compiled.num_inputs):
                tab.h(q)
        tab.log2_weight += log2_w
        wb = tab.wb
        shot_mask = tab.shot_mask
        rec: Dict[int, np.ndarray] = {}  # node -> packed per-shot outcome bits
        next_col = compiled.num_inputs
        slot_cols = list(range(next_col))
        for tp, run in compiled.grouped_ops:
            if tp is PrepOp:
                for op in run:
                    tab.prep_column(next_col, op.label)
                    slot_cols.append(next_col)
                    next_col += 1
            elif tp is EntangleOp:
                for op in run:
                    tab.cz(slot_cols[op.slots[0]], slot_cols[op.slots[1]])
            elif tp is ChannelOp:
                for op in run:
                    faults = draw_pauli_fault_batch(op, rng, n_shots)
                    if faults is None:
                        continue
                    col = slot_cols[op.slot]
                    for i, name in enumerate(_PAULI_GATES):
                        mask = faults == i
                        if mask.any():
                            tab.apply_pauli_masked(name, col, pack_bits(mask))
            elif tp is MeasureOp:
                for op in run:
                    s = _parity_words(rec, op.s_domain, wb)
                    t = _parity_words(rec, op.t_domain, wb)
                    label = op.pauli[0][0]  # one Pauli axis per basis table
                    flip_words = _flip_table_words(op.pauli, s, t)
                    col = slot_cols.pop(op.slot)
                    pinned = forced.get(op.node)
                    force_words = None
                    if pinned is not None:
                        force_words = ~flip_words if pinned else flip_words
                    out_words, random_ = tab.measure_pauli(
                        col,
                        label,
                        outcome_provider=lambda: pack_bits(
                            _draw_outcomes(rng, n_shots).astype(bool)
                        ),
                        force_words=force_words,
                    )
                    if not random_ and force_words is not None:
                        if ((out_words ^ force_words) & shot_mask).any():
                            raise ZeroProbabilityBranch(
                                f"forced outcome {pinned} on node {op.node} "
                                f"has probability 0 (deterministic Pauli "
                                f"measurement)"
                            )
                    out_words = out_words ^ flip_words
                    if op.flip_p > 0.0:
                        out_words = out_words ^ pack_bits(
                            _draw_flips(rng, n_shots, op.flip_p)
                        )
                    rec[op.node] = out_words
            elif tp is ConditionalOp:
                for op in run:
                    fire = _parity_words(rec, op.domain, wb)
                    if not (fire & shot_mask).any():
                        continue
                    col = slot_cols[op.slot]
                    for name in op.clifford:
                        tab.apply_pauli_masked(name, col, fire)
            else:  # UnitaryOp
                for op in run:
                    col = slot_cols[op.slot]
                    for name in op.clifford:
                        tab.apply_named(name, (col,))
        out_cols = tuple(slot_cols[s] for s in compiled.out_perm)
        outcomes = (
            np.stack(
                [
                    unpack_shot_bits(rec[node], n_shots)
                    for node in compiled.measured_nodes
                ],
                axis=1,
            )
            if compiled.measured_nodes
            else np.zeros((n_shots, 0), dtype=np.int8)
        )
        raw = None
        if keep_raw:
            shared = _BatchedExtraction(tab, out_cols)
            raw = tuple(
                PackedStabilizerOutput(shared, j) for j in range(n_shots)
            )
        return SampleRun(
            nodes=compiled.measured_nodes, outcomes=outcomes, raw=raw
        )


def draw_pauli_fault(op: ChannelOp, rng) -> Optional[int]:
    """Sample ``op``'s Pauli mixture once: X/Y/Z index, or ``None`` for
    identity.  The single-trajectory draw used by the in-process
    interpreter (:mod:`repro.mbqc.runner`).

    **Seeded-stream compatibility contract.**  This scalar path keeps the
    historical draw order (for a uniform mixture: one ``rng.random()`` fire
    draw, then — only when fired — one ``rng.integers(3)`` pick), so
    seeded ``run_pattern`` trajectories reproduce across releases.  The
    batched samplers instead consume :func:`draw_pauli_fault_batch` — one
    ``(n_shots,)`` vector draw per channel op with a fixed threshold
    layout — which is a *different* stream by design: a scalar trajectory
    and element ``j`` of a batched run agree in distribution but not bit
    for bit.  Within the batched world the contract is strict: the
    vectorized sweep and the per-shot loop in
    :meth:`StabilizerBackend.sample_batch` share the identical vector-draw
    schedule and are bit-identical for a given seed."""
    _, px, py, pz = _require_pauli_channel(op)
    if px == py == pz:
        # Uniform (depolarizing) mixture: keep the historical draw pattern
        # so seeded trajectories reproduce across the refactor.
        p = 3.0 * px
        if p > 0.0 and rng.random() < p:
            return int(rng.integers(3))
        return None
    u = rng.random()
    lo = 1.0 - (px + py + pz)
    for i, p in enumerate((px, py, pz)):
        if lo <= u < lo + p:
            return i
        lo += p
    return None


def draw_pauli_fault_batch(
    op: ChannelOp, rng, n_shots: int
) -> Optional[np.ndarray]:
    """Sample ``op``'s Pauli mixture for a whole shot block in one RNG call.

    Returns an ``(n_shots,)`` ``int8`` vector — ``-1`` identity, ``0``/
    ``1``/``2`` = X/Y/Z — or ``None`` (no randomness consumed) when the
    mixture carries no error weight.  The single ``rng.random(n_shots)``
    draw is partitioned by the cumulative threshold layout
    ``[identity | X | Y | Z]``, so the consumed stream is a fixed function
    of the op — unlike the scalar :func:`draw_pauli_fault`, whose
    second draw is conditional on firing (see the seeded-stream contract
    there)."""
    _, px, py, pz = _require_pauli_channel(op)
    total = px + py + pz
    if total <= 0.0:
        return None
    u = rng.random(n_shots)
    faults = np.full(n_shots, -1, dtype=np.int8)
    lo = 1.0 - total
    for i, p in enumerate((px, py, pz)):
        if p > 0.0:
            faults[(u >= lo) & (u < lo + p)] = i
        lo += p
    return faults


def _draw_outcomes(rng, n_shots: int) -> np.ndarray:
    """One whole-block outcome draw — the shared call both stabilizer
    sampling paths make, in the same op order, for bit-identical streams."""
    return rng.integers(2, size=n_shots)


def _draw_flips(rng, n_shots: int, p: float) -> np.ndarray:
    """One whole-block readout-flip draw (see :func:`_draw_outcomes`)."""
    return rng.random(n_shots) < p


class _ShotDrawTable:
    """Lazily drawn ``(n_shots,)`` randomness vectors shared across shots.

    The per-shot loop pulls its randomness through this table: the first
    shot to need the ``k``-th random quantity triggers one whole-block
    vector draw (via the same ``_draw_*``/``draw_pauli_fault_batch`` calls
    the vectorized sweep makes), later shots index into it.  Because the
    draw schedule of a Clifford program is shot-independent — which
    measurements are random, which ops flip or fault, is a property of the
    shared GF(2) structure — the first shot's encounter order equals the
    vectorized sweep's op order, making the two samplers consume the
    parent generator identically and produce bit-identical trajectories.

    The density engine shares this table between *its* two sampling paths
    (whose schedule is trivially shot-independent: channels are exact, so
    only measurements and readout flips consume randomness): the per-shot
    reference loop reads scalars (:meth:`uniform`/:meth:`flip`), the
    chunked vectorized sweep reads the same whole-block vectors
    (:meth:`uniform_vec`/:meth:`flip_vec` after :meth:`start_pass`) and
    slices out its shot range — so seeded trajectories are bit-identical
    between paths *and* across chunk sizes.
    """

    def __init__(self, rng, n_shots: int):
        self._rng = rng
        self._n = n_shots
        self._vecs: List[np.ndarray] = []
        self._kinds: List[object] = []
        self._shot = 0
        self._cursor = 0

    def start_shot(self, shot: int) -> None:
        self._shot = shot
        self._cursor = 0

    def start_pass(self) -> None:
        """Begin a whole-block consumption pass (one chunk of a vectorized
        sweep): block accessors replay the schedule from the top."""
        self._cursor = 0

    def _pull_vec(self, kind, drawer) -> np.ndarray:
        k = self._cursor
        self._cursor += 1
        if k == len(self._vecs):
            self._vecs.append(drawer())
            self._kinds.append(kind)
        elif self._kinds[k] != kind:  # pragma: no cover - schedule invariant
            raise RuntimeError(
                "per-shot draw schedule diverged across shots; the draw "
                "schedule should be a property of the shared structure"
            )
        return self._vecs[k]

    def _pull(self, kind, drawer):
        return self._pull_vec(kind, drawer)[self._shot]

    def outcome(self) -> int:
        return int(self._pull("outcome", lambda: _draw_outcomes(self._rng, self._n)))

    def flip(self, p: float) -> bool:
        return bool(
            self._pull(("flip", p), lambda: _draw_flips(self._rng, self._n, p))
        )

    def uniform(self) -> float:
        """One uniform deviate for the current shot (Born-rule outcome
        draws with non-1/2 probabilities; cf. the stabilizer engine's
        :meth:`outcome`, whose random outcomes are exact coin flips)."""
        return float(self._pull("uniform", lambda: self._rng.random(self._n)))

    def uniform_vec(self) -> np.ndarray:
        """The whole ``(n_shots,)`` uniform block at this schedule slot."""
        return self._pull_vec("uniform", lambda: self._rng.random(self._n))

    def flip_vec(self, p: float) -> np.ndarray:
        """The whole ``(n_shots,)`` readout-flip block at this slot."""
        return self._pull_vec(
            ("flip", p), lambda: _draw_flips(self._rng, self._n, p)
        )

    def fault(self, op: ChannelOp) -> int:
        """Fault index for the current shot (-1 = identity)."""
        _, px, py, pz = _require_pauli_channel(op)
        if px + py + pz <= 0.0:
            return -1  # no randomness consumed, matching the batch draw
        return int(
            self._pull(
                ("fault", op.label),
                lambda: draw_pauli_fault_batch(op, self._rng, self._n),
            )
        )

    def fault_vec(self, op: ChannelOp) -> Optional[np.ndarray]:
        """The whole ``(n_shots,)`` fault block at this slot (``None`` when
        the channel is weightless and consumes no randomness) — same kind
        key as :meth:`fault`, so scalar and block readers share one draw."""
        _, px, py, pz = _require_pauli_channel(op)
        if px + py + pz <= 0.0:
            return None
        return self._pull_vec(
            ("fault", op.label),
            lambda: draw_pauli_fault_batch(op, self._rng, self._n),
        )


class _GeneratorDraws:
    """Per-shot scalar draws straight from the generator, historical order.

    The draw source for per-shot loops over programs the batched tableau
    cannot execute: their draw schedule may be *shot-dependent* (a
    non-Pauli conditional diverges the X/Z structure per shot, changing
    which later measurements are random), so the shared vector table's
    schedule invariant does not hold and plain sequential draws are the
    only correct contract."""

    def __init__(self, rng):
        self._rng = rng

    def start_shot(self, shot: int) -> None:
        pass

    def outcome(self) -> int:
        return int(self._rng.integers(2))

    def flip(self, p: float) -> bool:
        return bool(self._rng.random() < p)

    def fault(self, op: ChannelOp) -> int:
        i = draw_pauli_fault(op, self._rng)
        return -1 if i is None else i


def _parity_words(
    rec: Dict[int, np.ndarray], domain, wb: int
) -> np.ndarray:
    """Packed per-shot XOR of recorded outcome words over ``domain``."""
    out = np.zeros(wb, dtype=np.uint64)
    for node in domain:
        out = out ^ rec[node]
    return out


def _flip_table_words(
    pauli, s_words: np.ndarray, t_words: np.ndarray
) -> np.ndarray:
    """Per-shot flip bits of a Pauli measurement table, packed.

    The four effective bases of one measurement share a Pauli axis; only
    the ``flip`` bit is adaptive, a boolean function of the per-shot
    ``(s, t)`` parities evaluated here with four word ops."""
    out = np.zeros(s_words.shape, dtype=np.uint64)
    flips = tuple(flip for _, flip in pauli)
    if flips[0]:
        out ^= ~s_words & ~t_words
    if flips[1]:
        out ^= s_words & ~t_words
    if flips[2]:
        out ^= ~s_words & t_words
    if flips[3]:
        out ^= s_words & t_words
    return out


def _batch_applicable(compiled: CompiledPattern) -> bool:
    """Whether the batched tableau can execute ``compiled``.

    Every per-shot-divergent op must act on sign bits only (a Pauli), and
    each measurement's four effective bases must share one Pauli axis so
    the adaptive part reduces to the flip bit.  All compiler-produced
    Clifford programs qualify (corrections lower to X/Z, and negating an
    angle or adding π preserves a Pauli axis); the guard protects against
    hand-built op streams, which fall back to the per-shot loop."""
    for op in compiled.ops:
        tp = type(op)
        if tp is MeasureOp:
            if op.pauli is None or len({lab for lab, _ in op.pauli}) != 1:
                return False
        elif tp is ConditionalOp:
            if op.clifford is None or any(
                g not in _PAULI_GATES for g in op.clifford
            ):
                return False
        elif tp is UnitaryOp and op.clifford is None:
            return False
    return True


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, PatternBackend] = {}


def register_backend(backend: PatternBackend, name: Optional[str] = None) -> None:
    """Register an engine under ``name`` (default: ``backend.name``)."""
    _REGISTRY[name or backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Registered engine names."""
    return tuple(sorted(_REGISTRY))


def list_backends() -> Tuple[str, ...]:
    """Registered engine names — the stable consumer-facing alias the CLI
    derives its ``--backend`` choices from at parse time, so a newly
    registered engine appears everywhere without touching ``cli.py``."""
    return available_backends()


def get_backend(name: str) -> PatternBackend:
    """Look up a registered engine by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PatternError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def _check_byte_budget(
    compiled: CompiledPattern, backend_name: str, max_bytes: Optional[int]
) -> None:
    """Raise an actionable R101 diagnostic when ``backend_name`` would
    allocate more than the per-shot budget for this pattern (instead of
    the raw numpy MemoryError the allocation itself would produce)."""
    budget = PEAK_BYTE_BUDGET if max_bytes is None else int(max_bytes)
    if budget <= 0:
        return
    from repro.analysis.resources import (
        budget_diagnostic_message,
        estimate_compiled,
    )

    est = estimate_compiled(compiled)
    try:
        per_shot = est.bytes_per_shot(backend_name)
    except ValueError:
        return  # externally registered engine with no byte model
    if per_shot > budget:
        raise PatternError(
            budget_diagnostic_message(est, backend_name, budget, compiled)
        )


def select_backend(
    compiled: CompiledPattern,
    prefer: Union[str, PatternBackend, None] = "auto",
    dense_outputs: bool = False,
    max_bytes: Optional[int] = None,
) -> PatternBackend:
    """Pick an engine for ``compiled``.

    ``prefer`` may be a backend instance (returned as-is after a
    ``supports`` check), a registered name (strict: raises
    :class:`PatternError` when the engine cannot execute the pattern — e.g.
    a non-Clifford pattern forced onto the stabilizer engine), or
    ``"auto"``/``None``: dense statevector while the peak register fits in
    ``DENSE_AUTO_MAX_LIVE`` qubits, the stabilizer fast path beyond that
    for Clifford-classified patterns, and the MPS engine beyond that for
    non-Clifford patterns whose compile-time ``interaction_width`` stays
    within :data:`MPS_AUTO_MAX_WIDTH` (bounded-entanglement line/ring
    patterns at bond-dimension cost).

    The selected engine's statically-estimated per-shot footprint (see
    :func:`repro.analysis.estimate_compiled`) is checked against
    ``max_bytes`` (default :data:`PEAK_BYTE_BUDGET`; ``0`` disables): an
    over-budget route raises :class:`PatternError` carrying the ``R101``
    diagnostic with concrete alternatives, rather than OOMing later.

    Automatic dispatch only picks the stabilizer engine for
    state-preparation patterns (no inputs): tableau columns carry no global
    phase, so a multi-column branch map would have phase-incoherent columns
    — explicit ``prefer="stabilizer"`` still allows it, with that caveat.
    Consumers that must densify the outputs (``run_pattern``, the solver's
    sampler, dense branch maps) pass ``dense_outputs=True``, which keeps
    auto-dispatch dense whenever the output register exceeds the
    ``DENSE_EXTRACT_MAX``-qubit densification cap.
    """
    if prefer is None:
        prefer = "auto"
    if not isinstance(prefer, str):
        if not prefer.supports(compiled):
            raise PatternError(
                f"backend {getattr(prefer, 'name', prefer)!r} cannot execute "
                f"this pattern"
            )
        return prefer
    if prefer != "auto":
        backend = get_backend(prefer)
        if not backend.supports(compiled):
            raise PatternError(
                f"backend {prefer!r} cannot execute this pattern"
                + (
                    ": it is not Clifford (non-Pauli measurement bases or "
                    "non-Clifford corrections); use 'statevector' or 'auto'"
                    if prefer == "stabilizer"
                    else ""
                )
            )
        _check_byte_budget(compiled, backend.name, max_bytes)
        return backend
    if compiled.has_non_pauli_channel:
        # Non-Pauli channels cannot be trajectory-sampled: the density
        # engine is the only one that executes such a program (exactly).
        dens = _REGISTRY.get("density")
        if dens is not None and dens.supports(compiled):
            _check_byte_budget(compiled, dens.name, max_bytes)
            return dens
        raise PatternError(
            "pattern carries non-Pauli channels beyond the density engine's "
            "reach; no registered backend can execute it"
        )
    if (
        compiled.max_live > DENSE_AUTO_MAX_LIVE
        and compiled.num_inputs == 0
        and not (dense_outputs and compiled.num_outputs > DENSE_EXTRACT_MAX)
    ):
        stab = _REGISTRY.get("stabilizer")
        if stab is not None and stab.supports(compiled):
            _check_byte_budget(compiled, stab.name, max_bytes)
            return stab
        # Non-Clifford past dense reach: bounded interaction width means a
        # matrix-product chain executes it at bond-dimension cost.
        if compiled.interaction_width <= MPS_AUTO_MAX_WIDTH:
            mps = _REGISTRY.get("mps")
            if mps is not None and mps.supports(compiled):
                _check_byte_budget(compiled, mps.name, max_bytes)
                return mps
    backend = get_backend("statevector")
    _check_byte_budget(compiled, backend.name, max_bytes)
    return backend


def resolve_backend(
    backend: Union[str, PatternBackend, None],
    compiled: CompiledPattern,
    dense_outputs: bool = False,
) -> PatternBackend:
    """Coerce a user-supplied ``backend`` argument (name, instance, or
    ``None`` for automatic dispatch) to an engine for ``compiled``."""
    if backend is None or isinstance(backend, str):
        return select_backend(compiled, backend, dense_outputs=dense_outputs)
    return backend


def default_backend() -> PatternBackend:
    """The shared dense engine (kept for API compatibility; prefer
    :func:`select_backend` for automatic dispatch)."""
    return get_backend("statevector")


register_backend(StatevectorBackend())
register_backend(StabilizerBackend())

# The density-matrix engine lives in its own module (it pulls in the
# repro.sim.density substrate) and registers itself on import.
import repro.mbqc.density_backend  # noqa: E402,F401  (registers "density")

# The matrix-product-state engine likewise registers itself on import.
import repro.mbqc.mps_backend  # noqa: E402,F401  (registers "mps")
