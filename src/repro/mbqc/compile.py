"""Pattern pre-compilation: slot lifetimes, basis tables, Clifford fusion.

Interpreting a :class:`~repro.mbqc.pattern.Pattern` command-by-command pays
per-command bookkeeping in the hot path: ``_Register`` compaction on every
measurement (an O(live-qubits) dict scan), a fresh
:class:`~repro.sim.statevector.MeasurementBasis` construction per ``M``, and
one ``apply_1q`` per ``C``.  :func:`compile_pattern` hoists all of that to a
one-time compile:

- **slot lifetimes** — the simulator removes a measured qubit's tensor axis,
  so every node's slot index over time is a pure function of the command
  order (outcome-independent).  The compile walk replays the register once
  and bakes the concrete slot into each op, so execution does O(1) lookups
  and no register exists at run time.
- **basis tables** — an ``M`` command's effective angle is
  ``(-1)^s·angle + t·π`` with ``s, t ∈ {0, 1}``, so each measurement has at
  most four distinct bases; all four are prebuilt per command.
- **Clifford fusion** — consecutive ``C`` commands on the same node are
  fused into a single 2x2 matrix at compile time.
- **dead-code elimination** — ``X``/``Z`` corrections with an empty signal
  domain can never fire and are dropped.

The compiled program is a flat tuple of frozen ops consumed by both the
sequential interpreter (:func:`repro.mbqc.runner.run_pattern`) and the
batched backend (:mod:`repro.mbqc.backend`).  Ill-formed references —
entangling, measuring, or correcting an unknown or already-measured node —
surface as :class:`~repro.mbqc.pattern.PatternError` here even when pattern
validation is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.linalg.gates import HADAMARD, PAULI_X, PAULI_Y, PAULI_Z, S_GATE
from repro.linalg.gates import rx as _rx, ry as _ry, rz as _rz
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
)
from repro.sim.statevector import (
    KET_0,
    KET_1,
    KET_MINUS,
    KET_PLUS,
    MeasurementBasis,
)

_PREP = {"plus": KET_PLUS, "minus": KET_MINUS, "zero": KET_0, "one": KET_1}
_CLIFFORD = {
    "h": HADAMARD,
    "s": S_GATE,
    "sdg": S_GATE.conj().T,
    "x": PAULI_X,
    "y": PAULI_Y,
    "z": PAULI_Z,
}
@dataclass(frozen=True)
class PrepOp:
    """Append ``node`` in product state ``state`` (lands in slot ``slot``)."""

    node: int
    slot: int
    state: np.ndarray


@dataclass(frozen=True)
class EntangleOp:
    """CZ between two live slots."""

    slots: Tuple[int, int]


@dataclass(frozen=True)
class MeasureOp:
    """Measure ``slot`` (removing it); basis picked from a 4-entry table.

    ``bases[s + 2t]`` is the basis for signal parities ``(s, t)`` — the
    four possible effective angles ``(-1)^s·angle + t·π``.
    """

    node: int
    slot: int
    s_domain: Tuple[int, ...]
    t_domain: Tuple[int, ...]
    bases: Tuple[MeasurementBasis, ...]


@dataclass(frozen=True)
class ConditionalOp:
    """Apply ``matrix`` to ``slot`` iff the outcome parity over ``domain``
    is odd (a compiled ``X``/``Z`` correction)."""

    slot: int
    domain: Tuple[int, ...]
    matrix: np.ndarray


@dataclass(frozen=True)
class UnitaryOp:
    """Apply an unconditional 2x2 ``matrix`` to ``slot`` (fused ``C`` run)."""

    slot: int
    matrix: np.ndarray


CompiledOp = Union[PrepOp, EntangleOp, MeasureOp, ConditionalOp, UnitaryOp]


@dataclass(frozen=True)
class CompiledPattern:
    """A pattern lowered to slot-resolved ops plus output bookkeeping.

    ``out_perm[j]`` is the final slot of ``output_nodes[j]``; ``max_live``
    is the peak register width (cf. :meth:`Pattern.max_live_nodes`).
    """

    input_nodes: Tuple[int, ...]
    output_nodes: Tuple[int, ...]
    measured_nodes: Tuple[int, ...]
    ops: Tuple[CompiledOp, ...]
    out_perm: Tuple[int, ...]
    max_live: int

    @property
    def num_inputs(self) -> int:
        return len(self.input_nodes)

    @property
    def num_outputs(self) -> int:
        return len(self.output_nodes)


def _fast_basis(plane: str, angle: float) -> MeasurementBasis:
    """Build a plane basis without the ``from_vectors`` orthonormality
    round-trip — the rotated Pauli bases are orthonormal by construction,
    and compile-time basis building is on the hot path of branch sweeps."""
    if plane == "XY":
        rot = _rz(angle)
        b0, b1 = rot @ KET_PLUS, rot @ KET_MINUS
    elif plane == "YZ":
        rot = _rx(angle)
        b0, b1 = rot @ KET_0, rot @ KET_1
    else:  # XZ
        rot = _ry(angle)
        b0, b1 = rot @ KET_0, rot @ KET_1
    return MeasurementBasis(tuple(b0), tuple(b1))


@lru_cache(maxsize=4096)
def _basis_table(plane: str, angle: float) -> Tuple[MeasurementBasis, ...]:
    """The four bases one ``M`` command can use, indexed ``s + 2t``.

    Memoized across compiles: QAOA patterns reuse a handful of angles
    (``0``, ``±2γJ``, ``±2β``) across hundreds of measurements.
    """
    return tuple(
        _fast_basis(plane, ((-1.0) ** s) * angle + t * np.pi)
        for s, t in ((0, 0), (1, 0), (0, 1), (1, 1))
    )


def compile_pattern(pattern: Pattern, validate: bool = True) -> CompiledPattern:
    """Lower ``pattern`` to a :class:`CompiledPattern`.

    With ``validate=True`` the full well-formedness check runs first; even
    without it, the compile walk raises :class:`PatternError` on commands
    referencing unknown or already-measured nodes and on signal domains
    over not-yet-measured nodes.
    """
    if validate:
        pattern.validate()

    slots: Dict[int, int] = {}
    order: List[int] = []
    for node in pattern.input_nodes:
        slots[node] = len(order)
        order.append(node)
    measured: set = set()
    measured_order: List[int] = []
    ops: List[CompiledOp] = []
    max_live = len(order)

    def live_slot(node: int, what: str) -> int:
        try:
            return slots[node]
        except KeyError:
            state = "already-measured" if node in measured else "unknown"
            raise PatternError(f"{what} targets {state} node {node}") from None

    def check_domain(owner: int, domain) -> Tuple[int, ...]:
        bad = set(domain) - measured
        if bad:
            raise PatternError(
                f"signal for node {owner} references unmeasured nodes {sorted(bad)}"
            )
        return tuple(sorted(domain))

    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            if cmd.node in slots:
                raise PatternError(f"node {cmd.node} prepared twice (or is an input)")
            slot = len(order)
            slots[cmd.node] = slot
            order.append(cmd.node)
            max_live = max(max_live, len(order))
            ops.append(PrepOp(cmd.node, slot, _PREP[cmd.state]))
        elif isinstance(cmd, CommandE):
            s0 = live_slot(cmd.nodes[0], "entangler")
            s1 = live_slot(cmd.nodes[1], "entangler")
            ops.append(EntangleOp((s0, s1)))
        elif isinstance(cmd, CommandM):
            slot = live_slot(cmd.node, "measurement")
            s_dom = check_domain(cmd.node, cmd.s_domain)
            t_dom = check_domain(cmd.node, cmd.t_domain)
            ops.append(
                MeasureOp(cmd.node, slot, s_dom, t_dom, _basis_table(cmd.plane, cmd.angle))
            )
            # The simulator removes the measured axis: slots above shift down.
            order.pop(slot)
            del slots[cmd.node]
            for i in range(slot, len(order)):
                slots[order[i]] = i
            measured.add(cmd.node)
            measured_order.append(cmd.node)
        elif isinstance(cmd, (CommandX, CommandZ)):
            slot = live_slot(cmd.node, "correction")
            dom = check_domain(cmd.node, cmd.domain)
            if dom:  # empty-domain corrections can never fire
                matrix = PAULI_X if isinstance(cmd, CommandX) else PAULI_Z
                ops.append(ConditionalOp(slot, dom, matrix))
        elif isinstance(cmd, CommandC):
            slot = live_slot(cmd.node, "Clifford")
            matrix = _CLIFFORD[cmd.gate]
            if ops and isinstance(ops[-1], UnitaryOp) and ops[-1].slot == slot:
                ops[-1] = UnitaryOp(slot, matrix @ ops[-1].matrix)
            else:
                ops.append(UnitaryOp(slot, matrix))
        else:  # pragma: no cover - defensive
            raise PatternError(f"unknown command {cmd!r}")

    out_perm = tuple(live_slot(node, "output") for node in pattern.output_nodes)
    return CompiledPattern(
        input_nodes=tuple(pattern.input_nodes),
        output_nodes=tuple(pattern.output_nodes),
        measured_nodes=tuple(measured_order),
        ops=tuple(ops),
        out_perm=out_perm,
        max_live=max_live,
    )


def signal_parity(outcomes: Dict[int, int], domain: Tuple[int, ...]) -> int:
    """XOR of recorded outcomes over ``domain`` (domains are compile-checked,
    so lookups cannot miss)."""
    parity = 0
    for node in domain:
        parity ^= outcomes[node]
    return parity
