"""Pattern pre-compilation: slot lifetimes, basis tables, Clifford fusion.

Interpreting a :class:`~repro.mbqc.pattern.Pattern` command-by-command pays
per-command bookkeeping in the hot path: ``_Register`` compaction on every
measurement (an O(live-qubits) dict scan), a fresh
:class:`~repro.sim.statevector.MeasurementBasis` construction per ``M``, and
one ``apply_1q`` per ``C``.  :func:`compile_pattern` hoists all of that to a
one-time compile:

- **slot lifetimes** — the simulator removes a measured qubit's tensor axis,
  so every node's slot index over time is a pure function of the command
  order (outcome-independent).  The compile walk replays the register once
  and bakes the concrete slot into each op, so execution does O(1) lookups
  and no register exists at run time.
- **basis tables** — an ``M`` command's effective angle is
  ``(-1)^s·angle + t·π`` with ``s, t ∈ {0, 1}``, so each measurement has at
  most four distinct bases; all four are prebuilt per command.
- **Clifford fusion** — consecutive ``C`` commands on the same node are
  fused into a single 2x2 matrix at compile time.
- **dead-code elimination** — ``X``/``Z`` corrections with an empty signal
  domain can never fire and are dropped.
- **Clifford classification** — each measurement basis table is checked
  against the Pauli eigenbases and each unitary against the single-qubit
  Clifford group (as an ``h``/``s`` word); :attr:`CompiledPattern.is_clifford`
  is true iff every op passed, which is what lets the backend registry
  (:mod:`repro.mbqc.backend`) dispatch the pattern to the stabilizer-tableau
  engine instead of the dense simulator.

The compiled program is a flat tuple of frozen ops consumed by both the
sequential interpreter (:func:`repro.mbqc.runner.run_pattern`) and the
batched backend (:mod:`repro.mbqc.backend`).  Ill-formed references —
entangling, measuring, or correcting an unknown or already-measured node —
surface as :class:`~repro.mbqc.pattern.PatternError` here even when pattern
validation is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property, lru_cache
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.linalg.gates import HADAMARD, PAULI_X, PAULI_Y, PAULI_Z, S_GATE
from repro.mbqc.channels import Channel, ChannelNoiseModel, as_channel_model
from repro.linalg.gates import rx as _rx, ry as _ry, rz as _rz
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
)
from repro.sim.statevector import (
    KET_0,
    KET_1,
    KET_MINUS,
    KET_PLUS,
    MeasurementBasis,
)

_PREP = {"plus": KET_PLUS, "minus": KET_MINUS, "zero": KET_0, "one": KET_1}
_CLIFFORD = {
    "h": HADAMARD,
    "s": S_GATE,
    "sdg": S_GATE.conj().T,
    "x": PAULI_X,
    "y": PAULI_Y,
    "z": PAULI_Z,
}

# (label, +1 eigenvector) for each single-qubit Pauli; the -1 eigenvector of
# X/Z is the other standard basis vector, Y's is (1, -i)/sqrt(2).
_PAULI_EIGS = (
    ("X", KET_PLUS, KET_MINUS),
    ("Y", np.array([1, 1j], dtype=complex) / np.sqrt(2),
          np.array([1, -1j], dtype=complex) / np.sqrt(2)),
    ("Z", KET_0, KET_1),
)


def pauli_of_basis(basis: MeasurementBasis) -> Optional[Tuple[str, int]]:
    """Identify ``basis`` as a Pauli eigenbasis, up to per-vector phase.

    Returns ``(label, flip)`` where projecting onto ``basis.b_m`` equals
    projecting onto the ``(-1)^(m XOR flip)`` eigenspace of Pauli ``label``
    (``flip=1`` means ``b0`` is the -1 eigenvector), or ``None`` when the
    basis is not Pauli.  This is the measurement half of the compile-time
    Clifford classifier.
    """
    b0, _ = basis.vectors()
    for label, plus, minus in _PAULI_EIGS:
        if abs(abs(np.vdot(plus, b0)) - 1.0) < 1e-9:
            return (label, 0)
        if abs(abs(np.vdot(minus, b0)) - 1.0) < 1e-9:
            return (label, 1)
    return None


def _matrix_key(matrix: np.ndarray) -> Optional[bytes]:
    """Global-phase-invariant rounded key for a 2x2 unitary."""
    flat = np.asarray(matrix, dtype=complex).ravel()
    big = np.nonzero(np.abs(flat) > 0.3)[0]
    if big.size == 0:
        return None
    ph = flat[big[0]] / abs(flat[big[0]])
    normed = np.round(flat / ph, 6) + 0.0  # +0.0 kills -0.0
    return normed.tobytes()


@lru_cache(maxsize=1)
def _clifford_words() -> Dict[bytes, Tuple[str, ...]]:
    """All 24 single-qubit Cliffords (up to phase) as shortest h/s words.

    BFS over left-multiplication: a word ``(g1, ..., gk)`` lists gates in
    application order, i.e. the matrix is ``Gk···G1``.  The stabilizer
    backend replays these words on tableau columns.
    """
    table: Dict[bytes, Tuple[str, ...]] = {}
    frontier: List[Tuple[np.ndarray, Tuple[str, ...]]] = [(np.eye(2, dtype=complex), ())]
    table[_matrix_key(frontier[0][0])] = ()
    while frontier:
        nxt: List[Tuple[np.ndarray, Tuple[str, ...]]] = []
        for mat, word in frontier:
            for name in ("h", "s"):
                m2 = _CLIFFORD[name] @ mat
                key = _matrix_key(m2)
                if key not in table:
                    table[key] = word + (name,)
                    nxt.append((m2, word + (name,)))
        frontier = nxt
    return table


def clifford_word(matrix: np.ndarray) -> Optional[Tuple[str, ...]]:
    """``matrix`` as a tableau-gate word (application order), or ``None``.

    Matches against the 24-element single-qubit Clifford group up to global
    phase — the unitary half of the compile-time Clifford classifier.
    """
    key = _matrix_key(matrix)
    if key is None:
        return None
    return _clifford_words().get(key)


@dataclass(frozen=True)
class PrepOp:
    """Append ``node`` in product state ``state`` (lands in slot ``slot``).

    ``label`` is the pattern-level state name (one of ``plus``/``minus``/
    ``zero``/``one``) so non-dense backends need not reverse-engineer the
    amplitudes.
    """

    node: int
    slot: int
    state: np.ndarray
    label: str = "plus"


@dataclass(frozen=True)
class EntangleOp:
    """CZ between two live slots."""

    slots: Tuple[int, int]


@dataclass(frozen=True)
class MeasureOp:
    """Measure ``slot`` (removing it); basis picked from a 4-entry table.

    ``bases[s + 2t]`` is the basis for signal parities ``(s, t)`` — the
    four possible effective angles ``(-1)^s·angle + t·π``.  When every
    entry is a Pauli eigenbasis, ``pauli[s + 2t]`` holds the matching
    ``(label, flip)`` pair (see :func:`pauli_of_basis`); otherwise
    ``pauli`` is ``None`` and the op disqualifies the pattern from the
    stabilizer fast path.
    """

    node: int
    slot: int
    s_domain: Tuple[int, ...]
    t_domain: Tuple[int, ...]
    bases: Tuple[MeasurementBasis, ...]
    pauli: Optional[Tuple[Tuple[str, int], ...]] = None
    basis_block: Optional[np.ndarray] = None
    """``(4, 2, 2)`` array view of ``bases`` (``[s+2t, outcome, component]``)
    — prebuilt so the batched trajectory sampler can gather per-element
    bases with one fancy index instead of re-stacking vectors per call."""
    flip_p: float = 0.0
    """Probability that the *recorded* outcome is flipped (classical readout
    error; corrupts downstream adaptivity).  Set by :func:`lower_noise`."""


@dataclass(frozen=True)
class ConditionalOp:
    """Apply ``matrix`` to ``slot`` iff the outcome parity over ``domain``
    is odd (a compiled ``X``/``Z`` correction).  ``clifford`` is the
    tableau-gate word for ``matrix`` when it is Clifford."""

    slot: int
    domain: Tuple[int, ...]
    matrix: np.ndarray
    clifford: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class UnitaryOp:
    """Apply an unconditional 2x2 ``matrix`` to ``slot`` (fused ``C`` run).
    ``clifford`` is the tableau-gate word for ``matrix`` when it is
    Clifford."""

    slot: int
    matrix: np.ndarray
    clifford: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class ChannelOp:
    """Apply a Kraus channel to ``slot`` — the lowered noise IR.

    Woven into the op stream by :func:`lower_noise` so *every* backend
    executes the identical noise program: the density engine applies
    ``kraus`` exactly; trajectory engines sample ``pauli_probs``
    (``(p_I, p_X, p_Y, p_Z)``, present iff the channel is a Pauli mixture)
    as per-element Pauli faults, and refuse non-Pauli channels.
    """

    slot: int
    kraus: Tuple[np.ndarray, ...]
    label: str
    pauli_probs: Optional[Tuple[float, float, float, float]] = None


CompiledOp = Union[PrepOp, EntangleOp, MeasureOp, ConditionalOp, UnitaryOp, ChannelOp]


@dataclass(frozen=True)
class CompiledPattern:
    """A pattern lowered to slot-resolved ops plus output bookkeeping.

    ``out_perm[j]`` is the final slot of ``output_nodes[j]``; ``max_live``
    is the peak register width (cf. :meth:`Pattern.max_live_nodes`).
    """

    input_nodes: Tuple[int, ...]
    output_nodes: Tuple[int, ...]
    measured_nodes: Tuple[int, ...]
    ops: Tuple[CompiledOp, ...]
    out_perm: Tuple[int, ...]
    max_live: int
    interaction_width: int = 0
    """Peak slot distance across entanglers in compiled order, counting
    only entanglers both of whose operands have already interacted: a
    freshly prepared node is still a known product state, so a linear-chain
    engine can place it adjacent to its partner for free, and its first
    entangler costs nothing regardless of raw slot distance.  Line/ring
    cluster patterns compile to width ≤ 1, dense interaction graphs to
    ~``max_live`` — the statistic :func:`repro.mbqc.backend.select_backend`
    gates MPS auto-dispatch on."""
    noise: Optional[ChannelNoiseModel] = None
    """The channel model lowered into ``ops`` (``None`` for a noiseless
    program).  Set by :func:`lower_noise`."""

    @property
    def num_inputs(self) -> int:
        return len(self.input_nodes)

    @property
    def num_outputs(self) -> int:
        return len(self.output_nodes)

    @cached_property
    def is_clifford(self) -> bool:
        """True iff every op is Clifford: all measurement basis tables are
        Pauli and all (conditional) unitaries are single-qubit Cliffords.

        Such patterns qualify for the stabilizer-tableau fast path
        (:class:`repro.mbqc.backend.StabilizerBackend`); preparation states
        are always stabilizer states, so only measurements and unitaries
        can disqualify.  Lowered Pauli-mixture channels keep the pattern
        Clifford (trajectories sample them as Pauli faults); any other
        channel disqualifies."""
        for op in self.ops:
            tp = type(op)
            if tp is MeasureOp and op.pauli is None:
                return False
            if tp in (UnitaryOp, ConditionalOp) and op.clifford is None:
                return False
            if tp is ChannelOp and op.pauli_probs is None:
                return False
        return True

    @cached_property
    def grouped_ops(self) -> Tuple[Tuple[type, Tuple[CompiledOp, ...]], ...]:
        """``ops`` as runs of consecutive same-kind ops.

        Batch-oriented executors dispatch per *run* instead of per op: a
        prep run becomes one block of direct column initializations on the
        batched tableau, an entangle run one block of CZ sweeps, and so on.
        The flat ``ops`` tuple stays the canonical program — this is a
        derived view, computed once per compiled pattern.
        """
        runs: List[Tuple[type, List[CompiledOp]]] = []
        for op in self.ops:
            tp = type(op)
            if runs and runs[-1][0] is tp:
                runs[-1][1].append(op)
            else:
                runs.append((tp, [op]))
        return tuple((tp, tuple(ops)) for tp, ops in runs)

    @cached_property
    def has_noise(self) -> bool:
        """True iff a noise program is lowered into ``ops`` (any channel op
        or a nonzero readout-flip probability)."""
        for op in self.ops:
            tp = type(op)
            if tp is ChannelOp or (tp is MeasureOp and op.flip_p > 0.0):
                return True
        return False

    @cached_property
    def has_non_pauli_channel(self) -> bool:
        """True iff some lowered channel is not a Pauli mixture — such
        programs cannot be trajectory-sampled and need the density engine."""
        return any(
            type(op) is ChannelOp and op.pauli_probs is None for op in self.ops
        )


def _fast_basis(plane: str, angle: float) -> MeasurementBasis:
    """Build a plane basis without the ``from_vectors`` orthonormality
    round-trip — the rotated Pauli bases are orthonormal by construction,
    and compile-time basis building is on the hot path of branch sweeps."""
    if plane == "XY":
        rot = _rz(angle)
        b0, b1 = rot @ KET_PLUS, rot @ KET_MINUS
    elif plane == "YZ":
        rot = _rx(angle)
        b0, b1 = rot @ KET_0, rot @ KET_1
    else:  # XZ
        rot = _ry(angle)
        b0, b1 = rot @ KET_0, rot @ KET_1
    return MeasurementBasis(tuple(b0), tuple(b1))


@lru_cache(maxsize=4096)
def _basis_table(plane: str, angle: float) -> Tuple[MeasurementBasis, ...]:
    """The four bases one ``M`` command can use, indexed ``s + 2t``.

    Memoized across compiles: QAOA patterns reuse a handful of angles
    (``0``, ``±2γJ``, ``±2β``) across hundreds of measurements.
    """
    return tuple(
        _fast_basis(plane, ((-1.0) ** s) * angle + t * np.pi)
        for s, t in ((0, 0), (1, 0), (0, 1), (1, 1))
    )


@lru_cache(maxsize=4096)
def _basis_block(plane: str, angle: float) -> np.ndarray:
    """The basis table as one ``(4, 2, 2)`` array (memoized alongside
    :func:`_basis_table`; see :attr:`MeasureOp.basis_block`)."""
    block = np.array(
        [[b.b0, b.b1] for b in _basis_table(plane, angle)], dtype=complex
    )
    block.setflags(write=False)
    return block


@lru_cache(maxsize=4096)
def _pauli_table(plane: str, angle: float) -> Optional[Tuple[Tuple[str, int], ...]]:
    """Pauli ``(label, flip)`` per basis-table entry, or ``None`` if any of
    the four effective bases is not a Pauli eigenbasis (memoized alongside
    :func:`_basis_table`)."""
    entries = []
    for basis in _basis_table(plane, angle):
        entry = pauli_of_basis(basis)
        if entry is None:
            return None
        entries.append(entry)
    return tuple(entries)


def compile_pattern(
    pattern: Pattern,
    validate: bool = True,
    verify_ir: bool = False,
    cache_dir: Optional[str] = None,
) -> CompiledPattern:
    """Lower ``pattern`` to a :class:`CompiledPattern`.

    With ``validate=True`` the full well-formedness check runs first; even
    without it, the compile walk raises :class:`PatternError` on commands
    referencing unknown or already-measured nodes and on signal domains
    over not-yet-measured nodes.

    With ``verify_ir=True`` the emitted op stream is additionally replayed
    through the static dataflow verifier
    (:func:`repro.analysis.analyze`) and a :class:`PatternError` listing
    every error-severity diagnostic is raised if the IR is malformed — an
    end-to-end compiler self-check, useful when developing new lowering
    passes.

    With ``cache_dir`` set, the compile goes through the content-addressed
    :mod:`repro.serve.cache` store rooted there: a digest hit (from this
    process's memory tier or any process's disk tier) skips the compile
    walk entirely and a miss persists the result for the next caller.
    """
    if cache_dir is not None:
        # Deferred: repro.serve sits above the IR in the layering.
        from repro.serve.cache import get_cache

        return get_cache(cache_dir).get_or_compile(
            pattern, validate=validate, verify_ir=verify_ir
        )
    if validate:
        pattern.validate()

    slots: Dict[int, int] = {}
    order: List[int] = []
    for node in pattern.input_nodes:
        slots[node] = len(order)
        order.append(node)
    measured: set = set()
    measured_order: List[int] = []
    ops: List[CompiledOp] = []
    max_live = len(order)
    fresh: set = set()  # prepared but not yet entangled: known product states
    interaction_width = 0

    def live_slot(node: int, what: str) -> int:
        try:
            return slots[node]
        except KeyError:
            state = "already-measured" if node in measured else "unknown"
            raise PatternError(f"{what} targets {state} node {node}") from None

    def check_domain(owner: int, domain) -> Tuple[int, ...]:
        bad = set(domain) - measured
        if bad:
            raise PatternError(
                f"signal for node {owner} references unmeasured nodes {sorted(bad)}"
            )
        return tuple(sorted(domain))

    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            if cmd.node in slots:
                raise PatternError(f"node {cmd.node} prepared twice (or is an input)")
            slot = len(order)
            slots[cmd.node] = slot
            order.append(cmd.node)
            max_live = max(max_live, len(order))
            fresh.add(cmd.node)
            ops.append(PrepOp(cmd.node, slot, _PREP[cmd.state], cmd.state))
        elif isinstance(cmd, CommandE):
            s0 = live_slot(cmd.nodes[0], "entangler")
            s1 = live_slot(cmd.nodes[1], "entangler")
            if cmd.nodes[0] not in fresh and cmd.nodes[1] not in fresh:
                interaction_width = max(interaction_width, abs(s0 - s1))
            fresh.discard(cmd.nodes[0])
            fresh.discard(cmd.nodes[1])
            ops.append(EntangleOp((s0, s1)))
        elif isinstance(cmd, CommandM):
            slot = live_slot(cmd.node, "measurement")
            s_dom = check_domain(cmd.node, cmd.s_domain)
            t_dom = check_domain(cmd.node, cmd.t_domain)
            ops.append(
                MeasureOp(
                    cmd.node,
                    slot,
                    s_dom,
                    t_dom,
                    _basis_table(cmd.plane, cmd.angle),
                    _pauli_table(cmd.plane, cmd.angle),
                    _basis_block(cmd.plane, cmd.angle),
                )
            )
            # The simulator removes the measured axis: slots above shift down.
            order.pop(slot)
            del slots[cmd.node]
            for i in range(slot, len(order)):
                slots[order[i]] = i
            measured.add(cmd.node)
            measured_order.append(cmd.node)
        elif isinstance(cmd, (CommandX, CommandZ)):
            slot = live_slot(cmd.node, "correction")
            dom = check_domain(cmd.node, cmd.domain)
            if dom:  # empty-domain corrections can never fire
                if isinstance(cmd, CommandX):
                    ops.append(ConditionalOp(slot, dom, PAULI_X, ("x",)))
                else:
                    ops.append(ConditionalOp(slot, dom, PAULI_Z, ("z",)))
        elif isinstance(cmd, CommandC):
            slot = live_slot(cmd.node, "Clifford")
            matrix = _CLIFFORD[cmd.gate]
            if ops and isinstance(ops[-1], UnitaryOp) and ops[-1].slot == slot:
                matrix = matrix @ ops[-1].matrix
                ops[-1] = UnitaryOp(slot, matrix, clifford_word(matrix))
            else:
                ops.append(UnitaryOp(slot, matrix, clifford_word(matrix)))
        else:  # pragma: no cover - defensive
            raise PatternError(f"unknown command {cmd!r}")

    out_perm = tuple(live_slot(node, "output") for node in pattern.output_nodes)
    compiled = CompiledPattern(
        input_nodes=tuple(pattern.input_nodes),
        output_nodes=tuple(pattern.output_nodes),
        measured_nodes=tuple(measured_order),
        ops=tuple(ops),
        out_perm=out_perm,
        max_live=max_live,
        interaction_width=interaction_width,
    )
    if verify_ir:
        # Deferred import: repro.analysis sits above the IR in the layering.
        from repro.analysis import analyze

        analyze(compiled).raise_if_errors()
    return compiled


def lower_noise(compiled: CompiledPattern, noise: object) -> CompiledPattern:
    """Attach a noise program to ``compiled`` as explicit per-op channels.

    ``noise`` is anything :func:`repro.mbqc.channels.as_channel_model`
    accepts (a :class:`~repro.mbqc.channels.ChannelNoiseModel`, the
    back-compat ``NoiseModel`` probability bag, or ``None``).  The model's
    ``prep`` channel is woven in after each :class:`PrepOp`, its ``ent``
    channel after each :class:`EntangleOp` on both slots, and ``meas_flip``
    is baked onto each :class:`MeasureOp` — so every backend executes one
    shared noise program instead of reinterpreting probabilities.

    Returns ``compiled`` unchanged for trivial models; lowering twice is an
    error (the noise program would double).
    """
    model = as_channel_model(noise)
    if model is None or model.is_trivial():
        return compiled
    if compiled.has_noise:
        raise PatternError(
            "pattern already carries a lowered noise program; compile a fresh "
            "pattern or pass noise once"
        )

    def channel_op(channel: Channel, slot: int) -> ChannelOp:
        return ChannelOp(slot, channel.kraus, channel.name, channel.pauli_probs)

    prep = None if model.prep is None or model.prep.is_identity() else model.prep
    ent = None if model.ent is None or model.ent.is_identity() else model.ent
    ops: List[CompiledOp] = []
    for op in compiled.ops:
        tp = type(op)
        if tp is MeasureOp and model.meas_flip > 0.0:
            ops.append(replace(op, flip_p=model.meas_flip))
            continue
        ops.append(op)
        if tp is PrepOp and prep is not None:
            ops.append(channel_op(prep, op.slot))
        elif tp is EntangleOp and ent is not None:
            ops.append(channel_op(ent, op.slots[0]))
            ops.append(channel_op(ent, op.slots[1]))
    return replace(compiled, ops=tuple(ops), noise=model)


def signal_parity(outcomes: Dict[int, int], domain: Tuple[int, ...]) -> int:
    """XOR of recorded outcomes over ``domain`` (domains are compile-checked,
    so lookups cannot miss)."""
    parity = 0
    for node in domain:
        parity ^= outcomes[node]
    return parity


# -- signal-liveness analysis -------------------------------------------------


@dataclass(frozen=True)
class SignalRead:
    """One signal-domain read in a compiled op stream.

    ``kind`` is ``"s"``/``"t"`` for the two :class:`MeasureOp` domains (the
    reading op's node is ``owner``) and ``"cond"`` for a
    :class:`ConditionalOp` domain (``owner`` is -1 — the corrected node is a
    register property, not an IR one).  ``dangling`` lists domain entries
    not measured strictly before ``op_index`` (the R010 defect set; empty
    for compiler-emitted streams).
    """

    op_index: int
    kind: str
    owner: int
    domain: Tuple[int, ...]
    dangling: Tuple[int, ...] = ()


@dataclass(frozen=True)
class SignalLiveness:
    """Signal dataflow of one compiled op stream.

    The single source of truth for every consumer of "who reads which
    outcome record": the density engine's exact integrator (dead-record
    merging and live-parity branch merging), the static resource
    estimator's branch bounds, and the IR verifier's R010-R012 signal-flow
    checks all derive from this one forward/backward walk.

    - ``reads`` lists every domain read in op order (``s`` before ``t``
      within one measurement); a read's position in the tuple is its
      **read id**, the column index of the frontier integrator's
      per-branch parity table.
    - ``dead[i]`` is True when op ``i`` is a measurement whose record is
      never read by any later domain — its branch pair merges by
      dephase + partial trace instead of exploring.
    - ``touch[node]`` are the read ids whose domain contains ``node``
      (every such read happens after the node's measurement).
    - ``read_nodes`` is the union of all domains (R012: a measured node
      outside it has a written-never-read record).
    - ``merged_bound`` bounds the post-merge branch frontier: at each
      measurement position the future-referenced partial parities span a
      GF(2) space of dimension ``rank``, so at most ``2^rank`` branch
      signatures are distinguishable; the bound is the maximum over
      positions.  Readout flips do not enter — flip children share their
      recorded bit and merge immediately.
    """

    reads: Tuple[SignalRead, ...]
    dead: Tuple[bool, ...]
    touch: Dict[int, Tuple[int, ...]]
    read_nodes: frozenset
    merged_bound: int

    def future_read_ids(self, op_index: int) -> Tuple[int, ...]:
        """Read ids consumed strictly after op ``op_index`` — the signature
        columns live-parity merging compares after that op executes."""
        return tuple(
            rid for rid, read in enumerate(self.reads)
            if read.op_index > op_index
        )


def _gf2_rank(vectors: List[int]) -> int:
    """Rank of GF(2) row vectors packed as ints (xor-basis elimination)."""
    basis: List[int] = []
    for v in vectors:
        for b in basis:
            v = min(v, v ^ b)
        if v:
            basis.append(v)
    return len(basis)


def signal_liveness(ops: Tuple[CompiledOp, ...]) -> SignalLiveness:
    """Analyze the signal dataflow of a compiled op stream.

    One forward walk collects every domain read (with its dangling set) and
    the node→reads index; one backward walk marks dead records; one
    rank sweep bounds the merged branch frontier.  Pure IR inspection —
    no amplitudes, ``O(ops · reads)`` worst case — so it is cheap enough
    for the verifier, the resource estimator, and every ``integrate`` call.
    """
    reads: List[SignalRead] = []
    touch: Dict[int, List[int]] = {}
    measured: set = set()
    meas_pos: Dict[int, int] = {}  # node -> bit position, in measure order

    def record_read(i: int, kind: str, owner: int, domain) -> None:
        domain = tuple(domain)
        rid = len(reads)
        reads.append(
            SignalRead(
                i, kind, owner, domain,
                tuple(n for n in domain if n not in measured),
            )
        )
        for node in domain:
            touch.setdefault(node, []).append(rid)

    for i, op in enumerate(ops):
        tp = type(op)
        if tp is MeasureOp:
            record_read(i, "s", op.node, op.s_domain)
            record_read(i, "t", op.node, op.t_domain)
            measured.add(op.node)
            meas_pos[op.node] = len(meas_pos)
        elif tp is ConditionalOp:
            record_read(i, "cond", -1, op.domain)

    read_nodes = frozenset(touch)
    dead = [False] * len(ops)
    for i, op in enumerate(ops):
        if type(op) is MeasureOp:
            dead[i] = not any(
                reads[rid].op_index > i for rid in touch.get(op.node, ())
            )

    # Each read's domain as a GF(2) vector over nodes in measure order;
    # restricting to "measured so far" is a low-bits mask.
    full_masks = [
        sum(1 << meas_pos[n] for n in r.domain if n in meas_pos)
        for r in reads
    ]
    merged_bound = 1
    k = 0
    for i, op in enumerate(ops):
        if type(op) is not MeasureOp:
            continue
        k += 1
        lim = (1 << k) - 1
        rank = _gf2_rank(
            [
                full_masks[rid] & lim
                for rid, r in enumerate(reads)
                if r.op_index > i
            ]
        )
        merged_bound = max(merged_bound, 1 << rank)

    return SignalLiveness(
        reads=tuple(reads),
        dead=tuple(dead),
        touch={node: tuple(rids) for node, rids in touch.items()},
        read_nodes=read_nodes,
        merged_bound=merged_bound,
    )
