"""Matrix-product-state pattern engine (``"mps"``).

The fourth registered backend: executes compiled patterns on
:class:`repro.sim.mps.MPSState` chains, whose cost scales with the bond
dimension instead of ``2^max_live`` — bounded-entanglement patterns
(line/ring cluster states, ``interaction_width ≤ 1``) run at hundreds of
measured non-Clifford nodes, a workload none of the dense engines can
touch.

Sampling follows the PR 5 byte-budget discipline: per-shot MPS chains are
too large to keep thousands resident, so the default ``vectorize=True``
path sweeps the op stream over *chunks* of resident shots under
``MPS_BATCH_MAX_BYTES`` (``chunk = budget // bytes_per_shot``, clamped
to 1), while ``vectorize=False`` retains the shot-major reference loop.
Both paths drive the *same* scalar :class:`MPSState` kernels and consume
one shared :class:`~repro.mbqc.backend._ShotDrawTable` whole-block draw
schedule, so seeded records are bit-identical across chunk sizes and
between the two paths *by construction* — and, because the table replays
the dense engines' draw conventions (uniform per unpinned measurement,
flip block per readout, fault block per Pauli channel), they are
bit-identical to the statevector engine's seeded records on any
channel-free program both can run.

Truncation is never silent: every output carries the accumulated
relative discarded weight (:attr:`MPSOutput.truncation_error`,
``DensityRun.dropped_weight``-style), 0.0 meaning the run was exact up
to floating point.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.backend import (
    BranchRun,
    SampleRun,
    _check_branch,
    _check_branch_noiseless,
    _check_n_shots,
    _empty_sample_run,
    _input_row,
    _measure_vecs,
    _parity_vec,
    _require_pauli_channel,
    _ShotDrawTable,
    register_backend,
)
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    lower_noise,
    signal_parity,
)
from repro.mbqc.pattern import PatternError
from repro.sim.mps import MPSState
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng

#: Default bond-dimension cap.  Bounded-entanglement patterns stay far
#: below it (their true Schmidt rank is ~2^interaction_width); when a
#: high-entanglement pattern saturates it, the discarded weight shows up
#: in ``truncation_error`` rather than silently degrading results.
MPS_DEFAULT_CHI_MAX = 64

#: Relative singular-value cutoff: drops only numerically-zero Schmidt
#: coefficients by default, keeping small-pattern runs exact to ~1e-12.
MPS_DEFAULT_CUTOFF = 1e-12

#: Resident-chunk byte budget of the vectorized sampling sweep (the PR 5
#: chunking budget; cf. ``DENSITY_BATCH_MAX_BYTES``).
MPS_BATCH_MAX_BYTES = 1 << 26

_MPS_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


class MPSOutput:
    """One element's output on the MPS engine.

    ``mps`` is the normalized output chain (output nodes in output order);
    ``log2_weight`` the branch log-probability (0.0 for sampled
    trajectories, log-domain so hundred-measurement branch weights do not
    underflow).  ``truncation_error`` surfaces the chain's accumulated
    relative discarded SVD weight — 0.0 certifies the element was computed
    without truncation."""

    def __init__(self, mps: MPSState, log2_weight: float = 0.0):
        self.mps = mps
        self.log2_weight = log2_weight

    @property
    def weight(self) -> float:
        """Branch probability (may underflow to 0.0 at hundreds of
        measurements; use ``log2_weight`` for the exact value)."""
        return 2.0 ** self.log2_weight

    @property
    def truncation_error(self) -> float:
        return self.mps.truncation_error

    def unit_statevector(self) -> np.ndarray:
        """Dense unit-norm output column (little-endian, output order)."""
        vec = self.mps.to_array()
        nrm = float(np.linalg.norm(vec))
        if nrm <= 0.0:
            raise ValueError("cannot densify a zero-norm output")
        return vec / nrm

    def to_statevector(self) -> np.ndarray:
        """Unnormalized dense output (``‖·‖² = weight``), the branch-map
        densification contract."""
        return math.sqrt(self.weight) * self.unit_statevector()

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities of the output."""
        p = np.abs(self.mps.to_array()) ** 2
        return p / p.sum()


class MPSBackend:
    """Pattern execution on truncated matrix-product states.

    ``chi_max``/``cutoff`` bound every SVD refactorization (see
    :class:`repro.sim.mps.MPSState`); with the defaults, executions of
    bounded-entanglement patterns are exact and report
    ``truncation_error == 0.0``."""

    name = "mps"
    byte_model_note = "2·n·chi² bonded site tensors"

    def __init__(
        self,
        chi_max: Optional[int] = MPS_DEFAULT_CHI_MAX,
        cutoff: float = MPS_DEFAULT_CUTOFF,
    ):
        self.chi_max = chi_max
        self.cutoff = cutoff

    def supports(self, compiled: CompiledPattern) -> bool:
        # Trajectory engine: Pauli mixtures sample as faults, any other
        # channel needs the density engine.
        return not compiled.has_non_pauli_channel

    # -- resource model -----------------------------------------------------

    def _chi_cap(self, compiled: CompiledPattern) -> int:
        """The effective bond cap: the configured ``chi_max``, never more
        than the exact worst case ``2^(max_live // 2)`` of a register this
        wide."""
        worst = 1 << max(0, compiled.max_live // 2)
        if self.chi_max is None:
            return worst
        return min(self.chi_max, worst)

    def bytes_per_shot(self, compiled: CompiledPattern) -> int:
        """Bonded per-shot estimate ``2 · n · chi² · 16`` (complex128 site
        tensors ``chi × 2 × chi`` over the peak register) — the registry
        hook :func:`repro.analysis.estimate_compiled` builds its rows
        from."""
        chi = self._chi_cap(compiled)
        return 2 * max(1, compiled.max_live) * chi * chi * 16

    def _chunk_shots(
        self, compiled: CompiledPattern, max_block_bytes: Optional[int]
    ) -> int:
        budget = (
            MPS_BATCH_MAX_BYTES if max_block_bytes is None
            else int(max_block_bytes)
        )
        return max(1, budget // max(1, self.bytes_per_shot(compiled)))

    def _fresh_state(self, row: np.ndarray) -> MPSState:
        return MPSState.from_dense_row(
            row, chi_max=self.chi_max, cutoff=self.cutoff
        )

    # -- forced branches ----------------------------------------------------

    def run_branch_batch(
        self,
        compiled: CompiledPattern,
        inputs: np.ndarray,
        forced_outcomes: Mapping[int, int],
    ) -> BranchRun:
        _check_branch_noiseless(compiled, self.name)
        forced = _check_branch(compiled, forced_outcomes)
        inputs = np.asarray(inputs, dtype=complex)
        if inputs.ndim != 2 or inputs.shape[1] != 1 << compiled.num_inputs:
            raise PatternError(
                f"the {self.name} engine expects an input block of shape "
                f"(B, {1 << compiled.num_inputs}) for this pattern's "
                f"{compiled.num_inputs} inputs, got {inputs.shape}"
            )
        raws: List[MPSOutput] = []
        for row in inputs:
            st = self._fresh_state(row)
            outcomes: Dict[int, int] = {}
            log2w = 0.0
            for op in compiled.ops:
                tp = type(op)
                if tp is PrepOp:
                    st.add_qubit(op.state)
                elif tp is EntangleOp:
                    st.apply_cz(*op.slots)
                elif tp is MeasureOp:
                    s = signal_parity(outcomes, op.s_domain)
                    t = signal_parity(outcomes, op.t_domain)
                    out = forced[op.node]
                    try:
                        _, prob = st.measure(
                            op.slot, _measure_vecs(op, s, t), force=out
                        )
                    except ZeroProbabilityBranch:
                        raise ZeroProbabilityBranch(
                            f"forced outcome {out} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                    log2w += math.log2(prob)
                    outcomes[op.node] = out
                elif tp is ConditionalOp:
                    if signal_parity(outcomes, op.domain):
                        st.apply_1q(op.matrix, op.slot)
                else:  # UnitaryOp (channels are excluded as noise above)
                    st.apply_1q(op.matrix, op.slot)
            st.permute(compiled.out_perm)
            raws.append(MPSOutput(st, log2w))
        weights = np.array([out.weight for out in raws], dtype=float)
        return BranchRun(outcomes=forced, weights=weights, raw=tuple(raws))

    # -- trajectory sampling ------------------------------------------------

    def sample_batch(
        self,
        compiled: CompiledPattern,
        n_shots: int,
        rng: SeedLike = None,
        input_state: Optional[np.ndarray] = None,
        forced_outcomes: Optional[Mapping[int, int]] = None,
        noise: Optional[object] = None,
        keep_raw: bool = False,
        vectorize: bool = True,
        max_block_bytes: Optional[int] = None,
    ) -> SampleRun:
        """Sample ``n_shots`` trajectories.

        ``vectorize=True`` (default) sweeps the op stream over resident
        shot chunks sized by ``max_block_bytes`` (default
        :data:`MPS_BATCH_MAX_BYTES`); ``vectorize=False`` is the
        shot-major reference loop.  Both run the same per-shot kernels off
        one whole-block draw table, so seeded records are bit-identical
        across ``vectorize`` and every chunk size."""
        _check_n_shots(n_shots, self.name)
        rng = ensure_rng(rng)
        forced = dict(forced_outcomes or {})
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        for op in compiled.ops:
            if type(op) is ChannelOp:
                _require_pauli_channel(op)  # fail fast, before any shots run
        row = _input_row(compiled, input_state, self.name)
        if n_shots == 0:
            return _empty_sample_run(compiled, keep_raw)
        draws = _ShotDrawTable(rng, n_shots)
        rec: Dict[int, np.ndarray] = {
            node: np.empty(n_shots, dtype=np.int8)
            for node in compiled.measured_nodes
        }
        raws: Optional[List[MPSOutput]] = [None] * n_shots if keep_raw else None  # type: ignore[list-item]
        if vectorize:
            chunk = self._chunk_shots(compiled, max_block_bytes)
            for lo in range(0, n_shots, chunk):
                hi = min(lo + chunk, n_shots)
                self._run_chunk(compiled, row, forced, draws, rec, raws, lo, hi)
        else:
            for j in range(n_shots):
                self._run_shot(compiled, row, forced, draws, rec, raws, j)
        outcomes = (
            np.stack([rec[n] for n in compiled.measured_nodes], axis=1)
            if compiled.measured_nodes
            else np.zeros((n_shots, 0), dtype=np.int8)
        )
        return SampleRun(
            nodes=compiled.measured_nodes,
            outcomes=outcomes,
            raw=tuple(raws) if raws is not None else None,
        )

    def _run_shot(
        self,
        compiled: CompiledPattern,
        row: np.ndarray,
        forced: Dict[int, int],
        draws: _ShotDrawTable,
        rec: Dict[int, np.ndarray],
        raws: Optional[List[MPSOutput]],
        j: int,
    ) -> None:
        """One shot, shot-major: scalar reads off the shared draw table."""
        draws.start_shot(j)
        st = self._fresh_state(row)
        outcomes: Dict[int, int] = {}
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                st.add_qubit(op.state)
            elif tp is EntangleOp:
                st.apply_cz(*op.slots)
            elif tp is MeasureOp:
                s = signal_parity(outcomes, op.s_domain)
                t = signal_parity(outcomes, op.t_domain)
                vecs = _measure_vecs(op, s, t)
                pinned = forced.get(op.node)
                if pinned is None:
                    out, _ = st.measure(op.slot, vecs, u=draws.uniform())
                else:
                    try:
                        out, _ = st.measure(op.slot, vecs, force=pinned)
                    except ZeroProbabilityBranch:
                        raise ZeroProbabilityBranch(
                            f"forced outcome {pinned} on node {op.node} has "
                            f"probability ~0"
                        ) from None
                if op.flip_p > 0.0 and draws.flip(op.flip_p):
                    out ^= 1
                outcomes[op.node] = out
                rec[op.node][j] = out
            elif tp is ConditionalOp:
                if signal_parity(outcomes, op.domain):
                    st.apply_1q(op.matrix, op.slot)
            elif tp is ChannelOp:
                fault = draws.fault(op)
                if fault >= 0:
                    st.apply_1q(_MPS_PAULIS[fault], op.slot)
            else:  # UnitaryOp
                st.apply_1q(op.matrix, op.slot)
        if raws is not None:
            st.permute(compiled.out_perm)
            raws[j] = MPSOutput(st)

    def _run_chunk(
        self,
        compiled: CompiledPattern,
        row: np.ndarray,
        forced: Dict[int, int],
        draws: _ShotDrawTable,
        rec: Dict[int, np.ndarray],
        raws: Optional[List[MPSOutput]],
        lo: int,
        hi: int,
    ) -> None:
        """One resident chunk, op-major: whole-block draw slices, shared
        per-element parity/basis gathers, the same scalar state kernels."""
        b = hi - lo
        draws.start_pass()
        states = [self._fresh_state(row) for _ in range(b)]
        local: Dict[int, np.ndarray] = {}  # node -> (b,) chunk records
        for op in compiled.ops:
            tp = type(op)
            if tp is PrepOp:
                for st in states:
                    st.add_qubit(op.state)
            elif tp is EntangleOp:
                s0, s1 = op.slots
                for st in states:
                    st.apply_cz(s0, s1)
            elif tp is MeasureOp:
                s = _parity_vec(local, op.s_domain, b)
                t = _parity_vec(local, op.t_domain, b)
                vecs = _measure_vecs(op, s, t)  # (b, 2, 2)
                pinned = forced.get(op.node)
                outs = np.empty(b, dtype=np.int8)
                if pinned is None:
                    u = draws.uniform_vec()[lo:hi]
                    for j, st in enumerate(states):
                        outs[j], _ = st.measure(
                            op.slot, vecs[j], u=float(u[j])
                        )
                else:
                    for j, st in enumerate(states):
                        try:
                            outs[j], _ = st.measure(
                                op.slot, vecs[j], force=pinned
                            )
                        except ZeroProbabilityBranch:
                            raise ZeroProbabilityBranch(
                                f"forced outcome {pinned} on node {op.node} "
                                f"has probability ~0"
                            ) from None
                if op.flip_p > 0.0:
                    outs ^= draws.flip_vec(op.flip_p)[lo:hi].astype(np.int8)
                local[op.node] = outs
                rec[op.node][lo:hi] = outs
            elif tp is ConditionalOp:
                fire = _parity_vec(local, op.domain, b)
                for j, st in enumerate(states):
                    if fire[j]:
                        st.apply_1q(op.matrix, op.slot)
            elif tp is ChannelOp:
                faults = draws.fault_vec(op)
                if faults is not None:
                    f = faults[lo:hi]
                    for j, st in enumerate(states):
                        if f[j] >= 0:
                            st.apply_1q(_MPS_PAULIS[f[j]], op.slot)
            else:  # UnitaryOp
                for st in states:
                    st.apply_1q(op.matrix, op.slot)
        if raws is not None:
            for j, st in enumerate(states):
                st.permute(compiled.out_perm)
                raws[lo + j] = MPSOutput(st)


register_backend(MPSBackend())
