"""Flow and generalized flow on open graphs.

The paper (Section II.B) requires measurement patterns to be deterministic,
formalized as a *flow condition* on the underlying open graph ([32] Danos &
Kashefi; [33] Browne, Kashefi, Mhalla & Perdrix).  This module implements:

- :func:`find_causal_flow` — Danos–Kashefi causal flow (patterns with all
  measurements in the XY plane),
- :func:`find_gflow` — *extended* generalized flow supporting all three
  measurement planes (XY/XZ/YZ), via the layer-by-layer Mhalla–Perdrix
  algorithm with GF(2) linear solves.

A pattern whose open graph admits a gflow is runnable deterministically with
the standard correction strategy; the compiled QAOA patterns of
``repro.core`` are checked against this criterion in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mbqc.pattern import CommandE, CommandM, CommandN, Pattern


@dataclass
class OpenGraph:
    """A graph with distinguished inputs/outputs and measurement planes.

    ``planes`` maps every non-output node to its measurement plane.
    """

    nodes: Set[int]
    edges: Set[Tuple[int, int]]
    inputs: List[int]
    outputs: List[int]
    planes: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edges = {(u, v) if u < v else (v, u) for (u, v) in self.edges}
        for u, v in self.edges:
            if u == v:
                raise ValueError("open graphs have no self-loops")
            if u not in self.nodes or v not in self.nodes:
                raise ValueError("edge endpoint outside node set")
        measured = self.nodes - set(self.outputs)
        missing = measured - set(self.planes)
        if missing:
            # Default: XY, the generic cluster-state plane.
            for v in missing:
                self.planes[v] = "XY"

    @staticmethod
    def from_pattern(pattern: Pattern) -> "OpenGraph":
        nodes = set(pattern.input_nodes) | set(pattern.output_nodes)
        edges: Set[Tuple[int, int]] = set()
        planes: Dict[int, str] = {}
        for cmd in pattern.commands:
            if isinstance(cmd, CommandN):
                nodes.add(cmd.node)
            elif isinstance(cmd, CommandE):
                edges.add(cmd.nodes)
            elif isinstance(cmd, CommandM):
                planes[cmd.node] = cmd.plane
        return OpenGraph(nodes, edges, list(pattern.input_nodes), list(pattern.output_nodes), planes)

    def neighbors(self, v: int) -> Set[int]:
        out = set()
        for a, b in self.edges:
            if a == v:
                out.add(b)
            elif b == v:
                out.add(a)
        return out

    def adjacency(self, order: Sequence[int]) -> np.ndarray:
        """Boolean adjacency matrix in the given node order."""
        idx = {v: i for i, v in enumerate(order)}
        a = np.zeros((len(order), len(order)), dtype=bool)
        for u, v in self.edges:
            if u in idx and v in idx:
                a[idx[u], idx[v]] = True
                a[idx[v], idx[u]] = True
        return a


@dataclass
class CausalFlow:
    """A Danos–Kashefi flow: successor function and measurement layers.

    ``layer[v]`` decreases toward the outputs; measure in decreasing-layer
    order.  ``f[u]`` is the corrector of ``u``.
    """

    f: Dict[int, int]
    layer: Dict[int, int]

    def measurement_order(self) -> List[int]:
        measured = [v for v in self.layer if v not in self._outputs()]
        return sorted(measured, key=lambda v: -self.layer[v])

    def _outputs(self) -> Set[int]:
        return {v for v in self.layer if v not in self.f}


def find_causal_flow(graph: OpenGraph) -> Optional[CausalFlow]:
    """Find a causal flow, or ``None`` if none exists.

    Only valid when every measured node is in the XY plane (the classical
    cluster-state setting); raises otherwise.
    """
    measured = graph.nodes - set(graph.outputs)
    for v in measured:
        if graph.planes.get(v, "XY") != "XY":
            raise ValueError("causal flow is defined for XY-plane measurements only")

    processed: Set[int] = set(graph.outputs)
    correctors: Set[int] = set(graph.outputs) - set(graph.inputs)
    f: Dict[int, int] = {}
    layer: Dict[int, int] = {v: 0 for v in graph.outputs}
    remaining = set(graph.nodes) - processed
    k = 1
    while remaining:
        found = False
        for v in sorted(correctors):
            nb = [u for u in graph.neighbors(v) if u not in processed]
            if len(nb) != 1:
                continue
            u = nb[0]
            f[u] = v
            layer[u] = k
            processed.add(u)
            remaining.discard(u)
            correctors.discard(v)
            if u not in graph.inputs:
                correctors.add(u)
            found = True
        if not found:
            return None
        k += 1
    return CausalFlow(f, layer)


@dataclass
class GFlow:
    """An extended gflow: correction sets and measurement layers."""

    g: Dict[int, FrozenSet[int]]
    layer: Dict[int, int]

    def measurement_order(self) -> List[int]:
        measured = [v for v in self.g]
        return sorted(measured, key=lambda v: -self.layer[v])


def _solve_gf2(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Solve ``a x = b`` over GF(2); returns one solution or ``None``."""
    a = a.copy().astype(bool)
    b = b.copy().astype(bool)
    rows, cols = a.shape
    pivot_col_of_row: List[int] = []
    r = 0
    for c in range(cols):
        pivots = np.nonzero(a[r:, c])[0]
        if pivots.size == 0:
            pivot_col_of_row.append(-1)
            continue
        p = r + int(pivots[0])
        if p != r:
            a[[r, p]] = a[[p, r]]
            b[[r, p]] = b[[p, r]]
        mask = a[:, c].copy()
        mask[r] = False
        a[mask] ^= a[r]
        b[mask] ^= b[r]
        pivot_col_of_row.append(c)
        r += 1
        if r == rows:
            break
    # Check consistency: zero rows with nonzero rhs.
    for i in range(r, rows):
        if b[i] and not a[i].any():
            return None
        if b[i] and not a[i].any():  # pragma: no cover
            return None
    # Any remaining rows are either zero= consistent or have pivots handled.
    for i in range(rows):
        if b[i] and not a[i].any():
            return None
    x = np.zeros(cols, dtype=bool)
    # Back-substitute: after full elimination each pivot row has a leading
    # one in its pivot column and zeros elsewhere in that column.
    rr = 0
    for c in pivot_col_of_row:
        if c == -1:
            continue
        x[c] = b[rr]
        rr += 1
    # Verify (matrix was fully reduced, but free columns may interact).
    if not np.array_equal(((a @ x.astype(np.int64)) % 2).astype(bool), b):
        # a was mutated by elimination; recompute with original is needed —
        # elimination preserves solution sets, so this check is still valid.
        return None
    return x


def find_gflow(graph: OpenGraph) -> Optional[GFlow]:
    """Find an extended gflow, or ``None`` if none exists.

    Layer-by-layer algorithm: at each stage a non-output node ``u`` is
    *correctable* if there is ``K ⊆ (processed ∪ {u}) \\ inputs`` with

    - plane XY: ``u ∉ K`` and ``Odd(K) ∩ unprocessed = {u}``,
    - plane XZ: ``u ∈ K`` and ``Odd(K) ∩ unprocessed = {u}``,
    - plane YZ: ``u ∈ K`` and ``Odd(K) ∩ unprocessed = ∅``,

    where ``Odd(K)`` is the odd-neighborhood and *unprocessed* excludes
    ``u`` itself.  All correctable nodes join the current layer.
    """
    outputs = set(graph.outputs)
    inputs = set(graph.inputs)
    processed: Set[int] = set(outputs)
    remaining: Set[int] = set(graph.nodes) - processed
    g: Dict[int, FrozenSet[int]] = {}
    layer: Dict[int, int] = {v: 0 for v in outputs}
    k = 0
    while remaining:
        k += 1
        found: List[int] = []
        for u in sorted(remaining):
            plane = graph.planes.get(u, "XY")
            # Candidate correction-set members.
            cand = sorted((processed | {u}) - inputs) if plane in ("XZ", "YZ") else sorted(
                processed - inputs
            )
            if plane in ("XZ", "YZ"):
                if u in inputs:
                    continue  # u must lie in its own correction set
                if u not in cand:
                    continue
            # Unknowns: membership of each candidate in K.  Constraints: for
            # every w in remaining - {u}: |N(w) ∩ K| even; for w = u: parity
            # depends on plane; plus plane-dependent u∈K fixed below.
            rows_nodes = sorted(remaining)
            a = np.zeros((len(rows_nodes), len(cand)), dtype=bool)
            for j, c in enumerate(cand):
                for w in graph.neighbors(c):
                    if w in remaining:
                        a[rows_nodes.index(w), j] = True
            b = np.zeros(len(rows_nodes), dtype=bool)
            u_row = rows_nodes.index(u)
            if plane in ("XY", "XZ"):
                b[u_row] = True
            if plane in ("XZ", "YZ"):
                # Fix x_u = 1: move its column to the RHS.
                j_u = cand.index(u)
                b = b ^ a[:, j_u]
                a = np.delete(a, j_u, axis=1)
                reduced_cand = [c for c in cand if c != u]
            else:
                reduced_cand = cand
            x = _solve_gf2(a, b)
            if x is None:
                continue
            kset = {c for c, bit in zip(reduced_cand, x) if bit}
            if plane in ("XZ", "YZ"):
                kset.add(u)
            g[u] = frozenset(kset)
            layer[u] = k
            found.append(u)
        if not found:
            return None
        for u in found:
            processed.add(u)
            remaining.discard(u)
    return GFlow(g, layer)


def verify_gflow(graph: OpenGraph, gflow: GFlow) -> bool:
    """Check the gflow conditions explicitly (used in tests)."""
    def odd_nbhd(kset: FrozenSet[int]) -> Set[int]:
        odd: Set[int] = set()
        for c in kset:
            odd ^= graph.neighbors(c)
        return odd

    for u, kset in gflow.g.items():
        plane = graph.planes.get(u, "XY")
        odd = odd_nbhd(kset)
        lu = gflow.layer[u]
        for w in kset - {u}:
            if gflow.layer.get(w, -1) >= lu:
                return False
        for w in odd - {u}:
            if gflow.layer.get(w, -1) >= lu:
                return False
        if any(w in graph.inputs for w in kset):
            return False
        if plane == "XY" and not (u not in kset and u in odd):
            return False
        if plane == "XZ" and not (u in kset and u in odd):
            return False
        if plane == "YZ" and not (u in kset and u not in odd):
            return False
    return True
