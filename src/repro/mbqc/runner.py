"""Pattern execution on the dynamic statevector simulator.

``run_pattern`` walks the command list, allocating a qubit per ``N``,
entangling on ``E``, measuring adaptively on ``M`` (the measured qubit is
*removed*, so memory tracks the live set, cf. ``Pattern.max_live_nodes``),
and applying conditional corrections.  Outcomes can be forced per node,
which gives exhaustive branch enumeration: the determinism claims of the
paper (Sections II.B and III) are tested over every outcome branch.

``pattern_to_matrix`` extracts the linear map a pattern implements on its
input nodes for a fixed outcome branch, by running the pattern on each
computational basis state without renormalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.gates import HADAMARD, PAULI_X, PAULI_Y, PAULI_Z, S_GATE
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
)
from repro.sim.statevector import (
    KET_0,
    KET_1,
    KET_MINUS,
    KET_PLUS,
    MeasurementBasis,
    StateVector,
)
from repro.utils.rng import SeedLike, ensure_rng

_PREP = {"plus": KET_PLUS, "minus": KET_MINUS, "zero": KET_0, "one": KET_1}
_CLIFFORD = {
    "h": HADAMARD,
    "s": S_GATE,
    "sdg": S_GATE.conj().T,
    "x": PAULI_X,
    "y": PAULI_Y,
    "z": PAULI_Z,
}
_PLANE_BASIS = {
    "XY": MeasurementBasis.xy,
    "YZ": MeasurementBasis.yz,
    "XZ": MeasurementBasis.xz,
}


@dataclass
class PatternResult:
    """Execution record: measurement outcomes and the output state.

    ``state`` holds the output nodes in ``output_order`` (little-endian:
    ``output_order[i]`` is qubit ``i`` of :meth:`state_array`).
    """

    outcomes: Dict[int, int]
    state: StateVector
    output_order: List[int]

    def state_array(self) -> np.ndarray:
        return self.state.to_array()


class _Register:
    """node id <-> simulator slot bookkeeping with removal compaction."""

    def __init__(self) -> None:
        self.slot: Dict[int, int] = {}

    def add(self, node: int, slot: int) -> None:
        self.slot[node] = slot

    def remove(self, node: int) -> int:
        s = self.slot.pop(node)
        for k in self.slot:
            if self.slot[k] > s:
                self.slot[k] -= 1
        return s

    def __getitem__(self, node: int) -> int:
        return self.slot[node]


def _signal(outcomes: Dict[int, int], domain) -> int:
    parity = 0
    for node in domain:
        try:
            parity ^= outcomes[node]
        except KeyError:
            raise PatternError(f"signal references unmeasured node {node}") from None
    return parity


def run_pattern(
    pattern: Pattern,
    input_state: Optional[StateVector] = None,
    seed: SeedLike = None,
    forced_outcomes: Optional[Dict[int, int]] = None,
    renormalize: bool = True,
    validate: bool = True,
) -> PatternResult:
    """Execute ``pattern`` and return outcomes plus the output state.

    Parameters
    ----------
    input_state:
        State of the input nodes (little-endian over ``pattern.input_nodes``);
        defaults to ``|+>^k`` as in the paper's QAOA protocol.
    forced_outcomes:
        Map node -> bit pinning measurement outcomes (branch enumeration).
        Forcing a zero-probability branch raises.
    renormalize:
        With ``False`` the state keeps the branch amplitude — used by
        :func:`pattern_to_matrix` to extract linear maps.
    """
    if validate:
        pattern.validate()
    rng = ensure_rng(seed)
    forced = forced_outcomes or {}

    k = len(pattern.input_nodes)
    if input_state is None:
        sv = StateVector.plus(k)
    else:
        if input_state.num_qubits != k:
            raise PatternError(
                f"input state has {input_state.num_qubits} qubits, pattern has {k} inputs"
            )
        sv = input_state.copy()
    reg = _Register()
    for i, node in enumerate(pattern.input_nodes):
        reg.add(node, i)

    outcomes: Dict[int, int] = {}
    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            slot = sv.add_qubit(_PREP[cmd.state])
            reg.add(cmd.node, slot)
        elif isinstance(cmd, CommandE):
            sv.apply_cz(reg[cmd.nodes[0]], reg[cmd.nodes[1]])
        elif isinstance(cmd, CommandM):
            s = _signal(outcomes, cmd.s_domain)
            t = _signal(outcomes, cmd.t_domain)
            angle = ((-1) ** s) * cmd.angle + t * np.pi
            basis = _PLANE_BASIS[cmd.plane](angle)
            out, _prob = sv.measure(
                reg[cmd.node],
                basis,
                rng=rng,
                force=forced.get(cmd.node),
                remove=True,
                renormalize=renormalize,
            )
            reg.remove(cmd.node)
            outcomes[cmd.node] = out
        elif isinstance(cmd, CommandX):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_X, reg[cmd.node])
        elif isinstance(cmd, CommandZ):
            if _signal(outcomes, cmd.domain):
                sv.apply_1q(PAULI_Z, reg[cmd.node])
        elif isinstance(cmd, CommandC):
            sv.apply_1q(_CLIFFORD[cmd.gate], reg[cmd.node])
        else:  # pragma: no cover - defensive
            raise PatternError(f"unknown command {cmd!r}")

    # Reorder remaining qubits into output_nodes order.
    order = [reg[node] for node in pattern.output_nodes]
    arr = sv.to_array()
    n = sv.num_qubits
    if n:
        tensor = arr.reshape((2,) * n).transpose(tuple(reversed(range(n))))
        # tensor axis i = slot i; want axis j = slot of output_nodes[j].
        tensor = tensor.transpose(order)
        arr = tensor.transpose(tuple(reversed(range(n)))).reshape(-1)
    out_state = StateVector.from_array(arr) if n else StateVector(0)
    return PatternResult(outcomes, out_state, list(pattern.output_nodes))


def enumerate_branches(pattern: Pattern) -> Iterator[Dict[int, int]]:
    """Yield every outcome assignment for the measured nodes (2^m branches)."""
    measured = pattern.measured_nodes()
    m = len(measured)
    for bits in range(1 << m):
        yield {node: (bits >> i) & 1 for i, node in enumerate(measured)}


def pattern_to_matrix(
    pattern: Pattern,
    forced_outcomes: Optional[Dict[int, int]] = None,
) -> np.ndarray:
    """The linear map implemented on a fixed outcome branch (default all-0).

    For a deterministic pattern, this is proportional to the same unitary on
    every branch; :func:`repro.core.verify.check_pattern_determinism` makes
    that claim precise by enumerating branches.
    """
    pattern.validate()
    k = len(pattern.input_nodes)
    n_out = len(pattern.output_nodes)
    forced = forced_outcomes
    if forced is None:
        forced = {node: 0 for node in pattern.measured_nodes()}
    missing = set(pattern.measured_nodes()) - set(forced)
    if missing:
        raise PatternError(f"branch must force all outcomes; missing {sorted(missing)}")
    cols = []
    for j in range(1 << k):
        basis = np.zeros(1 << k, dtype=complex)
        basis[j] = 1.0
        res = run_pattern(
            pattern,
            input_state=StateVector.from_array(basis),
            forced_outcomes=forced,
            renormalize=False,
            validate=False,
        )
        cols.append(res.state_array())
    return np.stack(cols, axis=1).reshape(1 << n_out, 1 << k)
