"""Pattern execution on the dynamic statevector simulator.

``run_pattern`` executes a pattern compiled to slot-resolved ops
(:func:`repro.mbqc.compile.compile_pattern`): a qubit is allocated per
``N``, entangled on ``E``, measured adaptively on ``M`` (the measured qubit
is *removed*, so memory tracks the live set, cf. ``Pattern.max_live_nodes``),
with conditional corrections applied from precomputed slots.  Outcomes can
be forced per node, which gives exhaustive branch enumeration: the
determinism claims of the paper (Sections II.B and III) are tested over
every outcome branch.

``pattern_to_matrix`` extracts the linear map a pattern implements on its
input nodes for a fixed outcome branch.  It runs on the batched execution
engine (:mod:`repro.mbqc.backend`): all ``2^k`` computational basis columns
are simulated in one vectorized sweep over a
:class:`~repro.sim.statevector.BatchedStateVector` instead of ``2^k``
sequential pattern re-runs.  ``pattern_to_matrix_sequential`` keeps the
per-column reference path for cross-checks and benchmarking
(``benchmarks/bench_e19_batched_runner.py``).

Both entry points dispatch through the backend registry
(:func:`repro.mbqc.backend.select_backend`): ``backend`` may be an engine
instance, a registered name (``"statevector"``, ``"stabilizer"``,
``"density"``), or ``"auto"``/``None`` — the latter routes Clifford-angle
patterns to the stabilizer-tableau fast path once the live register
outgrows dense reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.linalg.gates import PAULI_X, PAULI_Y, PAULI_Z
from repro.mbqc.backend import PatternBackend, draw_pauli_fault, resolve_backend
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    compile_pattern,
    signal_parity,
)
from repro.mbqc.pattern import Pattern, PatternError
from repro.sim.statevector import MeasurementBasis, StateVector
from repro.utils.rng import SeedLike, ensure_rng

# The command-by-command interpreters (noise.py) share the compile-time
# prep/Clifford tables; _PLANE_BASIS stays here for adaptive-basis building.
_PLANE_BASIS = {
    "XY": MeasurementBasis.xy,
    "YZ": MeasurementBasis.yz,
    "XZ": MeasurementBasis.xz,
}

_FAULT_PAULIS = (PAULI_X, PAULI_Y, PAULI_Z)


@dataclass
class PatternResult:
    """Execution record: measurement outcomes and the output state.

    ``state`` holds the output nodes in ``output_order`` (little-endian:
    ``output_order[i]`` is qubit ``i`` of :meth:`state_array`).
    """

    outcomes: Dict[int, int]
    state: StateVector
    output_order: List[int]

    def state_array(self) -> np.ndarray:
        return self.state.to_array()


class _Register:
    """node id <-> simulator slot bookkeeping with removal compaction.

    Used by the command-by-command interpreters (e.g. the noisy runner);
    the main runner executes precompiled ops and needs no register.
    """

    def __init__(self) -> None:
        self.slot: Dict[int, int] = {}

    def add(self, node: int, slot: int) -> None:
        self.slot[node] = slot

    def remove(self, node: int) -> int:
        s = self[node]
        del self.slot[node]
        for k in self.slot:
            if self.slot[k] > s:
                self.slot[k] -= 1
        return s

    def __getitem__(self, node: int) -> int:
        try:
            return self.slot[node]
        except KeyError:
            raise PatternError(
                f"command targets unknown or already-measured node {node}"
            ) from None


def _signal(outcomes: Dict[int, int], domain) -> int:
    parity = 0
    for node in domain:
        try:
            parity ^= outcomes[node]
        except KeyError:
            raise PatternError(f"signal references unmeasured node {node}") from None
    return parity


def _reorder_output(sv: StateVector, out_perm: Sequence[int]) -> StateVector:
    """Permute simulator slots into output order; returns the output state.

    For zero-output patterns the 0-qubit state still carries the branch
    amplitude (``from_array`` on a length-1 vector keeps it) — the previous
    implementation reset it to 1, silently dropping the branch weight.
    """
    arr = sv.to_array()
    n = sv.num_qubits
    if n:
        tensor = arr.reshape((2,) * n).transpose(tuple(reversed(range(n))))
        # tensor axis i = slot i; want axis j = slot of output_nodes[j].
        tensor = tensor.transpose(out_perm)
        arr = tensor.transpose(tuple(reversed(range(n)))).reshape(-1)
    return StateVector.from_array(arr)


def run_pattern(
    pattern: Pattern,
    input_state: Optional[StateVector] = None,
    seed: SeedLike = None,
    forced_outcomes: Optional[Dict[int, int]] = None,
    renormalize: bool = True,
    validate: bool = True,
    compiled: Optional[CompiledPattern] = None,
    backend: Union[str, PatternBackend, None] = None,
) -> PatternResult:
    """Execute ``pattern`` and return outcomes plus the output state.

    Parameters
    ----------
    input_state:
        State of the input nodes (little-endian over ``pattern.input_nodes``);
        defaults to ``|+>^k`` as in the paper's QAOA protocol.
    forced_outcomes:
        Map node -> bit pinning measurement outcomes (branch enumeration).
        Forcing a zero-probability branch raises.
    renormalize:
        With ``False`` the state keeps the branch amplitude — used by
        :func:`pattern_to_matrix` to extract linear maps.
    compiled:
        A precompiled program for ``pattern`` (from
        :func:`~repro.mbqc.compile.compile_pattern`); pass it when running
        the same pattern many times (e.g. branch enumeration) to skip
        recompilation.
    backend:
        ``None`` keeps the in-process dense interpreter below (one
        trajectory, no batch overhead; noise-lowered programs execute
        their Pauli channel ops and readout flips in place).  A registry
        name (``"auto"``, ``"statevector"``, ``"stabilizer"``,
        ``"density"``) or engine instance dispatches the trajectory
        through :meth:`PatternBackend.sample_batch`; the returned state is
        then always normalized, and the output register must stay
        densifiable (Clifford patterns with huge *measured* sets are fine
        — only ``output_nodes`` are materialized).
    """
    if compiled is None:
        compiled = compile_pattern(pattern, validate=validate)
    rng = ensure_rng(seed)
    forced = forced_outcomes or {}

    if backend is not None:
        if not renormalize:
            raise PatternError(
                "renormalize=False (branch-amplitude extraction) needs the "
                "in-process interpreter; drop the backend argument or use "
                "pattern_to_matrix/run_branch_batch"
            )
        engine = resolve_backend(backend, compiled, dense_outputs=True)
        run = engine.sample_batch(
            compiled, 1, rng, input_state=input_state, forced_outcomes=forced,
            keep_raw=True,
        )
        state = StateVector.from_array(run.dense_states()[0])
        return PatternResult(
            run.outcome_dicts()[0], state, list(compiled.output_nodes)
        )

    k = compiled.num_inputs
    if input_state is None:
        sv = StateVector.plus(k)
    else:
        if input_state.num_qubits != k:
            raise PatternError(
                f"input state has {input_state.num_qubits} qubits, pattern has {k} inputs"
            )
        sv = input_state.copy()

    outcomes: Dict[int, int] = {}
    for op in compiled.ops:
        tp = type(op)
        if tp is PrepOp:
            sv.add_qubit(op.state)
        elif tp is EntangleOp:
            sv.apply_cz(*op.slots)
        elif tp is MeasureOp:
            s = signal_parity(outcomes, op.s_domain)
            t = signal_parity(outcomes, op.t_domain)
            out, _prob = sv.measure(
                op.slot,
                op.bases[s + 2 * t],
                rng=rng,
                force=forced.get(op.node),
                remove=True,
                renormalize=renormalize,
            )
            if op.flip_p > 0.0 and rng.random() < op.flip_p:
                out ^= 1  # readout flip corrupts downstream adaptivity
            outcomes[op.node] = out
        elif tp is ConditionalOp:
            if signal_parity(outcomes, op.domain):
                sv.apply_1q(op.matrix, op.slot)
        elif tp is ChannelOp:
            # The interpreter is one trajectory: sample the shared noise
            # program's Pauli mixtures (non-Pauli channels raise, pointing
            # to the density engine).
            i = draw_pauli_fault(op, rng)
            if i is not None:
                sv.apply_1q(_FAULT_PAULIS[i], op.slot)
        else:  # UnitaryOp
            sv.apply_1q(op.matrix, op.slot)

    out_state = _reorder_output(sv, compiled.out_perm)
    return PatternResult(outcomes, out_state, list(compiled.output_nodes))


def enumerate_branches(pattern: Pattern) -> Iterator[Dict[int, int]]:
    """Yield every outcome assignment for the measured nodes (2^m branches)."""
    measured = pattern.measured_nodes()
    m = len(measured)
    for bits in range(1 << m):
        yield {node: (bits >> i) & 1 for i, node in enumerate(measured)}


def _full_branch(
    compiled: CompiledPattern, forced_outcomes: Optional[Dict[int, int]]
) -> Dict[int, int]:
    if forced_outcomes is None:
        return {node: 0 for node in compiled.measured_nodes}
    missing = set(compiled.measured_nodes) - set(forced_outcomes)
    if missing:
        raise PatternError(f"branch must force all outcomes; missing {sorted(missing)}")
    return dict(forced_outcomes)


def pattern_to_matrix(
    pattern: Pattern,
    forced_outcomes: Optional[Dict[int, int]] = None,
    backend: Union[str, PatternBackend, None] = None,
    compiled: Optional[CompiledPattern] = None,
) -> np.ndarray:
    """The linear map implemented on a fixed outcome branch (default all-0).

    For a deterministic pattern, this is proportional to the same unitary on
    every branch; :func:`repro.core.verify.check_pattern_determinism` makes
    that claim precise by enumerating branches.

    All ``2^k`` input basis columns run in one batched sweep on ``backend``
    (an engine instance, registry name, or ``None`` for automatic dispatch
    via :func:`~repro.mbqc.backend.select_backend`); pass ``compiled`` to
    amortize compilation across many branches.  Columns extracted on the
    stabilizer engine are exact up to a per-column phase (a tableau carries
    no global phase).
    """
    if compiled is None:
        compiled = compile_pattern(pattern)
    forced = _full_branch(compiled, forced_outcomes)
    engine = resolve_backend(backend, compiled, dense_outputs=True)
    k = compiled.num_inputs
    inputs = np.eye(1 << k, dtype=complex)
    run = engine.run_branch_batch(compiled, inputs, forced)
    # Row j of ``states`` is the output column for input basis state j.
    return np.ascontiguousarray(run.dense_states().T)


def pattern_to_matrix_sequential(
    pattern: Pattern,
    forced_outcomes: Optional[Dict[int, int]] = None,
) -> np.ndarray:
    """Reference implementation of :func:`pattern_to_matrix`: one full
    pattern run per input basis column.  Kept for cross-validation and as
    the baseline in ``benchmarks/bench_e19_batched_runner.py``."""
    compiled = compile_pattern(pattern)
    forced = _full_branch(compiled, forced_outcomes)
    k = compiled.num_inputs
    n_out = compiled.num_outputs
    cols = []
    for j in range(1 << k):
        basis = np.zeros(1 << k, dtype=complex)
        basis[j] = 1.0
        res = run_pattern(
            pattern,
            input_state=StateVector.from_array(basis),
            forced_outcomes=forced,
            renormalize=False,
            compiled=compiled,
        )
        cols.append(res.state_array())
    return np.stack(cols, axis=1).reshape(1 << n_out, 1 << k)
