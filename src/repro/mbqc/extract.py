"""Pattern → circuit extraction (the paper's ref. [24] direction).

While every circuit translates to a measurement pattern, the converse needs
structure: this module implements the classic Danos–Kashefi result that a
pattern whose open graph has a *causal flow* and whose measurements are all
XY-plane decomposes into ``J(α) = H·RZ(α)`` gates along the flow chains
plus CZs for the remaining graph edges:

- flow chains (``u → f(u) → f(f(u)) → …``) become logical wires,
- measuring ``u`` at XY angle ``θ`` becomes ``J(−θ)`` on its wire,
- graph edges that are not chain links become CZs, scheduled before the
  measurement of either endpoint,
- byproduct corrections vanish (they are what the flow absorbs).

``extract_circuit`` returns a :class:`~repro.sim.circuit.Circuit` whose
unitary is proportional to the pattern's branch map — verified in
``tests/test_mbqc_extract.py`` by round-tripping the generic compiler.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.mbqc.flow import OpenGraph, find_causal_flow
from repro.mbqc.pattern import CommandM, Pattern
from repro.sim.circuit import Circuit


class ExtractionError(ValueError):
    """Raised when a pattern has no causal flow or unsupported structure."""


def extract_circuit(pattern: Pattern) -> Circuit:
    """Extract an equivalent circuit from an XY-plane pattern with flow.

    The circuit acts on ``len(pattern.input_nodes)`` logical qubits (wire
    ``i`` = input ``i``); its unitary is proportional to every outcome
    branch's map of the (deterministic) pattern.
    """
    pattern.validate()
    if not pattern.input_nodes:
        raise ExtractionError("extraction needs an open pattern (with inputs)")
    graph = OpenGraph.from_pattern(pattern)
    for node, plane in graph.planes.items():
        if plane != "XY":
            raise ExtractionError(
                f"node {node} measured in {plane}; extraction supports XY only"
            )
    flow = find_causal_flow(graph)
    if flow is None:
        raise ExtractionError("pattern's open graph has no causal flow")

    # Wire assignment: follow successor chains from each input.
    wire_of: Dict[int, int] = {}
    for i, node in enumerate(pattern.input_nodes):
        wire_of[node] = i
        cur = node
        while cur in flow.f:
            cur = flow.f[cur]
            wire_of[cur] = i
    uncovered = graph.nodes - set(wire_of)
    if uncovered:
        raise ExtractionError(
            f"nodes {sorted(uncovered)} not on any input chain; "
            "extraction handles equal input/output arity patterns"
        )

    angles: Dict[int, float] = {}
    for cmd in pattern.commands:
        if isinstance(cmd, CommandM):
            angles[cmd.node] = cmd.angle

    # Schedule: process measured nodes in flow order; before measuring u,
    # emit CZs for all non-chain edges incident to u not yet emitted.
    circuit = Circuit(len(pattern.input_nodes))
    chain_links: Set[Tuple[int, int]] = set()
    for u, v in flow.f.items():
        chain_links.add((min(u, v), max(u, v)))
    emitted: Set[Tuple[int, int]] = set()

    def emit_cz_for(node: int) -> None:
        for nb in sorted(graph.neighbors(node)):
            key = (min(node, nb), max(node, nb))
            if key in chain_links or key in emitted:
                continue
            emitted.add(key)
            circuit.cz(wire_of[node], wire_of[nb])

    order = sorted(flow.f.keys(), key=lambda u: -flow.layer[u])
    for u in order:
        emit_cz_for(u)
        circuit.j(wire_of[u], -angles[u])
    # Remaining edges among outputs.
    for node in sorted(graph.outputs):
        emit_cz_for(node)
    return circuit


def extractable(pattern: Pattern) -> bool:
    """True iff :func:`extract_circuit` would succeed."""
    try:
        extract_circuit(pattern)
        return True
    except (ExtractionError, Exception):
        return False
