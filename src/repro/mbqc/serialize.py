"""Pattern and noise-model (de)serialization.

Compiled MBQC protocols are artefacts a lab would archive and replay; this
module round-trips :class:`~repro.mbqc.pattern.Pattern` objects through
plain JSON-compatible dictionaries (and strings), preserving command order,
planes, angles, and signal domains exactly.  Noise is part of the replayed
artifact too: :func:`noise_model_to_dict` / :func:`noise_model_from_dict`
round-trip a :class:`~repro.mbqc.channels.ChannelNoiseModel` (Kraus
operators as nested ``[re, im]`` pairs), so an archived pattern + model
pair re-lowers to the identical ``ChannelOp`` stream.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.mbqc.channels import Channel, ChannelNoiseModel
from repro.mbqc.pattern import (
    CommandC,
    CommandE,
    CommandM,
    CommandN,
    CommandX,
    CommandZ,
    Pattern,
    PatternError,
)


def pattern_to_dict(pattern: Pattern) -> Dict[str, Any]:
    """Plain-data representation (JSON-compatible)."""
    commands: List[Dict[str, Any]] = []
    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            commands.append({"op": "N", "node": cmd.node, "state": cmd.state})
        elif isinstance(cmd, CommandE):
            commands.append({"op": "E", "nodes": list(cmd.nodes)})
        elif isinstance(cmd, CommandM):
            commands.append(
                {
                    "op": "M",
                    "node": cmd.node,
                    "plane": cmd.plane,
                    "angle": cmd.angle,
                    "s_domain": sorted(cmd.s_domain),
                    "t_domain": sorted(cmd.t_domain),
                }
            )
        elif isinstance(cmd, CommandX):
            commands.append({"op": "X", "node": cmd.node, "domain": sorted(cmd.domain)})
        elif isinstance(cmd, CommandZ):
            commands.append({"op": "Z", "node": cmd.node, "domain": sorted(cmd.domain)})
        elif isinstance(cmd, CommandC):
            commands.append({"op": "C", "node": cmd.node, "gate": cmd.gate})
        else:  # pragma: no cover - defensive
            raise PatternError(f"unknown command {cmd!r}")
    return {
        "version": 1,
        "input_nodes": list(pattern.input_nodes),
        "output_nodes": list(pattern.output_nodes),
        "commands": commands,
    }


def pattern_from_dict(data: Dict[str, Any]) -> Pattern:
    """Inverse of :func:`pattern_to_dict`; validates the result."""
    if data.get("version") != 1:
        raise PatternError(f"unsupported pattern format version {data.get('version')!r}")
    pattern = Pattern(
        input_nodes=list(data["input_nodes"]),
        output_nodes=list(data["output_nodes"]),
    )
    for rec in data["commands"]:
        op = rec["op"]
        if op == "N":
            pattern.n(int(rec["node"]), rec.get("state", "plus"))
        elif op == "E":
            u, v = rec["nodes"]
            pattern.e(int(u), int(v))
        elif op == "M":
            pattern.m(
                int(rec["node"]),
                rec.get("plane", "XY"),
                float(rec.get("angle", 0.0)),
                s_domain={int(x) for x in rec.get("s_domain", [])},
                t_domain={int(x) for x in rec.get("t_domain", [])},
            )
        elif op == "X":
            pattern.x(int(rec["node"]), {int(x) for x in rec.get("domain", [])})
        elif op == "Z":
            pattern.z(int(rec["node"]), {int(x) for x in rec.get("domain", [])})
        elif op == "C":
            pattern.c(int(rec["node"]), rec["gate"])
        else:
            raise PatternError(f"unknown command op {op!r}")
    pattern.validate()
    return pattern


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) — the byte
    form hashed by the ``repro.serve`` content-addressed cache.  Two
    equal plain-data trees always encode to the same string, across
    processes and platforms (CPython float repr is shortest-roundtrip)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def pattern_to_json(pattern: Pattern, indent: int = 0) -> str:
    return json.dumps(pattern_to_dict(pattern), indent=indent or None)


def pattern_from_json(text: str) -> Pattern:
    return pattern_from_dict(json.loads(text))


def channel_to_dict(channel: Channel) -> Dict[str, Any]:
    """Plain-data Kraus form: complex entries become ``[re, im]`` pairs."""
    return {
        "name": channel.name,
        "kraus": [
            [[[float(z.real), float(z.imag)] for z in row] for row in np.asarray(k)]
            for k in channel.kraus
        ],
    }


def channel_from_dict(data: Dict[str, Any]) -> Channel:
    """Inverse of :func:`channel_to_dict`; re-validates the Kraus set."""
    kraus = tuple(
        np.array([[complex(re, im) for re, im in row] for row in k], dtype=complex)
        for k in data["kraus"]
    )
    return Channel(str(data.get("name", "custom")), kraus)


def noise_model_to_dict(model: ChannelNoiseModel) -> Dict[str, Any]:
    """Plain-data representation of a channel noise model."""
    return {
        "version": 1,
        "prep": channel_to_dict(model.prep) if model.prep is not None else None,
        "ent": channel_to_dict(model.ent) if model.ent is not None else None,
        "meas_flip": float(model.meas_flip),
    }


def noise_model_from_dict(data: Dict[str, Any]) -> ChannelNoiseModel:
    """Inverse of :func:`noise_model_to_dict`; validation happens in the
    :class:`~repro.mbqc.channels.ChannelNoiseModel` constructor."""
    if data.get("version") != 1:
        raise PatternError(
            f"unsupported noise model format version {data.get('version')!r}"
        )

    def load(key: str) -> Optional[Channel]:
        rec = data.get(key)
        return channel_from_dict(rec) if rec is not None else None

    return ChannelNoiseModel(
        prep=load("prep"), ent=load("ent"), meas_flip=float(data.get("meas_flip", 0.0))
    )


def noise_model_to_json(model: ChannelNoiseModel, indent: int = 0) -> str:
    return json.dumps(noise_model_to_dict(model), indent=indent or None)


def noise_model_from_json(text: str) -> ChannelNoiseModel:
    return noise_model_from_dict(json.loads(text))
